//! Cannon's matrix-multiplication algorithm on a processor grid.
//!
//! This is the canonical consumer of the paper's 2-D regular communication
//! skeletons: after `row_col_block` (grid) distribution and an initial skew
//! (`rotate_row` by row index, `rotate_col` by column index), each of `q`
//! steps multiplies the local blocks and rotates `A` one step left along
//! rows and `B` one step up along columns.

use scl_core::align;
use scl_core::prelude::*;

/// Block-wise `C += A · B` with flop counting; the accumulator is owned
/// and updated in place (no per-step clone of the C block).
fn block_mac(mut c: Matrix<f64>, a: &Matrix<f64>, b: &Matrix<f64>) -> (Matrix<f64>, Work) {
    let (m, k) = a.dims();
    let (k2, n) = b.dims();
    assert_eq!(k, k2, "inner dimension mismatch");
    assert_eq!(c.dims(), (m, n), "accumulator shape mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut acc = *c.get(i, j);
            for l in 0..k {
                acc += a.get(i, l) * b.get(l, j);
            }
            c.set(i, j, acc);
        }
    }
    (c, Work::flops(2 * (m * n * k) as u64))
}

/// Multiply `a · b` on a `q × q` processor grid with Cannon's algorithm.
///
/// # Panics
/// Panics unless both matrices are `n × n` with `q` dividing `n`, and the
/// machine has at least `q²` processors.
pub fn cannon_matmul(scl: &mut Scl, a: &Matrix<f64>, b: &Matrix<f64>, q: usize) -> Matrix<f64> {
    let n = a.rows();
    assert_eq!(a.dims(), (n, n), "A must be square");
    assert_eq!(b.dims(), (n, n), "B must be square");
    assert!(
        q >= 1 && n.is_multiple_of(q),
        "grid size {q} must divide matrix size {n}"
    );
    scl.check_fits(q * q);
    scl.machine.barrier();

    let grid = Pattern::Grid { pr: q, pc: q };
    let da = scl.partition2(grid, a);
    let db = scl.partition2(grid, b);

    // Initial skew: row i of A rotates left by i; column j of B rotates up
    // by j. Owned rotations: the blocks move, nothing clones.
    let mut da = scl.rotate_row_owned(|i| i as isize, da);
    let mut db = scl.rotate_col_owned(|j| j as isize, db);

    let blk = n / q;
    let zero = ParArray::like(&da, vec![Matrix::filled(blk, blk, 0.0f64); q * q]);

    // Each step zips the owned A/B/C blocks into one configuration, hands
    // every part to the kernel by value, and splits the (untouched) A/B
    // blocks back out to rotate them into the next step — the whole sweep
    // moves blocks, never copies them.
    let empty = || ParArray::from_parts(Vec::new());
    let dc = scl.iter_for(
        q,
        |scl, _, dc| {
            let a_now = std::mem::replace(&mut da, empty());
            let b_now = std::mem::replace(&mut db, empty());
            let cfg = align(align(a_now, b_now), dc);
            let out = scl.map_costed_owned(cfg, |((ab, bb), cb)| {
                let (c, w) = block_mac(cb, &ab, &bb);
                (((ab, bb), c), w)
            });
            let (abs, cs) = unalign(out);
            let (ra, rb) = unalign(abs);
            da = scl.rotate_row_owned(|_| 1, ra);
            db = scl.rotate_col_owned(|_| 1, rb);
            cs
        },
        zero,
    );

    scl.gather2(grid, &dc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::random_matrix;

    fn check(n: usize, q: usize, seed: u64) {
        let a = random_matrix(n, n, seed);
        let b = random_matrix(n, n, seed + 1);
        let expect = a.matmul(&b);
        let mut scl = Scl::ap1000(q * q);
        let got = cannon_matmul(&mut scl, &a, &b, q);
        assert!(
            got.max_abs_diff(&expect) < 1e-9,
            "cannon mismatch n={n} q={q}: {}",
            got.max_abs_diff(&expect)
        );
    }

    #[test]
    fn multiplies_correctly_across_grids() {
        check(4, 1, 1);
        check(4, 2, 2);
        check(6, 2, 3);
        check(6, 3, 4);
        check(8, 4, 5);
        check(12, 4, 6);
    }

    #[test]
    fn identity_times_anything() {
        let n = 6;
        let a = Matrix::identity(n);
        let b = random_matrix(n, n, 9);
        let mut scl = Scl::ap1000(4);
        let got = cannon_matmul(&mut scl, &a, &b, 2);
        assert!(got.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn charges_rotations() {
        let a = random_matrix(8, 8, 1);
        let b = random_matrix(8, 8, 2);
        let mut scl = Scl::ap1000(4);
        let _ = cannon_matmul(&mut scl, &a, &b, 2);
        // q=2: initial skew (row 1 moves, col 1 moves) + 2 steps * 2 rotations
        assert!(scl.machine.metrics.messages > 0);
        assert!(scl.machine.metrics.flops >= 2 * 8 * 8 * 8);
    }

    #[test]
    fn grid_speedup_is_sublinear_but_real() {
        let a = random_matrix(24, 24, 3);
        let b = random_matrix(24, 24, 4);
        let time = |q: usize| {
            let mut scl = Scl::ap1000(q * q);
            let _ = cannon_matmul(&mut scl, &a, &b, q);
            scl.makespan().as_secs()
        };
        let t1 = time(1);
        let t2 = time(2);
        let t4 = time(4);
        assert!(t2 < t1, "t1={t1} t2={t2}");
        assert!(t4 < t2, "t2={t2} t4={t4}");
        assert!(t1 / t4 < 16.0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_indivisible_grid() {
        let a = random_matrix(5, 5, 1);
        let b = random_matrix(5, 5, 2);
        let mut scl = Scl::ap1000(4);
        let _ = cannon_matmul(&mut scl, &a, &b, 2);
    }
}
