//! Parallel FFT via binary exchange on a hypercube — the canonical
//! `fetch (xor 2^s)` butterfly workload.
//!
//! The radix-2 Cooley–Tukey stages whose partner bit falls *inside* a
//! processor's block are pure local compute; the top `log₂ p` stages pair
//! whole blocks across the cube dimensions, exactly the partner-exchange
//! pattern hyperquicksort uses — one `fetch(xor mask)` per stage. This is
//! the textbook demonstration that SCL's skeleton set covers the classic
//! hypercube algorithms beyond sorting.

use scl_core::align;
use scl_core::prelude::*;
use std::f64::consts::PI;

/// A complex number as `(re, im)` (keeps the wire format trivial).
pub type Cplx = (f64, f64);

#[inline]
fn c_add(a: Cplx, b: Cplx) -> Cplx {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn c_sub(a: Cplx, b: Cplx) -> Cplx {
    (a.0 - b.0, a.1 - b.1)
}

#[inline]
fn c_mul(a: Cplx, b: Cplx) -> Cplx {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// `e^{-2πi k / n}` (forward transform twiddle).
fn twiddle(k: usize, n: usize) -> Cplx {
    let ang = -2.0 * PI * k as f64 / n as f64;
    (ang.cos(), ang.sin())
}

/// Bit-reversal permutation of a power-of-two-length slice.
pub fn bit_reverse<T: Clone>(x: &[T]) -> Vec<T> {
    let n = x.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    let bits = n.trailing_zeros();
    if bits == 0 {
        return x.to_vec();
    }
    (0..n)
        .map(|i| {
            let j = i.reverse_bits() >> (usize::BITS - bits);
            x[j].clone()
        })
        .collect()
}

/// The butterfly update of element with global index `g` at stage `s`
/// (`half = 2^s`), given its own value and its partner's.
#[inline]
fn butterfly(g: usize, half: usize, own: Cplx, partner: Cplx) -> Cplx {
    let j = g & (half - 1);
    let w = twiddle(j, 2 * half);
    if g & half == 0 {
        c_add(own, c_mul(w, partner))
    } else {
        c_sub(partner, c_mul(w, own))
    }
}

/// Sequential iterative radix-2 FFT (the baseline and the reference the
/// parallel version must match element-for-element).
pub fn fft_seq(input: &[Cplx]) -> Vec<Cplx> {
    let n = input.len();
    let mut x = bit_reverse(input);
    let mut half = 1usize;
    while half < n {
        let prev = x.clone();
        for (g, slot) in x.iter_mut().enumerate() {
            *slot = butterfly(g, half, prev[g], prev[g ^ half]);
        }
        half <<= 1;
    }
    x
}

/// Naive O(n²) DFT — the independent ground truth for tests.
pub fn dft_naive(input: &[Cplx]) -> Vec<Cplx> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = (0.0, 0.0);
            for (j, &v) in input.iter().enumerate() {
                acc = c_add(acc, c_mul(v, twiddle(k * j, n)));
            }
            acc
        })
        .collect()
}

/// SCL binary-exchange FFT on `p = 2^d` processors (`p` must divide `n`).
/// Returns the transform in natural frequency order; read `scl.makespan()`
/// for the predicted time.
pub fn fft_scl(scl: &mut Scl, input: &[Cplx], p: usize) -> Vec<Cplx> {
    let n = input.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    assert!(
        p.is_power_of_two(),
        "processor count must be a power of two, got {p}"
    );
    assert!(n >= p, "need at least one point per processor");
    scl.check_fits(p);
    scl.machine.barrier();

    let blk = n / p;
    // bit-reversal reorder, then scatter
    let reordered = bit_reverse(input);
    let da = scl.partition(Pattern::Block(p), &reordered);

    // local stages: partner index inside the block
    let mut da = scl.imap_costed(&da, |pid, part| {
        let mut x = part.clone();
        let base = pid * blk;
        let mut half = 1usize;
        let mut flops = 0u64;
        while half < blk {
            let prev = x.clone();
            for (l, slot) in x.iter_mut().enumerate() {
                let g = base + l;
                *slot = butterfly(g, half, prev[l], prev[l ^ half]);
                flops += 10;
            }
            half <<= 1;
        }
        (x, Work::flops(flops))
    });

    // exchange stages: partner block across cube dimension
    let mut half = blk;
    while half < n {
        let mask = half / blk; // which processor bit flips
        let partner_blocks = scl.fetch(move |i| i ^ mask, &da);
        let cfg = align(da, partner_blocks);
        da = scl.imap_costed(&cfg, move |pid, (own, partner)| {
            let base = pid * blk;
            let mut x = Vec::with_capacity(blk);
            for l in 0..blk {
                let g = base + l;
                x.push(butterfly(g, half, own[l], partner[l]));
            }
            (x, Work::flops(10 * blk as u64))
        });
        half <<= 1;
    }

    scl.gather(&da)
}

/// Inverse FFT via the conjugation trick (used by the round-trip tests).
pub fn ifft_seq(input: &[Cplx]) -> Vec<Cplx> {
    let conj: Vec<Cplx> = input.iter().map(|&(re, im)| (re, -im)).collect();
    let n = input.len() as f64;
    fft_seq(&conj)
        .iter()
        .map(|&(re, im)| (re / n, -im / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::uniform_keys;

    fn signal(n: usize, seed: u64) -> Vec<Cplx> {
        uniform_keys(2 * n, seed)
            .chunks(2)
            .map(|c| {
                (
                    (c[0] % 1000) as f64 / 500.0 - 1.0,
                    (c[1] % 1000) as f64 / 500.0 - 1.0,
                )
            })
            .collect()
    }

    fn close(a: &[Cplx], b: &[Cplx], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x.0 - y.0).abs() < tol && (x.1 - y.1).abs() < tol)
    }

    #[test]
    fn bit_reverse_involution() {
        let v: Vec<usize> = (0..16).collect();
        assert_eq!(bit_reverse(&bit_reverse(&v)), v);
        assert_eq!(bit_reverse(&[0, 1, 2, 3]), vec![0, 2, 1, 3]);
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let x = signal(n, n as u64);
            assert!(close(&fft_seq(&x), &dft_naive(&x), 1e-9), "n={n}");
        }
    }

    #[test]
    fn known_transform_of_impulse() {
        // FFT of a unit impulse is all ones
        let mut x = vec![(0.0, 0.0); 8];
        x[0] = (1.0, 0.0);
        let f = fft_seq(&x);
        assert!(f
            .iter()
            .all(|&(re, im)| (re - 1.0).abs() < 1e-12 && im.abs() < 1e-12));
    }

    #[test]
    fn inverse_round_trip() {
        let x = signal(64, 3);
        let back = ifft_seq(&fft_seq(&x));
        assert!(close(&back, &x, 1e-9));
    }

    #[test]
    fn scl_fft_matches_sequential() {
        let x = signal(256, 7);
        let seq = fft_seq(&x);
        for p in [1usize, 2, 4, 8, 16] {
            let mut scl = Scl::hypercube(p.max(1), CostModel::ap1000());
            let par = fft_scl(&mut scl, &x, p);
            assert!(close(&par, &seq, 1e-9), "p={p}");
        }
    }

    #[test]
    fn exchange_stage_count_is_log_p() {
        let x = signal(256, 9);
        let msgs = |p: usize| {
            let mut scl = Scl::hypercube(p, CostModel::ap1000());
            let _ = fft_scl(&mut scl, &x, p);
            scl.machine.metrics.messages
        };
        // each exchange stage is a p-message fetch permute: log2(p) stages
        assert_eq!(msgs(2), 2);
        assert_eq!(msgs(4), 2 * 4);
        assert_eq!(msgs(8), 3 * 8);
    }

    #[test]
    fn fft_speedup_sublinear() {
        let x = signal(4096, 2);
        let time = |p: usize| {
            let mut scl = Scl::hypercube(p, CostModel::ap1000());
            let _ = fft_scl(&mut scl, &x, p);
            scl.makespan().as_secs()
        };
        let t1 = time(1);
        let t16 = time(16);
        assert!(t16 < t1);
        assert!(t1 / t16 < 16.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = fft_seq(&signal(12, 1));
    }
}
