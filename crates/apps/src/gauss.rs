//! Gauss–Jordan elimination with partial pivoting (paper §3).
//!
//! The paper's program:
//!
//! ```text
//! gauss A p = iterFor p elimPivot DA
//!   where DA = partition [column_block p] A
//!         elimPivot i x = map (UPDATE i) (applybrdcast (PARTIALPIVOT i) i x)
//! ```
//!
//! The augmented matrix `[A | b]` is distributed **column-block** over the
//! processors; each of the `n` iterations selects the pivot row on the
//! processor owning column `i` (`PARTIALPIVOT`), broadcasts it together with
//! the pivot column, and every processor updates its local columns in
//! parallel (`UPDATE`). After `n` iterations `A` has been reduced to the
//! identity and the last column holds the solution.

use crate::seqkit::{gauss_update, partial_pivot};
use scl_core::prelude::*;

/// Sequential Gauss–Jordan with partial pivoting (the baseline).
///
/// # Panics
/// Panics on a singular system.
pub fn gauss_jordan_seq(a: &Matrix<f64>, b: &[f64]) -> Vec<f64> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "square systems only");
    assert_eq!(b.len(), n, "rhs length mismatch");
    // augmented matrix, column-major columns for locality with the
    // distributed version's arithmetic order
    let mut cols: Vec<Vec<f64>> = (0..n + 1)
        .map(|c| {
            if c < n {
                (0..n).map(|r| *a.get(r, c)).collect()
            } else {
                b.to_vec()
            }
        })
        .collect();
    for i in 0..n {
        let (prow, _) = partial_pivot(&cols[i], i);
        for col in cols.iter_mut() {
            col.swap(i, prow);
        }
        let pivot_col = cols[i].clone();
        for col in cols.iter_mut() {
            let _ = gauss_update(col, &pivot_col, i);
        }
    }
    cols[n].clone()
}

/// A processor's block of the augmented matrix: the columns it owns (by
/// global column index) stored as column vectors.
type ColBlock = Vec<(usize, Vec<f64>)>;

/// SCL Gauss–Jordan: solve `A x = b` on `p` processors of the context's
/// machine. Returns `x`; read `scl.makespan()` for the predicted time.
///
/// # Panics
/// Panics on non-square input, a singular system, or `p` exceeding the
/// machine size.
pub fn gauss_jordan_scl(scl: &mut Scl, a: &Matrix<f64>, b: &[f64], p: usize) -> Vec<f64> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "square systems only");
    assert_eq!(b.len(), n, "rhs length mismatch");
    scl.check_fits(p);
    scl.machine.barrier();

    // Distribute the n+1 augmented columns column-block over p processors.
    // (partition of column indices; the data is shipped with it)
    let col_ids: Vec<usize> = (0..n + 1).collect();
    let id_blocks = scl.partition(Pattern::Block(p), &col_ids);
    let da: ParArray<ColBlock> = id_blocks.map_into(|_, ids| {
        ids.into_iter()
            .map(|c| {
                let col: Vec<f64> = if c < n {
                    (0..n).map(|r| *a.get(r, c)).collect()
                } else {
                    b.to_vec()
                };
                (c, col)
            })
            .collect()
    });
    // charge the column payload scatter (the id partition above only
    // charged the index vector)
    let bytes_per_part = (n + 1).div_ceil(p) * n * 8;
    scl.machine.scatter(da.procs(), bytes_per_part);

    // iterFor n elimPivot
    let owner_of = move |c: usize| scl_core::owner_1d(Pattern::Block(p), n + 1, c);
    let solved = scl.iter_for(
        n,
        |scl, i, da: ParArray<ColBlock>| {
            // applybrdcast (PARTIALPIVOT i) (owner i) DA:
            // the owner of column i finds the pivot row and broadcasts
            // (pivot_row, column i's values)
            let cfg = scl.apply_brdcast_costed(
                |block: &ColBlock| {
                    let (_, col) = block
                        .iter()
                        .find(|(c, _)| *c == i)
                        .expect("owner block must contain column i");
                    let (prow, w) = partial_pivot(col, i);
                    ((prow, col.clone()), w)
                },
                owner_of(i),
                &da,
            );
            // map (UPDATE i): swap rows i/prow locally, then annihilate
            scl.map_costed(&cfg, |((prow, pivot_col), block)| {
                let mut pivot_col = pivot_col.clone();
                pivot_col.swap(i, *prow);
                let mut out = block.clone();
                let mut work = Work::moves(2 * out.len() as u64);
                for (_, col) in out.iter_mut() {
                    col.swap(i, *prow);
                    work += gauss_update(col, &pivot_col, i);
                }
                (out, work)
            })
        },
        da,
    );

    // The solution is the last augmented column; fetch it from its owner.
    let last_owner = owner_of(n);
    let x = solved
        .part(last_owner)
        .iter()
        .find(|(c, _)| *c == n)
        .unwrap()
        .1
        .clone();
    scl.machine.send(last_owner, 0, n * 8);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{diag_dominant_system, residual};

    #[test]
    fn seq_solves_identity() {
        let a = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = gauss_jordan_seq(&a, &b);
        assert_eq!(x, b);
    }

    #[test]
    fn seq_solves_known_system() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, -1.0]);
        let x = gauss_jordan_seq(&a, &[5.0, 1.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seq_random_systems_have_tiny_residual() {
        for n in [1, 2, 5, 12, 30] {
            let (a, b) = diag_dominant_system(n, n as u64);
            let x = gauss_jordan_seq(&a, &b);
            assert!(residual(&a, &x, &b) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn seq_pivoting_handles_zero_leading_entry() {
        // a11 = 0 forces a row swap
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = gauss_jordan_seq(&a, &[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn scl_matches_sequential_bitwise() {
        for (n, p) in [(6usize, 1usize), (6, 2), (6, 4), (13, 4), (20, 8)] {
            let (a, b) = diag_dominant_system(n, 77);
            let seq = gauss_jordan_seq(&a, &b);
            let mut scl = Scl::ap1000(p.max(1));
            let par = gauss_jordan_scl(&mut scl, &a, &b, p);
            // identical arithmetic order per column => bitwise equal
            assert_eq!(par, seq, "n={n} p={p}");
            assert!(scl.makespan() > Time::ZERO);
        }
    }

    #[test]
    fn scl_residual_small() {
        let (a, b) = diag_dominant_system(24, 5);
        let mut scl = Scl::ap1000(6);
        let x = gauss_jordan_scl(&mut scl, &a, &b, 6);
        assert!(residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn scl_charges_broadcasts_per_iteration() {
        let (a, b) = diag_dominant_system(10, 1);
        let mut scl = Scl::ap1000(4);
        let _ = gauss_jordan_scl(&mut scl, &a, &b, 4);
        // one applybrdcast per iteration
        assert_eq!(scl.machine.metrics.broadcasts, 10);
        assert!(scl.machine.metrics.flops > 0);
    }

    #[test]
    fn more_processors_do_not_slow_it_down() {
        let (a, b) = diag_dominant_system(48, 9);
        let time = |p: usize| {
            let mut scl = Scl::ap1000(p);
            let _ = gauss_jordan_scl(&mut scl, &a, &b, p);
            scl.makespan().as_secs()
        };
        let t1 = time(1);
        let t4 = time(4);
        assert!(t4 < t1, "t1={t1} t4={t4}");
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let a = Matrix::filled(2, 3, 1.0);
        let _ = gauss_jordan_seq(&a, &[1.0, 2.0]);
    }
}
