//! Distributed histogram — the irregular many-to-one workload.
//!
//! Each processor counts its local values into `buckets` bins, then the
//! partial counts travel to the processor that *owns* each bin range
//! (block distribution of bins over processors) via a total exchange; the
//! owners reduce their incoming partials and the result is gathered. This
//! is the paper's motivating case for the irregular `send` family: the
//! destination of a datum is a function of its *value*, not its index.

use scl_core::block_ranges;
use scl_core::prelude::*;

/// Sequential baseline.
pub fn histogram_seq(values: &[u64], buckets: usize) -> Vec<u64> {
    let mut h = vec![0u64; buckets];
    for &v in values {
        h[(v as usize) % buckets] += 1;
    }
    h
}

/// The distributed phase of the histogram as a first-class plan:
/// count locally, slice the local histograms into per-owner fragments,
/// total-exchange them, and reduce at each owner. Input is the partitioned
/// values; output is one `Vec<u64>` of owned-bucket counts per processor.
pub fn histogram_plan(
    buckets: usize,
    p: usize,
) -> Skel<'static, ParArray<Vec<u64>>, ParArray<Vec<u64>>> {
    assert!(buckets > 0, "need at least one bucket");
    let ranges = block_ranges(buckets, p);

    // local counting
    let count = Skel::map_costed(move |part: &Vec<u64>| {
        let mut h = vec![0u64; buckets];
        for &v in part {
            h[(v as usize) % buckets] += 1;
        }
        (h, Work::cmps(part.len() as u64))
    });

    // slice each local histogram into per-owner fragments
    let fragment = Skel::map_costed(move |h: &Vec<u64>| {
        let frags: Vec<Vec<u64>> = ranges.iter().map(|r| h[r.clone()].to_vec()).collect();
        (frags, Work::moves(h.len() as u64))
    });

    // each owner sums the p incoming partials for its bin range
    let reduce = Skel::map_costed(|partials: &Vec<Vec<u64>>| {
        let width = partials.first().map(Vec::len).unwrap_or(0);
        let mut acc = vec![0u64; width];
        for part in partials {
            for (a, x) in acc.iter_mut().zip(part) {
                *a += x;
            }
        }
        let flops = (width * partials.len()) as u64;
        (acc, Work::flops(flops))
    });

    count
        .then(fragment)
        .then(Skel::total_exchange())
        .then(reduce)
}

/// SCL histogram on `p` processors. `values` are binned by `value %
/// buckets`. Returns counts per bucket; read `scl.makespan()` for the
/// predicted time. Configure/partition eagerly, then run
/// [`histogram_plan`].
pub fn histogram_scl(scl: &mut Scl, values: &[u64], buckets: usize, p: usize) -> Vec<u64> {
    assert!(buckets > 0, "need at least one bucket");
    scl.check_fits(p);
    scl.machine.barrier();
    let da = scl.partition(Pattern::Block(p), values);
    let reduced = histogram_plan(buckets, p).run(scl, da);
    scl.gather_owned(reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::uniform_keys;

    fn values(n: usize, seed: u64) -> Vec<u64> {
        uniform_keys(n, seed)
            .into_iter()
            .map(|x| x as u64)
            .collect()
    }

    #[test]
    fn matches_sequential() {
        let v = values(5000, 3);
        for (buckets, p) in [(16usize, 4usize), (10, 3), (64, 8), (5, 8), (1, 2)] {
            let expect = histogram_seq(&v, buckets);
            let mut scl = Scl::ap1000(p);
            let got = histogram_scl(&mut scl, &v, buckets, p);
            assert_eq!(got, expect, "buckets={buckets} p={p}");
        }
    }

    #[test]
    fn plan_fuses_count_and_fragment_into_one_segment() {
        let plan = histogram_plan(16, 4);
        assert!(plan.fusable());
        // count + fragment fuse back-to-back; the exchange is the barrier
        assert_eq!(
            plan.fused_stages().unwrap(),
            vec![
                ("map_costed", false),
                ("map_costed", false),
                ("total_exchange", true),
                ("map_costed", false),
            ]
        );
    }

    #[test]
    fn run_fused_matches_eager_and_seq() {
        let v = values(3000, 17);
        for (buckets, p) in [(16usize, 4usize), (10, 3), (5, 8)] {
            let expect = histogram_seq(&v, buckets);
            let mut scl = Scl::ap1000(p).with_policy(ExecPolicy::Threads(4));
            let da = scl.partition(Pattern::Block(p), &v);
            let reduced = scl.run_fused(&histogram_plan(buckets, p), da).unwrap();
            let got = scl.gather(&reduced);
            assert_eq!(got, expect, "buckets={buckets} p={p}");
        }
    }

    #[test]
    fn counts_sum_to_n() {
        let v = values(1234, 9);
        let mut scl = Scl::ap1000(4);
        let h = histogram_scl(&mut scl, &v, 32, 4);
        assert_eq!(h.iter().sum::<u64>(), 1234);
    }

    #[test]
    fn empty_input() {
        let mut scl = Scl::ap1000(4);
        let h = histogram_scl(&mut scl, &[], 8, 4);
        assert_eq!(h, vec![0u64; 8]);
    }

    #[test]
    fn more_buckets_than_needed() {
        let mut scl = Scl::ap1000(2);
        let h = histogram_scl(&mut scl, &[1, 1, 1], 100, 2);
        assert_eq!(h[1], 3);
        assert_eq!(h.iter().sum::<u64>(), 3);
    }

    #[test]
    fn charges_exchange_traffic() {
        let v = values(1000, 4);
        let mut scl = Scl::ap1000(4);
        let _ = histogram_scl(&mut scl, &v, 16, 4);
        assert_eq!(scl.machine.metrics.exchanges, 1);
        assert!(scl.makespan() > Time::ZERO);
    }
}
