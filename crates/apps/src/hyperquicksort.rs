//! Hyperquicksort — the paper's flagship example (§3 and §5).
//!
//! Two formulations are provided, exactly mirroring the paper:
//!
//! * [`hyperquicksort_nested`] — the §3 recursive divide-and-conquer
//!   program: `spreadPivot`, `exPart`, `mergeAndDiv`, then `combine ∘ map
//!   hsort ∘ split` over dynamically created processor sub-groups (nested
//!   parallelism on sub-hypercubes).
//! * [`hyperquicksort_flat`] — the §5 hand-flattened iterative SPMD program
//!   (`iterFor d step`), the version the paper actually measured on the
//!   AP1000 for Table 1 / Figure 3.
//!
//! Both compose the same sequential procedures (`SEQ_QUICKSORT`,
//! `MIDVALUE`, `SPLIT`, `MERGE` from [`crate::seqkit`]) with SCL skeletons,
//! and both charge the simulated machine, so `scl.makespan()` after a run
//! is the predicted parallel runtime.

use crate::seqkit::{merge_sorted, midvalue, seq_quicksort, split_sorted};
use scl_core::prelude::*;
use scl_core::{align, unalign};

/// Local sort step: the paper's `map SEQ_QUICKSORT ∘ partition block p`.
fn distribute_and_sort(scl: &mut Scl, data: &[i64], p: usize) -> ParArray<Vec<i64>> {
    let da = scl.partition(Pattern::Block(p), data);
    scl.map_costed(&da, |part| {
        let mut v = part.clone();
        let w = seq_quicksort(&mut v);
        (v, w)
    })
}

/// `MIDVALUE` lifted to possibly-empty parts (an empty part contributes a
/// neutral pivot — its group's data is all elsewhere).
#[allow(clippy::ptr_arg)] // must be Fn(&Vec<i64>) to pass to map_costed directly
fn part_midvalue(v: &Vec<i64>) -> (i64, Work) {
    if v.is_empty() {
        (0, Work::cmps(1))
    } else {
        midvalue(v)
    }
}

/// One iteration of the flattened program: groups of size `g = 2^dd`
/// pivot / split / exchange-partner / merge. Exposed for the stage-by-stage
/// trace tests (the paper's Figure 2).
pub fn hqs_step(scl: &mut Scl, da: ParArray<Vec<i64>>, g: usize) -> ParArray<Vec<i64>> {
    debug_assert!(g >= 2 && g.is_power_of_two());
    let half = g / 2;

    // wpivot: every part computes its median locally (cheap), then fetches
    // the *group leader's* median — the paper's
    //   pivots = SPMD [⟨fetch (mf d), MIDVALUE⟩],  mf d i = ⌊i/d⌋·d
    let medians = scl.map_costed(&da, part_midvalue);
    let pivots = scl.fetch(move |i| (i / g) * g, &medians);

    // exPart: SPLIT local data around the pivot; the lower half of each
    // group keeps the low portion and sends the high portion to its
    // partner (i xor half), and vice versa.
    let cfg = align(pivots, da);
    let splits = scl.imap_costed(&cfg, move |i, (pivot, v)| {
        let (lo, hi, w) = split_sorted(v, *pivot);
        if (i / half).is_multiple_of(2) {
            ((lo, hi), w) // lower half keeps low
        } else {
            ((hi, lo), w) // upper half keeps high
        }
    });
    let (keeps, gives) = unalign(splits);
    let received = scl.fetch(move |i| i ^ half, &gives);

    // merge: MERGE the kept portion with the received portion.
    let merged = align(keeps, received);
    scl.map_costed(&merged, |(a, b)| merge_sorted(a, b))
}

/// The §5 flattened hyperquicksort: sort `data` on a `2^dim`-processor
/// hypercube pattern. Returns the globally sorted vector; read
/// `scl.makespan()` afterwards for the predicted runtime.
///
/// # Panics
/// Panics if the machine has fewer than `2^dim` processors.
pub fn hyperquicksort_flat(scl: &mut Scl, data: &[i64], dim: u32) -> Vec<i64> {
    let p = 1usize << dim;
    scl.machine.barrier(); // program start: everyone synchronised
    let da = distribute_and_sort(scl, data, p);
    let sorted = scl.iter_for(
        dim as usize,
        |scl, i, da| {
            let g = 1usize << (dim as usize - i); // group size shrinks each round
            hqs_step(scl, da, g)
        },
        da,
    );
    scl.gather(&sorted)
}

/// The §3 nested-parallel hyperquicksort: the recursive `hsort` over
/// processor sub-groups created with `split`, combined back with
/// `combine`. Semantically identical to the flattened version.
pub fn hyperquicksort_nested(scl: &mut Scl, data: &[i64], dim: u32) -> Vec<i64> {
    let p = 1usize << dim;
    scl.machine.barrier();
    let da = distribute_and_sort(scl, data, p);
    let sorted = hsort(scl, da);
    scl.gather(&sorted)
}

/// The recursive kernel: pivot broadcast, partner exchange, merge, then
/// recurse into the two sub-hypercubes.
fn hsort(scl: &mut Scl, da: ParArray<Vec<i64>>) -> ParArray<Vec<i64>> {
    let g = da.len();
    if g == 1 {
        return da;
    }
    assert!(
        g.is_power_of_two(),
        "hsort needs a power-of-two group, got {g}"
    );
    let half = g / 2;

    // spreadPivot = applybrdcast MIDVALUE 0
    let cfg = scl.apply_brdcast_costed(part_midvalue, 0, &da);

    // exPart: split by the broadcast pivot, exchange with partner
    let splits = scl.imap_costed(&cfg, move |i, (pivot, v)| {
        let (lo, hi, w) = split_sorted(v, *pivot);
        if i < half {
            ((lo, hi), w)
        } else {
            ((hi, lo), w)
        }
    });
    let (keeps, gives) = unalign(splits);
    let received = scl.fetch(move |i| i ^ half, &gives);

    // mergeAndDiv: MERGE, then divide into sub-cubes
    let merged_cfg = align(keeps, received);
    let merged = scl.map_costed(&merged_cfg, |(a, b)| merge_sorted(a, b));

    let subcubes = scl.split(Pattern::Block(2), merged);
    let solved = scl.map_groups(subcubes, &mut |scl, sub| hsort(scl, sub));
    scl.combine(solved)
}

/// A third formulation: the same algorithm expressed through the *generic*
/// divide-and-conquer skeleton [`Scl::dc`] — pivot/exchange/merge as the
/// pre-division `step`, identity base case, two branches. Demonstrates
/// that the paper's recursive program is an instance of a reusable
/// computational skeleton rather than bespoke control flow.
pub fn hyperquicksort_dc(scl: &mut Scl, data: &[i64], dim: u32) -> Vec<i64> {
    let p = 1usize << dim;
    scl.machine.barrier();
    let da = distribute_and_sort(scl, data, p);
    let sorted = scl.dc(da, 2, &|g| g.len() == 1, &mut |_, g| g, &mut |scl, g| {
        // one pivot/split/exchange/merge round over the current group
        let half = g.len() / 2;
        let cfg = scl.apply_brdcast_costed(part_midvalue, 0, &g);
        let splits = scl.imap_costed(&cfg, move |i, (pivot, v)| {
            let (lo, hi, w) = split_sorted(v, *pivot);
            if i < half {
                ((lo, hi), w)
            } else {
                ((hi, lo), w)
            }
        });
        let (keeps, gives) = unalign(splits);
        let received = scl.fetch(move |i| i ^ half, &gives);
        let merged = align(keeps, received);
        scl.map_costed(&merged, |(a, b)| merge_sorted(a, b))
    });
    scl.gather(&sorted)
}

/// Sequential baseline: one processor, plain quicksort. Returns the sorted
/// data and the work performed (used to compute speedups against the same
/// cost model).
pub fn sequential_sort(data: &[i64]) -> (Vec<i64>, Work) {
    let mut v = data.to_vec();
    let w = seq_quicksort(&mut v);
    (v, w)
}

/// Cross-part sortedness: every element of part `i` ≤ every element of
/// part `i+1`, and each part locally sorted — the invariant hyperquicksort
/// maintains (the paper's Figure 2(e)/(g) states).
pub fn globally_sorted(da: &ParArray<Vec<i64>>) -> bool {
    let mut prev_max: Option<i64> = None;
    for part in da.parts() {
        if !crate::seqkit::is_sorted(part) {
            return false;
        }
        if let (Some(pm), Some(first)) = (prev_max, part.first()) {
            if pm > *first {
                return false;
            }
        }
        if let Some(last) = part.last() {
            prev_max = Some(*last);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{few_unique_keys, reverse_keys, sorted_keys, uniform_keys};

    fn check_sorts(data: &[i64], dim: u32) {
        let mut expect = data.to_vec();
        expect.sort_unstable();

        let mut scl = Scl::hypercube(1 << dim, CostModel::ap1000());
        let flat = hyperquicksort_flat(&mut scl, data, dim);
        assert_eq!(flat, expect, "flat failed (dim={dim}, n={})", data.len());
        assert!(scl.makespan() > Time::ZERO);

        let mut scl = Scl::hypercube(1 << dim, CostModel::ap1000());
        let nested = hyperquicksort_nested(&mut scl, data, dim);
        assert_eq!(
            nested,
            expect,
            "nested failed (dim={dim}, n={})",
            data.len()
        );
    }

    #[test]
    fn sorts_uniform_inputs() {
        for dim in 0..=4 {
            check_sorts(&uniform_keys(500, 42), dim);
        }
    }

    #[test]
    fn sorts_adversarial_inputs() {
        check_sorts(&sorted_keys(300), 3);
        check_sorts(&reverse_keys(300), 3);
        check_sorts(&few_unique_keys(400, 3, 7), 3);
        check_sorts(&[], 2);
        check_sorts(&[5], 2);
        check_sorts(&uniform_keys(7, 1), 3); // fewer keys than procs
    }

    #[test]
    fn dc_formulation_agrees_with_both() {
        let data = uniform_keys(800, 17);
        let mut expect = data.clone();
        expect.sort_unstable();
        for dim in 0..=3u32 {
            let mut s = Scl::hypercube(1 << dim, CostModel::ap1000());
            assert_eq!(hyperquicksort_dc(&mut s, &data, dim), expect, "dim={dim}");
        }
        // identical virtual time to the hand-written nested recursion
        let mut s1 = Scl::hypercube(8, CostModel::ap1000());
        let _ = hyperquicksort_nested(&mut s1, &data, 3);
        let mut s2 = Scl::hypercube(8, CostModel::ap1000());
        let _ = hyperquicksort_dc(&mut s2, &data, 3);
        assert_eq!(s1.makespan(), s2.makespan());
        assert_eq!(s1.machine.metrics, s2.machine.metrics);
    }

    #[test]
    fn flat_and_nested_charge_comparable_time() {
        let data = uniform_keys(4000, 11);
        let mut s1 = Scl::hypercube(8, CostModel::ap1000());
        let _ = hyperquicksort_flat(&mut s1, &data, 3);
        let mut s2 = Scl::hypercube(8, CostModel::ap1000());
        let _ = hyperquicksort_nested(&mut s2, &data, 3);
        let (t1, t2) = (s1.makespan().as_secs(), s2.makespan().as_secs());
        // same algorithm, same kernels: within 2x of each other
        assert!(t1 / t2 < 2.0 && t2 / t1 < 2.0, "flat {t1} vs nested {t2}");
    }

    #[test]
    fn step_maintains_figure2_invariants() {
        // The paper's Figure 2 walk-through: on a 2-dim hypercube (4 procs),
        // after the first step the lower sub-cube holds values <= pivot and
        // the upper sub-cube values > pivot; after the second, the array is
        // globally sorted.
        let data = uniform_keys(64, 99);
        let mut scl = Scl::hypercube(4, CostModel::ap1000());
        let da = distribute_and_sort(&mut scl, &data, 4);

        let after1 = hqs_step(&mut scl, da, 4);
        // pivot was proc 0's median; check the cube split invariant
        let lower_max = after1.parts()[..2].iter().flatten().copied().max();
        let upper_min = after1.parts()[2..].iter().flatten().copied().min();
        if let (Some(lm), Some(um)) = (lower_max, upper_min) {
            assert!(lm <= um, "cube split violated: {lm} > {um}");
        }
        for part in after1.parts() {
            assert!(crate::seqkit::is_sorted(part));
        }

        let after2 = hqs_step(&mut scl, after1, 2);
        assert!(
            globally_sorted(&after2),
            "not globally sorted after d steps"
        );
    }

    #[test]
    fn speedup_is_positive_and_sublinear() {
        // The qualitative content of Figure 3: more processors help, but
        // communication keeps the speedup below linear.
        let data = uniform_keys(20_000, 5);
        let mut times = vec![];
        for dim in [0u32, 2, 4] {
            let mut scl = Scl::hypercube(1 << dim, CostModel::ap1000());
            let _ = hyperquicksort_flat(&mut scl, &data, dim);
            times.push(scl.makespan().as_secs());
        }
        let (t1, t4, t16) = (times[0], times[1], times[2]);
        assert!(t4 < t1, "4 procs should beat 1 ({t4} vs {t1})");
        assert!(t16 < t4, "16 procs should beat 4 ({t16} vs {t4})");
        let speedup16 = t1 / t16;
        assert!(
            speedup16 > 2.0,
            "some real speedup expected, got {speedup16}"
        );
        assert!(
            speedup16 < 16.0,
            "speedup must be sublinear, got {speedup16}"
        );
    }

    #[test]
    fn metrics_show_expected_structure() {
        let data = uniform_keys(1000, 3);
        let mut scl = Scl::hypercube(8, CostModel::ap1000());
        let _ = hyperquicksort_flat(&mut scl, &data, 3);
        let m = &scl.machine.metrics;
        // d=3 rounds, each: median fetch + give fetch => permutes; plus
        // scatter + gather collectives
        assert!(m.messages > 0);
        assert!(m.gathers >= 2, "scatter + gather");
        assert!(m.cmps > 0 && m.moves > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let data = uniform_keys(2000, 8);
        let run = || {
            let mut scl = Scl::hypercube(8, CostModel::ap1000());
            let out = hyperquicksort_flat(&mut scl, &data, 3);
            (out, scl.makespan().as_secs(), scl.machine.metrics.messages)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn threaded_host_execution_matches() {
        let data = uniform_keys(3000, 13);
        let mut seq_ctx = Scl::hypercube(8, CostModel::ap1000());
        let a = hyperquicksort_flat(&mut seq_ctx, &data, 3);
        let mut par_ctx =
            Scl::hypercube(8, CostModel::ap1000()).with_policy(ExecPolicy::Threads(4));
        let b = hyperquicksort_flat(&mut par_ctx, &data, 3);
        assert_eq!(a, b);
        // virtual time identical regardless of host threading
        assert_eq!(seq_ctx.makespan(), par_ctx.makespan());
    }

    #[test]
    fn sequential_baseline_agrees() {
        let data = uniform_keys(1234, 21);
        let (sorted, w) = sequential_sort(&data);
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        assert!(w.cmps > 1234);
    }
}
