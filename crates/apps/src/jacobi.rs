//! Jacobi iteration on a 1-D grid (heat diffusion) under `iterUntil`.
//!
//! Exercises the skeletons the other applications don't: boundary-filled
//! [`Scl::shift`] halo exchange, convergence-driven [`Scl::iter_until`],
//! and a global `fold(max)` residual reduction every sweep — the standard
//! shape of every stencil code written in a coordination language.
//!
//! The update is `u'[i] = (u[i-1] + u[i+1]) / 2` with fixed (Dirichlet)
//! boundary values; the iteration stops when the max pointwise change
//! drops below `tol` or after `max_iters` sweeps.

use scl_core::prelude::*;
use scl_core::{align3, block_ranges, unalign};

/// Result of a Jacobi run.
#[derive(Debug, Clone, PartialEq)]
pub struct JacobiResult {
    /// Final field values.
    pub u: Vec<f64>,
    /// Sweeps actually performed.
    pub iterations: usize,
    /// Final max pointwise change.
    pub residual: f64,
}

/// Sequential baseline, identical arithmetic.
pub fn jacobi_seq(u0: &[f64], tol: f64, max_iters: usize) -> JacobiResult {
    let n = u0.len();
    let mut u = u0.to_vec();
    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    while iterations < max_iters && residual > tol {
        let mut next = u.clone();
        let mut diff = 0.0f64;
        for i in 1..n.saturating_sub(1) {
            next[i] = 0.5 * (u[i - 1] + u[i + 1]);
            diff = diff.max((next[i] - u[i]).abs());
        }
        residual = if n > 2 { diff } else { 0.0 };
        u = next;
        iterations += 1;
    }
    JacobiResult {
        u,
        iterations,
        residual,
    }
}

/// The iteration state a Jacobi plan threads: the distributed field, the
/// sweep count, and the latest residual.
pub type JacobiState = (ParArray<Vec<f64>>, usize, f64);

/// The convergence loop as a first-class plan: a
/// [`Skel::iter_until_fused`] whose body is one relaxation sweep (halo
/// exchange via `shift`, local update, global `fold(max)` residual). `n` is
/// the global field length, `starts` the global offset of each part.
///
/// The sweep **double-buffers** through the context's recycled-buffer pool:
/// each part writes its new values into a buffer from [`Scl::take_buf`] and
/// recycles its spent input with [`Scl::recycle_buf`], so after the first
/// sweep warms the pool the loop performs no per-element heap allocation —
/// the owned halo shift moves the boundary values and
/// [`Scl::imap_costed_owned`] hands each part to the kernel by value.
///
/// The whole loop is a single fusion *barrier* (every sweep needs the halo
/// exchange), so under [`Scl::run_fused`] the plan composes with
/// neighbouring fused stages and oversized configurations error instead of
/// panicking; the body itself still runs through the eager skeletons.
pub fn jacobi_plan(
    n: usize,
    starts: Vec<usize>,
    tol: f64,
    max_iters: usize,
) -> Skel<'static, JacobiState, JacobiState> {
    Skel::iter_until_fused(
        move |scl, (da, iters, _): JacobiState| {
            // halo exchange: my left halo is my left neighbour's last
            // element; my right halo is my right neighbour's first.
            let lasts = scl.map(&da, |v: &Vec<f64>| v.last().copied());
            let firsts = scl.map(&da, |v: &Vec<f64>| v.first().copied());
            let left_halo = scl.shift_owned(1, lasts, &None);
            let right_halo = scl.shift_owned(-1, firsts, &None);

            // one write buffer per part, recycled sweep over sweep
            let spares: Vec<Vec<f64>> = da.parts().iter().map(|v| scl.take_buf(v.len())).collect();
            let spares = ParArray::like(&da, spares);

            // local sweep, skipping global boundary cells
            let cfg = align(align3(left_halo, right_halo, da), spares);
            let starts = starts.clone();
            let swept = scl.imap_costed_owned(cfg, move |part_idx, ((lh, rh, v), mut next)| {
                let base = starts[part_idx];
                let m = v.len();
                next.extend_from_slice(&v); // one memcpy into the recycled buffer
                let mut diff = 0.0f64;
                for i in 0..m {
                    let g = base + i;
                    if g == 0 || g == n - 1 {
                        continue; // fixed boundary
                    }
                    let left = if i == 0 {
                        lh.expect("interior cell needs left halo")
                    } else {
                        v[i - 1]
                    };
                    let right = if i + 1 == m {
                        rh.expect("interior cell needs right halo")
                    } else {
                        v[i + 1]
                    };
                    next[i] = 0.5 * (left + right);
                    diff = diff.max((next[i] - v[i]).abs());
                }
                (((next, diff), v), Work::flops(2 * m as u64))
            });
            let (next_diff, olds) = unalign(swept);
            let (next, diffs) = unalign(next_diff);
            for spent in olds.into_parts() {
                scl.recycle_buf(spent);
            }
            let residual = if n > 2 {
                scl.fold(&diffs, |a, b| a.max(*b))
            } else {
                0.0
            };
            (next, iters + 1, residual)
        },
        |_, s| s,
        move |(_, iters, res): &JacobiState| *iters >= max_iters || *res <= tol,
    )
}

/// SCL Jacobi on `p` processors (block distribution + shift-based halo
/// exchange). Bitwise-identical to [`jacobi_seq`] given the same inputs.
/// Configure/partition eagerly, then run [`jacobi_plan`].
pub fn jacobi_scl(scl: &mut Scl, u0: &[f64], p: usize, tol: f64, max_iters: usize) -> JacobiResult {
    let n = u0.len();
    scl.check_fits(p);
    scl.machine.barrier();
    let da = scl.partition(Pattern::Block(p), u0);
    let starts: Vec<usize> = block_ranges(n, p).iter().map(|r| r.start).collect();

    let plan = jacobi_plan(n, starts, tol, max_iters);
    let (u, iterations, residual) = plan.run(scl, (da, 0usize, f64::INFINITY));

    JacobiResult {
        u: scl.gather_owned(u),
        iterations,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        // boundary 0 and 100; interior zeroed — classic heat rod
        let mut v = vec![0.0; n];
        if n > 1 {
            v[n - 1] = 100.0;
        }
        v
    }

    #[test]
    fn seq_converges_to_linear_profile() {
        let r = jacobi_seq(&ramp(32), 1e-8, 100_000);
        assert!(r.residual <= 1e-8);
        // steady state of the discrete Laplace equation is a straight line
        for i in 0..32 {
            let expect = 100.0 * i as f64 / 31.0;
            assert!(
                (r.u[i] - expect).abs() < 1e-4,
                "u[{i}]={} vs {expect}",
                r.u[i]
            );
        }
    }

    #[test]
    fn scl_matches_seq_bitwise() {
        for p in [1, 2, 3, 4, 8] {
            let u0 = ramp(40);
            let seq = jacobi_seq(&u0, 1e-6, 500);
            let mut scl = Scl::ap1000(p);
            let par = jacobi_scl(&mut scl, &u0, p, 1e-6, 500);
            assert_eq!(par.u, seq.u, "p={p}");
            assert_eq!(par.iterations, seq.iterations, "p={p}");
            assert_eq!(par.residual, seq.residual, "p={p}");
        }
    }

    #[test]
    fn plan_is_fusable_and_run_fused_matches_seq() {
        let u0 = ramp(40);
        let n = u0.len();
        for p in [2usize, 4] {
            let starts: Vec<usize> = block_ranges(n, p).iter().map(|r| r.start).collect();
            let plan = jacobi_plan(n, starts, 1e-6, 500);
            assert!(plan.fusable());

            let seq = jacobi_seq(&u0, 1e-6, 500);
            let mut scl = Scl::ap1000(p);
            let da = scl.partition(Pattern::Block(p), &u0);
            let (u, iterations, residual) =
                scl.run_fused(&plan, (da, 0usize, f64::INFINITY)).unwrap();
            assert_eq!(scl.gather(&u), seq.u, "p={p}");
            assert_eq!(iterations, seq.iterations, "p={p}");
            assert_eq!(residual, seq.residual, "p={p}");
        }
    }

    #[test]
    fn respects_max_iters() {
        let u0 = ramp(64);
        let mut scl = Scl::ap1000(4);
        let r = jacobi_scl(&mut scl, &u0, 4, 0.0, 7);
        assert_eq!(r.iterations, 7);
        assert!(r.residual > 0.0);
    }

    #[test]
    fn tiny_fields_are_fixed_points() {
        for n in [0usize, 1, 2] {
            let u0 = ramp(n);
            let mut scl = Scl::ap1000(2);
            let r = jacobi_scl(&mut scl, &u0, 2, 1e-9, 100);
            assert_eq!(r.u, u0, "n={n}");
            assert_eq!(r.iterations, 1); // one sweep discovers residual 0
        }
    }

    #[test]
    fn sweep_buffers_recycle_through_the_pool() {
        let u0 = ramp(64);
        let mut scl = Scl::ap1000(4);
        let _ = jacobi_scl(&mut scl, &u0, 4, 0.0, 10);
        // steady state: each sweep takes p buffers and returns p — after
        // the run the spent field's buffers sit parked for the next run
        assert_eq!(scl.pooled_buffers(), 4);
        let before = scl.pooled_buffers();
        let _ = jacobi_scl(&mut scl, &u0, 4, 0.0, 10);
        assert_eq!(scl.pooled_buffers(), before, "reruns reuse, not grow");
        scl.clear_buffers();
        assert_eq!(scl.pooled_buffers(), 0);
    }

    #[test]
    fn charges_halo_traffic() {
        let u0 = ramp(64);
        let mut scl = Scl::ap1000(4);
        let _ = jacobi_scl(&mut scl, &u0, 4, 0.0, 5);
        // two shifts per sweep, 5 sweeps
        assert!(scl.machine.metrics.messages >= 5 * 2 * 3);
        assert!(scl.machine.metrics.reductions >= 5);
    }
}
