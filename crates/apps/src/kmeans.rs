//! K-means clustering (Lloyd's algorithm) — `iterUntil` with broadcast
//! centroids and a global reduction of partial sums.
//!
//! Structure per sweep: `brdcast` the centroids to every part, locally
//! assign points and accumulate per-cluster sums (`map_costed`), reduce
//! the partial sums with `fold`, recompute centroids, repeat until no
//! assignment changes (or `max_iters`). This is the canonical
//! "data-parallel iteration with small global state" shape that the
//! paper's `iterUntil` skeleton exists for.

use crate::workloads;
use scl_core::prelude::*;

/// Per-cluster partial statistics: sum of coordinates and count.
type Partial = Vec<([f64; 2], u64)>;

/// Result of a K-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Final centroids, `k` of them.
    pub centroids: Vec<[f64; 2]>,
    /// Cluster index per input point.
    pub assignment: Vec<usize>,
    /// Sweeps performed.
    pub iterations: usize,
}

fn dist2(a: [f64; 2], b: [f64; 2]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    dx * dx + dy * dy
}

fn nearest(p: [f64; 2], centroids: &[[f64; 2]]) -> usize {
    let mut best = 0;
    let mut bd = f64::INFINITY;
    for (c, &cen) in centroids.iter().enumerate() {
        let d = dist2(p, cen);
        if d < bd {
            bd = d;
            best = c;
        }
    }
    best
}

fn merge_partials(a: &Partial, b: &Partial) -> Partial {
    a.iter()
        .zip(b)
        .map(|((sa, ca), (sb, cb))| ([sa[0] + sb[0], sa[1] + sb[1]], ca + cb))
        .collect()
}

/// Sequential Lloyd's algorithm baseline.
pub fn kmeans_seq(points: &[[f64; 2]], init: &[[f64; 2]], max_iters: usize) -> KmeansResult {
    let k = init.len();
    let mut centroids = init.to_vec();
    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;
    loop {
        let mut changed = false;
        let mut sums: Partial = vec![([0.0; 2], 0); k];
        for (i, p) in points.iter().enumerate() {
            let c = nearest(*p, &centroids);
            if assignment[i] != c {
                changed = true;
            }
            assignment[i] = c;
            sums[c].0[0] += p[0];
            sums[c].0[1] += p[1];
            sums[c].1 += 1;
        }
        for c in 0..k {
            if sums[c].1 > 0 {
                centroids[c] = [
                    sums[c].0[0] / sums[c].1 as f64,
                    sums[c].0[1] / sums[c].1 as f64,
                ];
            }
        }
        iterations += 1;
        if !changed || iterations >= max_iters {
            break;
        }
    }
    KmeansResult {
        centroids,
        assignment,
        iterations,
    }
}

/// SCL K-means on `p` processors.
pub fn kmeans_scl(
    scl: &mut Scl,
    points: &[[f64; 2]],
    init: &[[f64; 2]],
    p: usize,
    max_iters: usize,
) -> KmeansResult {
    let k = init.len();
    assert!(k > 0, "need at least one centroid");
    scl.check_fits(p);
    scl.machine.barrier();

    // [f64; 2] has no Bytes impl; ship coordinates as flat pairs
    let flat: Vec<(f64, f64)> = points.iter().map(|q| (q[0], q[1])).collect();
    let da = scl.partition(Pattern::Block(p), &flat);

    type State = (Vec<[f64; 2]>, Vec<Vec<usize>>, bool, usize);
    let (centroids, local_assign, _, iterations) = scl.iter_until(
        |scl, (centroids, prev_assign, _, iters): State| {
            // broadcast the k centroids (flattened for wire sizing)
            let wire: Vec<(f64, f64)> = centroids.iter().map(|c| (c[0], c[1])).collect();
            let cfg = scl.brdcast(&wire, &da);

            // local assignment + partial sums
            let swept = scl.imap_costed(&cfg, |part_idx, (wire, pts)| {
                let cents: Vec<[f64; 2]> = wire.iter().map(|&(x, y)| [x, y]).collect();
                let mut sums: Partial = vec![([0.0; 2], 0); k];
                let mut assign = Vec::with_capacity(pts.len());
                let mut changed = false;
                for (i, &(x, y)) in pts.iter().enumerate() {
                    let c = nearest([x, y], &cents);
                    if prev_assign[part_idx].get(i) != Some(&c) {
                        changed = true;
                    }
                    assign.push(c);
                    sums[c].0[0] += x;
                    sums[c].0[1] += y;
                    sums[c].1 += 1;
                }
                let flops = (pts.len() * k * 4) as u64;
                ((sums, assign, changed), Work::flops(flops))
            });

            // global reduction of the partials (fold over a wire-friendly
            // flattened representation)
            let partials = swept.map_parts(|(sums, _, _)| {
                let flat: Vec<(f64, f64, u64)> =
                    sums.iter().map(|(s, c)| (s[0], s[1], *c)).collect();
                flat
            });
            let total = scl.fold(&partials, |a, b| {
                let pa: Partial = a.iter().map(|&(x, y, c)| ([x, y], c)).collect();
                let pb: Partial = b.iter().map(|&(x, y, c)| ([x, y], c)).collect();
                merge_partials(&pa, &pb)
                    .iter()
                    .map(|(s, c)| (s[0], s[1], *c))
                    .collect()
            });

            // new centroids; empty clusters keep their position
            let mut next = centroids.clone();
            for (c, &(sx, sy, cnt)) in total.iter().enumerate() {
                if cnt > 0 {
                    next[c] = [sx / cnt as f64, sy / cnt as f64];
                }
            }
            let assigns: Vec<Vec<usize>> =
                swept.parts().iter().map(|(_, a, _)| a.clone()).collect();
            let changed = swept.parts().iter().any(|(_, _, ch)| *ch);
            (next, assigns, changed, iters + 1)
        },
        |_, s| s,
        |(_, _, changed, iters): &State| (!changed && *iters > 0) || *iters >= max_iters,
        (init.to_vec(), vec![Vec::new(); p], true, 0usize),
    );

    KmeansResult {
        centroids,
        assignment: local_assign.into_iter().flatten().collect(),
        iterations,
    }
}

/// Inertia (sum of squared distances to the assigned centroid) — the
/// quantity Lloyd's algorithm monotonically decreases.
pub fn inertia(points: &[[f64; 2]], result: &KmeansResult) -> f64 {
    points
        .iter()
        .zip(&result.assignment)
        .map(|(p, &c)| dist2(*p, result.centroids[c]))
        .sum()
}

/// Random points in the unit square.
pub fn random_points(n: usize, seed: u64) -> Vec<[f64; 2]> {
    let raw = workloads::uniform_keys(2 * n, seed);
    (0..n)
        .map(|i| {
            [
                (raw[2 * i] % 1_000_000) as f64 / 1e6,
                (raw[2 * i + 1] % 1_000_000) as f64 / 1e6,
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init_centroids(k: usize) -> Vec<[f64; 2]> {
        (0..k).map(|i| [i as f64 / k as f64 + 0.01, 0.5]).collect()
    }

    #[test]
    fn seq_converges_and_partitions() {
        let pts = random_points(300, 11);
        let r = kmeans_seq(&pts, &init_centroids(4), 100);
        assert_eq!(r.centroids.len(), 4);
        assert_eq!(r.assignment.len(), 300);
        assert!(r.iterations < 100, "should converge");
        assert!(r.assignment.iter().all(|&c| c < 4));
    }

    #[test]
    fn scl_matches_sequential_assignments() {
        let pts = random_points(300, 11);
        let seq = kmeans_seq(&pts, &init_centroids(4), 100);
        for p in [1usize, 2, 4, 8] {
            let mut scl = Scl::ap1000(p);
            let par = kmeans_scl(&mut scl, &pts, &init_centroids(4), p, 100);
            assert_eq!(par.assignment, seq.assignment, "p={p}");
            assert_eq!(par.iterations, seq.iterations, "p={p}");
            for (a, b) in par.centroids.iter().zip(&seq.centroids) {
                assert!((a[0] - b[0]).abs() < 1e-9 && (a[1] - b[1]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn inertia_decreases_with_iterations() {
        let pts = random_points(400, 9);
        let one = kmeans_seq(&pts, &init_centroids(3), 1);
        let many = kmeans_seq(&pts, &init_centroids(3), 50);
        assert!(inertia(&pts, &many) <= inertia(&pts, &one) + 1e-12);
    }

    #[test]
    fn respects_max_iters() {
        let pts = random_points(200, 4);
        let mut scl = Scl::ap1000(4);
        let r = kmeans_scl(&mut scl, &pts, &init_centroids(5), 4, 2);
        assert_eq!(r.iterations, 2);
    }

    #[test]
    fn charges_broadcast_and_reduction_per_sweep() {
        let pts = random_points(200, 4);
        let mut scl = Scl::ap1000(4);
        let r = kmeans_scl(&mut scl, &pts, &init_centroids(3), 4, 10);
        assert_eq!(scl.machine.metrics.broadcasts as usize, r.iterations);
        assert_eq!(scl.machine.metrics.reductions as usize, r.iterations);
    }

    #[test]
    fn empty_cluster_keeps_centroid() {
        // a far-away centroid attracts nothing and must stay put
        let pts = vec![[0.0, 0.0], [0.1, 0.0], [0.0, 0.1]];
        let init = vec![[0.05, 0.05], [99.0, 99.0]];
        let r = kmeans_seq(&pts, &init, 10);
        assert_eq!(r.centroids[1], [99.0, 99.0]);
        assert!(r.assignment.iter().all(|&c| c == 0));
    }
}
