#![warn(missing_docs)]
//! # scl-apps — applications written in SCL
//!
//! The paper demonstrates SCL by composing sequential procedures with
//! skeletons; this crate holds those programs plus the workloads the
//! benchmark harness sweeps:
//!
//! * [`gauss`] — Gauss–Jordan elimination with partial pivoting (§3's first
//!   example: column-block distribution, `iterFor`, `applybrdcast`,
//!   `map UPDATE`).
//! * [`hyperquicksort`] — the §3 nested recursive form *and* the §5
//!   flattened iterative form actually measured for Table 1 / Figure 3.
//! * [`psrs`] — Parallel Sorting by Regular Sampling, the comparison sort
//!   ("the best speedup available for this problem").
//! * [`msort`] — divide-and-conquer merge sort written as a first-class
//!   plan DAG (`Skel::dac` over `pair` branches), the recursive form the
//!   original skeleton language could only flatten by hand.
//! * [`cannon`] — Cannon's matrix multiply (grid distribution +
//!   `rotate_row`/`rotate_col`).
//! * [`jacobi`] — 1-D Jacobi relaxation (`iterUntil`, shift-based halos,
//!   global residual fold).
//! * [`histogram`] — irregular many-to-one counting (total exchange).
//! * [`nbody`] — systolic all-pairs N-body forces on a rotating ring.
//! * [`fft`] — binary-exchange parallel FFT on the hypercube.
//! * [`kmeans`] — Lloyd's clustering under `iterUntil` (broadcast
//!   centroids, reduce partial sums).
//! * [`seqkit`] — the instrumented sequential kernels (`SEQ_QUICKSORT`,
//!   `MIDVALUE`, `SPLIT`, `MERGE`, `PARTIALPIVOT`, `UPDATE`) that report
//!   their own operation counts for deterministic cost accounting.
//! * [`stream_histogram`] — windowed histogram over an unbounded stream
//!   of batches, served through the `scl-stream` operator graph.
//! * [`workloads`] — seeded input generators.

pub mod cannon;
pub mod fft;
pub mod gauss;
pub mod histogram;
pub mod hyperquicksort;
pub mod jacobi;
pub mod kmeans;
pub mod msort;
pub mod nbody;
pub mod psrs;
pub mod seqkit;
pub mod stream_histogram;
pub mod workloads;

pub use cannon::cannon_matmul;
pub use fft::{dft_naive, fft_scl, fft_seq};
pub use gauss::{gauss_jordan_scl, gauss_jordan_seq};
pub use histogram::{histogram_plan, histogram_scl, histogram_seq};
pub use hyperquicksort::{
    globally_sorted, hyperquicksort_dc, hyperquicksort_flat, hyperquicksort_nested, sequential_sort,
};
pub use jacobi::{jacobi_plan, jacobi_scl, jacobi_seq, JacobiResult, JacobiState};
pub use kmeans::{kmeans_scl, kmeans_seq, KmeansResult};
pub use msort::{msort_plan, msort_sort};
pub use nbody::{forces_scl, forces_seq, Body};
pub use psrs::{psrs_plan, psrs_sort};
pub use stream_histogram::{
    batch_histogram_plan, windowed_histogram_seq, windowed_histogram_stream,
};
