//! Divide-and-conquer merge sort as a first-class plan **DAG**.
//!
//! Hyperquicksort (§3) is written twice in this crate — once nested, once
//! flattened — because the original skeleton language had no first-class
//! `dc` form to hang the recursion on. [`Skel::dac`] closes that gap:
//! `msort_plan` *is* the recursion tree, built from `pair` branches, so
//! sibling subtrees are visible to the fused executor and run
//! concurrently on the shared pool instead of being serialised by hand.
//!
//! The shape is the textbook one: `levels = log2(p)` splits halve the
//! part set until each leaf owns a single part, the base sorts that part
//! with the instrumented quicksort, and each combine merges two globally
//! sorted runs back into one, re-blocking the result across the united
//! parts so every level stays load-balanced.

use crate::seqkit::{merge_sorted, seq_quicksort};
use scl_core::{block_ranges, prelude::*};

/// A distributed run: one sorted-or-not `Vec<i64>` chunk per part.
pub type Run = ParArray<Vec<i64>>;

/// The divide stage: split the run's parts into conforming halves.
/// Pure data placement — charges nothing.
fn split_stage() -> Skel<'static, Run, (Run, Run)> {
    Skel::barrier("msort-split", |_scl: &mut Scl, a: ParArray<Vec<i64>>| {
        let mut parts = a.into_parts();
        debug_assert!(
            parts.len().is_multiple_of(2),
            "msort splits need an even part count"
        );
        let right = parts.split_off(parts.len() / 2);
        (ParArray::from_parts(parts), ParArray::from_parts(right))
    })
}

/// The base stage: each leaf owns one part; sort it locally with the
/// instrumented quicksort so the cost accounting matches the sequential
/// kernels everywhere else in the crate.
fn local_sort_stage() -> Skel<'static, Run, Run> {
    Skel::map_costed(|part: &Vec<i64>| {
        let mut v = part.clone();
        let w = seq_quicksort(&mut v);
        (v, w)
    })
}

/// The combine stage: both inputs are globally sorted runs, so a single
/// linear merge joins them; the result is re-blocked evenly across the
/// united parts. The merge itself is inherently sequential at this node
/// (its parallelism comes from *sibling* combines in the tree), so its
/// work is charged to the run's first processor.
fn merge_stage() -> Skel<'static, (Run, Run), Run> {
    Skel::barrier(
        "msort-merge",
        |scl: &mut Scl, (l, r): (ParArray<Vec<i64>>, ParArray<Vec<i64>>)| {
            let k = l.parts().len() + r.parts().len();
            let lflat: Vec<i64> = l.into_parts().into_iter().flatten().collect();
            let rflat: Vec<i64> = r.into_parts().into_iter().flatten().collect();
            let (merged, w) = merge_sorted(&lflat, &rflat);
            scl.machine.compute(0, w, "merge runs");
            ParArray::from_parts(
                block_ranges(merged.len(), k)
                    .into_iter()
                    .map(|rg| merged[rg].to_vec())
                    .collect(),
            )
        },
    )
}

/// The whole merge sort (for `p` a power of two, `p >= 2`) as a plan
/// DAG over a partitioned input: `log2(p)` levels of split ·
/// `pair` · merge around a local-sort base. Output is the globally
/// sorted run, re-blocked over `p` parts.
pub fn msort_plan(p: usize) -> Skel<'static, Run, Run> {
    assert!(
        p.is_power_of_two() && p >= 2,
        "msort_plan needs a power-of-two processor count >= 2"
    );
    let levels = p.trailing_zeros() as usize;
    Skel::dac(
        levels,
        |_| split_stage(),
        local_sort_stage,
        |_| merge_stage(),
    )
}

/// Sort `data` on `p` processors with the DAG merge sort. Returns the
/// sorted vector; read `scl.makespan()` for the predicted time.
/// Configure/partition eagerly, then run [`msort_plan`].
pub fn msort_sort(scl: &mut Scl, data: &[i64], p: usize) -> Vec<i64> {
    scl.check_fits(p);
    let input = ParArray::from_parts(
        block_ranges(data.len(), p)
            .into_iter()
            .map(|rg| data[rg].to_vec())
            .collect::<Vec<Vec<i64>>>(),
    );
    let out = msort_plan(p).run(scl, input);
    out.into_parts().into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_balances() {
        for p in [2usize, 4, 8] {
            let data: Vec<i64> = (0..257).map(|i| (i * 7919) % 2003 - 1000).collect();
            let mut scl = Scl::ap1000(p);
            let sorted = msort_sort(&mut scl, &data, p);
            let mut expect = data.clone();
            expect.sort_unstable();
            assert_eq!(sorted, expect, "p={p}");
            assert!(scl.makespan().as_secs() > 0.0);
        }
    }

    #[test]
    fn plan_is_a_fusable_dag_with_a_stable_fingerprint() {
        let plan = msort_plan(4);
        assert!(plan.fusable());
        let fp = plan.fingerprint().unwrap();
        assert_eq!(fp, msort_plan(4).fingerprint().unwrap(), "stable key");
        assert_ne!(
            fp,
            msort_plan(8).fingerprint().unwrap(),
            "tree depth is structural"
        );
    }
}
