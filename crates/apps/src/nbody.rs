//! All-pairs N-body force computation on a ring — the classic systolic
//! `rotate` workload.
//!
//! Bodies are block-distributed; a travelling copy of every block rotates
//! around the ring (`iter_for p` steps of `rotate 1`), and each processor
//! accumulates the forces its resident bodies feel from the visiting
//! block. After `p` rotations every pair has interacted exactly once — an
//! O(n²/p) compute per processor with p cheap neighbour messages, the
//! textbook coordination-language example after sorting.

use crate::workloads;
use scl_core::prelude::*;
use scl_core::{align, unalign, Bytes};

/// A point mass in 2-D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: [f64; 2],
    /// Velocity.
    pub vel: [f64; 2],
    /// Mass.
    pub mass: f64,
}

impl Bytes for Body {
    fn bytes(&self) -> usize {
        5 * 8
    }
}

/// Gravitational constant (arbitrary units) and softening to avoid
/// singularities.
const G: f64 = 6.674e-3;
const SOFTENING: f64 = 1e-3;

/// Force body `on` feels from body `from`.
fn pair_force(on: &Body, from: &Body) -> [f64; 2] {
    let dx = from.pos[0] - on.pos[0];
    let dy = from.pos[1] - on.pos[1];
    let d2 = dx * dx + dy * dy + SOFTENING;
    let inv = 1.0 / (d2 * d2.sqrt());
    let f = G * on.mass * from.mass * inv;
    [f * dx, f * dy]
}

/// Accumulate forces of `sources` on `targets` (skipping self-pairs by
/// identity of position+mass is unnecessary: `i == j` only happens within
/// the resident block, which passes `skip_same_index`).
fn block_forces(targets: &[Body], sources: &[Body], same_block: bool, acc: &mut [[f64; 2]]) -> u64 {
    let mut flops = 0u64;
    for (i, t) in targets.iter().enumerate() {
        for (j, s) in sources.iter().enumerate() {
            if same_block && i == j {
                continue;
            }
            let f = pair_force(t, s);
            acc[i][0] += f[0];
            acc[i][1] += f[1];
            flops += 20;
        }
    }
    flops
}

/// Sequential baseline: all-pairs forces.
pub fn forces_seq(bodies: &[Body]) -> Vec<[f64; 2]> {
    let mut acc = vec![[0.0f64; 2]; bodies.len()];
    block_forces(bodies, bodies, true, &mut acc);
    acc
}

/// SCL all-pairs forces on `p` processors via the rotating-ring scheme.
/// Returns per-body force vectors in input order; read `scl.makespan()`
/// for the predicted time.
pub fn forces_scl(scl: &mut Scl, bodies: &[Body], p: usize) -> Vec<[f64; 2]> {
    scl.check_fits(p);
    scl.machine.barrier();
    let resident = scl.partition(Pattern::Block(p), bodies);

    // travelling copy + zeroed accumulators, aligned with the residents
    let mut travelling = resident.clone();
    let acc = scl.map(&resident, |blk| vec![[0.0f64; 2]; blk.len()]);
    let zipped = align(resident, acc);

    let zipped = scl.iter_for(
        p,
        |scl, step, zipped: ParArray<(Vec<Body>, Vec<[f64; 2]>)>| {
            // interact residents with the currently visiting block
            let visiting = travelling.clone();
            let cfg = align(zipped, visiting);
            let out = scl.map_costed(&cfg, |((res, acc), vis)| {
                let mut acc = acc.clone();
                let flops = block_forces(res, vis, step == 0, &mut acc);
                ((res.clone(), acc), Work::flops(flops))
            });
            // pass the travelling blocks one processor around the ring
            travelling = scl.rotate(1, &travelling);
            out
        },
        zipped,
    );

    let (_, acc) = unalign(zipped);
    scl.gather(&acc)
}

/// One leapfrog integration step (used by the example binary; kept here so
/// it is tested).
pub fn integrate(bodies: &mut [Body], forces: &[[f64; 2]], dt: f64) {
    for (b, f) in bodies.iter_mut().zip(forces) {
        b.vel[0] += f[0] / b.mass * dt;
        b.vel[1] += f[1] / b.mass * dt;
        b.pos[0] += b.vel[0] * dt;
        b.pos[1] += b.vel[1] * dt;
    }
}

/// Random bodies in the unit square with masses in `[0.5, 1.5)`.
pub fn random_bodies(n: usize, seed: u64) -> Vec<Body> {
    let xs = workloads::uniform_keys(3 * n, seed);
    (0..n)
        .map(|i| Body {
            pos: [
                (xs[3 * i] % 1_000_000) as f64 / 1e6,
                (xs[3 * i + 1] % 1_000_000) as f64 / 1e6,
            ],
            vel: [0.0, 0.0],
            mass: 0.5 + (xs[3 * i + 2] % 1_000_000) as f64 / 1e6,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[[f64; 2]], b: &[[f64; 2]], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x[0] - y[0]).abs() < tol && (x[1] - y[1]).abs() < tol)
    }

    #[test]
    fn forces_are_antisymmetric() {
        let a = Body {
            pos: [0.0, 0.0],
            vel: [0.0; 2],
            mass: 1.0,
        };
        let b = Body {
            pos: [1.0, 0.0],
            vel: [0.0; 2],
            mass: 2.0,
        };
        let fab = pair_force(&a, &b);
        let fba = pair_force(&b, &a);
        assert!((fab[0] + fba[0]).abs() < 1e-15);
        assert!((fab[1] + fba[1]).abs() < 1e-15);
        assert!(fab[0] > 0.0, "a is pulled towards b");
    }

    #[test]
    fn scl_matches_sequential() {
        let bodies = random_bodies(60, 42);
        let seq = forces_seq(&bodies);
        for p in [1usize, 2, 3, 4, 6] {
            let mut scl = Scl::ap1000(p);
            let par = forces_scl(&mut scl, &bodies, p);
            assert!(close(&par, &seq, 1e-9), "p={p}");
        }
    }

    #[test]
    fn every_pair_interacts_exactly_once() {
        // two bodies on different processors must feel each other
        let bodies = vec![
            Body {
                pos: [0.0, 0.0],
                vel: [0.0; 2],
                mass: 1.0,
            },
            Body {
                pos: [0.5, 0.0],
                vel: [0.0; 2],
                mass: 1.0,
            },
        ];
        let mut scl = Scl::ap1000(2);
        let f = forces_scl(&mut scl, &bodies, 2);
        assert!(f[0][0] > 0.0);
        assert!(f[1][0] < 0.0);
        assert!((f[0][0] + f[1][0]).abs() < 1e-15, "Newton's third law");
    }

    #[test]
    fn rotation_count_is_p() {
        let bodies = random_bodies(32, 7);
        let mut scl = Scl::ap1000(4);
        let _ = forces_scl(&mut scl, &bodies, 4);
        // p rotations, each a 4-message permute; the last one included
        assert!(scl.machine.metrics.messages >= 3 * 4);
    }

    #[test]
    fn speedup_with_more_processors() {
        let bodies = random_bodies(256, 3);
        let time = |p: usize| {
            let mut scl = Scl::ap1000(p);
            let _ = forces_scl(&mut scl, &bodies, p);
            scl.makespan().as_secs()
        };
        let t1 = time(1);
        let t8 = time(8);
        assert!(t8 < t1, "t1={t1} t8={t8}");
        assert!(t1 / t8 < 8.0, "sublinear");
    }

    #[test]
    fn integrate_moves_bodies() {
        let mut bodies = vec![
            Body {
                pos: [0.0, 0.0],
                vel: [0.0; 2],
                mass: 1.0,
            },
            Body {
                pos: [1.0, 0.0],
                vel: [0.0; 2],
                mass: 1.0,
            },
        ];
        let f = forces_seq(&bodies);
        integrate(&mut bodies, &f, 0.1);
        assert!(bodies[0].pos[0] > 0.0, "attracted rightwards");
        assert!(bodies[1].pos[0] < 1.0, "attracted leftwards");
    }

    #[test]
    fn random_bodies_deterministic_and_in_range() {
        let a = random_bodies(100, 5);
        let b = random_bodies(100, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|b| (0.0..1.0).contains(&b.pos[0])
            && (0.0..1.0).contains(&b.pos[1])
            && (0.5..1.5).contains(&b.mass)));
    }
}
