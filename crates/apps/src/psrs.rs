//! Parallel Sorting by Regular Sampling (PSRS) — the comparison algorithm.
//!
//! The paper claims hyperquicksort's "achieved performance compares well
//! with the best speedup available for this problem"; PSRS (Shi & Schaeffer
//! 1992, also in Quinn's textbook) is the classic contender, so we build it
//! from the same skeletons and the same instrumented kernels and plot both
//! in the Figure 3 reproduction.
//!
//! Unlike hyperquicksort, PSRS works for any processor count (not just
//! powers of two) and balances data via regular sampling instead of median
//! pivots; the price is an all-to-all exchange.

use crate::seqkit::{merge_sorted, seq_quicksort};
use scl_core::prelude::*;

/// Phase 1 as a plan stage: sort each local run with the instrumented
/// quicksort.
fn local_sort_stage() -> Skel<'static, ParArray<Vec<i64>>, ParArray<Vec<i64>>> {
    Skel::map_costed(|part: &Vec<i64>| {
        let mut v = part.clone();
        let w = seq_quicksort(&mut v);
        (v, w)
    })
}

/// The whole PSRS pipeline (for `p >= 2`) as a first-class plan over a
/// partitioned input: local sort → regular sampling → pivot selection and
/// broadcast → bucketing → all-to-all exchange → p-way merge. Output is
/// the sorted run per processor (globally ordered by part index).
pub fn psrs_plan(p: usize) -> Skel<'static, ParArray<Vec<i64>>, ParArray<Vec<i64>>> {
    assert!(
        p >= 2,
        "psrs_plan needs at least two processors (p=1 is a local sort)"
    );

    // Phases 2+3: sampling and pivot broadcast need the whole
    // configuration (a gather to processor 0), so they form one opaque
    // global stage that pairs every sorted run with the pivot vector — a
    // fusion *barrier*, so the surrounding sort/bucket/merge stages still
    // fuse under `run_fused`. The sorted runs themselves are never cloned:
    // the samples gather by move and the broadcast moves the runs into the
    // (pivots, run) pairs.
    let pivot_stage = Skel::barrier("pivots", move |scl: &mut Scl, da: ParArray<Vec<i64>>| {
        // each processor takes p regular samples of its sorted run
        let samples = scl.map_costed(&da, |v| {
            let mut s = Vec::with_capacity(p);
            if !v.is_empty() {
                for k in 0..p {
                    s.push(v[k * v.len() / p]);
                }
            }
            (s, Work::moves(p as u64))
        });

        // gather the samples, sort them on processor 0, pick p-1 pivots,
        // broadcast them back
        let mut all_samples = scl.gather_owned(samples);
        let w = seq_quicksort(&mut all_samples);
        scl.machine.compute(0, w, "sort samples");
        // exactly p-1 pivots, even for tiny or empty sample sets
        let pivots: Vec<i64> = (1..p)
            .map(|k| {
                if all_samples.is_empty() {
                    0
                } else {
                    all_samples[(k * all_samples.len() / p).min(all_samples.len() - 1)]
                }
            })
            .collect();
        scl.brdcast_owned(&pivots, da)
    });

    // Phase 4a: bucket local runs by the broadcast pivots.
    let bucket_stage = Skel::map_costed(move |(pivots, v): &(Vec<i64>, Vec<i64>)| {
        let mut out: Vec<Vec<i64>> = Vec::with_capacity(p);
        let mut start = 0usize;
        for piv in pivots.iter() {
            let cut = start + v[start..].partition_point(|x| x <= piv);
            out.push(v[start..cut].to_vec());
            start = cut;
        }
        out.push(v[start..].to_vec());
        let cmps = (p as u64) * ((v.len().max(1) as f64).log2().ceil() as u64 + 1);
        (
            out,
            Work {
                cmps,
                moves: v.len() as u64,
                ..Work::NONE
            },
        )
    });

    // Phase 5: merge the p received runs on each processor.
    let merge_stage = Skel::map_costed(|runs: &Vec<Vec<i64>>| {
        let mut acc: Vec<i64> = Vec::new();
        let mut work = Work::NONE;
        for run in runs {
            let (m, w) = merge_sorted(&acc, run);
            acc = m;
            work += w;
        }
        (acc, work)
    });

    local_sort_stage()
        .then(pivot_stage)
        .then(bucket_stage)
        .then(Skel::total_exchange())
        .then(merge_stage)
}

/// Sort `data` on `p` processors with PSRS. Returns the sorted vector;
/// read `scl.makespan()` for the predicted time. Configure/partition
/// eagerly, then run [`psrs_plan`].
pub fn psrs_sort(scl: &mut Scl, data: &[i64], p: usize) -> Vec<i64> {
    assert!(p >= 1, "need at least one processor");
    scl.check_fits(p);
    scl.machine.barrier();

    let da = scl.partition(Pattern::Block(p), data);
    if p == 1 {
        let sorted = local_sort_stage().run(scl, da);
        return scl.gather_owned(sorted);
    }
    let merged = psrs_plan(p).run(scl, da);
    scl.gather_owned(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{few_unique_keys, reverse_keys, sorted_keys, uniform_keys};

    fn check(data: &[i64], p: usize) {
        let mut expect = data.to_vec();
        expect.sort_unstable();
        let mut scl = Scl::ap1000(p);
        let got = psrs_sort(&mut scl, data, p);
        assert_eq!(got, expect, "psrs failed (p={p}, n={})", data.len());
    }

    #[test]
    fn sorts_various_inputs() {
        for p in [1, 2, 3, 4, 7, 8] {
            check(&uniform_keys(1000, 42), p);
        }
        check(&sorted_keys(500), 4);
        check(&reverse_keys(500), 4);
        check(&few_unique_keys(500, 2, 3), 4);
        check(&[], 4);
        check(&[9], 4);
        check(&uniform_keys(5, 8), 8);
    }

    #[test]
    fn non_power_of_two_procs_work() {
        check(&uniform_keys(2000, 1), 5);
        check(&uniform_keys(2000, 1), 6);
    }

    #[test]
    fn plan_is_fusable_with_barriers_at_comm_points() {
        let plan = psrs_plan(4);
        assert!(plan.fusable());
        assert_eq!(
            plan.fused_stages().unwrap(),
            vec![
                ("map_costed", false), // local sort
                ("pivots", true),      // gather + broadcast
                ("map_costed", false), // bucket
                ("total_exchange", true),
                ("map_costed", false), // merge
            ]
        );
    }

    #[test]
    fn run_fused_matches_eager() {
        for p in [2usize, 4, 7] {
            let data = uniform_keys(2000, 11);
            let mut s1 = Scl::ap1000(p);
            let da = s1.partition(Pattern::Block(p), &data);
            let eager = psrs_plan(p).run(&mut s1, da);

            let mut s2 = Scl::ap1000(p).with_policy(ExecPolicy::Threads(4));
            let da = s2.partition(Pattern::Block(p), &data);
            let fused = s2.run_fused(&psrs_plan(p), da).unwrap();
            assert_eq!(eager, fused, "p={p}");
        }
    }

    #[test]
    fn charges_all_to_all() {
        let mut scl = Scl::ap1000(4);
        let _ = psrs_sort(&mut scl, &uniform_keys(1000, 2), 4);
        assert_eq!(scl.machine.metrics.exchanges, 1);
        assert!(scl.machine.metrics.broadcasts >= 1);
    }

    #[test]
    fn speedup_exists_and_is_sublinear() {
        let data = uniform_keys(20_000, 6);
        let time = |p: usize| {
            let mut scl = Scl::ap1000(p);
            let _ = psrs_sort(&mut scl, &data, p);
            scl.makespan().as_secs()
        };
        let t1 = time(1);
        let t8 = time(8);
        assert!(t8 < t1);
        assert!(t1 / t8 < 8.0);
    }
}
