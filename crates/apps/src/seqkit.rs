//! Instrumented sequential kernels — the "base language" procedures.
//!
//! The paper's two-tier model leaves all sequential computation to ordinary
//! procedures (`SEQ_QUICKSORT`, `MIDVALUE`, `SPLIT`, `MERGE`,
//! `PARTIALPIVOT`, `UPDATE`, …). These are those procedures, in Rust, with
//! one addition: each *counts the abstract operations it performs*
//! (comparisons, element moves, flops) and reports them as
//! [`Work`], so the simulated machine can charge deterministic,
//! host-independent costs. The counts — not host timing — are what make the
//! reproduced Table 1 / Figure 3 exactly reproducible.

use scl_machine::Work;

/// Quicksort (Hoare partition, median-of-three pivot), counting key
/// comparisons. This is the paper's `SEQ_QUICKSORT`.
pub fn seq_quicksort(v: &mut [i64]) -> Work {
    let mut cmps = 0u64;
    let mut moves = 0u64;
    quicksort_rec(v, &mut cmps, &mut moves);
    Work {
        cmps,
        moves,
        ..Work::NONE
    }
}

fn quicksort_rec(v: &mut [i64], cmps: &mut u64, moves: &mut u64) {
    let n = v.len();
    if n <= 16 {
        // insertion sort for small runs
        for i in 1..n {
            let mut j = i;
            while j > 0 {
                *cmps += 1;
                if v[j - 1] > v[j] {
                    v.swap(j - 1, j);
                    *moves += 1;
                    j -= 1;
                } else {
                    break;
                }
            }
        }
        return;
    }
    // median-of-three pivot selection
    let mid = n / 2;
    *cmps += 3;
    let (a, b, c) = (v[0], v[mid], v[n - 1]);
    let pivot = if (a <= b) == (b <= c) {
        b
    } else if (b <= a) == (a <= c) {
        a
    } else {
        c
    };
    // Hoare partition
    let (mut i, mut j) = (0usize, n - 1);
    loop {
        loop {
            *cmps += 1;
            if v[i] >= pivot {
                break;
            }
            i += 1;
        }
        loop {
            *cmps += 1;
            if v[j] <= pivot {
                break;
            }
            j -= 1;
        }
        if i >= j {
            break;
        }
        v.swap(i, j);
        *moves += 1;
        i += 1;
        j -= 1;
    }
    let split = j + 1;
    let (lo, hi) = v.split_at_mut(split);
    quicksort_rec(lo, cmps, moves);
    quicksort_rec(hi, cmps, moves);
}

/// Median of a **sorted** slice — the paper's `MIDVALUE`. O(1).
///
/// # Panics
/// Panics on an empty slice.
pub fn midvalue(sorted: &[i64]) -> (i64, Work) {
    assert!(!sorted.is_empty(), "MIDVALUE of empty data");
    (sorted[sorted.len() / 2], Work::cmps(1))
}

/// Split a **sorted** slice around a pivot — the paper's `SPLIT`: returns
/// `(low, high)` with `low ≤ pivot < high`. Binary search, so O(log n)
/// comparisons.
pub fn split_sorted(sorted: &[i64], pivot: i64) -> (Vec<i64>, Vec<i64>, Work) {
    let cut = sorted.partition_point(|&x| x <= pivot);
    let cmps = (sorted.len().max(1) as f64).log2().ceil() as u64 + 1;
    let moves = sorted.len() as u64;
    (
        sorted[..cut].to_vec(),
        sorted[cut..].to_vec(),
        Work {
            cmps,
            moves,
            ..Work::NONE
        },
    )
}

/// Merge two **sorted** slices — the paper's `MERGE`. O(n + m).
pub fn merge_sorted(a: &[i64], b: &[i64]) -> (Vec<i64>, Work) {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    let mut cmps = 0u64;
    while i < a.len() && j < b.len() {
        cmps += 1;
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    let moves = out.len() as u64;
    (
        out,
        Work {
            cmps,
            moves,
            ..Work::NONE
        },
    )
}

/// Is the slice sorted ascending?
pub fn is_sorted(v: &[i64]) -> bool {
    v.windows(2).all(|w| w[0] <= w[1])
}

/// `PARTIALPIVOT` for Gauss–Jordan: among rows `from..`, find the row with
/// the largest `|column[row]|`. Returns `(row_index, work)`.
pub fn partial_pivot(column: &[f64], from: usize) -> (usize, Work) {
    assert!(from < column.len(), "pivot search past end of column");
    let mut best = from;
    let mut cmps = 0u64;
    for r in from + 1..column.len() {
        cmps += 1;
        if column[r].abs() > column[best].abs() {
            best = r;
        }
    }
    (best, Work::cmps(cmps))
}

/// One `UPDATE` step of Gauss–Jordan elimination applied to a column
/// fragment: given the pivot column values and the pivot row index,
/// annihilate all non-pivot entries of `col` (scale pivot row entry,
/// subtract multiples elsewhere). Returns flops performed.
///
/// `col` is this processor's fragment of some matrix column; `pivot_col`
/// holds the *whole* pivot column (broadcast), `prow` the pivot row.
pub fn gauss_update(col: &mut [f64], pivot_col: &[f64], prow: usize) -> Work {
    assert_eq!(col.len(), pivot_col.len(), "column length mismatch");
    let piv = pivot_col[prow];
    assert!(piv != 0.0, "zero pivot — singular system");
    let mut flops = 0u64;
    let scaled = col[prow] / piv;
    flops += 1;
    for r in 0..col.len() {
        if r != prow {
            col[r] -= pivot_col[r] * scaled;
            flops += 2;
        }
    }
    col[prow] = scaled;
    Work::flops(flops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quicksort_sorts_and_counts() {
        let mut v = vec![5, 3, 9, 1, 7, 2, 8, 0, 4, 6, 5, 5, -3, 100, 42, 17, 23, 11];
        let w = seq_quicksort(&mut v);
        assert!(is_sorted(&v));
        assert!(w.cmps > 0);
        let mut expect = v.clone();
        expect.sort_unstable();
        assert_eq!(v, expect);
    }

    #[test]
    fn quicksort_handles_edges() {
        let mut empty: Vec<i64> = vec![];
        assert_eq!(seq_quicksort(&mut empty).cmps, 0);
        let mut one = vec![7];
        seq_quicksort(&mut one);
        assert_eq!(one, vec![7]);
        let mut dup = vec![2i64; 100];
        seq_quicksort(&mut dup);
        assert_eq!(dup, vec![2i64; 100]);
        let mut rev: Vec<i64> = (0..200).rev().collect();
        seq_quicksort(&mut rev);
        assert!(is_sorted(&rev));
    }

    #[test]
    fn quicksort_work_scales_near_nlogn() {
        let mk = |n: usize| -> u64 {
            let mut v: Vec<i64> = (0..n as i64).map(|i| (i * 2654435761) % 1000003).collect();
            seq_quicksort(&mut v).cmps
        };
        let c1k = mk(1000) as f64;
        let c8k = mk(8000) as f64;
        let ratio = c8k / c1k;
        // n log n predicts 8 * log(8000)/log(1000) ≈ 10.4; accept broad band
        assert!(ratio > 6.0 && ratio < 16.0, "ratio {ratio}");
    }

    #[test]
    fn midvalue_of_sorted() {
        assert_eq!(midvalue(&[1, 3, 5]).0, 3);
        assert_eq!(midvalue(&[1, 3, 5, 9]).0, 5);
        assert_eq!(midvalue(&[42]).0, 42);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn midvalue_empty_panics() {
        let _ = midvalue(&[]);
    }

    #[test]
    fn split_respects_pivot() {
        let v = vec![1, 2, 4, 4, 6, 9];
        let (lo, hi, _) = split_sorted(&v, 4);
        assert_eq!(lo, vec![1, 2, 4, 4]);
        assert_eq!(hi, vec![6, 9]);
        let (lo, hi, _) = split_sorted(&v, 0);
        assert!(lo.is_empty());
        assert_eq!(hi.len(), 6);
        let (lo, hi, _) = split_sorted(&v, 100);
        assert_eq!(lo.len(), 6);
        assert!(hi.is_empty());
        let (lo, hi, _) = split_sorted(&[], 5);
        assert!(lo.is_empty() && hi.is_empty());
    }

    #[test]
    fn merge_is_correct_and_counts_moves() {
        let (m, w) = merge_sorted(&[1, 4, 6], &[2, 3, 5, 7]);
        assert_eq!(m, vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(w.moves, 7);
        assert!(w.cmps >= 5);
        let (m, _) = merge_sorted(&[], &[1, 2]);
        assert_eq!(m, vec![1, 2]);
        let (m, _) = merge_sorted(&[1, 2], &[]);
        assert_eq!(m, vec![1, 2]);
    }

    #[test]
    fn partial_pivot_finds_largest_abs() {
        let col = vec![1.0, -9.0, 3.0, 8.5];
        assert_eq!(partial_pivot(&col, 0).0, 1);
        assert_eq!(partial_pivot(&col, 2).0, 3);
        assert_eq!(partial_pivot(&col, 3).0, 3);
    }

    #[test]
    fn gauss_update_annihilates() {
        // pivot column after elimination must be e_prow
        let pivot_col = vec![2.0, 4.0, -2.0];
        let mut col = pivot_col.clone();
        let w = gauss_update(&mut col, &pivot_col, 0);
        assert_eq!(col, vec![1.0, 0.0, 0.0]);
        assert!(w.flops > 0);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn gauss_update_zero_pivot_panics() {
        let pivot_col = vec![0.0, 1.0];
        let mut col = vec![1.0, 1.0];
        let _ = gauss_update(&mut col, &pivot_col, 0);
    }
}
