//! Windowed histogram over a stream of batches — the streaming workload.
//!
//! The batch pipeline is the ordinary distributed histogram
//! ([`histogram_plan`]) wrapped configuration-to-configuration:
//! `partition → count → fragment → total_exchange → reduce → gather`, a
//! plan from host `Vec<u64>` to host `Vec<u64>`. Served through
//! [`StreamExec`], the count/fragment segment farms across stream items
//! while the exchange barrier runs per item in stream order — batch `k+1`
//! counts while batch `k` exchanges.
//!
//! On top of the per-batch histograms, [`windowed_histogram_stream`]
//! maintains a sliding window: result `i` is the histogram of the last
//! `window` batches up to and including batch `i` (all batches, before
//! the window fills). The window state is a host-side ring — O(window ×
//! buckets) memory, with the stream itself bounded by the graph's channel
//! capacities, so arbitrarily long streams run in constant memory.

use crate::histogram::{histogram_plan, histogram_seq};
use scl_core::prelude::*;
use scl_stream::{StreamExec, StreamPolicy};
use std::collections::VecDeque;

/// The per-batch plan: scatter a host batch over `p` processors, run the
/// distributed histogram, gather the owned-bucket counts back — a full
/// `Vec<u64> → Vec<u64>` pipeline the streaming runtime can serve.
pub fn batch_histogram_plan(buckets: usize, p: usize) -> Skel<'static, Vec<u64>, Vec<u64>> {
    assert!(buckets > 0, "need at least one bucket");
    Skel::partition(Pattern::Block(p))
        .then(histogram_plan(buckets, p))
        .then(Skel::gather())
}

/// Serve a stream of batches through the distributed histogram and fold a
/// sliding window over the results: output `i` is the bucket counts of
/// the last `window` batches ending at batch `i`. Lazy on both sides —
/// batches are pulled as the consumer pulls windows — so memory really
/// does stay bounded (graph channels + the O(window × buckets) ring)
/// regardless of how many batches flow through.
///
/// # Panics
/// Panics if `window` is zero or `buckets` is zero.
pub fn windowed_histogram_stream(
    batches: impl IntoIterator<Item = Vec<u64>>,
    window: usize,
    buckets: usize,
    p: usize,
    policy: StreamPolicy,
) -> impl Iterator<Item = Vec<u64>> {
    assert!(window > 0, "need a positive window");
    let exec = StreamExec::new(batch_histogram_plan(buckets, p), policy);
    let mut ring: VecDeque<Vec<u64>> = VecDeque::with_capacity(window);
    let mut acc = vec![0u64; buckets];
    exec.run_stream(batches).map(move |h| {
        for (a, x) in acc.iter_mut().zip(&h) {
            *a += x;
        }
        ring.push_back(h);
        if ring.len() > window {
            let expired = ring.pop_front().expect("ring just exceeded window");
            for (a, x) in acc.iter_mut().zip(&expired) {
                *a -= x;
            }
        }
        acc.clone()
    })
}

/// Sequential reference for [`windowed_histogram_stream`].
pub fn windowed_histogram_seq(
    batches: &[Vec<u64>],
    window: usize,
    buckets: usize,
) -> Vec<Vec<u64>> {
    assert!(window > 0, "need a positive window");
    (0..batches.len())
        .map(|i| {
            let lo = (i + 1).saturating_sub(window);
            let mut h = vec![0u64; buckets];
            for batch in &batches[lo..=i] {
                for (a, x) in h.iter_mut().zip(&histogram_seq(batch, buckets)) {
                    *a += x;
                }
            }
            h
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::uniform_keys;
    use scl_machine::Machine;

    fn batches(n: usize, len: usize, seed: u64) -> Vec<Vec<u64>> {
        (0..n)
            .map(|i| {
                uniform_keys(len, seed + i as u64)
                    .into_iter()
                    .map(|x| x as u64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batch_plan_matches_sequential_histogram() {
        let plan = batch_histogram_plan(16, 4);
        let mut scl = Scl::ap1000(4);
        let b = batches(1, 3000, 7).pop().unwrap();
        assert_eq!(plan.run(&mut scl, b.clone()), histogram_seq(&b, 16));
    }

    #[test]
    fn batch_plan_farms_the_count_segment() {
        let Ok(ops) = batch_histogram_plan(16, 4).into_stream_ops() else {
            panic!("batch histogram is fusable")
        };
        let ops: Vec<String> = ops.iter().map(|op| op.label()).collect();
        assert_eq!(
            ops,
            vec![
                "partition",
                "map_costed+map_costed", // count + fragment fuse into one farm
                "total_exchange",
                "map_costed",
                "gather",
            ]
        );
    }

    #[test]
    fn windowed_stream_matches_sequential_reference() {
        let bs = batches(24, 400, 3);
        let expect = windowed_histogram_seq(&bs, 5, 16);
        for exec in [
            ExecPolicy::Sequential,
            ExecPolicy::Threads(4),
            ExecPolicy::cost_driven(),
        ] {
            let got: Vec<Vec<u64>> = windowed_histogram_stream(
                bs.iter().cloned(),
                5,
                16,
                4,
                StreamPolicy::new(Machine::ap1000(4)).with_exec(exec),
            )
            .collect();
            assert_eq!(got, expect, "{exec:?}");
        }
    }

    #[test]
    fn window_wider_than_stream_accumulates_everything() {
        let bs = batches(4, 200, 11);
        let got = windowed_histogram_stream(
            bs.iter().cloned(),
            100,
            8,
            2,
            StreamPolicy::new(Machine::ap1000(2)),
        )
        .last();
        // last output covers every batch
        let all: Vec<u64> = bs.concat();
        assert_eq!(got.unwrap(), histogram_seq(&all, 8));
    }

    #[test]
    fn counts_in_each_window_sum_to_window_sizes() {
        let bs = batches(10, 123, 5);
        let got = windowed_histogram_stream(
            bs.iter().cloned(),
            3,
            32,
            4,
            StreamPolicy::new(Machine::ap1000(4)).with_exec(ExecPolicy::Threads(2)),
        );
        for (i, h) in got.enumerate() {
            let covered = (i + 1).min(3) * 123;
            assert_eq!(h.iter().sum::<u64>(), covered as u64, "window {i}");
        }
    }
}
