//! Deterministic workload generators.
//!
//! The paper sorts "a vector of random numbers" and solves random linear
//! systems; these helpers produce the equivalents, seeded so that every
//! test, bench and table row is exactly reproducible.

use scl_core::Matrix;
use scl_testkit::Rng;

/// `n` uniform random `i64` keys in `[0, 10^9)`.
pub fn uniform_keys(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.range_i64(0, 1_000_000_000)).collect()
}

/// Already-sorted keys (adversarial for naive quicksort pivots).
pub fn sorted_keys(n: usize) -> Vec<i64> {
    (0..n as i64).collect()
}

/// Reverse-sorted keys.
pub fn reverse_keys(n: usize) -> Vec<i64> {
    (0..n as i64).rev().collect()
}

/// Keys drawn from only `k` distinct values (duplicate-heavy).
pub fn few_unique_keys(n: usize, k: usize, seed: u64) -> Vec<i64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.range_i64(0, k.max(1) as i64)).collect()
}

/// A random, strictly diagonally dominant `n × n` system `(A, b)` — always
/// non-singular and well-conditioned, so Gauss–Jordan with partial pivoting
/// solves it stably.
pub fn diag_dominant_system(n: usize, seed: u64) -> (Matrix<f64>, Vec<f64>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut a: Matrix<f64> = Matrix::from_fn(n, n, |_, _| rng.range_f64(-1.0, 1.0));
    for i in 0..n {
        let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
        a.set(i, i, row_sum + rng.range_f64(1.0, 2.0));
    }
    let b: Vec<f64> = (0..n).map(|_| rng.range_f64(-10.0, 10.0)).collect();
    (a, b)
}

/// A random dense matrix with entries in `[-1, 1]`.
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.range_f64(-1.0, 1.0))
}

/// Residual `max_i |A x − b|_i` of a proposed solution.
pub fn residual(a: &Matrix<f64>, x: &[f64], b: &[f64]) -> f64 {
    a.matvec(x)
        .iter()
        .zip(b)
        .map(|(ax, bb)| (ax - bb).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_keys(100, 7), uniform_keys(100, 7));
        assert_ne!(uniform_keys(100, 7), uniform_keys(100, 8));
        assert_eq!(few_unique_keys(50, 3, 1), few_unique_keys(50, 3, 1));
    }

    #[test]
    fn shapes_and_ranges() {
        let v = uniform_keys(1000, 42);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| (0..1_000_000_000).contains(&x)));
        let f = few_unique_keys(1000, 4, 1);
        let mut uniq = f.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() <= 4);
        assert_eq!(sorted_keys(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(reverse_keys(3), vec![2, 1, 0]);
    }

    #[test]
    fn diag_dominant_really_is() {
        let (a, b) = diag_dominant_system(20, 3);
        assert_eq!(b.len(), 20);
        for i in 0..20 {
            let off: f64 = (0..20).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
            assert!(a.get(i, i).abs() > off, "row {i} not dominant");
        }
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = Matrix::identity(3);
        let b = vec![1.0, 2.0, 3.0];
        assert_eq!(residual(&a, &b, &b), 0.0);
        assert!(residual(&a, &[1.0, 2.0, 4.0], &b) > 0.9);
    }
}
