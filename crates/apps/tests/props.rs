//! Property tests for the SCL applications: correctness against std/naive
//! baselines on randomised inputs, shapes of the virtual-time predictions.

use proptest::prelude::*;
use scl_apps::{
    cannon_matmul, gauss_jordan_scl, gauss_jordan_seq, histogram_scl, histogram_seq,
    hyperquicksort_flat, hyperquicksort_nested, jacobi_scl, jacobi_seq, psrs_sort,
};
use scl_apps::workloads::{diag_dominant_system, random_matrix, residual};
use scl_core::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hyperquicksort_sorts_anything(data in prop::collection::vec(any::<i64>(), 0..600),
                                     dim in 0u32..4) {
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut scl = Scl::hypercube(1 << dim, CostModel::ap1000());
        prop_assert_eq!(hyperquicksort_flat(&mut scl, &data, dim), expect.clone());
        let mut scl = Scl::hypercube(1 << dim, CostModel::ap1000());
        prop_assert_eq!(hyperquicksort_nested(&mut scl, &data, dim), expect);
    }

    #[test]
    fn flat_and_nested_agree(data in prop::collection::vec(-1000i64..1000, 0..400),
                             dim in 1u32..4) {
        let mut s1 = Scl::hypercube(1 << dim, CostModel::ap1000());
        let mut s2 = Scl::hypercube(1 << dim, CostModel::ap1000());
        prop_assert_eq!(
            hyperquicksort_flat(&mut s1, &data, dim),
            hyperquicksort_nested(&mut s2, &data, dim)
        );
    }

    #[test]
    fn psrs_sorts_anything(data in prop::collection::vec(any::<i64>(), 0..600),
                           p in 1usize..9) {
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut scl = Scl::ap1000(p);
        prop_assert_eq!(psrs_sort(&mut scl, &data, p), expect);
    }

    #[test]
    fn gauss_solves_dominant_systems(n in 1usize..24, p in 1usize..8, seed in any::<u64>()) {
        let p = p.min(n + 1);
        let (a, b) = diag_dominant_system(n, seed);
        let mut scl = Scl::ap1000(p);
        let x = gauss_jordan_scl(&mut scl, &a, &b, p);
        prop_assert!(residual(&a, &x, &b) < 1e-8);
        prop_assert_eq!(x, gauss_jordan_seq(&a, &b));
    }

    #[test]
    fn cannon_matches_naive(blk in 1usize..4, q in 1usize..4, seed in any::<u64>()) {
        let n = blk * q;
        let a = random_matrix(n, n, seed);
        let b = random_matrix(n, n, seed.wrapping_add(1));
        let mut scl = Scl::ap1000(q * q);
        let got = cannon_matmul(&mut scl, &a, &b, q);
        prop_assert!(got.max_abs_diff(&a.matmul(&b)) < 1e-9);
    }

    #[test]
    fn jacobi_parallel_is_bitwise_sequential(n in 0usize..80, p in 1usize..8,
                                             iters in 1usize..40) {
        let u0: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64).collect();
        let seq = jacobi_seq(&u0, 1e-9, iters);
        let mut scl = Scl::ap1000(p);
        let par = jacobi_scl(&mut scl, &u0, p, 1e-9, iters);
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn histogram_matches_sequential(values in prop::collection::vec(any::<u64>(), 0..500),
                                    buckets in 1usize..40, p in 1usize..8) {
        let expect = histogram_seq(&values, buckets);
        let mut scl = Scl::ap1000(p);
        prop_assert_eq!(histogram_scl(&mut scl, &values, buckets, p), expect);
    }

    #[test]
    fn sort_virtual_time_monotone_in_n(n1 in 100usize..2000, n2 in 100usize..2000) {
        // larger inputs never predict *faster* sorts on the same machine
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assume!(hi > lo + 200);
        let time = |n: usize| {
            let data = scl_apps::workloads::uniform_keys(n, 77);
            let mut scl = Scl::hypercube(8, CostModel::ap1000());
            let _ = hyperquicksort_flat(&mut scl, &data, 3);
            scl.makespan().as_secs()
        };
        prop_assert!(time(hi) > time(lo));
    }
}
