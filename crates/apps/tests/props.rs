//! Property tests for the SCL applications: correctness against std/naive
//! baselines on randomised inputs, shapes of the virtual-time predictions.
//! (Randomised via `scl-testkit`, the workspace's proptest replacement.)

use scl_apps::workloads::{diag_dominant_system, random_matrix, residual};
use scl_apps::{
    cannon_matmul, gauss_jordan_scl, gauss_jordan_seq, histogram_scl, histogram_seq,
    hyperquicksort_flat, hyperquicksort_nested, jacobi_scl, jacobi_seq, psrs_sort,
};
use scl_core::prelude::*;
use scl_testkit::{cases, Rng};

#[test]
fn hyperquicksort_sorts_anything() {
    cases(48, 0x51, |rng| {
        let len = rng.range_usize(0, 600);
        let data = rng.vec_of(len, Rng::any_i64);
        let dim = rng.below(4) as u32;
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut scl = Scl::hypercube(1 << dim, CostModel::ap1000());
        assert_eq!(hyperquicksort_flat(&mut scl, &data, dim), expect.clone());
        let mut scl = Scl::hypercube(1 << dim, CostModel::ap1000());
        assert_eq!(hyperquicksort_nested(&mut scl, &data, dim), expect);
    });
}

#[test]
fn flat_and_nested_agree() {
    cases(48, 0x52, |rng| {
        let len = rng.range_usize(0, 400);
        let data = rng.vec_of(len, |r| r.range_i64(-1000, 1000));
        let dim = 1 + rng.below(3) as u32;
        let mut s1 = Scl::hypercube(1 << dim, CostModel::ap1000());
        let mut s2 = Scl::hypercube(1 << dim, CostModel::ap1000());
        assert_eq!(
            hyperquicksort_flat(&mut s1, &data, dim),
            hyperquicksort_nested(&mut s2, &data, dim)
        );
    });
}

#[test]
fn psrs_sorts_anything() {
    cases(48, 0x53, |rng| {
        let len = rng.range_usize(0, 600);
        let data = rng.vec_of(len, Rng::any_i64);
        let p = rng.range_usize(1, 9);
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut scl = Scl::ap1000(p);
        assert_eq!(psrs_sort(&mut scl, &data, p), expect);
    });
}

#[test]
fn gauss_solves_dominant_systems() {
    cases(48, 0x54, |rng| {
        let n = rng.range_usize(1, 24);
        let p = rng.range_usize(1, 8).min(n + 1);
        let seed = rng.next_u64();
        let (a, b) = diag_dominant_system(n, seed);
        let mut scl = Scl::ap1000(p);
        let x = gauss_jordan_scl(&mut scl, &a, &b, p);
        assert!(residual(&a, &x, &b) < 1e-8);
        assert_eq!(x, gauss_jordan_seq(&a, &b));
    });
}

#[test]
fn cannon_matches_naive() {
    cases(48, 0x55, |rng| {
        let blk = rng.range_usize(1, 4);
        let q = rng.range_usize(1, 4);
        let seed = rng.next_u64();
        let n = blk * q;
        let a = random_matrix(n, n, seed);
        let b = random_matrix(n, n, seed.wrapping_add(1));
        let mut scl = Scl::ap1000(q * q);
        let got = cannon_matmul(&mut scl, &a, &b, q);
        assert!(got.max_abs_diff(&a.matmul(&b)) < 1e-9);
    });
}

#[test]
fn jacobi_parallel_is_bitwise_sequential() {
    cases(48, 0x56, |rng| {
        let n = rng.range_usize(0, 80);
        let p = rng.range_usize(1, 8);
        let iters = rng.range_usize(1, 40);
        let u0: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64).collect();
        let seq = jacobi_seq(&u0, 1e-9, iters);
        let mut scl = Scl::ap1000(p);
        let par = jacobi_scl(&mut scl, &u0, p, 1e-9, iters);
        assert_eq!(par, seq);
    });
}

#[test]
fn histogram_matches_sequential() {
    cases(48, 0x57, |rng| {
        let len = rng.range_usize(0, 500);
        let values = rng.vec_of(len, Rng::next_u64);
        let buckets = rng.range_usize(1, 40);
        let p = rng.range_usize(1, 8);
        let expect = histogram_seq(&values, buckets);
        let mut scl = Scl::ap1000(p);
        assert_eq!(histogram_scl(&mut scl, &values, buckets, p), expect);
    });
}

#[test]
fn sort_virtual_time_monotone_in_n() {
    cases(24, 0x58, |rng| {
        // larger inputs never predict *faster* sorts on the same machine
        let n1 = rng.range_usize(100, 2000);
        let n2 = rng.range_usize(100, 2000);
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        if hi <= lo + 200 {
            return;
        }
        let time = |n: usize| {
            let data = scl_apps::workloads::uniform_keys(n, 77);
            let mut scl = Scl::hypercube(8, CostModel::ap1000());
            let _ = hyperquicksort_flat(&mut scl, &data, 3);
            scl.makespan().as_secs()
        };
        assert!(time(hi) > time(lo));
    });
}
