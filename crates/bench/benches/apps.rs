//! Benchmarks of the remaining SCL applications: Gauss–Jordan, PSRS,
//! Cannon's matmul, Jacobi and histogram, each swept over processor count
//! on the simulated AP1000.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scl_apps::workloads::{diag_dominant_system, random_matrix, uniform_keys};
use scl_apps::{cannon_matmul, gauss_jordan_scl, histogram_scl, jacobi_scl, psrs_sort};
use scl_core::prelude::*;
use std::hint::black_box;

fn bench_gauss(c: &mut Criterion) {
    let (a, b_rhs) = diag_dominant_system(64, 1995);
    let mut g = c.benchmark_group("apps/gauss");
    g.sample_size(10);
    for p in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |bch, &p| {
            bch.iter(|| {
                let mut scl = Scl::ap1000(p);
                black_box(gauss_jordan_scl(&mut scl, black_box(&a), black_box(&b_rhs), p))
            })
        });
    }
    g.finish();
}

fn bench_psrs(c: &mut Criterion) {
    let data = uniform_keys(50_000, 2);
    let mut g = c.benchmark_group("apps/psrs");
    g.sample_size(10);
    for p in [1usize, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let mut scl = Scl::ap1000(p);
                black_box(psrs_sort(&mut scl, black_box(&data), p))
            })
        });
    }
    g.finish();
}

fn bench_cannon(c: &mut Criterion) {
    let a = random_matrix(48, 48, 1);
    let b_m = random_matrix(48, 48, 2);
    let mut g = c.benchmark_group("apps/cannon");
    g.sample_size(10);
    for q in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(q * q), &q, |bch, &q| {
            bch.iter(|| {
                let mut scl = Scl::ap1000(q * q);
                black_box(cannon_matmul(&mut scl, black_box(&a), black_box(&b_m), q))
            })
        });
    }
    g.finish();
}

fn bench_jacobi(c: &mut Criterion) {
    let mut u0 = vec![0.0f64; 512];
    u0[511] = 100.0;
    let mut g = c.benchmark_group("apps/jacobi");
    g.sample_size(10);
    for p in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let mut scl = Scl::ap1000(p);
                black_box(jacobi_scl(&mut scl, black_box(&u0), p, 1e-3, 200))
            })
        });
    }
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let values: Vec<u64> = uniform_keys(100_000, 5).into_iter().map(|x| x as u64).collect();
    let mut g = c.benchmark_group("apps/histogram");
    g.sample_size(10);
    for p in [1usize, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let mut scl = Scl::ap1000(p);
                black_box(histogram_scl(&mut scl, black_box(&values), 256, p))
            })
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let x: Vec<(f64, f64)> = (0..4096)
        .map(|i| ((i as f64 * 0.01).sin(), (i as f64 * 0.02).cos()))
        .collect();
    let mut g = c.benchmark_group("apps/fft");
    g.sample_size(10);
    for p in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let mut scl = Scl::hypercube(p, CostModel::ap1000());
                black_box(scl_apps::fft::fft_scl(&mut scl, black_box(&x), p))
            })
        });
    }
    g.finish();
}

fn bench_nbody(c: &mut Criterion) {
    let bodies = scl_apps::nbody::random_bodies(512, 3);
    let mut g = c.benchmark_group("apps/nbody");
    g.sample_size(10);
    for p in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let mut scl = Scl::ap1000(p);
                black_box(scl_apps::nbody::forces_scl(&mut scl, black_box(&bodies), p))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gauss,
    bench_psrs,
    bench_cannon,
    bench_jacobi,
    bench_histogram,
    bench_fft,
    bench_nbody
);
criterion_main!(benches);
