//! Benchmarks of the remaining SCL applications: Gauss–Jordan, PSRS,
//! Cannon's matmul, Jacobi and histogram, each swept over processor count
//! on the simulated AP1000.

use scl_apps::workloads::{diag_dominant_system, random_matrix, uniform_keys};
use scl_apps::{cannon_matmul, gauss_jordan_scl, histogram_scl, jacobi_scl, psrs_sort};
use scl_core::prelude::*;
use scl_testkit::bench;
use std::hint::black_box;

fn bench_gauss() {
    let (a, b_rhs) = diag_dominant_system(64, 1995);
    for p in [1usize, 4, 16] {
        bench(&format!("apps/gauss/{p}"), || {
            let mut scl = Scl::ap1000(p);
            black_box(gauss_jordan_scl(
                &mut scl,
                black_box(&a),
                black_box(&b_rhs),
                p,
            ))
        });
    }
}

fn bench_psrs() {
    let data = uniform_keys(50_000, 2);
    for p in [1usize, 8, 32] {
        bench(&format!("apps/psrs/{p}"), || {
            let mut scl = Scl::ap1000(p);
            black_box(psrs_sort(&mut scl, black_box(&data), p))
        });
    }
}

fn bench_cannon() {
    let a = random_matrix(48, 48, 1);
    let b_m = random_matrix(48, 48, 2);
    for q in [1usize, 2, 4] {
        bench(&format!("apps/cannon/{}", q * q), || {
            let mut scl = Scl::ap1000(q * q);
            black_box(cannon_matmul(&mut scl, black_box(&a), black_box(&b_m), q))
        });
    }
}

fn bench_jacobi() {
    let mut u0 = vec![0.0f64; 512];
    u0[511] = 100.0;
    for p in [1usize, 4, 16] {
        bench(&format!("apps/jacobi/{p}"), || {
            let mut scl = Scl::ap1000(p);
            black_box(jacobi_scl(&mut scl, black_box(&u0), p, 1e-3, 200))
        });
    }
}

fn bench_histogram() {
    let values: Vec<u64> = uniform_keys(100_000, 5)
        .into_iter()
        .map(|x| x as u64)
        .collect();
    for p in [1usize, 8, 32] {
        bench(&format!("apps/histogram/{p}"), || {
            let mut scl = Scl::ap1000(p);
            black_box(histogram_scl(&mut scl, black_box(&values), 256, p))
        });
    }
}

fn bench_fft() {
    let x: Vec<(f64, f64)> = (0..4096)
        .map(|i| ((i as f64 * 0.01).sin(), (i as f64 * 0.02).cos()))
        .collect();
    for p in [1usize, 4, 16] {
        bench(&format!("apps/fft/{p}"), || {
            let mut scl = Scl::hypercube(p, CostModel::ap1000());
            black_box(scl_apps::fft::fft_scl(&mut scl, black_box(&x), p))
        });
    }
}

fn bench_nbody() {
    let bodies = scl_apps::nbody::random_bodies(512, 3);
    for p in [1usize, 4, 16] {
        bench(&format!("apps/nbody/{p}"), || {
            let mut scl = Scl::ap1000(p);
            black_box(scl_apps::nbody::forces_scl(&mut scl, black_box(&bodies), p))
        });
    }
}

fn main() {
    bench_gauss();
    bench_psrs();
    bench_cannon();
    bench_jacobi();
    bench_histogram();
    bench_fft();
    bench_nbody();
}
