//! Host-time bench for the Table 1 / Figure 3 workload: flattened
//! hyperquicksort on the simulated AP1000, swept over processor count and
//! input size, plus the nested (§3) formulation for comparison.
//!
//! This measures *host* wall time of the simulation (useful for tracking
//! the harness itself); the paper-shaped numbers are the virtual times
//! printed by the `table1` / `figure3` binaries.

use scl_apps::hyperquicksort::{hyperquicksort_flat, hyperquicksort_nested};
use scl_apps::workloads::uniform_keys;
use scl_core::prelude::*;
use scl_testkit::bench;
use std::hint::black_box;

fn bench_procs_sweep() {
    let data = uniform_keys(50_000, 1995);
    for dim in [0u32, 2, 4, 5] {
        bench(&format!("table1/procs/{}", 1usize << dim), || {
            let mut scl = Scl::hypercube(1 << dim, CostModel::ap1000());
            black_box(hyperquicksort_flat(&mut scl, black_box(&data), dim))
        });
    }
}

fn bench_size_sweep() {
    for n in [10_000usize, 50_000, 100_000] {
        let data = uniform_keys(n, 7);
        bench(&format!("table1/size/{n}"), || {
            let mut scl = Scl::hypercube(16, CostModel::ap1000());
            black_box(hyperquicksort_flat(&mut scl, black_box(&data), 4))
        });
    }
}

fn bench_nested_vs_flat() {
    let data = uniform_keys(20_000, 3);
    bench("hyperquicksort/form/flat", || {
        let mut scl = Scl::hypercube(8, CostModel::ap1000());
        black_box(hyperquicksort_flat(&mut scl, black_box(&data), 3))
    });
    bench("hyperquicksort/form/nested", || {
        let mut scl = Scl::hypercube(8, CostModel::ap1000());
        black_box(hyperquicksort_nested(&mut scl, black_box(&data), 3))
    });
}

fn main() {
    bench_procs_sweep();
    bench_size_sweep();
    bench_nested_vs_flat();
}
