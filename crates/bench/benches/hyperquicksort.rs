//! Criterion bench for the Table 1 / Figure 3 workload: flattened
//! hyperquicksort on the simulated AP1000, swept over processor count and
//! input size, plus the nested (§3) formulation for comparison.
//!
//! Criterion measures *host* wall time of the simulation (useful for
//! tracking the harness itself); the paper-shaped numbers are the virtual
//! times printed by the `table1` / `figure3` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scl_apps::hyperquicksort::{hyperquicksort_flat, hyperquicksort_nested};
use scl_apps::workloads::uniform_keys;
use scl_core::prelude::*;
use std::hint::black_box;

fn bench_procs_sweep(c: &mut Criterion) {
    let data = uniform_keys(50_000, 1995);
    let mut g = c.benchmark_group("table1/procs");
    g.sample_size(10);
    for dim in [0u32, 2, 4, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(1usize << dim), &dim, |b, &dim| {
            b.iter(|| {
                let mut scl = Scl::hypercube(1 << dim, CostModel::ap1000());
                black_box(hyperquicksort_flat(&mut scl, black_box(&data), dim))
            })
        });
    }
    g.finish();
}

fn bench_size_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/size");
    g.sample_size(10);
    for n in [10_000usize, 50_000, 100_000] {
        let data = uniform_keys(n, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut scl = Scl::hypercube(16, CostModel::ap1000());
                black_box(hyperquicksort_flat(&mut scl, black_box(data), 4))
            })
        });
    }
    g.finish();
}

fn bench_nested_vs_flat(c: &mut Criterion) {
    let data = uniform_keys(20_000, 3);
    let mut g = c.benchmark_group("hyperquicksort/form");
    g.sample_size(10);
    g.bench_function("flat", |b| {
        b.iter(|| {
            let mut scl = Scl::hypercube(8, CostModel::ap1000());
            black_box(hyperquicksort_flat(&mut scl, black_box(&data), 3))
        })
    });
    g.bench_function("nested", |b| {
        b.iter(|| {
            let mut scl = Scl::hypercube(8, CostModel::ap1000());
            black_box(hyperquicksort_nested(&mut scl, black_box(&data), 3))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_procs_sweep, bench_size_sweep, bench_nested_vs_flat);
criterion_main!(benches);
