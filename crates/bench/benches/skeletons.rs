//! Micro-benchmarks of the elementary and communication skeletons:
//! per-operation host cost of `map`, `fold`, `scan`, `rotate`, `fetch`,
//! `send`, and the sequential vs. threaded execution policies.
//!
//! Runs on the zero-dependency `scl_testkit::bench` harness
//! (`cargo bench -p scl-bench --bench skeletons`).

use scl_core::prelude::*;
use scl_testkit::bench;
use std::hint::black_box;

fn make_ctx(n: usize) -> Scl {
    Scl::new(Machine::new(
        Topology::FullyConnected { procs: n },
        CostModel::ap1000(),
    ))
}

fn dist_array(parts: usize, part_len: usize) -> ParArray<Vec<i64>> {
    ParArray::from_parts(
        (0..parts)
            .map(|i| (0..part_len as i64).map(|x| x + i as i64).collect())
            .collect(),
    )
}

fn bench_map() {
    for parts in [4usize, 16, 64] {
        let a = dist_array(parts, 1000);
        let mut scl = make_ctx(a.len());
        bench(&format!("skeletons/map/{parts}"), || {
            black_box(scl.map_costed(&a, |v| {
                let s: i64 = v.iter().sum();
                (s, Work::flops(v.len() as u64))
            }))
        });
    }
}

fn bench_policies() {
    let a = dist_array(16, 20_000);
    let heavy = |v: &Vec<i64>| -> i64 {
        v.iter()
            .fold(0i64, |acc, x| acc.wrapping_mul(31).wrapping_add(*x))
    };
    let mut scl = make_ctx(16);
    bench("skeletons/policy/sequential", || {
        black_box(scl.map(&a, heavy))
    });
    let mut scl = make_ctx(16).with_policy(ExecPolicy::Threads(4));
    bench("skeletons/policy/threads4", || {
        black_box(scl.map(&a, heavy))
    });
}

fn bench_fold_scan() {
    let a = ParArray::from_parts((0..64i64).collect::<Vec<_>>());
    let mut scl = make_ctx(64);
    bench("skeletons/reduction/fold", || {
        black_box(scl.fold(&a, |x, y| x + y))
    });
    let mut scl = make_ctx(64);
    bench("skeletons/reduction/scan", || {
        black_box(scl.scan(&a, |x, y| x + y))
    });
}

fn bench_comm() {
    let a = dist_array(32, 500);
    let mut scl = make_ctx(32);
    bench("skeletons/comm/rotate", || black_box(scl.rotate(1, &a)));
    let mut scl = make_ctx(32);
    bench("skeletons/comm/fetch", || {
        black_box(scl.fetch(|i| i ^ 1, &a))
    });
    let mut scl = make_ctx(32);
    bench("skeletons/comm/send", || {
        black_box(scl.send(|i| vec![i / 2], &a))
    });
    let mut scl = make_ctx(32);
    bench("skeletons/comm/brdcast", || {
        black_box(scl.brdcast(&42i64, &a))
    });
}

fn bench_partition() {
    let data: Vec<i64> = (0..100_000).collect();
    for pat in [
        Pattern::Block(16),
        Pattern::Cyclic(16),
        Pattern::BlockCyclic { p: 16, block: 64 },
    ] {
        let mut scl = make_ctx(16);
        bench(&format!("skeletons/partition/{pat:?}"), || {
            black_box(scl.partition(pat, black_box(&data)))
        });
    }
}

fn main() {
    bench_map();
    bench_policies();
    bench_fold_scan();
    bench_comm();
    bench_partition();
}
