//! Micro-benchmarks of the elementary and communication skeletons:
//! per-operation host cost of `map`, `fold`, `scan`, `rotate`, `fetch`,
//! `send`, and the sequential vs. threaded execution policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scl_core::prelude::*;
use std::hint::black_box;

fn make_ctx(n: usize) -> Scl {
    Scl::new(Machine::new(Topology::FullyConnected { procs: n }, CostModel::ap1000()))
}

fn dist_array(parts: usize, part_len: usize) -> ParArray<Vec<i64>> {
    ParArray::from_parts(
        (0..parts).map(|i| (0..part_len as i64).map(|x| x + i as i64).collect()).collect(),
    )
}

fn bench_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("skeletons/map");
    for parts in [4usize, 16, 64] {
        let a = dist_array(parts, 1000);
        g.bench_with_input(BenchmarkId::from_parameter(parts), &a, |b, a| {
            let mut scl = make_ctx(a.len());
            b.iter(|| {
                black_box(scl.map_costed(a, |v| {
                    let s: i64 = v.iter().sum();
                    (s, Work::flops(v.len() as u64))
                }))
            })
        });
    }
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let a = dist_array(16, 20_000);
    let heavy = |v: &Vec<i64>| -> i64 {
        v.iter().fold(0i64, |acc, x| acc.wrapping_mul(31).wrapping_add(*x))
    };
    let mut g = c.benchmark_group("skeletons/policy");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        let mut scl = make_ctx(16);
        b.iter(|| black_box(scl.map(&a, heavy)))
    });
    g.bench_function("threads4", |b| {
        let mut scl = make_ctx(16).with_policy(ExecPolicy::Threads(4));
        b.iter(|| black_box(scl.map(&a, heavy)))
    });
    g.finish();
}

fn bench_fold_scan(c: &mut Criterion) {
    let a = ParArray::from_parts((0..64i64).collect::<Vec<_>>());
    let mut g = c.benchmark_group("skeletons/reduction");
    g.bench_function("fold", |b| {
        let mut scl = make_ctx(64);
        b.iter(|| black_box(scl.fold(&a, |x, y| x + y)))
    });
    g.bench_function("scan", |b| {
        let mut scl = make_ctx(64);
        b.iter(|| black_box(scl.scan(&a, |x, y| x + y)))
    });
    g.finish();
}

fn bench_comm(c: &mut Criterion) {
    let a = dist_array(32, 500);
    let mut g = c.benchmark_group("skeletons/comm");
    g.bench_function("rotate", |b| {
        let mut scl = make_ctx(32);
        b.iter(|| black_box(scl.rotate(1, &a)))
    });
    g.bench_function("fetch", |b| {
        let mut scl = make_ctx(32);
        b.iter(|| black_box(scl.fetch(|i| i ^ 1, &a)))
    });
    g.bench_function("send", |b| {
        let mut scl = make_ctx(32);
        b.iter(|| black_box(scl.send(|i| vec![i / 2], &a)))
    });
    g.bench_function("brdcast", |b| {
        let mut scl = make_ctx(32);
        b.iter(|| black_box(scl.brdcast(&42i64, &a)))
    });
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let data: Vec<i64> = (0..100_000).collect();
    let mut g = c.benchmark_group("skeletons/partition");
    for pat in [Pattern::Block(16), Pattern::Cyclic(16), Pattern::BlockCyclic { p: 16, block: 64 }] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{pat:?}")), &pat, |b, &pat| {
            let mut scl = make_ctx(16);
            b.iter(|| black_box(scl.partition(pat, black_box(&data))))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_map,
    bench_policies,
    bench_fold_scan,
    bench_comm,
    bench_partition
);
criterion_main!(benches);
