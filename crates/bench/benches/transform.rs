//! Benchmarks of the §4 transformation engine: fixpoint optimisation and
//! cost-directed search throughput, and the virtual-cost gap between
//! unoptimised and optimised programs (the ablation rows, measured as a
//! bench so regressions show up).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scl_bench::ablation_rows;
use scl_transform::prelude::*;
use std::hint::black_box;

fn chain_program(len: usize) -> Expr {
    let names = ["inc", "double", "square", "neg"];
    Expr::pipeline(
        (0..len)
            .map(|i| match i % 3 {
                0 => Expr::Map(FnRef::named(names[i % names.len()])),
                1 => Expr::Rotate((i as i64 % 5) - 2),
                _ => Expr::Fetch(IdxRef::named("succ")),
            })
            .collect(),
    )
}

fn bench_fixpoint(c: &mut Criterion) {
    let reg = Registry::standard();
    let mut g = c.benchmark_group("transform/fixpoint");
    for len in [8usize, 32, 128] {
        let e = chain_program(len);
        g.bench_with_input(BenchmarkId::from_parameter(len), &e, |b, e| {
            b.iter(|| black_box(optimize(e.clone(), &reg)))
        });
    }
    g.finish();
}

fn bench_cost_directed(c: &mut Criterion) {
    let reg = Registry::standard();
    let params = CostParams::ap1000(64);
    let mut g = c.benchmark_group("transform/cost-directed");
    g.sample_size(10);
    for len in [8usize, 24] {
        let e = chain_program(len);
        g.bench_with_input(BenchmarkId::from_parameter(len), &e, |b, e| {
            b.iter(|| black_box(optimize_costed(e.clone(), &reg, &params).unwrap()))
        });
    }
    g.finish();
}

fn bench_interp(c: &mut Criterion) {
    let reg = Registry::standard();
    let e = chain_program(32);
    let (opt, _) = optimize(e.clone(), &reg);
    let data: Vec<i64> = (0..4096).collect();
    let mut g = c.benchmark_group("transform/interp");
    g.bench_function("unoptimized", |b| {
        b.iter(|| black_box(eval(&e, &reg, Value::Arr(data.clone())).unwrap()))
    });
    g.bench_function("optimized", |b| {
        b.iter(|| black_box(eval(&opt, &reg, Value::Arr(data.clone())).unwrap()))
    });
    g.finish();
}

fn bench_ablation_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform/ablations");
    g.sample_size(10);
    g.bench_function("full-suite", |b| b.iter(|| black_box(ablation_rows(1024))));
    g.finish();
}

criterion_group!(benches, bench_fixpoint, bench_cost_directed, bench_interp, bench_ablation_suite);
criterion_main!(benches);
