//! Benchmarks of the §4 transformation engine: fixpoint optimisation and
//! cost-directed search throughput, and the virtual-cost gap between
//! unoptimised and optimised programs (the ablation rows, measured as a
//! bench so regressions show up).

use scl_bench::ablation_rows;
use scl_testkit::bench;
use scl_transform::prelude::*;
use std::hint::black_box;

fn chain_program(len: usize) -> Expr {
    let names = ["inc", "double", "square", "neg"];
    Expr::pipeline(
        (0..len)
            .map(|i| match i % 3 {
                0 => Expr::Map(FnRef::named(names[i % names.len()])),
                1 => Expr::Rotate((i as i64 % 5) - 2),
                _ => Expr::Fetch(IdxRef::named("succ")),
            })
            .collect(),
    )
}

fn bench_fixpoint() {
    let reg = Registry::standard();
    for len in [8usize, 32, 128] {
        let e = chain_program(len);
        bench(&format!("transform/fixpoint/{len}"), || {
            black_box(optimize(e.clone(), &reg))
        });
    }
}

fn bench_cost_directed() {
    let reg = Registry::standard();
    let params = CostParams::ap1000(64);
    for len in [8usize, 24] {
        let e = chain_program(len);
        bench(&format!("transform/cost-directed/{len}"), || {
            black_box(optimize_costed(e.clone(), &reg, &params).unwrap())
        });
    }
}

fn bench_interp() {
    let reg = Registry::standard();
    let e = chain_program(32);
    let (opt, _) = optimize(e.clone(), &reg);
    let data: Vec<i64> = (0..4096).collect();
    bench("transform/interp/unoptimized", || {
        black_box(eval(&e, &reg, Value::Arr(data.clone())).unwrap())
    });
    bench("transform/interp/optimized", || {
        black_box(eval(&opt, &reg, Value::Arr(data.clone())).unwrap())
    });
}

fn bench_ablation_suite() {
    bench("transform/ablations/full-suite", || {
        black_box(ablation_rows(1024))
    });
}

fn main() {
    bench_fixpoint();
    bench_cost_directed();
    bench_interp();
    bench_ablation_suite();
}
