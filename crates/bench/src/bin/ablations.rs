//! §4 transformation ablations — no table in the paper, but DESIGN.md calls
//! these out as the design-choice benches: what each rewrite law buys, on a
//! representative program and machine, plus the communication share of the
//! hyperquicksort prediction.
//!
//! ```text
//! cargo run --release -p scl-bench --bin ablations [n]
//! ```

use scl_bench::{ablation_rows, comm_share};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);

    println!("Transformation ablations (n = {n} elements, AP1000 cost model)");
    println!();
    println!(
        "{:<22} {:>12} {:>12} {:>8} {:>6}",
        "rule", "cost_before", "cost_after", "saved%", "apps"
    );
    for row in ablation_rows(n) {
        let saved = if row.cost_before > 0.0 {
            100.0 * (row.cost_before - row.cost_after) / row.cost_before
        } else {
            0.0
        };
        println!(
            "{:<22} {:>12.6} {:>12.6} {:>7.1}% {:>6}",
            row.rule, row.cost_before, row.cost_after, saved, row.applications
        );
        println!("    before: {}", row.before);
        println!("    after:  {}", row.after);
    }

    println!();
    println!("Communication share of hyperquicksort (100k keys):");
    for dim in [2u32, 3, 4, 5] {
        let (full, zero) = comm_share(100_000, dim, 1995);
        println!(
            "  p={:>2}: full model {:>8.3}s, zero-comm {:>8.3}s  -> comm share {:>5.1}%",
            1usize << dim,
            full,
            zero,
            100.0 * (full - zero) / full
        );
    }
}
