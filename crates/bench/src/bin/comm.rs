//! Communication-skeleton benchmark: **owned (move-based) vs borrowed
//! (cloning)** data movement, emitted as `BENCH_comm.json`.
//!
//! ```text
//! cargo run --release -p scl-bench --bin comm [parts] [elems_per_bucket] [sweeps] [reps]
//! ```
//!
//! Three experiments, each timing the borrowed skeleton (clones every part
//! it routes) against its owned twin (moves parts, recycles buffers) under
//! the same machine and policy, with heap traffic measured by the counting
//! allocator in `scl-testkit`:
//!
//! * **total_exchange** (psrs-style): `p` parts × `p` buckets of
//!   `elems` i64 each, exchanged `sweeps` times (the bucket transpose is an
//!   involution, so the data survives a sweep chain);
//! * **rotate sweep** (cannon-style): a `p × p` grid of `elems`-float
//!   blocks, row-rotated one step `p` times — the inner loop of Cannon's
//!   algorithm;
//! * **jacobi double-buffer**: the real `jacobi_scl` app (owned halos +
//!   recycled sweep buffers) against the cloning sweep it replaced,
//!   reporting per-iteration allocations after warm-up.
//!
//! The machine charges are identical on both paths by construction (held by
//! `tests/owned_vs_borrowed.rs`); what this bench shows is the *host* cost
//! of the cloning discipline the machine model never charges for.

use scl_apps::jacobi::{jacobi_scl, jacobi_seq};
use scl_core::prelude::*;
use std::time::Instant;

#[global_allocator]
static ALLOC: scl_testkit::alloc::CountingAlloc = scl_testkit::alloc::CountingAlloc;

/// Wall time plus allocator deltas for `reps` runs of `f` (one warm-up).
fn measure<R>(reps: usize, mut f: impl FnMut() -> R) -> Sample {
    std::hint::black_box(f());
    let a0 = scl_testkit::alloc::allocations();
    let b0 = scl_testkit::alloc::allocated_bytes();
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    let millis = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    Sample {
        millis,
        allocs: (scl_testkit::alloc::allocations() - a0) / reps as u64,
        alloc_bytes: (scl_testkit::alloc::allocated_bytes() - b0) / reps as u64,
    }
}

struct Sample {
    millis: f64,
    allocs: u64,
    alloc_bytes: u64,
}

struct Row {
    bench: &'static str,
    mode: &'static str,
    sample: Sample,
}

fn exchange_input(p: usize, elems: usize) -> ParArray<Vec<Vec<i64>>> {
    ParArray::from_parts(
        (0..p)
            .map(|k| {
                (0..p)
                    .map(|i| (0..elems).map(|e| (k * p + i + e) as i64).collect())
                    .collect()
            })
            .collect(),
    )
}

fn grid_input(q: usize, elems: usize) -> ParArray<Vec<f64>> {
    ParArray::from_grid(
        q,
        q,
        (0..q * q)
            .map(|b| (0..elems).map(|e| (b * elems + e) as f64).collect())
            .collect(),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |d: usize| args.next().and_then(|s| s.parse().ok()).unwrap_or(d);
    let parts = next(8);
    let elems = next(8192);
    let sweeps = next(8);
    let reps = next(11);
    let policy = ExecPolicy::cost_driven();

    println!("communication-skeleton benchmark (owned vs cloning)");
    println!(
        "  {parts} parts, {elems} elems/bucket, {sweeps}-step sweeps, \
         {reps} reps, policy {policy:?}"
    );
    println!();

    let mut rows: Vec<Row> = Vec::new();

    // ---- total_exchange sweep (psrs-style) --------------------------------
    {
        let input = exchange_input(parts, elems);
        let mut scl = Scl::ap1000(parts).with_policy(policy);
        let borrowed = measure(reps, || {
            scl.reset();
            let mut cur = input.clone();
            for _ in 0..sweeps {
                cur = scl.total_exchange(&cur);
            }
            cur
        });
        let mut scl = Scl::ap1000(parts).with_policy(policy);
        let owned = measure(reps, || {
            scl.reset();
            let mut cur = input.clone();
            for _ in 0..sweeps {
                cur = scl.total_exchange_owned(cur);
            }
            cur
        });
        rows.push(Row {
            bench: "total_exchange",
            mode: "borrowed_cloning",
            sample: borrowed,
        });
        rows.push(Row {
            bench: "total_exchange",
            mode: "owned_moving",
            sample: owned,
        });
    }

    // ---- rotate sweep (cannon-style) --------------------------------------
    {
        let q = parts;
        let input = grid_input(q, elems);
        let mut scl = Scl::ap1000(q * q).with_policy(policy);
        let borrowed = measure(reps, || {
            scl.reset();
            let mut cur = input.clone();
            for _ in 0..sweeps {
                cur = scl.rotate_row(|_| 1, &cur);
            }
            cur
        });
        let mut scl = Scl::ap1000(q * q).with_policy(policy);
        let owned = measure(reps, || {
            scl.reset();
            let mut cur = input.clone();
            for _ in 0..sweeps {
                cur = scl.rotate_row_owned(|_| 1, cur);
            }
            cur
        });
        rows.push(Row {
            bench: "rotate_sweep",
            mode: "borrowed_cloning",
            sample: borrowed,
        });
        rows.push(Row {
            bench: "rotate_sweep",
            mode: "owned_moving",
            sample: owned,
        });
    }

    // ---- jacobi double-buffer ---------------------------------------------
    // Per-iteration heap allocations, measured as the delta between a long
    // and a short run so setup/teardown cancels out. The cloning baseline
    // is the sweep the owned path replaced: clone the field, write into the
    // clone.
    let (
        jacobi_per_iter,
        cloning_per_iter,
        jacobi_bytes_per_iter,
        cloning_bytes_per_iter,
        jacobi_speedup,
    ) = {
        let n = parts * elems;
        let p = parts;
        let u0: Vec<f64> = {
            let mut v = vec![0.0; n];
            v[n - 1] = 100.0;
            v
        };
        let (short, long) = (10usize, 10 + sweeps.max(20));
        let extra = (long - short) as u64;

        let mut scl = Scl::ap1000(p).with_policy(policy);
        let run = |scl: &mut Scl, iters: usize| jacobi_scl(scl, &u0, p, 0.0, iters);
        let owned_short = measure(reps, || run(&mut scl, short));
        let owned_long = measure(reps, || run(&mut scl, long));
        let per_iter = owned_long.allocs.saturating_sub(owned_short.allocs) / extra;
        let per_iter_bytes = owned_long
            .alloc_bytes
            .saturating_sub(owned_short.alloc_bytes)
            / extra;

        // cloning baseline, same arithmetic
        let clone_sweep = |scl: &mut Scl, iters: usize| {
            let da = scl.partition(Pattern::Block(p), &u0);
            let mut state = (da, 0usize, f64::INFINITY);
            while state.1 < iters {
                let (da, it, _) = state;
                let lasts = scl.map(&da, |v: &Vec<f64>| v.last().copied());
                let firsts = scl.map(&da, |v: &Vec<f64>| v.first().copied());
                let lh = scl.shift(1, &lasts, &None);
                let rh = scl.shift(-1, &firsts, &None);
                let cfg = scl_core::align3(lh, rh, da);
                let swept = scl.imap_costed(&cfg, |_, (lh, rh, v)| {
                    let m = v.len();
                    let mut nx = v.clone();
                    let mut diff = 0.0f64;
                    for i in 0..m {
                        let left = if i == 0 { *lh } else { Some(v[i - 1]) };
                        let right = if i + 1 == m { *rh } else { Some(v[i + 1]) };
                        if let (Some(l), Some(r)) = (left, right) {
                            nx[i] = 0.5 * (l + r);
                            diff = diff.max((nx[i] - v[i]).abs());
                        }
                    }
                    ((nx, diff), Work::flops(2 * m as u64))
                });
                let (nx, diffs) = scl_core::unalign(swept);
                let res = scl.fold(&diffs, |a, b| a.max(*b));
                state = (nx, it + 1, res);
            }
            scl.gather(&state.0)
        };
        let mut scl = Scl::ap1000(p).with_policy(policy);
        let clone_short = measure(reps, || clone_sweep(&mut scl, short));
        let clone_long = measure(reps, || clone_sweep(&mut scl, long));
        let clone_per_iter = clone_long.allocs.saturating_sub(clone_short.allocs) / extra;
        let clone_per_iter_bytes = clone_long
            .alloc_bytes
            .saturating_sub(clone_short.alloc_bytes)
            / extra;

        let speedup = clone_long.millis / owned_long.millis;
        rows.push(Row {
            bench: "jacobi",
            mode: "borrowed_cloning",
            sample: clone_long,
        });
        rows.push(Row {
            bench: "jacobi",
            mode: "owned_double_buffer",
            sample: owned_long,
        });

        // sanity: the double-buffered app still matches the sequential code
        let seq = jacobi_seq(&u0, 1e-6, 200);
        let mut check = Scl::ap1000(p);
        let par = jacobi_scl(&mut check, &u0, p, 1e-6, 200);
        assert_eq!(par.u, seq.u, "owned jacobi must match the sequential code");

        (
            per_iter,
            clone_per_iter,
            per_iter_bytes,
            clone_per_iter_bytes,
            speedup,
        )
    };

    println!(
        "{:<16} {:<22} {:>10} {:>14} {:>14}",
        "bench", "mode", "millis", "allocs/rep", "bytes/rep"
    );
    for r in &rows {
        println!(
            "{:<16} {:<22} {:>10.4} {:>14} {:>14}",
            r.bench, r.mode, r.sample.millis, r.sample.allocs, r.sample.alloc_bytes
        );
    }

    let speedup_of = |bench: &str| {
        let t = |mode: &str| {
            rows.iter()
                .find(|r| r.bench == bench && r.mode.starts_with(mode))
                .map(|r| r.sample.millis)
                .unwrap_or(f64::NAN)
        };
        t("borrowed") / t("owned")
    };
    let te_speedup = speedup_of("total_exchange");
    let rot_speedup = speedup_of("rotate_sweep");
    println!();
    println!("owned vs cloning speedup: total_exchange {te_speedup:.2}x, rotate_sweep {rot_speedup:.2}x, jacobi {jacobi_speedup:.2}x");
    println!(
        "jacobi per-iteration heap traffic after warm-up: owned {jacobi_per_iter} allocs / \
         {jacobi_bytes_per_iter} B (constant — double-buffered), cloning {cloning_per_iter} \
         allocs / {cloning_bytes_per_iter} B (O(field) fresh buffers every sweep)"
    );

    // ---- BENCH_comm.json --------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"comm_owned_vs_cloning\",\n");
    json.push_str(&format!("  \"parts\": {parts},\n"));
    json.push_str(&format!("  \"elems_per_bucket\": {elems},\n"));
    json.push_str(&format!("  \"sweeps\": {sweeps},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!(
        "  \"host_threads\": {},\n",
        scl_exec::host_threads()
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"bench\": \"{}\", \"mode\": \"{}\", \"millis\": {:.6}, \"allocs_per_rep\": {}, \"alloc_bytes_per_rep\": {}}}{}\n",
            r.bench,
            r.mode,
            r.sample.millis,
            r.sample.allocs,
            r.sample.alloc_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_owned_vs_cloning_total_exchange\": {te_speedup:.4},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_owned_vs_cloning_rotate_sweep\": {rot_speedup:.4},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_owned_vs_cloning_jacobi\": {jacobi_speedup:.4},\n"
    ));
    json.push_str(&format!(
        "  \"jacobi_allocs_per_iteration_owned\": {jacobi_per_iter},\n"
    ));
    json.push_str(&format!(
        "  \"jacobi_allocs_per_iteration_cloning\": {cloning_per_iter},\n"
    ));
    json.push_str(&format!(
        "  \"jacobi_alloc_bytes_per_iteration_owned\": {jacobi_bytes_per_iter},\n"
    ));
    json.push_str(&format!(
        "  \"jacobi_alloc_bytes_per_iteration_cloning\": {cloning_bytes_per_iter}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_comm.json", &json).expect("write BENCH_comm.json");
    println!();
    println!("wrote BENCH_comm.json");
}
