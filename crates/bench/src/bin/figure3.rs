//! Regenerates **Figure 3** of the paper: "Speedup of sorting on AP1000" —
//! the hyperquicksort speedup curve against the linear-speedup reference,
//! plus a PSRS series for the paper's "compares well with the best speedup
//! available" claim.
//!
//! ```text
//! cargo run --release -p scl-bench --bin figure3 [n] [seed]
//! ```

use scl_bench::{ascii_plot, psrs_rows, table1_rows};
use scl_core::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1995);

    println!("Figure 3: Speedup of sorting {n} integers (AP1000 cost model, seed {seed})");
    println!();
    let dims = [0u32, 1, 2, 3, 4, 5];
    let hqs = table1_rows(n, seed, &dims, CostModel::ap1000());
    let procs: Vec<usize> = dims.iter().map(|d| 1usize << d).collect();
    let psrs = psrs_rows(n, seed, &procs, CostModel::ap1000());

    println!("procs  hyperquicksort_speedup  psrs_speedup  linear");
    for (h, s) in hqs.iter().zip(&psrs) {
        println!(
            "{:>5}  {:>22.2}  {:>12.2}  {:>6}",
            h.procs, h.speedup, s.speedup, h.procs
        );
    }
    println!();

    let hqs_pts: Vec<(f64, f64)> = hqs.iter().map(|r| (r.procs as f64, r.speedup)).collect();
    let psrs_pts: Vec<(f64, f64)> = psrs.iter().map(|r| (r.procs as f64, r.speedup)).collect();
    let linear: Vec<(f64, f64)> = (1..=32).map(|p| (p as f64, p as f64)).collect();
    print!(
        "{}",
        ascii_plot(
            &[
                ("linear speedup", '.', linear),
                ("hyperquicksort", '*', hqs_pts),
                ("psrs", '+', psrs_pts),
            ],
            56,
            18,
        )
    );
}
