//! Fused-executor benchmark: eager vs fused vs optimized+fused wall time
//! on a compute pipeline, emitted as `BENCH_fused.json`.
//!
//! ```text
//! cargo run --release -p scl-bench --bin fused [partitions] [stages] [elems_per_part] [reps]
//! ```
//!
//! The pipeline experiment builds a plan of `stages` part-local map stages
//! over `partitions` partitions of `elems_per_part` floats and times, under
//! the **same** threaded policy (`Threads(max(host, 4))`, so the dispatch
//! difference is visible even on small hosts):
//!
//! * **eager** — `Skel::run`: one scoped-thread spawn-and-join and one
//!   materialised intermediate array per stage;
//! * **fused** — `Scl::run_fused`: the whole chain as one partition-resident
//!   segment on the persistent pool;
//!
//! plus `fused_cost_driven` (the cost model picks threads/grain per
//! segment) and `fused_sequential` for reference.
//!
//! The symbolic experiment separates compile from run, the way the paper
//! means optimisation to be used (optimise once, execute many times): it
//! times the eager original pipeline per run vs the optimised+raised plan
//! per run through the fused executor, reporting the one-off
//! `optimize_ms` alongside.

use scl_core::prelude::*;
use std::time::Instant;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Median wall-clock milliseconds of `f` over `reps` runs (one warm-up).
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    median(samples)
}

/// One part-local stage: elementwise multiply-add over the part.
fn stage() -> Skel<'static, ParArray<Vec<f64>>, ParArray<Vec<f64>>> {
    Skel::map_costed(|v: &Vec<f64>| {
        let out: Vec<f64> = v.iter().map(|x| x.mul_add(1.0001, 0.25)).collect();
        (out, Work::flops(2 * v.len() as u64))
    })
}

fn pipeline_plan(stages: usize) -> Skel<'static, ParArray<Vec<f64>>, ParArray<Vec<f64>>> {
    let mut plan = stage();
    for _ in 1..stages {
        plan = plan.then(stage());
    }
    plan
}

fn input(partitions: usize, elems: usize) -> ParArray<Vec<f64>> {
    ParArray::from_parts(
        (0..partitions)
            .map(|p| (0..elems).map(|i| (p * elems + i) as f64 * 1e-3).collect())
            .collect(),
    )
}

struct Row {
    mode: &'static str,
    millis: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |d: usize| args.next().and_then(|s| s.parse().ok()).unwrap_or(d);
    let partitions = next(8);
    let stages = next(16);
    let elems = next(4096);
    let reps = next(15);
    let threads = scl_exec::host_threads();
    // both executors get the same thread budget; at least 4 so the
    // spawn-per-skeleton vs persistent-pool difference is measured even on
    // single-core CI runners
    let pol = ExecPolicy::Threads(threads.max(4));

    println!("fused-executor pipeline benchmark");
    println!(
        "  {partitions} partitions x {stages} stages x {elems} elems/part, \
         {reps} reps (median), {threads} host threads, policy {pol:?}"
    );
    println!();

    // ---- pipeline experiment: eager vs fused ------------------------------
    let plan = pipeline_plan(stages);
    let data = input(partitions, elems);

    let mut eager_ctx = Scl::ap1000(partitions).with_policy(pol);
    let eager_ms = time_ms(reps, || {
        eager_ctx.reset();
        plan.run(&mut eager_ctx, data.clone())
    });
    // one context per mode, reused across reps: the persistent pool is the
    // point of the fused executor
    let mut fused_ctx = Scl::ap1000(partitions).with_policy(pol);
    let fused_ms = time_ms(reps, || {
        fused_ctx.reset();
        fused_ctx.run_fused(&plan, data.clone()).unwrap()
    });
    let mut cost_ctx = Scl::ap1000(partitions).with_policy(ExecPolicy::cost_driven());
    let cost_ms = time_ms(reps, || {
        cost_ctx.reset();
        cost_ctx.run_fused(&plan, data.clone()).unwrap()
    });
    let mut seq_ctx = Scl::ap1000(partitions);
    let seq_ms = time_ms(reps, || {
        seq_ctx.reset();
        seq_ctx.run_fused(&plan, data.clone()).unwrap()
    });

    // sanity: the two executors agree bit-for-bit
    {
        let mut a = Scl::ap1000(partitions).with_policy(pol);
        let mut b = Scl::ap1000(partitions).with_policy(pol);
        assert_eq!(
            plan.run(&mut a, data.clone()),
            b.run_fused(&plan, data.clone()).unwrap(),
            "fused execution must agree with eager"
        );
    }

    // ---- symbolic experiment: optimise once, run many ---------------------
    let reg = Registry::standard();
    let mut sym = Skel::map_sym("inc", &reg);
    for i in 1..stages {
        sym = sym.then(Skel::map_sym(
            ["double", "inc", "square", "dec"][i % 4],
            &reg,
        ));
        if i % 4 == 3 {
            // cancelling rotations for the rewrite engine to erase
            sym = sym.then(Skel::rotate(2)).then(Skel::rotate(-2));
        }
    }
    let sym_parts = 256usize; // simulated processors are free
    let sym_input = ParArray::from_parts((0..sym_parts as i64).collect::<Vec<i64>>());
    let mut sym_eager_ctx = Scl::ap1000(sym_parts);
    let sym_eager_ms = time_ms(reps, || {
        sym_eager_ctx.reset();
        sym.run(&mut sym_eager_ctx, sym_input.clone())
    });
    let t0 = Instant::now();
    let lowered = sym.lower(&reg).expect("symbolic pipeline is lowerable");
    let (opt_expr, _log) = scl_transform::optimize(lowered, &reg);
    let raised = Skel::from_expr(&opt_expr, &reg).expect("optimise preserves shape");
    let optimize_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut sym_opt_ctx = Scl::ap1000(sym_parts);
    let sym_opt_ms = time_ms(reps, || {
        sym_opt_ctx.reset();
        sym_opt_ctx.run_fused(&raised, sym_input.clone()).unwrap()
    });

    let rows = [
        Row {
            mode: "eager_threads",
            millis: eager_ms,
        },
        Row {
            mode: "fused_threads",
            millis: fused_ms,
        },
        Row {
            mode: "fused_cost_driven",
            millis: cost_ms,
        },
        Row {
            mode: "fused_sequential",
            millis: seq_ms,
        },
        Row {
            mode: "symbolic_eager",
            millis: sym_eager_ms,
        },
        Row {
            mode: "symbolic_optimized_fused",
            millis: sym_opt_ms,
        },
    ];
    println!("{:<26} {:>12}", "mode", "millis");
    for r in &rows {
        println!("{:<26} {:>12.4}", r.mode, r.millis);
    }
    let speedup = eager_ms / fused_ms;
    let sym_speedup = sym_eager_ms / sym_opt_ms;
    println!();
    println!("fused vs eager speedup:              {speedup:.2}x");
    println!("optimized+fused vs eager (symbolic): {sym_speedup:.2}x (one-off optimize: {optimize_ms:.3} ms)");

    // ---- BENCH_fused.json -------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"fused_pipeline\",\n");
    json.push_str(&format!("  \"partitions\": {partitions},\n"));
    json.push_str(&format!("  \"stages\": {stages},\n"));
    json.push_str(&format!("  \"elems_per_part\": {elems},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"host_threads\": {threads},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"millis\": {:.6}}}{}\n",
            r.mode,
            r.millis,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_fused_vs_eager\": {speedup:.4},\n"));
    json.push_str(&format!("  \"symbolic_partitions\": {sym_parts},\n"));
    json.push_str(&format!(
        "  \"symbolic_optimize_once_ms\": {optimize_ms:.6},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_optimized_fused_vs_eager_symbolic\": {sym_speedup:.4}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_fused.json", &json).expect("write BENCH_fused.json");
    println!();
    println!("wrote BENCH_fused.json");
}
