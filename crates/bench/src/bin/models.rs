//! Portability / crossover study — the paper's third compositional
//! property ("parallel programs can be efficiently implemented on a wide
//! range of parallel machines by specialised implementations of the
//! compositional operators on target architectures"), made quantitative:
//! run the *same* hyperquicksort program against different machine models
//! and input sizes, and report where the optimal processor count and the
//! hyperquicksort-vs-PSRS crossover fall.
//!
//! ```text
//! cargo run --release -p scl-bench --bin models
//! ```

use scl_bench::{psrs_rows, table1_rows};
use scl_core::prelude::*;

fn main() {
    let dims: Vec<u32> = (0..=5).collect();
    let procs: Vec<usize> = dims.iter().map(|d| 1usize << d).collect();

    for (name, model) in [
        ("ap1000 (1991: slow cpu, slow net)", CostModel::ap1000()),
        (
            "modern_cluster (fast cpu, fast net)",
            CostModel::modern_cluster(),
        ),
        ("zero_comm (infinitely fast net)", CostModel::zero_comm()),
    ] {
        println!("== {name} ==");
        println!(
            "{:>9} | {:>28} | {:>28}",
            "n", "hyperquicksort best(p, S)", "psrs best(p, S)"
        );
        for n in [10_000usize, 100_000, 1_000_000] {
            let hqs = table1_rows(n, 1995, &dims, model);
            let psrs = psrs_rows(n, 1995, &procs, model);
            let best = |rows: &[scl_bench::SortRow]| {
                let r = rows
                    .iter()
                    .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap())
                    .unwrap();
                format!(
                    "p={:<2} speedup={:>6.2} t={:>8.4}s",
                    r.procs, r.speedup, r.seconds
                )
            };
            println!("{:>9} | {:>28} | {:>28}", n, best(&hqs), best(&psrs));
        }
        println!();
    }

    println!("reading: on the AP1000 model the optimum sits at full machine size for");
    println!("large n but communication overheads flatten the curve; zero-comm shows");
    println!("the pure-compute bound; the modern model pushes the crossover towards");
    println!("much larger n because cores got faster *more* than networks did.");
}
