//! Queue-layer micro-benchmark: throughput of the lock-free SPSC ring
//! and its MPMC lane-matrix composition against the mutex+condvar
//! [`Bounded`] channel and `std::sync::mpsc::sync_channel`, emitted as
//! `BENCH_queue.json`.
//!
//! ```text
//! cargo run --release -p scl-bench --bin queue [items] [capacity]
//! ```
//!
//! Three shapes, all moving `u64` payloads so the numbers measure the
//! transport, not the item:
//!
//! * **spsc 1p1c** — one producer thread, the main thread consuming:
//!   [`ring`] vs [`Bounded`] vs `sync_channel`. This is the shape every
//!   farm link in `scl-stream` reduces to per lane, and the headline
//!   ratio (`speedup_spsc_ring_vs_bounded`) is the acceptance gate: the
//!   ring must beat the locked channel even on a small host.
//! * **mpmc t×t** for t ∈ {2, 4} — `t` producer threads and `t` consumer
//!   threads over one transport: [`ring_mpmc`]'s per-pair lanes vs one
//!   shared [`Bounded`]. Every consumer checksums what it claims and the
//!   sums must reconcile — a throughput number that lost items would be
//!   meaningless.
//!
//! Results record [`host_threads`] (as every `BENCH_*.json` does): on a
//! single-core runner the two sides of a queue time-slice one CPU, so
//! absolute rates are far below multi-core figures and the interesting
//! signal is the *ratio* between transports.

use scl_exec::{host_threads, ring, ring_mpmc, Bounded};
use std::time::Instant;

struct Row {
    family: &'static str,
    shape: String,
    transport: &'static str,
    items: usize,
    millis: f64,
    items_per_sec: f64,
}

fn row(family: &'static str, shape: &str, transport: &'static str, items: usize, secs: f64) -> Row {
    Row {
        family,
        shape: shape.to_string(),
        transport,
        items,
        millis: secs * 1e3,
        items_per_sec: items as f64 / secs,
    }
}

/// Expected checksum of `0..n` as u64.
fn checksum(n: usize) -> u64 {
    let n = n as u64;
    n * (n - 1) / 2
}

fn spsc_ring(n: usize, cap: usize) -> f64 {
    let (tx, rx) = ring::<u64>(cap);
    let t0 = Instant::now();
    let prod = std::thread::spawn(move || {
        for i in 0..n as u64 {
            tx.send(i).expect("receiver alive");
        }
    });
    let mut sum = 0u64;
    while let Some(x) = rx.recv() {
        sum += x;
    }
    prod.join().expect("producer clean");
    assert_eq!(sum, checksum(n), "spsc ring lost or duplicated items");
    t0.elapsed().as_secs_f64()
}

fn spsc_bounded(n: usize, cap: usize) -> f64 {
    let q = Bounded::<u64>::new(cap);
    let tx = q.clone();
    let t0 = Instant::now();
    let prod = std::thread::spawn(move || {
        for i in 0..n as u64 {
            tx.send(i).expect("receiver alive");
        }
        tx.close();
    });
    let mut sum = 0u64;
    while let Some(x) = q.recv() {
        sum += x;
    }
    prod.join().expect("producer clean");
    assert_eq!(sum, checksum(n), "bounded lost or duplicated items");
    t0.elapsed().as_secs_f64()
}

fn spsc_std_mpsc(n: usize, cap: usize) -> f64 {
    let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(cap);
    let t0 = Instant::now();
    let prod = std::thread::spawn(move || {
        for i in 0..n as u64 {
            tx.send(i).expect("receiver alive");
        }
    });
    let mut sum = 0u64;
    while let Ok(x) = rx.recv() {
        sum += x;
    }
    prod.join().expect("producer clean");
    assert_eq!(sum, checksum(n), "std mpsc lost or duplicated items");
    t0.elapsed().as_secs_f64()
}

fn mpmc_ring(n: usize, threads: usize, cap: usize) -> f64 {
    let (txs, rxs) = ring_mpmc::<u64>(threads, threads, cap);
    let per = n / threads;
    let t0 = Instant::now();
    let mut joins = Vec::new();
    for (p, tx) in txs.into_iter().enumerate() {
        joins.push(std::thread::spawn(move || {
            for i in 0..per as u64 {
                tx.send((p * per) as u64 + i).expect("consumers alive");
            }
            0u64 // senders close their lanes on drop
        }));
    }
    for rx in rxs {
        joins.push(std::thread::spawn(move || {
            let mut sum = 0u64;
            while let Some(x) = rx.recv() {
                sum += x;
            }
            sum
        }));
    }
    let sum: u64 = joins.into_iter().map(|j| j.join().expect("clean")).sum();
    assert_eq!(sum, checksum(per * threads), "mpmc ring lost items");
    t0.elapsed().as_secs_f64()
}

fn mpmc_bounded(n: usize, threads: usize, cap: usize) -> f64 {
    let q = Bounded::<u64>::new(cap);
    let per = n / threads;
    let done = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let t0 = Instant::now();
    let mut joins = Vec::new();
    for p in 0..threads {
        let tx = q.clone();
        let done = std::sync::Arc::clone(&done);
        joins.push(std::thread::spawn(move || {
            for i in 0..per as u64 {
                tx.send((p * per) as u64 + i).expect("consumers alive");
            }
            // last producer out closes the shared channel
            if done.fetch_add(1, std::sync::atomic::Ordering::AcqRel) + 1 == threads {
                tx.close();
            }
            0u64
        }));
    }
    for _ in 0..threads {
        let rx = q.clone();
        joins.push(std::thread::spawn(move || {
            let mut sum = 0u64;
            while let Some(x) = rx.recv() {
                sum += x;
            }
            sum
        }));
    }
    let sum: u64 = joins.into_iter().map(|j| j.join().expect("clean")).sum();
    assert_eq!(sum, checksum(per * threads), "mpmc bounded lost items");
    t0.elapsed().as_secs_f64()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |d: usize| args.next().and_then(|s| s.parse().ok()).unwrap_or(d);
    let n_items = next(1_000_000).max(1000);
    let capacity = next(256).max(2);
    let host = host_threads();

    println!("queue-layer benchmark");
    println!("  {n_items} u64 items, capacity {capacity}, {host} host threads");
    println!();

    // warm-up: touch every transport once so first-use costs (thread
    // spawn paths, allocator) land outside the timed runs
    let warm = 10_000;
    spsc_ring(warm, capacity);
    spsc_bounded(warm, capacity);
    spsc_std_mpsc(warm, capacity);

    let mut rows = Vec::new();
    let ring_secs = spsc_ring(n_items, capacity);
    rows.push(row("spsc", "1p1c", "ring", n_items, ring_secs));
    let bounded_secs = spsc_bounded(n_items, capacity);
    rows.push(row("spsc", "1p1c", "bounded", n_items, bounded_secs));
    let mpsc_secs = spsc_std_mpsc(n_items, capacity);
    rows.push(row("spsc", "1p1c", "std_mpsc", n_items, mpsc_secs));

    for threads in [2usize, 4] {
        let shape = format!("{threads}p{threads}c");
        let secs = mpmc_ring(n_items, threads, capacity);
        rows.push(row("mpmc", &shape, "ring", n_items, secs));
        let secs = mpmc_bounded(n_items, threads, capacity);
        rows.push(row("mpmc", &shape, "bounded", n_items, secs));
    }

    println!(
        "{:<6} {:<6} {:<9} {:>10} {:>10} {:>14}",
        "family", "shape", "transport", "items", "millis", "items/sec"
    );
    for r in &rows {
        println!(
            "{:<6} {:<6} {:<9} {:>10} {:>10.2} {:>14.0}",
            r.family, r.shape, r.transport, r.items, r.millis, r.items_per_sec
        );
    }
    let speedup = bounded_secs / ring_secs;
    let speedup_mpsc = mpsc_secs / ring_secs;
    println!();
    println!("spsc ring vs Bounded:  {speedup:.2}x");
    println!("spsc ring vs std mpsc: {speedup_mpsc:.2}x");

    // ---- BENCH_queue.json -------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"queue_layer\",\n");
    json.push_str(&format!("  \"items\": {n_items},\n"));
    json.push_str(&format!("  \"capacity\": {capacity},\n"));
    json.push_str(&format!("  \"host_threads\": {host},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"family\": \"{}\", \"shape\": \"{}\", \"transport\": \"{}\", \
             \"items\": {}, \"millis\": {:.3}, \"items_per_sec\": {:.1}}}{}\n",
            r.family,
            r.shape,
            r.transport,
            r.items,
            r.millis,
            r.items_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_spsc_ring_vs_bounded\": {speedup:.4},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_spsc_ring_vs_std_mpsc\": {speedup_mpsc:.4}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_queue.json", &json).expect("write BENCH_queue.json");
    println!();
    println!("wrote BENCH_queue.json");
}
