//! Multi-tenant serving benchmark: the plan cache and shared graphs vs
//! per-request setup, emitted as `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p scl-bench --bin serve [requests_per_tenant] [partitions] [stages]
//! ```
//!
//! Two experiments, each swept over tenant counts `1, 2, 4, 8` (every
//! tenant owning its own distinct plan):
//!
//! * **cached vs cold** — all tenants submit through one `Serve` in
//!   optimize-then-execute mode. *Cached*: the default plan cache, so
//!   lower → §4 optimise → raise → graph construction happens once per
//!   distinct plan and every later request reuses the compiled graph.
//!   *Cold*: `with_plan_cache_cap(0)`, the compile-per-request baseline a
//!   service without a plan cache would pay. Same requests, same answers
//!   (asserted), different setup cost — the headline is cached/cold
//!   time at ≥ 4 tenants.
//!
//! * **throughput vs solo** — N tenants' plain-mode traffic through one
//!   `Serve` (shared persistent graphs, batched pushes) vs the same N×R
//!   requests as solo `plan.run` calls on a reset context under the same
//!   thread budget: the items/sec cost of *not* having a serving layer.

use scl_core::prelude::*;
use scl_serve::{Serve, ServePolicy, Ticket};
use std::time::Instant;

/// Tenant `i`'s symbolic plan: `stages` maps interleaved with cancelling
/// rotations, ending in a tenant-distinct rotate — heavy enough that the
/// optimizer has real fusion work, distinct enough that every tenant's
/// fingerprint differs.
fn sym_plan(reg: &'static Registry, stages: usize, tenant: usize) -> SymPlan {
    let names = ["inc", "double", "dec", "square"];
    let mut p = Skel::map_sym(names[0], reg);
    for s in 1..stages.max(2) {
        if s % 4 == 0 {
            let k = (s % 5 + 1) as isize;
            p = p.then(Skel::rotate(k)).then(Skel::rotate(-k));
        }
        p = p.then(Skel::map_sym(names[s % names.len()], reg));
    }
    p.then(Skel::rotate(tenant as isize + 1))
}

type SymPlan = Skel<'static, ParArray<i64>, ParArray<i64>>;

/// Tenant `i`'s plain-mode plan: opaque maps around a rotate barrier.
fn plain_plan(stages: usize, tenant: usize) -> SymPlan {
    let mut p =
        Skel::map_costed(move |x: &i64| (x.wrapping_mul(3).wrapping_add(1), Work::flops(1)));
    for s in 1..stages.max(2) {
        if s == stages / 2 {
            p = p.then(Skel::rotate(tenant as isize + 1));
        }
        p = p.then(Skel::map_costed(|x: &i64| {
            (x.wrapping_add(7) ^ 0x55, Work::flops(1))
        }));
    }
    p
}

fn input(partitions: usize, k: usize) -> ParArray<i64> {
    ParArray::from_parts((0..partitions as i64).map(|i| i * 31 + k as i64).collect())
}

/// Run `requests` optimized submissions per tenant through `srv`,
/// returning elapsed seconds (submissions + service + takes).
fn drive_optimized(
    srv: &mut Serve<ParArray<i64>, ParArray<i64>>,
    reg: &'static Registry,
    tenants: usize,
    requests: usize,
    partitions: usize,
    stages: usize,
    cold: bool,
) -> (f64, Vec<ParArray<i64>>) {
    let ids: Vec<_> = (0..tenants)
        .map(|i| srv.add_tenant(&format!("t{i}")))
        .collect();
    let plans: Vec<SymPlan> = (0..tenants).map(|i| sym_plan(reg, stages, i)).collect();
    let t0 = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::new();
    for k in 0..requests {
        for (i, t) in ids.iter().enumerate() {
            let tk = srv
                .submit_optimized(*t, "", &plans[i], reg, input(partitions, k))
                .unwrap();
            tickets.push(tk);
            if cold {
                // a cache-less service cannot defer: it compiles and
                // serves per request (retention is off, so batching
                // across requests would be compiling anyway)
                srv.run_until_idle();
            }
        }
    }
    srv.run_until_idle();
    let outs: Vec<ParArray<i64>> = tickets
        .into_iter()
        .map(|tk| srv.take(tk).unwrap().0)
        .collect();
    (t0.elapsed().as_secs_f64(), outs)
}

struct CacheRow {
    tenants: usize,
    cached_millis: f64,
    cold_millis: f64,
    speedup: f64,
}

struct ThroughputRow {
    tenants: usize,
    serve_rate: f64,
    solo_rate: f64,
    speedup: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |d: usize| args.next().and_then(|s| s.parse().ok()).unwrap_or(d);
    let requests = next(16);
    let partitions = next(8);
    let stages = next(24);
    let host = scl_exec::host_threads();
    let threads = host.clamp(2, 4);
    let reg: &'static Registry = Box::leak(Box::new(Registry::standard()));
    let tenant_counts = [1usize, 2, 4, 8];

    println!("multi-tenant serving benchmark");
    println!(
        "  {requests} requests/tenant x {partitions} partitions x {stages} stages, \
         {host} host threads, exec Threads({threads})"
    );
    println!();

    let policy = |cap: usize| {
        ServePolicy::new(Machine::ap1000(partitions))
            .with_exec(ExecPolicy::Threads(threads))
            .with_threads(threads)
            .with_plan_cache_cap(cap)
    };

    // ---- cached vs cold: the plan cache's worth ---------------------------
    let mut cache_rows: Vec<CacheRow> = Vec::new();
    for &tenants in &tenant_counts {
        let mut cached = Serve::new(policy(32));
        let (cached_secs, cached_outs) = drive_optimized(
            &mut cached,
            reg,
            tenants,
            requests,
            partitions,
            stages,
            false,
        );
        assert_eq!(cached.stats().cache_misses as usize, tenants);

        let mut cold = Serve::new(policy(0));
        let (cold_secs, cold_outs) =
            drive_optimized(&mut cold, reg, tenants, requests, partitions, stages, true);
        assert_eq!(
            cold.stats().cache_misses as usize,
            tenants * requests,
            "cold mode compiles per request"
        );
        assert_eq!(cached_outs, cold_outs, "both paths serve the same answers");

        cache_rows.push(CacheRow {
            tenants,
            cached_millis: cached_secs * 1e3,
            cold_millis: cold_secs * 1e3,
            speedup: cold_secs / cached_secs,
        });
    }

    println!(
        "{:<22} {:>8} {:>14} {:>12} {:>9}",
        "experiment", "tenants", "cached ms", "cold ms", "speedup"
    );
    for r in &cache_rows {
        println!(
            "{:<22} {:>8} {:>14.2} {:>12.2} {:>8.2}x",
            "cached_vs_cold", r.tenants, r.cached_millis, r.cold_millis, r.speedup
        );
    }
    println!();

    // ---- N-tenant throughput vs N solo runs -------------------------------
    let mut tput_rows: Vec<ThroughputRow> = Vec::new();
    for &tenants in &tenant_counts {
        // shared service, one distinct plan per tenant
        let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(policy(32));
        let ids: Vec<_> = (0..tenants)
            .map(|i| srv.add_tenant(&format!("t{i}")))
            .collect();
        // warm the cache so the sweep measures serving, not compilation
        let mut warm: Vec<Ticket> = Vec::new();
        for (i, t) in ids.iter().enumerate() {
            warm.push(
                srv.submit(*t, plain_plan(stages, i), input(partitions, 0))
                    .unwrap(),
            );
        }
        srv.run_until_idle();
        assert_eq!(
            srv.stats().cache_misses as usize,
            tenants,
            "every tenant's plan fingerprints distinctly (one compile each)"
        );
        let expect: Vec<ParArray<i64>> =
            warm.into_iter().map(|tk| srv.take(tk).unwrap().0).collect();
        // every tenant really is served its own plan (the rotate amounts
        // differ, so the answers must too once tenants > 1)
        let mut solo_ctx = Scl::ap1000(partitions);
        for (i, got) in expect.iter().enumerate() {
            let want = plain_plan(stages, i).run(&mut solo_ctx, input(partitions, 0));
            assert_eq!(*got, want, "tenant {i}'s warm answer is its own plan's");
            solo_ctx.reset();
        }

        let n_items = tenants * requests;
        let t0 = Instant::now();
        let mut tickets: Vec<Ticket> = Vec::new();
        for k in 0..requests {
            for (i, t) in ids.iter().enumerate() {
                tickets.push(
                    srv.submit(*t, plain_plan(stages, i), input(partitions, k))
                        .unwrap(),
                );
            }
        }
        srv.run_until_idle();
        let first = srv.take(tickets[0]).unwrap().0;
        assert_eq!(first, expect[0], "serve agrees with its warm-up answer");
        let serve_secs = t0.elapsed().as_secs_f64();
        let serve_rate = n_items as f64 / serve_secs;

        // solo baseline: every request pays per-call setup
        let plans: Vec<SymPlan> = (0..tenants).map(|i| plain_plan(stages, i)).collect();
        let mut ctx = Scl::ap1000(partitions).with_policy(ExecPolicy::Threads(threads));
        let t0 = Instant::now();
        for k in 0..requests {
            for plan in &plans {
                ctx.reset();
                std::hint::black_box(plan.run(&mut ctx, input(partitions, k)));
            }
        }
        let solo_secs = t0.elapsed().as_secs_f64();
        let solo_rate = n_items as f64 / solo_secs;

        tput_rows.push(ThroughputRow {
            tenants,
            serve_rate,
            solo_rate,
            speedup: serve_rate / solo_rate,
        });
    }

    println!(
        "{:<22} {:>8} {:>14} {:>12} {:>9}",
        "experiment", "tenants", "serve it/s", "solo it/s", "speedup"
    );
    for r in &tput_rows {
        println!(
            "{:<22} {:>8} {:>14.1} {:>12.1} {:>8.2}x",
            "throughput_vs_solo", r.tenants, r.serve_rate, r.solo_rate, r.speedup
        );
    }

    let at4 = cache_rows
        .iter()
        .find(|r| r.tenants == 4)
        .map_or(0.0, |r| r.speedup);
    println!();
    println!("cached vs cold compile-per-request at 4 tenants: {at4:.2}x");

    // ---- BENCH_serve.json -------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"serve_multi_tenant\",\n");
    json.push_str(&format!("  \"requests_per_tenant\": {requests},\n"));
    json.push_str(&format!("  \"partitions\": {partitions},\n"));
    json.push_str(&format!("  \"stages\": {stages},\n"));
    json.push_str(&format!("  \"host_threads\": {host},\n"));
    json.push_str(&format!("  \"exec_threads\": {threads},\n"));
    json.push_str("  \"cached_vs_cold\": [\n");
    for (i, r) in cache_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tenants\": {}, \"cached_millis\": {:.3}, \"cold_millis\": {:.3}, \
             \"speedup\": {:.4}}}{}\n",
            r.tenants,
            r.cached_millis,
            r.cold_millis,
            r.speedup,
            if i + 1 < cache_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"throughput_vs_solo\": [\n");
    for (i, r) in tput_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tenants\": {}, \"serve_items_per_sec\": {:.3}, \
             \"solo_items_per_sec\": {:.3}, \"speedup\": {:.4}}}{}\n",
            r.tenants,
            r.serve_rate,
            r.solo_rate,
            r.speedup,
            if i + 1 < tput_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_cached_vs_cold_at_4_tenants\": {at4:.4}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!();
    println!("wrote BENCH_serve.json");
}
