//! Closed-loop SLA benchmark for the TCP front door, emitted as
//! `BENCH_sla.json`.
//!
//! ```text
//! cargo run --release -p scl-bench --bin sla [duration_ms] [flood_threads]
//! ```
//!
//! Two tenants share one `scl-net` server over loopback:
//!
//! * **gold** — a paying tenant with a `p99 < 50ms` latency contract,
//!   driven by 2 closed-loop clients at a measured pace.
//! * **flood** — a best-effort tenant with no contract, driven by N
//!   closed-loop clients as fast as the socket allows, deliberately
//!   overloading a capacity-4 admission queue under shed-oldest.
//!
//! The question the bench answers: does load shedding plus the autonomic
//! manager (weight boost, batch-window shrink) keep the *admitted*
//! gold requests inside their contract while the flood is shed — and is
//! the shedding reported honestly? Latency quantiles are computed
//! client-side over every completed request (not a sliding window), and
//! the JSON records shed/rejected counts next to the quantiles so a
//! flattering p99 can never hide a brutal shed rate.

use scl_net::{Mode, NetClient, NetConfig, NetServer, ShedPolicy, SloContract, TenantSpec};
use std::time::{Duration, Instant};

const GOLD: u32 = 0;
const FLOOD: u32 = 1;
const SLO_MS: f64 = 50.0;

/// One closed-loop client's tally.
#[derive(Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    shed: u64,
    rejected: u64,
    errors: u64,
}

fn drive(addr: std::net::SocketAddr, tenant: u32, source: &str, deadline: Instant) -> Tally {
    let mut c = NetClient::connect(addr).expect("connect");
    let payload: Vec<i64> = (0..8).collect();
    let mut t = Tally::default();
    while Instant::now() < deadline {
        let t0 = Instant::now();
        match c.submit_source(tenant, Mode::Plain, source, "", &payload) {
            Ok(_) => t.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3),
            Err(scl_net::ClientError::Server { code, .. }) => match code {
                scl_net::ErrorCode::Shed => t.shed += 1,
                scl_net::ErrorCode::QueueFull | scl_net::ErrorCode::Draining => t.rejected += 1,
                _ => t.errors += 1,
            },
            Err(_) => {
                t.errors += 1;
                break; // transport gone; this client is done
            }
        }
    }
    t
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct TenantRow {
    name: &'static str,
    completed: u64,
    shed: u64,
    rejected: u64,
    errors: u64,
    p50_ms: f64,
    p99_ms: f64,
    throughput_rps: f64,
}

fn merge(name: &'static str, tallies: Vec<Tally>, secs: f64) -> TenantRow {
    let mut lats: Vec<f64> = Vec::new();
    let (mut shed, mut rejected, mut errors) = (0, 0, 0);
    for t in tallies {
        lats.extend(t.latencies_ms);
        shed += t.shed;
        rejected += t.rejected;
        errors += t.errors;
    }
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    TenantRow {
        name,
        completed: lats.len() as u64,
        shed,
        rejected,
        errors,
        p50_ms: quantile(&lats, 0.50),
        p99_ms: quantile(&lats, 0.99),
        throughput_rps: lats.len() as f64 / secs,
    }
}

fn main() {
    let duration_ms: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1500);
    let flood_threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let gold_threads = 2usize;

    let server = NetServer::start(NetConfig {
        procs: 8,
        queue_capacity: 4,
        shed: ShedPolicy::ShedOldest,
        tenants: vec![
            TenantSpec::new("gold")
                .with_weight(4)
                .with_slo(SloContract::parse(&format!("p99<{SLO_MS}ms")).unwrap()),
            TenantSpec::new("flood"),
        ],
        manager_tick: Duration::from_millis(25),
        ..NetConfig::default()
    })
    .expect("server start");
    let addr = server.local_addr();

    let deadline = Instant::now() + Duration::from_millis(duration_ms);
    let t0 = Instant::now();
    let gold_handles: Vec<_> = (0..gold_threads)
        .map(|_| std::thread::spawn(move || drive(addr, GOLD, "map(inc) . scan(add)", deadline)))
        .collect();
    // the flood runs a heavier plan so overload is about service time,
    // not just socket churn
    let flood_handles: Vec<_> = (0..flood_threads)
        .map(|_| std::thread::spawn(move || drive(addr, FLOOD, "map(heavy) . rotate(1)", deadline)))
        .collect();

    let gold_tallies: Vec<Tally> = gold_handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    let flood_tallies: Vec<Tally> = flood_handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    let secs = t0.elapsed().as_secs_f64();

    let stats = server.stats_json();
    server.shutdown();

    let gold = merge("gold", gold_tallies, secs);
    let flood = merge("flood", flood_tallies, secs);
    let rows = [&gold, &flood];

    // action-log entries are the only bare strings at this indent in the
    // stats JSON (tenant rows are objects)
    let manager_actions = stats.matches("\n    \"").count();
    let slo_met = gold.completed > 0 && gold.p99_ms <= SLO_MS;
    let offered = |r: &TenantRow| r.completed + r.shed + r.rejected + r.errors;
    let shed_rate = |r: &TenantRow| (r.shed + r.rejected) as f64 / (offered(r) as f64).max(1.0);

    println!(
        "SLA bench: {}ms closed loop, {} gold + {} flood clients, queue cap 4, shed-oldest",
        duration_ms, gold_threads, flood_threads
    );
    println!();
    println!(
        "{:<8} {:>10} {:>8} {:>9} {:>8} {:>9} {:>9} {:>10}",
        "tenant", "completed", "shed", "rejected", "errors", "p50 ms", "p99 ms", "rps"
    );
    for r in rows {
        println!(
            "{:<8} {:>10} {:>8} {:>9} {:>8} {:>9.3} {:>9.3} {:>10.1}",
            r.name, r.completed, r.shed, r.rejected, r.errors, r.p50_ms, r.p99_ms, r.throughput_rps
        );
    }
    println!();
    println!(
        "gold contract p99 < {SLO_MS}ms over admitted requests: {} (p99 = {:.3}ms, {:.1}% of gold offers shed/rejected)",
        if slo_met { "MET" } else { "MISSED" },
        gold.p99_ms,
        100.0 * shed_rate(&gold),
    );
    println!(
        "flood absorbed the overload: {:.1}% of its offers shed/rejected",
        100.0 * shed_rate(&flood)
    );

    // ---- BENCH_sla.json ---------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"sla_closed_loop\",\n");
    json.push_str(&format!(
        "  \"host_threads\": {},\n",
        scl_exec::host_threads()
    ));
    json.push_str(&format!("  \"duration_ms\": {duration_ms},\n"));
    json.push_str(&format!("  \"gold_threads\": {gold_threads},\n"));
    json.push_str(&format!("  \"flood_threads\": {flood_threads},\n"));
    json.push_str("  \"queue_capacity\": 4,\n");
    json.push_str("  \"shed_policy\": \"shed_oldest\",\n");
    json.push_str(&format!("  \"slo_p99_ms\": {SLO_MS},\n"));
    json.push_str(&format!("  \"slo_met\": {slo_met},\n"));
    json.push_str(&format!("  \"manager_actions\": {manager_actions},\n"));
    json.push_str("  \"tenants\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tenant\": \"{}\", \"completed\": {}, \"shed\": {}, \"rejected\": {}, \
             \"errors\": {}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"throughput_rps\": {:.2}, \"shed_rate\": {:.4}}}{}\n",
            r.name,
            r.completed,
            r.shed,
            r.rejected,
            r.errors,
            r.p50_ms,
            r.p99_ms,
            r.throughput_rps,
            shed_rate(r),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_sla.json", &json).expect("write BENCH_sla.json");
    println!();
    println!("wrote BENCH_sla.json");
}
