//! Streaming-runtime benchmark: items/sec of one persistent operator
//! graph serving a stream vs repeated eager `run`, across channel
//! capacities and farm widths, emitted as `BENCH_stream.json`.
//!
//! ```text
//! cargo run --release -p scl-bench --bin stream [items] [partitions] [stages] [elems_per_part]
//! ```
//!
//! The plan is a pipeline of `stages` part-local multiply-add maps with a
//! `rotate` barrier in the middle — under the streaming runtime that is
//! two farm stages split by one stage boundary:
//!
//! * **eager** — one `plan.run` per item on a reset context under
//!   `Threads(max(host, 4))` (the same budget `BENCH_fused.json` uses):
//!   every stage of every item spawns and joins scoped workers;
//! * **stream** — `StreamExec::run_stream` over the same items: replicas
//!   and channels persist, items overlap across stages (fixed farm
//!   widths, autonomic control off, so each `(capacity, width)` cell
//!   measures exactly one configuration).
//!
//! A stream cell's worker-thread count is `farms × width` (each farm
//! owns its replicas), so per-cell `workers` is reported and the
//! headline `speedup_stream_vs_eager` is taken over **budget-matched**
//! cells only (`workers ≤` the eager thread budget); the unconstrained
//! best is reported separately as `speedup_stream_vs_eager_best`.

use scl_core::prelude::*;
use scl_stream::{StreamExec, StreamPolicy};
use std::time::Instant;

/// One part-local stage: elementwise multiply-add over the part.
fn stage() -> Skel<'static, ParArray<Vec<f64>>, ParArray<Vec<f64>>> {
    Skel::map_costed(|v: &Vec<f64>| {
        let out: Vec<f64> = v.iter().map(|x| x.mul_add(1.0001, 0.25)).collect();
        (out, Work::flops(2 * v.len() as u64))
    })
}

/// `stages` maps with one rotate barrier in the middle: two fused
/// segments → two farm stages under the streaming runtime.
fn plan(stages: usize) -> Skel<'static, ParArray<Vec<f64>>, ParArray<Vec<f64>>> {
    let mut p = stage();
    for s in 1..stages.max(2) {
        if s == stages / 2 {
            p = p.then(Skel::rotate(1)).then(Skel::rotate(-1));
        }
        p = p.then(stage());
    }
    p
}

fn items(n: usize, partitions: usize, elems: usize) -> Vec<ParArray<Vec<f64>>> {
    (0..n)
        .map(|k| {
            ParArray::from_parts(
                (0..partitions)
                    .map(|p| {
                        (0..elems)
                            .map(|i| ((k * partitions + p) * elems + i) as f64 * 1e-4)
                            .collect()
                    })
                    .collect(),
            )
        })
        .collect()
}

struct Row {
    mode: String,
    capacity: usize,
    width: usize,
    workers: usize,
    items_per_sec: f64,
    millis: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |d: usize| args.next().and_then(|s| s.parse().ok()).unwrap_or(d);
    let n_items = next(256);
    let partitions = next(8);
    let stages = next(16);
    let elems = next(1024);
    let host = scl_exec::host_threads();
    let tmax = host.max(4);

    println!("streaming runtime benchmark");
    println!(
        "  {n_items} items x {partitions} partitions x {stages} stages x {elems} elems/part, \
         {host} host threads, eager policy Threads({tmax})"
    );
    println!();

    let data = items(n_items, partitions, elems);
    let the_plan = plan(stages);

    // ---- eager baseline: one full run per item ----------------------------
    let mut eager_ctx = Scl::ap1000(partitions).with_policy(ExecPolicy::Threads(tmax));
    // warm-up
    let expect = the_plan.run(&mut eager_ctx, data[0].clone());
    let t0 = Instant::now();
    for item in &data {
        eager_ctx.reset();
        std::hint::black_box(the_plan.run(&mut eager_ctx, item.clone()));
    }
    let eager_secs = t0.elapsed().as_secs_f64();
    let eager_rate = n_items as f64 / eager_secs;
    let mut rows = vec![Row {
        mode: "eager".into(),
        capacity: 0,
        width: tmax,
        workers: tmax,
        items_per_sec: eager_rate,
        millis: eager_secs * 1e3,
    }];

    // ---- streaming: capacity × width sweep --------------------------------
    let mut widths = vec![1usize, 2, 4];
    if tmax > 4 {
        widths.push(tmax);
    }
    let mut best_matched = 0.0f64; // workers ≤ eager's thread budget
    let mut best_any = 0.0f64;
    for &capacity in &[2usize, 8, 32] {
        for &width in &widths {
            let policy = StreamPolicy::new(Machine::ap1000(partitions))
                .with_exec(ExecPolicy::Threads(width))
                .with_capacity(capacity)
                .with_adaptive(false);
            let exec = StreamExec::new(plan(stages), policy);
            let workers = exec.farm_stages() * width;
            let t0 = Instant::now();
            let mut outputs = exec.run_stream(data.iter().cloned());
            let first = outputs.next().expect("stream yields every item");
            assert_eq!(first, expect, "stream must agree with eager");
            let count = 1 + outputs.by_ref().count();
            let secs = t0.elapsed().as_secs_f64();
            assert_eq!(count, n_items);
            let rate = n_items as f64 / secs;
            best_any = best_any.max(rate);
            if workers <= tmax {
                best_matched = best_matched.max(rate);
            }
            rows.push(Row {
                mode: "stream".into(),
                capacity,
                width,
                workers,
                items_per_sec: rate,
                millis: secs * 1e3,
            });
        }
    }

    println!(
        "{:<8} {:>9} {:>6} {:>8} {:>14} {:>10}",
        "mode", "capacity", "width", "workers", "items/sec", "millis"
    );
    for r in &rows {
        println!(
            "{:<8} {:>9} {:>6} {:>8} {:>14.1} {:>10.2}",
            r.mode, r.capacity, r.width, r.workers, r.items_per_sec, r.millis
        );
    }
    let speedup = best_matched / eager_rate;
    let speedup_best = best_any / eager_rate;
    println!();
    println!("stream vs repeated eager run (workers <= {tmax}): {speedup:.2}x");
    println!("stream vs repeated eager run (any width):       {speedup_best:.2}x");

    // ---- BENCH_stream.json ------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"stream_pipeline\",\n");
    json.push_str(&format!("  \"items\": {n_items},\n"));
    json.push_str(&format!("  \"partitions\": {partitions},\n"));
    json.push_str(&format!("  \"stages\": {stages},\n"));
    json.push_str(&format!("  \"elems_per_part\": {elems},\n"));
    json.push_str(&format!("  \"host_threads\": {host},\n"));
    json.push_str(&format!("  \"eager_threads\": {tmax},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"capacity\": {}, \"width\": {}, \"workers\": {}, \
             \"items_per_sec\": {:.3}, \"millis\": {:.3}}}{}\n",
            r.mode,
            r.capacity,
            r.width,
            r.workers,
            r.items_per_sec,
            r.millis,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_stream_vs_eager\": {speedup:.4},\n"));
    json.push_str(&format!(
        "  \"speedup_stream_vs_eager_best\": {speedup_best:.4}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_stream.json", &json).expect("write BENCH_stream.json");
    println!();
    println!("wrote BENCH_stream.json");
}
