//! Regenerates **Table 1** of the paper: "Performance of hyperquicksort" —
//! total execution time in seconds as the number of processors increases,
//! for the flattened SPMD hyperquicksort on an AP1000-like machine.
//!
//! ```text
//! cargo run --release -p scl-bench --bin table1 [n] [seed]
//! ```

use scl_bench::{format_table1, table1_rows};
use scl_core::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1995);

    println!("Table 1: Performance of hyperquicksort");
    println!("  (flattened SPMD form, {n} random 64-bit keys, AP1000 cost model,");
    println!("   hypercube communication pattern, seed {seed})");
    println!();
    let rows = table1_rows(n, seed, &[0, 1, 2, 3, 4, 5], CostModel::ap1000());
    print!("{}", format_table1(&rows));
    println!();
    println!("paper shape check:");
    let falling = rows.windows(2).all(|w| w[1].seconds < w[0].seconds);
    let last = rows.last().unwrap();
    println!("  runtime monotonically falling over 1..32 procs: {falling}");
    println!(
        "  speedup at 32 procs: {:.2} (sublinear: {}) — the paper notes \"linear speedup is not possible with this problem\"",
        last.speedup,
        last.speedup < 32.0
    );
}
