#![warn(missing_docs)]
//! # scl-bench — the evaluation harness
//!
//! One function per table/figure of the paper's §5, shared between the
//! row-printing binaries (`table1`, `figure3`, `ablations`) and the
//! Criterion benches. Everything here runs on the simulated machine and is
//! deterministic given the seed, so the regenerated rows are stable across
//! hosts.

use scl_apps::hyperquicksort::hyperquicksort_flat;
use scl_apps::psrs::psrs_sort;
use scl_apps::workloads::uniform_keys;
use scl_core::prelude::*;
use scl_transform::prelude::*;

/// One row of the Table 1 / Figure 3 data: a sort on `procs` processors.
#[derive(Debug, Clone, PartialEq)]
pub struct SortRow {
    /// Processor count.
    pub procs: usize,
    /// Predicted runtime in (virtual) seconds.
    pub seconds: f64,
    /// Speedup relative to the 1-processor row of the same sweep.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / procs`).
    pub efficiency: f64,
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Payload bytes moved.
    pub bytes: u64,
}

/// The Table 1 experiment: flattened hyperquicksort of `n` random keys on
/// `P ∈ dims` processors of an AP1000-like machine.
///
/// The paper's table reports total execution seconds for six processor
/// counts; the OCR of the paper lost the literal numbers, so the
/// reproduction targets the *shape*: monotonically falling runtime,
/// clearly sublinear speedup.
pub fn table1_rows(n: usize, seed: u64, dims: &[u32], model: CostModel) -> Vec<SortRow> {
    let data = uniform_keys(n, seed);
    let mut expect = data.clone();
    expect.sort_unstable();
    let mut rows = Vec::with_capacity(dims.len());
    let mut t1 = None;
    for &dim in dims {
        let p = 1usize << dim;
        let mut scl = Scl::hypercube(p, model);
        let out = hyperquicksort_flat(&mut scl, &data, dim);
        assert_eq!(out, expect, "harness sanity: sort must be correct");
        let secs = scl.makespan().as_secs();
        let base = *t1.get_or_insert(secs);
        rows.push(SortRow {
            procs: p,
            seconds: secs,
            speedup: base / secs,
            efficiency: base / secs / p as f64,
            messages: scl.machine.metrics.messages,
            bytes: scl.machine.metrics.bytes,
        });
    }
    rows
}

/// The Figure 3 comparison series: PSRS on the same machine/input (the
/// "best available speedup" reference the paper compares against).
pub fn psrs_rows(n: usize, seed: u64, procs: &[usize], model: CostModel) -> Vec<SortRow> {
    let data = uniform_keys(n, seed);
    let mut expect = data.clone();
    expect.sort_unstable();
    let mut rows = Vec::with_capacity(procs.len());
    let mut t1 = None;
    for &p in procs {
        let mut scl = Scl::new(Machine::new(Topology::torus_for(p), model));
        let out = psrs_sort(&mut scl, &data, p);
        assert_eq!(out, expect, "harness sanity: sort must be correct");
        let secs = scl.makespan().as_secs();
        let base = *t1.get_or_insert(secs);
        rows.push(SortRow {
            procs: p,
            seconds: secs,
            speedup: base / secs,
            efficiency: base / secs / p as f64,
            messages: scl.machine.metrics.messages,
            bytes: scl.machine.metrics.bytes,
        });
    }
    rows
}

/// Render Table 1 in the paper's format (`no procs | runtime secs`), plus
/// the derived columns the analysis uses.
pub fn format_table1(rows: &[SortRow]) -> String {
    let mut out = String::new();
    out.push_str("no_procs  runtime_secs  speedup  efficiency  messages      bytes\n");
    for r in rows {
        out.push_str(&format!(
            "{:>8}  {:>12.3}  {:>7.2}  {:>10.3}  {:>8}  {:>9}\n",
            r.procs, r.seconds, r.speedup, r.efficiency, r.messages, r.bytes
        ));
    }
    out
}

/// A named plot series: label, glyph, points.
pub type Series<'a> = (&'a str, char, Vec<(f64, f64)>);

/// ASCII scatter/line plot of `(x, y)` series, used for the Figure 3
/// speedup curve. Each series gets its own glyph; a linear-speedup
/// reference can be added by the caller as another series.
pub fn ascii_plot(series: &[Series<'_>], width: usize, height: usize) -> String {
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, _, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return "(no data)\n".to_string();
    }
    let xmax = all.iter().map(|p| p.0).fold(1.0f64, f64::max);
    let ymax = all.iter().map(|p| p.1).fold(1.0f64, f64::max);
    let mut grid = vec![vec![b' '; width]; height];
    for (_, glyph, pts) in series {
        for &(x, y) in pts {
            let col = ((x / xmax) * (width as f64 - 1.0)).round() as usize;
            let row = height - 1 - ((y / ymax) * (height as f64 - 1.0)).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = *glyph as u8;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("speedup (max {ymax:.1})\n"));
    for row in grid {
        out.push('|');
        out.push_str(&String::from_utf8_lossy(&row));
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str(&format!("\n  processors (max {xmax:.0})   "));
    for (name, glyph, _) in series {
        out.push_str(&format!("[{glyph}] {name}  "));
    }
    out.push('\n');
    out
}

/// Result of one transformation-ablation measurement.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which law is being isolated.
    pub rule: &'static str,
    /// Program before rewriting (pretty-printed).
    pub before: String,
    /// Program after rewriting.
    pub after: String,
    /// Estimated cost before.
    pub cost_before: f64,
    /// Estimated cost after.
    pub cost_after: f64,
    /// Number of rule applications.
    pub applications: usize,
}

/// §4 ablations: measure what each transformation law buys on a
/// representative program, on an `n`-element AP1000-like machine.
pub fn ablation_rows(n: usize) -> Vec<AblationRow> {
    let reg = Registry::standard();
    let params = CostParams::ap1000(n);
    let cases: Vec<(&'static str, Rule, Expr)> = vec![
        (
            "map-fusion",
            Rule::MapFusion,
            Expr::pipeline(vec![
                Expr::Map(FnRef::named("inc")),
                Expr::Map(FnRef::named("double")),
                Expr::Map(FnRef::named("square")),
                Expr::Map(FnRef::named("heavy")),
            ]),
        ),
        (
            "map-distribution",
            Rule::MapDistribution,
            Expr::FoldrMap("add".to_string(), FnRef::named("square")),
        ),
        (
            "comm-algebra(fetch)",
            Rule::FetchFusion,
            Expr::pipeline(vec![
                Expr::Fetch(IdxRef::named("succ")),
                Expr::Fetch(IdxRef::named("succ")),
                Expr::Fetch(IdxRef::named("xor1")),
            ]),
        ),
        (
            "comm-algebra(send)",
            Rule::SendFusion,
            Expr::pipeline(vec![
                Expr::Send(IdxRef::named("succ")),
                Expr::Send(IdxRef::named("half")),
            ]),
        ),
        (
            "comm-algebra(rotate)",
            Rule::RotateFusion,
            Expr::pipeline(vec![Expr::Rotate(3), Expr::Rotate(5), Expr::Rotate(-8)]),
        ),
        (
            "flattening",
            Rule::Flatten,
            Expr::pipeline(vec![
                Expr::Split(4),
                Expr::MapGroups(Box::new(Expr::pipeline(vec![
                    Expr::Map(FnRef::named("inc")),
                    Expr::Rotate(1),
                ]))),
                Expr::Combine,
            ]),
        ),
    ];
    cases
        .into_iter()
        .map(|(name, _, program)| {
            let cost_before = estimate(&program, &reg, &params).unwrap().as_secs();
            let (optimized, log) = optimize(program.clone(), &reg);
            let cost_after = estimate(&optimized, &reg, &params).unwrap().as_secs();
            AblationRow {
                rule: name,
                before: program.to_string(),
                after: optimized.to_string(),
                cost_before,
                cost_after,
                applications: log.len(),
            }
        })
        .collect()
}

/// Runtime ablation: how much of hyperquicksort's predicted time is
/// communication? Runs the same sort under the full AP1000 model and a
/// zero-communication model; the gap is the communication share.
pub fn comm_share(n: usize, dim: u32, seed: u64) -> (f64, f64) {
    let data = uniform_keys(n, seed);
    let mut full = Scl::hypercube(1 << dim, CostModel::ap1000());
    let _ = hyperquicksort_flat(&mut full, &data, dim);
    let mut zero = Scl::hypercube(1 << dim, CostModel::zero_comm());
    let _ = hyperquicksort_flat(&mut zero, &data, dim);
    (full.makespan().as_secs(), zero.makespan().as_secs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let rows = table1_rows(20_000, 1995, &[0, 1, 2, 3, 4, 5], CostModel::ap1000());
        assert_eq!(rows.len(), 6);
        // runtime falls monotonically over the measured range
        for w in rows.windows(2) {
            assert!(
                w[1].seconds < w[0].seconds,
                "runtime should fall: {} -> {}",
                w[0].seconds,
                w[1].seconds
            );
        }
        // speedup is real but sublinear at 32 procs
        let last = rows.last().unwrap();
        assert_eq!(last.procs, 32);
        assert!(last.speedup > 4.0, "speedup {}", last.speedup);
        assert!(
            last.speedup < 32.0,
            "speedup must be sublinear: {}",
            last.speedup
        );
    }

    #[test]
    fn psrs_is_comparable() {
        let hqs = table1_rows(20_000, 7, &[0, 3], CostModel::ap1000());
        let psrs = psrs_rows(20_000, 7, &[1, 8], CostModel::ap1000());
        // both achieve real speedup at 8 procs
        assert!(hqs[1].speedup > 2.0);
        assert!(psrs[1].speedup > 2.0);
    }

    #[test]
    fn format_contains_paper_columns() {
        let rows = table1_rows(2_000, 3, &[0, 1], CostModel::ap1000());
        let s = format_table1(&rows);
        assert!(s.contains("no_procs"));
        assert!(s.contains("runtime_secs"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn ascii_plot_renders_points() {
        let s = ascii_plot(
            &[
                ("x", '*', vec![(1.0, 1.0), (32.0, 16.0)]),
                ("lin", '.', vec![(32.0, 32.0)]),
            ],
            40,
            10,
        );
        assert!(s.contains('*'));
        assert!(s.contains("processors"));
    }

    #[test]
    fn ablations_all_improve_or_hold() {
        for row in ablation_rows(1024) {
            assert!(
                row.cost_after <= row.cost_before,
                "{}: {} -> {}",
                row.rule,
                row.cost_before,
                row.cost_after
            );
            assert!(row.applications > 0, "{} never fired", row.rule);
        }
    }

    #[test]
    fn communication_is_a_real_share() {
        let (full, zero) = comm_share(20_000, 4, 2);
        assert!(full > zero, "comm must cost something: {full} vs {zero}");
    }
}
