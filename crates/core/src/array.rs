//! Distributed parallel arrays.
//!
//! [`ParArray<T>`] is SCL's `ParArray index α`: a collection of *parts*, one
//! per virtual processor, each part owned by a machine processor recorded in
//! the array's placement. Parts are usually sequential sub-arrays
//! (`ParArray<Vec<T>>` after a `partition`), but any type works — including
//! other `ParArray`s, which is how SCL expresses nested parallelism
//! (processor groups).
//!
//! The grid shape distinguishes one-dimensional arrays from two-dimensional
//! ones (needed by `rotate_row` / `rotate_col`); the placement ties parts to
//! the simulated machine's clocks so skeletons charge the right processor.

use crate::bytes::Bytes;
use scl_machine::ProcId;
use std::fmt;

/// Logical arrangement of the parts of a [`ParArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridShape {
    /// A flat sequence of `n` parts.
    Dim1(usize),
    /// An `r × c` grid of parts, row-major.
    Dim2(usize, usize),
}

impl GridShape {
    /// Total number of parts.
    pub fn len(&self) -> usize {
        match *self {
            GridShape::Dim1(n) => n,
            GridShape::Dim2(r, c) => r * c,
        }
    }

    /// True when there are no parts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(rows, cols)` for 2-D shapes.
    ///
    /// # Panics
    /// Panics on 1-D shapes.
    pub fn dims2(&self) -> (usize, usize) {
        match *self {
            GridShape::Dim2(r, c) => (r, c),
            GridShape::Dim1(_) => panic!("expected a 2-D ParArray grid"),
        }
    }
}

/// A distributed array: one part per virtual processor.
#[derive(Debug, Clone, PartialEq)]
pub struct ParArray<T> {
    parts: Vec<T>,
    procs: Vec<ProcId>,
    shape: GridShape,
}

impl<T> ParArray<T> {
    /// A 1-D distributed array placing part `i` on processor `i`.
    pub fn from_parts(parts: Vec<T>) -> ParArray<T> {
        let n = parts.len();
        ParArray {
            parts,
            procs: (0..n).collect(),
            shape: GridShape::Dim1(n),
        }
    }

    /// A 1-D distributed array with an explicit placement.
    ///
    /// # Panics
    /// Panics if `procs.len() != parts.len()`.
    pub fn with_placement(parts: Vec<T>, procs: Vec<ProcId>) -> ParArray<T> {
        assert_eq!(parts.len(), procs.len(), "placement length mismatch");
        let n = parts.len();
        ParArray {
            parts,
            procs,
            shape: GridShape::Dim1(n),
        }
    }

    /// An `r × c` grid of parts (row-major), part `(i,j)` on processor
    /// `i*c + j`.
    pub fn from_grid(rows: usize, cols: usize, parts: Vec<T>) -> ParArray<T> {
        assert_eq!(parts.len(), rows * cols, "grid parts length mismatch");
        let n = parts.len();
        ParArray {
            parts,
            procs: (0..n).collect(),
            shape: GridShape::Dim2(rows, cols),
        }
    }

    /// Reinterpret a 1-D array of `r*c` parts as an `r × c` grid (placement
    /// preserved).
    pub fn reshape2(mut self, rows: usize, cols: usize) -> ParArray<T> {
        assert_eq!(self.parts.len(), rows * cols, "reshape2 size mismatch");
        self.shape = GridShape::Dim2(rows, cols);
        self
    }

    /// Flatten the shape back to 1-D (placement preserved).
    pub fn reshape1(mut self) -> ParArray<T> {
        self.shape = GridShape::Dim1(self.parts.len());
        self
    }

    /// Number of parts (= virtual processors spanned).
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when the array has no parts.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The logical grid shape.
    pub fn shape(&self) -> GridShape {
        self.shape
    }

    /// The owning processor of each part.
    pub fn procs(&self) -> &[ProcId] {
        &self.procs
    }

    /// Part `i`.
    pub fn part(&self, i: usize) -> &T {
        &self.parts[i]
    }

    /// Mutable part `i`.
    pub fn part_mut(&mut self, i: usize) -> &mut T {
        &mut self.parts[i]
    }

    /// Part at grid position `(r, c)` of a 2-D array.
    pub fn part2(&self, r: usize, c: usize) -> &T {
        let (_, cols) = self.shape.dims2();
        &self.parts[r * cols + c]
    }

    /// All parts, in processor order.
    pub fn parts(&self) -> &[T] {
        &self.parts
    }

    /// Mutable access to all parts.
    pub fn parts_mut(&mut self) -> &mut [T] {
        &mut self.parts
    }

    /// Consume into the parts vector.
    pub fn into_parts(self) -> Vec<T> {
        self.parts
    }

    /// Consume into `(parts, procs, shape)`.
    pub fn into_raw(self) -> (Vec<T>, Vec<ProcId>, GridShape) {
        (self.parts, self.procs, self.shape)
    }

    /// Rebuild from the pieces of [`ParArray::into_raw`] — the inverse used
    /// when an executor takes the parts away (e.g. to run them through a
    /// fused stage chain) and puts transformed parts back.
    ///
    /// # Panics
    /// Panics if the three pieces disagree on the part count.
    pub fn from_raw(parts: Vec<T>, procs: Vec<ProcId>, shape: GridShape) -> ParArray<T> {
        assert_eq!(parts.len(), procs.len(), "placement length mismatch");
        assert_eq!(parts.len(), shape.len(), "shape length mismatch");
        ParArray {
            parts,
            procs,
            shape,
        }
    }

    /// Iterate `(&proc, &part)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&ProcId, &T)> {
        self.procs.iter().zip(self.parts.iter())
    }

    /// Build an array with the same shape and placement as `template`, but
    /// holding `parts` (the standard way skeletons rebuild their output).
    ///
    /// # Panics
    /// Panics if `parts.len()` differs from the template's part count.
    pub fn like<U>(template: &ParArray<U>, parts: Vec<T>) -> ParArray<T> {
        assert_eq!(
            parts.len(),
            template.len(),
            "part count mismatch in ParArray::like"
        );
        ParArray {
            parts,
            procs: template.procs.clone(),
            shape: template.shape,
        }
    }

    /// Rebuild with the same placement/shape but new parts produced by `f`
    /// (pure data transformation; cost-free — skeletons in
    /// [`crate::ctx::Scl`] are the costed path).
    pub fn map_parts<U>(&self, f: impl FnMut(&T) -> U) -> ParArray<U> {
        ParArray {
            parts: self.parts.iter().map(f).collect(),
            procs: self.procs.clone(),
            shape: self.shape,
        }
    }

    /// Like [`ParArray::map_parts`] but consuming, with the part index.
    pub fn map_into<U>(self, mut f: impl FnMut(usize, T) -> U) -> ParArray<U> {
        ParArray {
            parts: self
                .parts
                .into_iter()
                .enumerate()
                .map(|(i, x)| f(i, x))
                .collect(),
            procs: self.procs,
            shape: self.shape,
        }
    }

    /// Move-based routing: part `i` of the result is part `src_of(i)` of
    /// `self`, **moved** — no clones, no allocation beyond the output
    /// vector. `src_of` must be a permutation of `0..len` (the regular
    /// communication patterns: rotations, shifts with wraparound,
    /// transposes). Placement and shape are preserved; this is the pure
    /// data movement — the costed forms live on
    /// [`Scl`](crate::ctx::Scl) (`rotate_owned`, `fetch_owned`, …).
    ///
    /// # Panics
    /// Panics if `src_of` repeats a source (and therefore, lengths being
    /// equal, skips another) or indexes out of range.
    #[must_use]
    pub fn permute_owned(self, src_of: impl Fn(usize) -> usize) -> ParArray<T> {
        let n = self.parts.len();
        let (parts, procs, shape) = self.into_raw();
        let mut cells: Vec<Option<T>> = parts.into_iter().map(Some).collect();
        let out: Vec<T> = (0..n)
            .map(|i| {
                cells[src_of(i)]
                    .take()
                    .expect("permute_owned: source part used twice (not a permutation)")
            })
            .collect();
        ParArray::from_raw(out, procs, shape)
    }

    /// Move-based reindexing for possibly *one-to-many* routings
    /// (`fetch`-style): part `i` of the result is part `src_of(i)` of
    /// `self`. Each source's **last** use is moved; earlier uses clone;
    /// unused sources are dropped. For a true permutation this clones
    /// nothing and equals [`ParArray::permute_owned`].
    #[must_use]
    pub fn reindex_owned(self, src_of: impl Fn(usize) -> usize) -> ParArray<T>
    where
        T: Clone,
    {
        let n = self.parts.len();
        let srcs: Vec<usize> = (0..n).map(src_of).collect();
        let mut remaining = vec![0usize; n];
        for &s in &srcs {
            remaining[s] += 1;
        }
        let (parts, procs, shape) = self.into_raw();
        let mut cells: Vec<Option<T>> = parts.into_iter().map(Some).collect();
        let out: Vec<T> = srcs
            .iter()
            .map(|&s| {
                remaining[s] -= 1;
                let cell = cells[s].as_ref().expect("reindex_owned: source gone");
                if remaining[s] == 0 {
                    cells[s].take().expect("reindex_owned: source gone")
                } else {
                    cell.clone()
                }
            })
            .collect();
        ParArray::from_raw(out, procs, shape)
    }

    /// True if the two arrays have identical shape and placement — the
    /// precondition for `align`.
    pub fn conforms<U>(&self, other: &ParArray<U>) -> bool {
        self.shape == other.shape && self.procs == other.procs
    }

    /// Replace the placement (used by redistribution skeletons).
    pub fn with_procs(mut self, procs: Vec<ProcId>) -> ParArray<T> {
        assert_eq!(procs.len(), self.parts.len(), "placement length mismatch");
        self.procs = procs;
        self
    }
}

impl<T: Clone> ParArray<T> {
    /// Clone all parts into a plain vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.parts.clone()
    }
}

impl<T: Bytes> Bytes for ParArray<T> {
    fn bytes(&self) -> usize {
        self.parts.iter().map(Bytes::bytes).sum()
    }
}

impl<T: fmt::Display> fmt::Display for ParArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ParArray[{} parts]", self.parts.len())?;
        for (p, x) in self.iter() {
            writeln!(f, "  p{p}: {x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_places_identity() {
        let a = ParArray::from_parts(vec![10, 20, 30]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.procs(), &[0, 1, 2]);
        assert_eq!(a.shape(), GridShape::Dim1(3));
        assert_eq!(*a.part(1), 20);
    }

    #[test]
    fn with_placement_override() {
        let a = ParArray::with_placement(vec![1, 2], vec![5, 9]);
        assert_eq!(a.procs(), &[5, 9]);
    }

    #[test]
    #[should_panic(expected = "placement length mismatch")]
    fn placement_must_match() {
        let _ = ParArray::with_placement(vec![1, 2], vec![0]);
    }

    #[test]
    fn grid_and_part2() {
        let g = ParArray::from_grid(2, 3, (0..6).collect());
        assert_eq!(g.shape(), GridShape::Dim2(2, 3));
        assert_eq!(*g.part2(1, 2), 5);
        assert_eq!(g.shape().dims2(), (2, 3));
    }

    #[test]
    fn reshape_roundtrip() {
        let a = ParArray::from_parts((0..6).collect::<Vec<i32>>());
        let g = a.clone().reshape2(2, 3);
        assert_eq!(g.shape(), GridShape::Dim2(2, 3));
        let b = g.reshape1();
        assert_eq!(b.shape(), GridShape::Dim1(6));
        assert_eq!(b, a);
    }

    #[test]
    #[should_panic(expected = "expected a 2-D")]
    fn dims2_rejects_1d() {
        let a = ParArray::from_parts(vec![1]);
        let _ = a.shape().dims2();
    }

    #[test]
    fn map_parts_preserves_placement() {
        let a = ParArray::with_placement(vec![1, 2, 3], vec![4, 5, 6]);
        let b = a.map_parts(|x| x * 10);
        assert_eq!(b.to_vec(), vec![10, 20, 30]);
        assert_eq!(b.procs(), &[4, 5, 6]);
        assert!(a.conforms(&b));
    }

    #[test]
    fn map_into_sees_indices() {
        let a = ParArray::from_parts(vec![5, 5, 5]);
        let b = a.map_into(|i, x| x + i as i32);
        assert_eq!(b.to_vec(), vec![5, 6, 7]);
    }

    #[test]
    fn conformance_checks_shape_and_placement() {
        let a = ParArray::from_parts(vec![1, 2, 3, 4, 5, 6]);
        let b = ParArray::from_parts(vec![1, 2, 3, 4, 5, 6]).reshape2(2, 3);
        assert!(!a.conforms(&b));
        let c = ParArray::with_placement(vec![0; 6], vec![9, 1, 2, 3, 4, 5]);
        assert!(!a.conforms(&c));
    }

    #[test]
    fn bytes_sums_parts() {
        let a = ParArray::from_parts(vec![vec![1i64, 2], vec![3i64]]);
        assert_eq!(a.bytes(), 24);
    }

    #[test]
    fn display_lists_parts() {
        let a = ParArray::from_parts(vec![7, 8]);
        let s = format!("{a}");
        assert!(s.contains("p0: 7"));
        assert!(s.contains("p1: 8"));
    }

    #[test]
    fn permute_owned_moves_without_clone() {
        // a non-Clone payload proves no clones happen
        #[derive(Debug, PartialEq)]
        struct NoClone(u64);
        let a = ParArray::with_placement(vec![NoClone(0), NoClone(1), NoClone(2)], vec![7, 8, 9]);
        let b = a.permute_owned(|i| (i + 1) % 3);
        assert_eq!(b.parts(), &[NoClone(1), NoClone(2), NoClone(0)]);
        assert_eq!(b.procs(), &[7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn permute_owned_rejects_non_permutation() {
        let a = ParArray::from_parts(vec![1, 2, 3]);
        let _ = a.permute_owned(|_| 0);
    }

    #[test]
    fn reindex_owned_clones_only_duplicates() {
        let a = ParArray::from_parts(vec![vec![1], vec![2], vec![3]]);
        // one-to-many: part 0 fetched by everyone
        let b = a.reindex_owned(|_| 0);
        assert_eq!(b.to_vec(), vec![vec![1], vec![1], vec![1]]);
        // a pure permutation clones nothing and matches permute_owned
        let a = ParArray::from_parts(vec![10, 20, 30, 40]);
        let by_reindex = a.clone().reindex_owned(|i| i ^ 1);
        let by_permute = a.permute_owned(|i| i ^ 1);
        assert_eq!(by_reindex, by_permute);
    }

    #[test]
    fn into_raw_roundtrip() {
        let a = ParArray::from_grid(1, 2, vec![1, 2]);
        let (parts, procs, shape) = a.into_raw();
        assert_eq!(parts, vec![1, 2]);
        assert_eq!(procs, vec![0, 1]);
        assert_eq!(shape, GridShape::Dim2(1, 2));
    }
}
