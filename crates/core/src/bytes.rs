//! Payload sizing for communication-cost accounting.
//!
//! Every communication skeleton needs to know how many bytes a value would
//! occupy on the wire of the simulated machine. [`Bytes`] answers that for
//! the types SCL programs move around: primitives, tuples, vectors, nested
//! arrays. The estimate is the *payload* size (what MPI would ship), not the
//! Rust in-memory representation.

/// Wire size of a value, in bytes.
pub trait Bytes {
    /// Number of payload bytes this value occupies when sent.
    fn bytes(&self) -> usize;
}

macro_rules! impl_bytes_prim {
    ($($t:ty),*) => {
        $(impl Bytes for $t {
            #[inline]
            fn bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_bytes_prim!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char
);

impl Bytes for () {
    #[inline]
    fn bytes(&self) -> usize {
        0
    }
}

impl Bytes for String {
    #[inline]
    fn bytes(&self) -> usize {
        self.len()
    }
}

impl<T: Bytes> Bytes for Vec<T> {
    fn bytes(&self) -> usize {
        // Sum per element: exact for nested/variable-size payloads, and for
        // primitive elements the compiler reduces this to len * size_of.
        self.iter().map(Bytes::bytes).sum()
    }
}

impl<T: Bytes> Bytes for [T] {
    fn bytes(&self) -> usize {
        self.iter().map(Bytes::bytes).sum()
    }
}

impl<T: Bytes, const N: usize> Bytes for [T; N] {
    fn bytes(&self) -> usize {
        self.iter().map(Bytes::bytes).sum()
    }
}

impl<T: Bytes> Bytes for Option<T> {
    fn bytes(&self) -> usize {
        self.as_ref().map_or(0, Bytes::bytes)
    }
}

impl<T: Bytes + ?Sized> Bytes for &T {
    fn bytes(&self) -> usize {
        (**self).bytes()
    }
}

impl<T: Bytes> Bytes for Box<T> {
    fn bytes(&self) -> usize {
        (**self).bytes()
    }
}

impl<A: Bytes, B: Bytes> Bytes for (A, B) {
    fn bytes(&self) -> usize {
        self.0.bytes() + self.1.bytes()
    }
}

impl<A: Bytes, B: Bytes, C: Bytes> Bytes for (A, B, C) {
    fn bytes(&self) -> usize {
        self.0.bytes() + self.1.bytes() + self.2.bytes()
    }
}

impl<A: Bytes, B: Bytes, C: Bytes, D: Bytes> Bytes for (A, B, C, D) {
    fn bytes(&self) -> usize {
        self.0.bytes() + self.1.bytes() + self.2.bytes() + self.3.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(0u8.bytes(), 1);
        assert_eq!(0u32.bytes(), 4);
        assert_eq!(0i64.bytes(), 8);
        assert_eq!(0f64.bytes(), 8);
        assert_eq!(().bytes(), 0);
        assert_eq!(true.bytes(), 1);
    }

    #[test]
    fn vectors_sum_elements() {
        let v: Vec<i64> = vec![1, 2, 3];
        assert_eq!(v.bytes(), 24);
        let vv: Vec<Vec<u8>> = vec![vec![0; 3], vec![0; 5]];
        assert_eq!(vv.bytes(), 8);
        let empty: Vec<f64> = vec![];
        assert_eq!(empty.bytes(), 0);
    }

    #[test]
    fn slices_and_refs() {
        let v = [1i32, 2, 3];
        assert_eq!(v[..].bytes(), 12);
        let r: &[i32] = &v;
        assert_eq!(r.bytes(), 12);
    }

    #[test]
    fn fixed_arrays() {
        assert_eq!([1.0f64, 2.0].bytes(), 16);
        assert_eq!([[1u8; 4]; 2].bytes(), 8);
        assert_eq!(([0u16; 0]).bytes(), 0);
    }

    #[test]
    fn tuples_and_options() {
        assert_eq!((1u8, 2u32).bytes(), 5);
        assert_eq!((1u8, 2u32, 3u64).bytes(), 13);
        assert_eq!((1u8, 2u8, 3u8, 4u8).bytes(), 4);
        assert_eq!(Some(7i16).bytes(), 2);
        assert_eq!(None::<i16>.bytes(), 0);
    }

    #[test]
    fn strings_and_boxes() {
        assert_eq!("hello".to_string().bytes(), 5);
        assert_eq!(Box::new(1u64).bytes(), 8);
    }
}
