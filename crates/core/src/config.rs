//! Configurations: aligned collections of distributed arrays.
//!
//! The paper's `align` "pairs corresponding subarrays in two distributed
//! arrays together to form a new configuration which is a ParArray of
//! tuples. Objects in a tuple of the configuration are regarded as being
//! allocated to the same processor." In Rust, a configuration of two arrays
//! is simply `ParArray<(A, B)>`, and the shorthand view "a tuple of
//! distributed arrays" is recovered by [`unalign`].
//!
//! `split` and `combine` implement the paper's nested-parallelism pair:
//! `split` divides a configuration into sub-configurations (processor
//! groups — what hyperquicksort's recursion descends into), and `combine`
//! flattens a nested `ParArray` back out.

use crate::array::{GridShape, ParArray};
use crate::error::{Result, SclError};
use crate::partition::{block_ranges, Pattern};

/// Zip two conforming distributed arrays into a configuration.
///
/// # Panics
/// Panics unless the arrays conform (same shape, same placement); use
/// [`try_align`] for a checked version.
pub fn align<A, B>(a: ParArray<A>, b: ParArray<B>) -> ParArray<(A, B)> {
    try_align(a, b).unwrap_or_else(|e| panic!("align: {e}"))
}

/// Checked [`align`].
pub fn try_align<A, B>(a: ParArray<A>, b: ParArray<B>) -> Result<ParArray<(A, B)>> {
    if a.shape() != b.shape() {
        return Err(SclError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
        });
    }
    if a.procs() != b.procs() {
        return Err(SclError::PlacementMismatch);
    }
    let shape = a.shape();
    let (pa, procs, _) = a.into_raw();
    let (pb, _, _) = b.into_raw();
    let parts: Vec<(A, B)> = pa.into_iter().zip(pb).collect();
    let out = ParArray::with_placement(parts, procs);
    Ok(match shape {
        GridShape::Dim1(_) => out,
        GridShape::Dim2(r, c) => out.reshape2(r, c),
    })
}

/// Zip three conforming distributed arrays.
pub fn align3<A, B, C>(a: ParArray<A>, b: ParArray<B>, c: ParArray<C>) -> ParArray<(A, B, C)> {
    let ab = align(a, b);
    align(ab, c).map_into(|_, ((x, y), z)| (x, y, z))
}

/// Split a configuration back into its component distributed arrays.
pub fn unalign<A, B>(cfg: ParArray<(A, B)>) -> (ParArray<A>, ParArray<B>) {
    let shape = cfg.shape();
    let (parts, procs, _) = cfg.into_raw();
    let (pa, pb): (Vec<A>, Vec<B>) = parts.into_iter().unzip();
    let a = ParArray::with_placement(pa, procs.clone());
    let b = ParArray::with_placement(pb, procs);
    match shape {
        GridShape::Dim1(_) => (a, b),
        GridShape::Dim2(r, c) => (a.reshape2(r, c), b.reshape2(r, c)),
    }
}

/// Divide a distributed array into a nested array of sub-configurations
/// (processor groups), following a 1-D pattern over *part* indices.
///
/// The outer array's placement records each group's leader (first member),
/// so group-level operations know where groups live.
///
/// # Panics
/// Panics if the pattern is not 1-D or produces empty groups.
pub fn split<T>(pattern: Pattern, a: ParArray<T>) -> ParArray<ParArray<T>> {
    assert!(
        pattern.is_1d(),
        "split needs a 1-D pattern, got {pattern:?}"
    );
    pattern.check();
    let p = pattern.parts();
    let n = a.len();
    let (parts, procs, _) = a.into_raw();
    match pattern {
        Pattern::Block(_) => {
            let ranges = block_ranges(n, p);
            let mut parts_iter = parts.into_iter();
            let mut groups = Vec::with_capacity(p);
            let mut leaders = Vec::with_capacity(p);
            for r in ranges {
                assert!(
                    !r.is_empty(),
                    "split produced an empty group (n={n}, p={p})"
                );
                let g_parts: Vec<T> = parts_iter.by_ref().take(r.len()).collect();
                let g_procs: Vec<usize> = procs[r.clone()].to_vec();
                leaders.push(g_procs[0]);
                groups.push(ParArray::with_placement(g_parts, g_procs));
            }
            ParArray::with_placement(groups, leaders)
        }
        Pattern::Cyclic(_) | Pattern::BlockCyclic { .. } => {
            let mut buckets: Vec<(Vec<T>, Vec<usize>)> = (0..p).map(|_| (vec![], vec![])).collect();
            for (j, (part, proc)) in parts.into_iter().zip(procs).enumerate() {
                let o = crate::partition::owner_1d(pattern, n, j);
                buckets[o].0.push(part);
                buckets[o].1.push(proc);
            }
            let mut groups = Vec::with_capacity(p);
            let mut leaders = Vec::with_capacity(p);
            for (g_parts, g_procs) in buckets {
                assert!(
                    !g_parts.is_empty(),
                    "split produced an empty group (n={n}, p={p})"
                );
                leaders.push(g_procs[0]);
                groups.push(ParArray::with_placement(g_parts, g_procs));
            }
            ParArray::with_placement(groups, leaders)
        }
        _ => unreachable!("checked is_1d above"),
    }
}

/// Flatten a nested distributed array — the inverse of [`split`] for block
/// patterns (parts come back in group order, with their original
/// placements).
pub fn combine<T>(nested: ParArray<ParArray<T>>) -> ParArray<T> {
    let (groups, _, _) = nested.into_raw();
    let mut parts = Vec::new();
    let mut procs = Vec::new();
    for g in groups {
        let (g_parts, g_procs, _) = g.into_raw();
        parts.extend(g_parts);
        procs.extend(g_procs);
    }
    ParArray::with_placement(parts, procs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_zips_parts() {
        let a = ParArray::from_parts(vec![1, 2, 3]);
        let b = ParArray::from_parts(vec!["x", "y", "z"]);
        let cfg = align(a, b);
        assert_eq!(*cfg.part(1), (2, "y"));
        assert_eq!(cfg.procs(), &[0, 1, 2]);
    }

    #[test]
    fn align_requires_conformance() {
        let a = ParArray::from_parts(vec![1, 2]);
        let b = ParArray::from_parts(vec![1, 2, 3]);
        assert!(matches!(
            try_align(a, b),
            Err(SclError::ShapeMismatch { .. })
        ));

        let a = ParArray::from_parts(vec![1, 2]);
        let b = ParArray::with_placement(vec![1, 2], vec![1, 0]);
        assert!(matches!(try_align(a, b), Err(SclError::PlacementMismatch)));
    }

    #[test]
    #[should_panic(expected = "align:")]
    fn align_panics_on_mismatch() {
        let a = ParArray::from_parts(vec![1]);
        let b = ParArray::from_parts(vec![1, 2]);
        let _ = align(a, b);
    }

    #[test]
    fn align_preserves_2d_shape() {
        let a = ParArray::from_grid(2, 2, vec![1, 2, 3, 4]);
        let b = ParArray::from_grid(2, 2, vec![5, 6, 7, 8]);
        let cfg = align(a, b);
        assert_eq!(cfg.shape().dims2(), (2, 2));
        assert_eq!(*cfg.part2(1, 0), (3, 7));
    }

    #[test]
    fn unalign_inverts_align() {
        let a = ParArray::from_parts(vec![1, 2, 3]);
        let b = ParArray::from_parts(vec![4, 5, 6]);
        let (a2, b2) = unalign(align(a.clone(), b.clone()));
        assert_eq!(a2, a);
        assert_eq!(b2, b);
    }

    #[test]
    fn align3_zips_three() {
        let a = ParArray::from_parts(vec![1]);
        let b = ParArray::from_parts(vec![2]);
        let c = ParArray::from_parts(vec![3]);
        assert_eq!(*align3(a, b, c).part(0), (1, 2, 3));
    }

    #[test]
    fn split_block_groups_with_leaders() {
        let a = ParArray::from_parts((0..8).collect::<Vec<i32>>());
        let groups = split(Pattern::Block(2), a);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups.procs(), &[0, 4]); // leaders
        assert_eq!(groups.part(0).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(groups.part(1).procs(), &[4, 5, 6, 7]);
    }

    #[test]
    fn split_cyclic_groups() {
        let a = ParArray::from_parts((0..6).collect::<Vec<i32>>());
        let groups = split(Pattern::Cyclic(2), a);
        assert_eq!(groups.part(0).to_vec(), vec![0, 2, 4]);
        assert_eq!(groups.part(1).to_vec(), vec![1, 3, 5]);
        assert_eq!(groups.part(1).procs(), &[1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn split_rejects_empty_groups() {
        let a = ParArray::from_parts(vec![1, 2]);
        let _ = split(Pattern::Block(3), a);
    }

    #[test]
    fn combine_inverts_split() {
        let a = ParArray::from_parts((0..8).collect::<Vec<i32>>());
        for pat in [Pattern::Block(2), Pattern::Block(4), Pattern::Block(1)] {
            let back = combine(split(pat, a.clone()));
            assert_eq!(back, a, "{pat:?}");
        }
    }

    #[test]
    fn combine_restores_placements_for_cyclic() {
        let a = ParArray::from_parts((0..6).collect::<Vec<i32>>());
        let back = combine(split(Pattern::Cyclic(3), a.clone()));
        // parts are regrouped (group-major) but each keeps its processor
        let mut pairs: Vec<(usize, i32)> = back.iter().map(|(p, x)| (*p, *x)).collect();
        pairs.sort();
        let expect: Vec<(usize, i32)> = (0..6).map(|i| (i, i as i32)).collect();
        assert_eq!(pairs, expect);
    }

    #[test]
    fn nested_split_twice() {
        let a = ParArray::from_parts((0..8).collect::<Vec<i32>>());
        let outer = split(Pattern::Block(2), a);
        let inner = outer.map_into(|_, g| split(Pattern::Block(2), g));
        assert_eq!(inner.part(1).part(0).to_vec(), vec![4, 5]);
        assert_eq!(inner.part(1).part(0).procs(), &[4, 5]);
    }
}
