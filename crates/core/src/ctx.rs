//! The SCL evaluation context.
//!
//! [`Scl`] bundles everything a skeleton needs to run: the simulated
//! [`Machine`] (virtual clocks + cost model + counters) and the host
//! [`ExecPolicy`] (sequential or threaded execution of the sequential
//! base-language fragments). Every skeleton is a method on `Scl`, grouped
//! by the paper's taxonomy:
//!
//! * configuration skeletons — this module ([`Scl::partition`],
//!   [`Scl::gather`], [`Scl::distribution2`], …)
//! * elementary skeletons — [`crate::skeletons::elementary`]
//! * communication skeletons — [`crate::skeletons::comm`]
//! * computational skeletons — [`crate::skeletons::compute`]

use crate::array::ParArray;
use crate::bytes::Bytes;
use crate::config;
use crate::error::{Result, SclError};
use crate::partition::{self, Pattern};
use crate::seq::Matrix;
use scl_exec::{par_concat, par_scatter, ExecPolicy, ThreadPool};
use scl_machine::{CostModel, Machine, Time, Work};
use std::any::{Any, TypeId};
use std::collections::{HashMap, VecDeque};

/// Default cap on the bytes the recycled-buffer pool may keep resident
/// (64 MiB): enough for double-buffered sweeps over sizeable fields,
/// small enough that a one-off wide phase cannot pin memory forever.
pub const DEFAULT_BUFFER_CAP_BYTES: usize = 64 << 20;

/// One recycled allocation: a cleared `Vec<T>` behind `dyn Any`, with the
/// recycle stamp tying it to its slot in the pool's eviction order and
/// its capacity-bytes remembered for accounting.
struct PooledBuf {
    stamp: u64,
    bytes: usize,
    buf: Box<dyn Any + Send>,
}

/// Type-erased recycled-buffer storage behind [`Scl::take_buf`] /
/// [`Scl::recycle_buf`]: cleared `Vec<T>`s kept so iterative plans
/// (jacobi's sweep, `iter_until` bodies) double-buffer instead of
/// allocating fresh vectors every iteration.
///
/// Takes and recycles are O(1): buffers live in per-type stacks
/// (`slots`, newest at the back — the buffer most likely cache-warm).
/// Resident bytes are capped (`cap`) with **oldest-first** eviction, so a
/// one-off phase of giant buffers ages out instead of pinning memory for
/// the life of the context; the global age order is the stamped `order`
/// queue, whose entries go stale when a buffer is taken and are lazily
/// skipped (and periodically compacted) rather than searched for.
pub(crate) struct BufPool {
    /// Per-type stacks: front = oldest of that type, back = newest.
    slots: HashMap<TypeId, VecDeque<PooledBuf>>,
    /// Global recycle order, oldest first. May contain stale entries for
    /// buffers already taken; an entry is live iff its stamp still heads
    /// its type's stack front when eviction reaches it.
    order: VecDeque<(u64, TypeId)>,
    next_stamp: u64,
    buffers: usize,
    resident: usize,
    cap: usize,
}

impl Default for BufPool {
    fn default() -> BufPool {
        BufPool {
            slots: HashMap::new(),
            order: VecDeque::new(),
            next_stamp: 0,
            buffers: 0,
            resident: 0,
            cap: DEFAULT_BUFFER_CAP_BYTES,
        }
    }
}

impl BufPool {
    /// Evict oldest-first until resident bytes are within the cap.
    ///
    /// Invariant making the stale check sound: `order` holds type markers
    /// in global stamp order and per-type stacks are stamp-sorted, so
    /// when a marker `(stamp, ty)` reaches the front, the oldest live
    /// buffer of `ty` has `front.stamp >= stamp` — equality means the
    /// marker's buffer still exists (evict it), a greater stamp means it
    /// was taken (skip the stale marker).
    fn evict_to_cap(&mut self) {
        while self.resident > self.cap {
            let (stamp, ty) = self
                .order
                .pop_front()
                .expect("resident bytes imply order entries");
            let Some(stack) = self.slots.get_mut(&ty) else {
                continue; // stale: every buffer of this type was taken
            };
            if stack.front().is_some_and(|e| e.stamp == stamp) {
                let dropped = stack.pop_front().expect("front just observed");
                self.resident -= dropped.bytes;
                self.buffers -= 1;
            }
        }
    }

    /// Drop stale `order` markers once they outnumber live buffers 2:1 —
    /// keeps the queue O(live buffers) without a per-take search.
    fn compact_order(&mut self) {
        if self.order.len() < 2 * self.buffers + 32 {
            return;
        }
        let live: std::collections::HashSet<u64> = self
            .slots
            .values()
            .flat_map(|stack| stack.iter().map(|e| e.stamp))
            .collect();
        self.order.retain(|(stamp, _)| live.contains(stamp));
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("buffers", &self.buffers)
            .field("resident_bytes", &self.resident)
            .field("cap_bytes", &self.cap)
            .finish()
    }
}

/// How local (base-language) computation is charged to the virtual clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeasureMode {
    /// Charge nothing for un-costed closures (communication is still
    /// charged). Right for pure data-flow tests.
    None,
    /// Time each closure on the host and charge `host_seconds * scale`
    /// to the owning processor. `scale` maps host speed to target speed
    /// (e.g. a 1995 cell is several hundred times slower than one modern
    /// core).
    WallClock {
        /// Host-seconds → target-seconds multiplier.
        scale: f64,
    },
}

/// The SCL coordination context.
#[derive(Debug)]
pub struct Scl {
    /// The simulated machine being charged.
    pub machine: Machine,
    /// Host execution policy for partition-local work.
    pub policy: ExecPolicy,
    /// Charging mode for un-costed local closures.
    pub measure: MeasureMode,
    /// Lazily created persistent worker pool for fused segments and
    /// pool-parallel communication barriers (the eager compute skeletons
    /// use scoped threads and never touch this).
    pool: Option<ThreadPool>,
    /// Recycled-buffer pool for double-buffered iteration — host-side
    /// perf state, deliberately **not** cleared by [`Scl::reset`].
    bufs: BufPool,
}

impl Scl {
    /// A context over an explicit machine, sequential host execution, no
    /// wall-clock charging.
    pub fn new(machine: Machine) -> Scl {
        Scl {
            machine,
            policy: ExecPolicy::Sequential,
            measure: MeasureMode::None,
            pool: None,
            bufs: BufPool::default(),
        }
    }

    /// An AP1000-like machine with `procs` cells.
    pub fn ap1000(procs: usize) -> Scl {
        Scl::new(Machine::ap1000(procs))
    }

    /// A hypercube machine of `procs` (a power of two) with the given cost
    /// model.
    pub fn hypercube(procs: usize, model: CostModel) -> Scl {
        Scl::new(Machine::hypercube(procs, model))
    }

    /// Builder-style: set the host execution policy.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Scl {
        self.policy = policy;
        self
    }

    /// Builder-style: set the local-work charging mode.
    pub fn with_measure(mut self, measure: MeasureMode) -> Scl {
        self.measure = measure;
        self
    }

    /// Number of simulated processors.
    pub fn nprocs(&self) -> usize {
        self.machine.nprocs()
    }

    /// Predicted elapsed virtual time so far.
    pub fn makespan(&self) -> Time {
        self.machine.makespan()
    }

    /// Reset clocks/counters/trace for a fresh run.
    ///
    /// Host-side performance state — the persistent worker pool and the
    /// recycled-buffer pool — deliberately survives: it models nothing on
    /// the simulated machine, and the whole point of recycling is to carry
    /// warm buffers across runs. Use [`Scl::clear_buffers`] to drop the
    /// recycled memory explicitly.
    pub fn reset(&mut self) {
        self.machine.reset();
    }

    // ---- recycled buffers --------------------------------------------------

    /// Take a buffer with room for `capacity` elements, reusing the most
    /// recently recycled one of this type when available (cleared,
    /// capacity retained — the steady state of a double-buffered loop
    /// allocates nothing). Pair with [`Scl::recycle_buf`].
    #[must_use]
    pub fn take_buf<T: Send + 'static>(&mut self, capacity: usize) -> Vec<T> {
        let ty = TypeId::of::<Vec<T>>();
        // newest of this type first: the most recently recycled matching
        // buffer is the most likely to still be cache-warm. Its marker in
        // the eviction order goes stale and is skipped/compacted lazily.
        if let Some(entry) = self.bufs.slots.get_mut(&ty).and_then(VecDeque::pop_back) {
            self.bufs.resident -= entry.bytes;
            self.bufs.buffers -= 1;
            let mut v = *entry
                .buf
                .downcast::<Vec<T>>()
                .expect("buffer pool entries are keyed by their exact type");
            v.reserve(capacity);
            return v;
        }
        Vec::with_capacity(capacity)
    }

    /// Return a buffer to the pool for a later [`Scl::take_buf`]. The
    /// contents are dropped (`clear`); the allocation is kept while the
    /// pool's resident bytes stay within [`Scl::buffer_cap`] — past the
    /// cap the **oldest** pooled buffers are evicted first (and a single
    /// buffer larger than the whole cap is simply dropped).
    pub fn recycle_buf<T: Send + 'static>(&mut self, mut buf: Vec<T>) {
        buf.clear();
        let bytes = buf.capacity() * std::mem::size_of::<T>();
        if bytes == 0 || bytes > self.bufs.cap {
            return;
        }
        let ty = TypeId::of::<Vec<T>>();
        let stamp = self.bufs.next_stamp;
        self.bufs.next_stamp += 1;
        self.bufs.slots.entry(ty).or_default().push_back(PooledBuf {
            stamp,
            bytes,
            buf: Box::new(buf),
        });
        self.bufs.order.push_back((stamp, ty));
        self.bufs.buffers += 1;
        self.bufs.resident += bytes;
        self.bufs.evict_to_cap();
        self.bufs.compact_order();
    }

    /// Number of buffers currently parked in the recycle pool (all types).
    pub fn pooled_buffers(&self) -> usize {
        self.bufs.buffers
    }

    /// Bytes currently resident in the recycle pool (the capacity bytes of
    /// every parked buffer) — the pool-size metric the cap enforces.
    pub fn pooled_bytes(&self) -> usize {
        self.bufs.resident
    }

    /// The pool's resident-byte cap (default
    /// [`DEFAULT_BUFFER_CAP_BYTES`]).
    pub fn buffer_cap(&self) -> usize {
        self.bufs.cap
    }

    /// Builder-style: set the recycled-buffer pool's resident-byte cap.
    /// Evicts oldest-first immediately if already above it; `0` disables
    /// recycling entirely.
    pub fn with_buffer_cap(mut self, bytes: usize) -> Scl {
        self.set_buffer_cap(bytes);
        self
    }

    /// Set the recycled-buffer pool's resident-byte cap (see
    /// [`Scl::with_buffer_cap`]).
    pub fn set_buffer_cap(&mut self, bytes: usize) {
        self.bufs.cap = bytes;
        self.bufs.evict_to_cap();
    }

    /// Drop every recycled buffer ([`Scl::reset`] keeps them on purpose).
    pub fn clear_buffers(&mut self) {
        self.bufs.slots.clear();
        self.bufs.order.clear();
        self.bufs.buffers = 0;
        self.bufs.resident = 0;
    }

    // ---- configuration skeletons -------------------------------------------

    /// Partition a sequential array across the machine (the data starts on
    /// processor 0 and is scattered — the paper's Fig. 2(a)→(b) step).
    ///
    /// # Panics
    /// Panics if the pattern needs more parts than the machine has
    /// processors.
    #[must_use]
    pub fn partition<T: Clone + Bytes>(
        &mut self,
        pattern: Pattern,
        data: &[T],
    ) -> ParArray<Vec<T>> {
        self.try_partition(pattern, data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Scl::partition`] that **consumes** the host data, moving elements
    /// into the parts instead of cloning them — charged identically. Block
    /// patterns additionally move their contiguous ranges on the persistent
    /// pool ([`scl_exec::par_scatter`]) when the cost model says the
    /// payload justifies it.
    #[must_use]
    pub fn partition_owned<T: Clone + Bytes + Send>(
        &mut self,
        pattern: Pattern,
        data: Vec<T>,
    ) -> ParArray<Vec<T>> {
        self.try_partition_owned(pattern, data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Scl::partition_owned`] returning [`SclError::MachineTooSmall`]
    /// instead of panicking — the owned counterpart of
    /// [`Scl::try_partition`] and the entry point fused execution uses.
    pub fn try_partition_owned<T: Clone + Bytes + Send>(
        &mut self,
        pattern: Pattern,
        data: Vec<T>,
    ) -> Result<ParArray<Vec<T>>> {
        pattern.check();
        let out = match pattern {
            Pattern::Block(p) => {
                let ranges = partition::block_ranges(data.len(), p);
                let per_part = data.len() / p.max(1) * std::mem::size_of::<T>();
                let (threads, _) = self.comm_schedule(p, per_part);
                let parts = if threads <= 1 {
                    let mut data = data;
                    let mut parts = Vec::with_capacity(p);
                    for r in ranges.iter().rev() {
                        parts.push(data.split_off(r.start));
                    }
                    parts.reverse();
                    parts
                } else {
                    let pool = self.fused_pool(threads);
                    par_scatter(pool, data, &ranges, threads)
                };
                ParArray::from_parts(parts)
            }
            _ => partition::partition_owned(pattern, data),
        };
        self.try_check_fits(out.len())?;
        let per_part = out.parts().iter().map(Bytes::bytes).max().unwrap_or(0);
        self.machine.scatter(out.procs(), per_part);
        Ok(out)
    }

    /// [`Scl::partition`] returning [`SclError::MachineTooSmall`] instead
    /// of panicking when the pattern needs more parts than the machine has
    /// processors — the entry point fused execution uses.
    pub fn try_partition<T: Clone + Bytes>(
        &mut self,
        pattern: Pattern,
        data: &[T],
    ) -> Result<ParArray<Vec<T>>> {
        let out = partition::partition(pattern, data);
        self.try_check_fits(out.len())?;
        let per_part = out.parts().iter().map(Bytes::bytes).max().unwrap_or(0);
        self.machine.scatter(out.procs(), per_part);
        Ok(out)
    }

    /// Partition a matrix across the machine.
    #[must_use]
    pub fn partition2<T: Clone + Bytes>(
        &mut self,
        pattern: Pattern,
        m: &Matrix<T>,
    ) -> ParArray<Matrix<T>> {
        let out = partition::partition2(pattern, m);
        self.check_fits(out.len());
        let per_part = out.parts().iter().map(Bytes::bytes).max().unwrap_or(0);
        self.machine.scatter(out.procs(), per_part);
        out
    }

    /// Collect a distributed array back to processor 0 (the paper's
    /// `gather` skeleton), concatenating parts in part order.
    pub fn gather<T: Clone + Bytes>(&mut self, a: &ParArray<Vec<T>>) -> Vec<T> {
        let per_part = a.parts().iter().map(Bytes::bytes).max().unwrap_or(0);
        self.machine.gather(a.procs(), per_part);
        a.parts().iter().flat_map(|v| v.iter().cloned()).collect()
    }

    /// [`Scl::gather`] that **consumes** the distributed array, moving
    /// elements into the result instead of cloning them — charged
    /// identically. The concat itself runs on the persistent pool
    /// ([`scl_exec::par_concat`]) when the cost model says the moved bytes
    /// justify fanning out.
    pub fn gather_owned<T: Bytes + Send>(&mut self, a: ParArray<Vec<T>>) -> Vec<T> {
        let per_part = a.parts().iter().map(Bytes::bytes).max().unwrap_or(0);
        self.machine.gather(a.procs(), per_part);
        let (threads, _) = self.comm_schedule(a.len(), per_part);
        let parts = a.into_parts();
        if threads <= 1 {
            let total = parts.iter().map(Vec::len).sum();
            let mut out = Vec::with_capacity(total);
            for v in parts {
                out.extend(v);
            }
            out
        } else {
            let pool = self.fused_pool(threads);
            par_concat(pool, parts, threads)
        }
    }

    /// Pattern-aware gather: exact inverse of [`Scl::partition`].
    pub fn gather_pattern<T: Clone + Bytes>(
        &mut self,
        pattern: Pattern,
        a: &ParArray<Vec<T>>,
    ) -> Vec<T> {
        let per_part = a.parts().iter().map(Bytes::bytes).max().unwrap_or(0);
        self.machine.gather(a.procs(), per_part);
        partition::gather(pattern, a)
    }

    /// Pattern-aware matrix gather: exact inverse of [`Scl::partition2`].
    pub fn gather2<T: Clone + Bytes>(
        &mut self,
        pattern: Pattern,
        a: &ParArray<Matrix<T>>,
    ) -> Matrix<T> {
        let per_part = a.parts().iter().map(Bytes::bytes).max().unwrap_or(0);
        self.machine.gather(a.procs(), per_part);
        partition::gather2(pattern, a)
    }

    /// The paper's `distribution` skeleton for two arrays: partition each
    /// with its own strategy and align the results into a configuration.
    #[must_use]
    pub fn distribution2<A: Clone + Bytes, B: Clone + Bytes>(
        &mut self,
        pa: Pattern,
        a: &[A],
        pb: Pattern,
        b: &[B],
    ) -> ParArray<(Vec<A>, Vec<B>)> {
        let da = self.partition(pa, a);
        let db = self.partition(pb, b);
        config::align(da, db)
    }

    /// The paper's `redistribution` skeleton: apply one bulk-movement
    /// function per component of a configuration. The closures receive this
    /// context so they can use communication skeletons (and be charged).
    #[must_use]
    pub fn redistribution2<A, B>(
        &mut self,
        cfg: ParArray<(A, B)>,
        fa: impl FnOnce(&mut Scl, ParArray<A>) -> ParArray<A>,
        fb: impl FnOnce(&mut Scl, ParArray<B>) -> ParArray<B>,
    ) -> ParArray<(A, B)> {
        let (da, db) = config::unalign(cfg);
        let da = fa(self, da);
        let db = fb(self, db);
        config::align(da, db)
    }

    /// Divide a configuration into sub-configurations (processor groups);
    /// pure renaming of processors, so cost-free.
    #[must_use]
    pub fn split<T>(&mut self, pattern: Pattern, a: ParArray<T>) -> ParArray<ParArray<T>> {
        config::split(pattern, a)
    }

    /// Flatten a nested configuration; cost-free.
    #[must_use]
    pub fn combine<T>(&mut self, nested: ParArray<ParArray<T>>) -> ParArray<T> {
        config::combine(nested)
    }

    // ---- internals ---------------------------------------------------------

    /// Assert that a configuration of `parts` parts fits on this machine.
    pub fn check_fits(&self, parts: usize) {
        if let Err(e) = self.try_check_fits(parts) {
            panic!("{e}");
        }
    }

    /// [`Scl::check_fits`] as a `Result` — fused execution reports
    /// oversized configurations as [`SclError::MachineTooSmall`] instead of
    /// panicking.
    pub fn try_check_fits(&self, parts: usize) -> Result<()> {
        if parts <= self.nprocs() {
            Ok(())
        } else {
            Err(SclError::MachineTooSmall {
                needed: parts,
                procs: self.nprocs(),
            })
        }
    }

    /// `(threads, grain)` for the local data movement of a communication
    /// barrier moving `parts` pieces of about `per_part_bytes` each, under
    /// the current [`ExecPolicy`]: sequential stays inline, threaded and
    /// cost-driven policies consult
    /// [`CostModel::comm_decision`] so
    /// small payloads never pay a pool dispatch. Charging is unaffected —
    /// the simulated machine sees the same routes either way.
    pub(crate) fn comm_schedule(&self, parts: usize, per_part_bytes: usize) -> (usize, usize) {
        let cap = match self.policy {
            ExecPolicy::Sequential => return (1, 1),
            ExecPolicy::Threads(t) | ExecPolicy::CostDriven { threads: t } => t,
        };
        let d = self
            .machine
            .model()
            .comm_decision(parts, per_part_bytes, cap);
        (d.threads.min(parts.max(1)), d.grain)
    }

    /// The persistent worker pool fused segments dispatch onto, created on
    /// first use and grown if a later segment asks for more threads.
    pub(crate) fn fused_pool(&mut self, threads: usize) -> &ThreadPool {
        let stale = match &self.pool {
            Some(p) => p.size() < threads,
            None => true,
        };
        if stale {
            self.pool = Some(ThreadPool::new(threads));
        }
        self.pool.as_ref().expect("pool just ensured")
    }

    /// Charge local work to the owner of part `i` of `a`.
    pub(crate) fn charge_part<T>(&mut self, a: &ParArray<T>, i: usize, work: Work, label: &str) {
        let p = a.procs()[i];
        self.machine.compute(p, work, label);
    }

    /// Convert a measured host duration into charged work per the measure
    /// mode.
    pub(crate) fn measured_work(&self, host_seconds: f64) -> Work {
        match self.measure {
            MeasureMode::None => Work::NONE,
            MeasureMode::WallClock { scale } => Work::seconds(host_seconds * scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scl_machine::Topology;

    fn unit_ctx(n: usize) -> Scl {
        Scl::new(Machine::new(
            Topology::FullyConnected { procs: n },
            CostModel::unit(),
        ))
    }

    #[test]
    fn constructors() {
        let s = Scl::ap1000(8);
        assert_eq!(s.nprocs(), 8);
        let s = Scl::hypercube(8, CostModel::unit());
        assert_eq!(s.nprocs(), 8);
        let s = unit_ctx(2).with_policy(ExecPolicy::Threads(2));
        assert_eq!(s.policy, ExecPolicy::Threads(2));
    }

    #[test]
    fn partition_charges_scatter() {
        let mut s = unit_ctx(4);
        let data: Vec<i64> = (0..16).collect();
        let d = s.partition(Pattern::Block(4), &data);
        assert_eq!(d.len(), 4);
        assert!(s.makespan() > Time::ZERO);
        assert_eq!(s.machine.metrics.gathers, 1); // scatter counted as gather-family
    }

    #[test]
    fn gather_roundtrip_charges() {
        let mut s = unit_ctx(4);
        let data: Vec<i64> = (0..10).collect();
        let d = s.partition(Pattern::Block(4), &data);
        let t1 = s.makespan();
        let back = s.gather_pattern(Pattern::Block(4), &d);
        assert_eq!(back, data);
        assert!(s.makespan() > t1);
    }

    #[test]
    fn gather_concat_order() {
        let mut s = unit_ctx(2);
        let a = ParArray::from_parts(vec![vec![1, 2], vec![3]]);
        assert_eq!(s.gather(&a), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "machine has 2")]
    fn partition_too_wide_panics() {
        let mut s = unit_ctx(2);
        let _ = s.partition(Pattern::Block(4), &[1, 2, 3, 4]);
    }

    #[test]
    fn matrix_partition_roundtrip() {
        let mut s = unit_ctx(6);
        let m = Matrix::from_fn(4, 6, |r, c| (r * 6 + c) as i64);
        for pat in [
            Pattern::ColBlock(3),
            Pattern::RowBlock(2),
            Pattern::Grid { pr: 2, pc: 3 },
        ] {
            let d = s.partition2(pat, &m);
            assert_eq!(s.gather2(pat, &d), m, "{pat:?}");
        }
    }

    #[test]
    fn distribution2_aligns() {
        let mut s = unit_ctx(3);
        let cfg = s.distribution2(
            Pattern::Block(3),
            &[1, 2, 3],
            Pattern::Cyclic(3),
            &[4, 5, 6],
        );
        assert_eq!(cfg.len(), 3);
        assert_eq!(*cfg.part(0), (vec![1], vec![4]));
    }

    #[test]
    fn redistribution2_applies_components() {
        let mut s = unit_ctx(2);
        let cfg = config::align(
            ParArray::from_parts(vec![1, 2]),
            ParArray::from_parts(vec![10, 20]),
        );
        let out = s.redistribution2(
            cfg,
            |_, a| a.map_parts(|x| x + 1),
            |_, b| b.map_parts(|x| x * 2),
        );
        assert_eq!(out.to_vec(), vec![(2, 20), (3, 40)]);
    }

    #[test]
    fn measured_work_modes() {
        let s = unit_ctx(1);
        assert_eq!(s.measured_work(2.0), Work::NONE);
        let s = s.with_measure(MeasureMode::WallClock { scale: 3.0 });
        assert_eq!(s.measured_work(2.0), Work::seconds(6.0));
    }

    #[test]
    fn reset_zeroes_clocks() {
        let mut s = unit_ctx(2);
        let _ = s.partition(Pattern::Block(2), &[1i64, 2]);
        s.reset();
        assert_eq!(s.makespan(), Time::ZERO);
    }

    // ---- recycled-buffer pool ----------------------------------------------

    #[test]
    fn buf_pool_retains_capacity_across_recycle() {
        let mut s = unit_ctx(1);
        let mut v: Vec<u64> = s.take_buf(100);
        v.extend(0..100);
        let ptr = v.as_ptr();
        let cap = v.capacity();
        s.recycle_buf(v);
        assert_eq!(s.pooled_buffers(), 1);
        assert_eq!(s.pooled_bytes(), cap * std::mem::size_of::<u64>());
        let v2: Vec<u64> = s.take_buf(50);
        assert!(v2.is_empty(), "recycled buffers come back cleared");
        assert!(v2.capacity() >= cap);
        assert_eq!(v2.as_ptr(), ptr, "same allocation reused");
        assert_eq!(s.pooled_bytes(), 0);
    }

    #[test]
    fn buf_pool_keeps_types_apart() {
        let mut s = unit_ctx(1);
        s.recycle_buf::<u64>(Vec::with_capacity(16));
        s.recycle_buf::<f32>(Vec::with_capacity(8));
        assert_eq!(s.pooled_buffers(), 2);
        // a take of a third type allocates fresh and leaves both parked
        let v: Vec<String> = s.take_buf(4);
        assert!(v.capacity() >= 4);
        assert_eq!(s.pooled_buffers(), 2);
        // matching takes hit their own slots
        let a: Vec<u64> = s.take_buf(1);
        assert!(a.capacity() >= 16);
        let b: Vec<f32> = s.take_buf(1);
        assert!(b.capacity() >= 8);
        assert_eq!(s.pooled_buffers(), 0);
    }

    #[test]
    fn buf_pool_survives_reset_but_not_clear() {
        let mut s = unit_ctx(1);
        s.recycle_buf::<u8>(Vec::with_capacity(32));
        s.reset();
        assert_eq!(s.pooled_buffers(), 1, "reset keeps warm buffers");
        s.clear_buffers();
        assert_eq!(s.pooled_buffers(), 0);
        assert_eq!(s.pooled_bytes(), 0);
    }

    #[test]
    fn buf_pool_cap_evicts_oldest_first() {
        // cap fits exactly two 128-byte buffers
        let mut s = unit_ctx(1).with_buffer_cap(256);
        assert_eq!(s.buffer_cap(), 256);
        let mk = |tag: u8| {
            let mut v: Vec<u8> = Vec::with_capacity(128);
            v.push(tag);
            v
        };
        let (a, b, c) = (mk(1), mk(2), mk(3));
        let (pa, pb, pc) = (a.as_ptr(), b.as_ptr(), c.as_ptr());
        s.recycle_buf(a);
        s.recycle_buf(b);
        assert_eq!(s.pooled_bytes(), 256);
        s.recycle_buf(c); // over cap: evicts `a`, the oldest
        assert_eq!(s.pooled_buffers(), 2);
        assert!(s.pooled_bytes() <= 256);
        // takes come back newest-first: c then b, never a
        let x: Vec<u8> = s.take_buf(1);
        let y: Vec<u8> = s.take_buf(1);
        assert_eq!(x.as_ptr(), pc);
        assert_eq!(y.as_ptr(), pb);
        assert_ne!(x.as_ptr(), pa);
        let z: Vec<u8> = s.take_buf(1);
        assert_ne!(z.as_ptr(), pa, "evicted allocation is gone");
    }

    #[test]
    fn buf_pool_eviction_skips_stale_markers_from_takes() {
        // cap fits three 100-byte buffers
        let mut s = unit_ctx(1).with_buffer_cap(300);
        s.recycle_buf::<u8>(Vec::with_capacity(100)); // stamp 0
        let y: Vec<f32> = Vec::with_capacity(25); // 100 bytes
        let py = y.as_ptr();
        s.recycle_buf(y); // stamp 1
        let _taken: Vec<u8> = s.take_buf(1); // stamp 0's marker goes stale
        let x2: Vec<u8> = Vec::with_capacity(100);
        let px2 = x2.as_ptr();
        s.recycle_buf(x2); // stamp 2
        s.recycle_buf::<u16>(Vec::with_capacity(50)); // stamp 3, resident 300
        assert_eq!(s.pooled_bytes(), 300);
        s.recycle_buf::<u32>(Vec::with_capacity(25)); // stamp 4: over cap
                                                      // the stale u8 marker (stamp 0) must be skipped — the oldest *live*
                                                      // buffer is the f32 one (stamp 1), not the newer u8 (stamp 2)
        assert_eq!(s.pooled_buffers(), 3);
        assert_eq!(s.pooled_bytes(), 300);
        let back_u8: Vec<u8> = s.take_buf(1);
        assert_eq!(back_u8.as_ptr(), px2, "newer u8 buffer survived");
        let back_f32: Vec<f32> = s.take_buf(1);
        assert_ne!(back_f32.as_ptr(), py, "oldest live buffer was evicted");
    }

    #[test]
    fn buf_pool_rejects_oversized_and_empty_buffers() {
        let mut s = unit_ctx(1).with_buffer_cap(64);
        s.recycle_buf::<u8>(Vec::with_capacity(128)); // larger than the whole cap
        s.recycle_buf::<u8>(Vec::new()); // zero capacity
        assert_eq!(s.pooled_buffers(), 0);
        assert_eq!(s.pooled_bytes(), 0);
    }

    #[test]
    fn buf_pool_shrinking_cap_evicts_immediately() {
        let mut s = unit_ctx(1);
        for _ in 0..4 {
            s.recycle_buf::<u8>(Vec::with_capacity(100));
        }
        assert_eq!(s.pooled_bytes(), 400);
        s.set_buffer_cap(150);
        assert_eq!(s.pooled_buffers(), 1);
        assert_eq!(s.pooled_bytes(), 100);
        s.set_buffer_cap(0); // disables recycling
        assert_eq!(s.pooled_buffers(), 0);
        s.recycle_buf::<u8>(Vec::with_capacity(100));
        assert_eq!(s.pooled_buffers(), 0);
    }
}
