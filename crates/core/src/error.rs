//! Error types for conformance-checked operations.

use crate::array::GridShape;
use std::fmt;

/// Errors raised by SCL's fallible configuration operations.
///
/// Most skeleton entry points assert their preconditions (shape mismatches
/// are programming errors, as with slice indexing); the `try_*` variants
/// return these instead, for callers that build configurations dynamically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SclError {
    /// Two arrays being aligned have different grid shapes.
    ShapeMismatch {
        /// Shape of the left operand.
        left: GridShape,
        /// Shape of the right operand.
        right: GridShape,
    },
    /// Two arrays being aligned live on different processors.
    PlacementMismatch,
    /// A pattern's part count disagrees with an array's part count.
    PartCountMismatch {
        /// Parts the pattern requires.
        expected: usize,
        /// Parts the array has.
        found: usize,
    },
    /// A pattern was used with the wrong dimensionality of data.
    BadPattern(String),
    /// The machine has fewer processors than the configuration needs.
    MachineTooSmall {
        /// Processors the configuration needs.
        needed: usize,
        /// Processors the machine has.
        procs: usize,
    },
}

impl fmt::Display for SclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SclError::ShapeMismatch { left, right } => {
                write!(f, "cannot align arrays of shapes {left:?} and {right:?}")
            }
            SclError::PlacementMismatch => {
                write!(f, "cannot align arrays with different processor placements")
            }
            SclError::PartCountMismatch { expected, found } => {
                write!(f, "expected {expected} parts, found {found}")
            }
            SclError::BadPattern(msg) => write!(f, "bad partition pattern: {msg}"),
            SclError::MachineTooSmall { needed, procs } => {
                write!(
                    f,
                    "configuration needs {needed} processors, machine has {procs}"
                )
            }
        }
    }
}

impl std::error::Error for SclError {}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, SclError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SclError::ShapeMismatch {
            left: GridShape::Dim1(2),
            right: GridShape::Dim1(3),
        };
        assert!(e.to_string().contains("align"));
        assert!(SclError::PlacementMismatch
            .to_string()
            .contains("placements"));
        assert!(SclError::PartCountMismatch {
            expected: 2,
            found: 3
        }
        .to_string()
        .contains("expected 2"));
        assert!(SclError::BadPattern("x".into()).to_string().contains("x"));
        assert!(SclError::MachineTooSmall {
            needed: 8,
            procs: 4
        }
        .to_string()
        .contains("8"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SclError::PlacementMismatch);
    }
}
