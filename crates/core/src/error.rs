//! Error types for conformance-checked operations.

use crate::array::GridShape;
use std::fmt;

/// Errors raised by SCL's fallible configuration operations.
///
/// Most skeleton entry points assert their preconditions (shape mismatches
/// are programming errors, as with slice indexing); the `try_*` variants
/// return these instead, for callers that build configurations dynamically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SclError {
    /// Two arrays being aligned have different grid shapes.
    ShapeMismatch {
        /// Shape of the left operand.
        left: GridShape,
        /// Shape of the right operand.
        right: GridShape,
    },
    /// Two arrays being aligned live on different processors.
    PlacementMismatch,
    /// A pattern's part count disagrees with an array's part count.
    PartCountMismatch {
        /// Parts the pattern requires.
        expected: usize,
        /// Parts the array has.
        found: usize,
    },
    /// A pattern was used with the wrong dimensionality of data.
    BadPattern(String),
    /// The machine has fewer processors than the configuration needs.
    MachineTooSmall {
        /// Processors the configuration needs.
        needed: usize,
        /// Processors the machine has.
        procs: usize,
    },
}

impl fmt::Display for SclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SclError::ShapeMismatch { left, right } => {
                write!(f, "cannot align arrays of shapes {left:?} and {right:?}")
            }
            SclError::PlacementMismatch => {
                write!(f, "cannot align arrays with different processor placements")
            }
            SclError::PartCountMismatch { expected, found } => {
                write!(f, "expected {expected} parts, found {found}")
            }
            SclError::BadPattern(msg) => write!(f, "bad partition pattern: {msg}"),
            SclError::MachineTooSmall { needed, procs } => {
                write!(
                    f,
                    "configuration needs {needed} processors, machine has {procs}"
                )
            }
        }
    }
}

impl std::error::Error for SclError {}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, SclError>;

/// Why one streamed request failed — failure as a value.
///
/// Poison envelopes in the streaming runtime resolve into this type, so a
/// crashing plan fails only its own tickets: a serving layer can hand each
/// request a typed `Result` instead of unwinding a shared service thread.
/// The `Display` rendering is byte-for-byte the panic message the legacy
/// (panicking) pop path re-raises, so both views of a failure agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// A fused compute stage panicked while processing one part.
    StagePanic {
        /// Label of the panicking stage.
        stage: String,
        /// Index of the part being processed when the panic fired.
        part: usize,
        /// The panic payload, rendered as a string.
        message: String,
    },
    /// A stream barrier stage panicked.
    BarrierPanic {
        /// Label of the panicking barrier.
        stage: String,
        /// The panic payload, rendered as a string.
        message: String,
    },
    /// A stream barrier returned a configuration error.
    BarrierFailed {
        /// Label of the failing barrier.
        stage: String,
        /// The configuration error the barrier raised.
        error: SclError,
    },
    /// A plan panicked outside any attributable stage (eager fallback).
    Panicked {
        /// The panic payload, rendered as a string.
        message: String,
    },
    /// The request's deadline passed before it completed; the work was
    /// short-circuited rather than run.
    DeadlineExceeded,
    /// The plan is quarantined after repeated consecutive crashes and the
    /// request was rejected without running.
    Quarantined {
        /// Consecutive crashed batches that triggered the quarantine.
        crashes: u32,
    },
}

impl RequestError {
    /// True for failures caused by the plan itself crashing (stage or
    /// barrier panics, barrier errors, eager panics) — the failures that
    /// count toward supervision (graph teardown and quarantine). Deadline
    /// expiry and quarantine rejections are not faults: they say nothing
    /// about the plan's health.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            RequestError::StagePanic { .. }
                | RequestError::BarrierPanic { .. }
                | RequestError::BarrierFailed { .. }
                | RequestError::Panicked { .. }
        )
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::StagePanic {
                stage,
                part,
                message,
            } => {
                write!(
                    f,
                    "fused stage `{stage}` panicked on part {part}: {message}"
                )
            }
            RequestError::BarrierPanic { stage, message } => {
                write!(f, "stream barrier `{stage}` panicked: {message}")
            }
            RequestError::BarrierFailed { stage, error } => {
                write!(f, "stream barrier `{stage}` failed: {error}")
            }
            RequestError::Panicked { message } => write!(f, "plan panicked: {message}"),
            RequestError::DeadlineExceeded => write!(f, "deadline exceeded"),
            RequestError::Quarantined { crashes } => {
                write!(f, "plan quarantined after {crashes} consecutive crashes")
            }
        }
    }
}

impl std::error::Error for RequestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SclError::ShapeMismatch {
            left: GridShape::Dim1(2),
            right: GridShape::Dim1(3),
        };
        assert!(e.to_string().contains("align"));
        assert!(SclError::PlacementMismatch
            .to_string()
            .contains("placements"));
        assert!(SclError::PartCountMismatch {
            expected: 2,
            found: 3
        }
        .to_string()
        .contains("expected 2"));
        assert!(SclError::BadPattern("x".into()).to_string().contains("x"));
        assert!(SclError::MachineTooSmall {
            needed: 8,
            procs: 4
        }
        .to_string()
        .contains("8"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SclError::PlacementMismatch);
    }
}
