//! Fused, partition-resident plan execution.
//!
//! The eager interpretation of a [`Skel`](crate::plan::Skel) plan executes
//! one skeleton at a time: every `.then()` materialises a full
//! [`ParArray`] and re-dispatches onto fresh scoped worker threads. That is
//! faithful to the paper's semantics but leaves performance on the table —
//! a run of purely part-local stages (`map`, `imap`, `zip_with`, `farm` and
//! their costed forms) has **no** cross-partition data flow, so the whole
//! run can execute back-to-back on the worker that owns each partition,
//! with no intermediate arrays and a single dispatch.
//!
//! This module is that executor. A fusable plan carries, next to its eager
//! closure, a fused plan: a chain of type-erased nodes, each either
//!
//! * a **compute** node — part-local, safe to fuse with its neighbours; or
//! * a **barrier** node — anything that needs the whole configuration
//!   (communication skeletons like `rotate` / `fetch` / `total_exchange`,
//!   scans and reductions, repartitioning, opaque whole-array stages).
//!
//! Execution walks the chain, grouping maximal runs of compute nodes into
//! *segments*. Each segment is dispatched **once** through
//! [`scl_exec::par_pipeline`] on the context's persistent thread pool
//! (eager skeletons spawn scoped threads per call); barrier nodes run on
//! the calling thread through the ordinary eager skeletons. The simulated
//! machine is charged the same *totals* either way — makespan, flops /
//! cmps / moves, message counts agree with eager execution — but a fused
//! segment charges each partition **once** with the summed work (one
//! `"fused"` compute event), where the eager path charges once per stage,
//! so `compute_steps` and per-stage trace events differ by design. Under
//! [`ExecPolicy::CostDriven`] each segment asks the machine's
//! [`CostModel`](scl_machine::CostModel) (via
//! [`CostModel::fused_decision`](scl_machine::CostModel::fused_decision))
//! whether fanning out is worth it and at what grain; small segments fall
//! back to sequential execution on the calling thread.
//!
//! Values flow between nodes in an erased form, [`ErasedArr`]: one boxed
//! payload per partition plus an optional *side* value for non-distributed
//! state (the scalars an `iter_until` threads, host data before a
//! `partition`). The [`FusePort`] trait defines the canonical conversion
//! between a plan's boundary types and this form; every fused constructor
//! uses it, which is what makes node chains composable across `.then()`.
//!
//! Ownership is part of the contract end to end: a barrier node receives
//! its `ErasedArr` **by value** and re-emits an owned one, and the plan
//! layer's barrier closures delegate to the *owned* communication
//! skeletons (`rotate_owned`, `total_exchange_owned`, `gather_owned`, …),
//! so part payloads **move** through an entire fused chain — compute
//! segments hand boxed parts worker-to-worker, barriers re-route the same
//! boxes — and nothing clones partition data between stages. See the
//! "Zero-copy communication" section of the [crate docs](crate) for when
//! data does and does not clone.
//!
//! Failure behaviour is part of the contract: a panic inside a fused
//! compute node is re-raised on the caller **labelled with the stage
//! name** (`fused stage `map` panicked on part 3: …`), and configurations
//! that do not fit the machine surface as
//! [`SclError::MachineTooSmall`](crate::error::SclError) from
//! [`Scl::run_fused`](crate::ctx::Scl::run_fused) instead of a raw panic.

use crate::array::ParArray;
use crate::ctx::Scl;
use crate::error::{RequestError, Result};
use scl_exec::{par_pipeline, ExecPolicy};
use scl_machine::Work;
use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::time::Instant;

/// A type-erased partition payload flowing through a fused segment.
pub type PartVal = Box<dyn Any + Send>;

/// The erased value flowing between fused nodes: a distributed array of
/// erased parts, plus an optional non-distributed *side* payload (scalars
/// threaded by `iter_until`, host data before `partition` / after
/// `gather`).
pub struct ErasedArr {
    pub(crate) arr: ParArray<PartVal>,
    pub(crate) side: Option<PartVal>,
    /// `size_of` of the concrete part type — a static payload estimate for
    /// the cost model (heap-owning parts are under-estimated; the model
    /// treats that as a reason to stay sequential, the cheap mistake).
    pub(crate) elem_bytes: usize,
}

impl ErasedArr {
    /// Number of distributed parts (virtual processors this value spans).
    pub fn parts(&self) -> usize {
        self.arr.len()
    }

    /// Static per-element payload estimate (`size_of` of the concrete part
    /// type) — what the cost model weighs when deciding fan-out.
    pub fn elem_bytes(&self) -> usize {
        self.elem_bytes
    }
}

/// Canonical conversion between a plan boundary type and [`ErasedArr`].
///
/// Every fused stage constructor erases its input and restores its output
/// through this trait, so when two fusable plans compose, the exit
/// conversion of one and the entry conversion of the next are exact
/// inverses and can be dropped — the node chains concatenate directly.
/// Implementations exist for the shapes plans actually cross stage
/// boundaries with: `ParArray<T>`, conforming pairs of arrays (`zip_with`
/// input), host `Vec<T>` (before `partition` / after `gather`), and
/// `(ParArray<T>, S, U)` iteration states.
pub trait FusePort: Sized {
    /// Erase into the fused runtime representation.
    fn erase(self) -> ErasedArr;
    /// Rebuild from the fused runtime representation.
    ///
    /// # Panics
    /// Panics if `e` was not produced by [`FusePort::erase`] of this same
    /// type — impossible through plan composition, which preserves boundary
    /// types.
    fn restore(e: ErasedArr) -> Self;
    /// The number of distributed parts this value will span once erased
    /// ([`ErasedArr::parts`]), read without erasing — what admission
    /// checks (machine-size validation in the streaming and serving
    /// layers) use to avoid boxing every part just to count them.
    fn parts_len(&self) -> usize;
}

fn erase_parts<T: Send + 'static>(a: ParArray<T>) -> ParArray<PartVal> {
    a.map_into(|_, x| Box::new(x) as PartVal)
}

fn restore_parts<T: Send + 'static>(arr: ParArray<PartVal>) -> ParArray<T> {
    arr.map_into(|_, v| {
        *v.downcast::<T>()
            .expect("fused plan boundary type mismatch")
    })
}

impl<T: Send + 'static> FusePort for ParArray<T> {
    fn erase(self) -> ErasedArr {
        ErasedArr {
            arr: erase_parts(self),
            side: None,
            elem_bytes: std::mem::size_of::<T>(),
        }
    }
    fn restore(e: ErasedArr) -> Self {
        restore_parts(e.arr)
    }
    fn parts_len(&self) -> usize {
        self.len()
    }
}

impl<A: Send + 'static, B: Send + 'static> FusePort for (ParArray<A>, ParArray<B>) {
    fn erase(self) -> ErasedArr {
        let (a, b) = self;
        assert!(
            a.conforms(&b),
            "fused pair boundary needs conforming arrays"
        );
        let mut bs = b.into_parts().into_iter();
        ErasedArr {
            arr: a.map_into(|_, x| Box::new((x, bs.next().expect("conforming arrays"))) as PartVal),
            side: None,
            elem_bytes: std::mem::size_of::<(A, B)>(),
        }
    }
    fn restore(e: ErasedArr) -> Self {
        crate::config::unalign(restore_parts::<(A, B)>(e.arr))
    }
    fn parts_len(&self) -> usize {
        self.0.len()
    }
}

impl<T: Send + 'static> FusePort for Vec<T> {
    fn erase(self) -> ErasedArr {
        ErasedArr {
            arr: ParArray::from_parts(Vec::new()),
            side: Some(Box::new(self)),
            elem_bytes: std::mem::size_of::<T>(),
        }
    }
    fn restore(e: ErasedArr) -> Self {
        *e.side
            .expect("fused host-data boundary lost its payload")
            .downcast::<Vec<T>>()
            .expect("fused plan boundary type mismatch")
    }
    fn parts_len(&self) -> usize {
        0 // host data is the side payload; it spans no parts until partitioned
    }
}

impl<T, S, U> FusePort for (ParArray<T>, S, U)
where
    T: Send + 'static,
    S: Send + 'static,
    U: Send + 'static,
{
    fn erase(self) -> ErasedArr {
        let (a, s, u) = self;
        ErasedArr {
            arr: erase_parts(a),
            side: Some(Box::new((s, u))),
            elem_bytes: std::mem::size_of::<T>(),
        }
    }
    fn restore(e: ErasedArr) -> Self {
        let (s, u) = *e
            .side
            .expect("fused iteration-state boundary lost its scalars")
            .downcast::<(S, U)>()
            .expect("fused plan boundary type mismatch");
        (restore_parts(e.arr), s, u)
    }
    fn parts_len(&self) -> usize {
        self.0.len()
    }
}

/// A compute node: part index + erased part in, erased part + reported
/// [`Work`] + measured host seconds out. The seconds are nonzero only for
/// *uncosted* stages (plain `map`/`imap`/`farm`), mirroring the eager
/// layer: costed stages charge exactly their reported work, uncosted ones
/// charge per the context's `MeasureMode`. `Send + Sync` so a streaming
/// runtime can replicate a stage across persistent farm workers.
type ComputeFn<'a> = Box<dyn Fn(usize, PartVal) -> (PartVal, Work, f64) + Send + Sync + 'a>;
type BarrierFn<'a> = Box<dyn FnMut(&mut Scl, ErasedArr) -> Result<ErasedArr> + 'a>;

/// One part-local compute stage of a fused chain.
pub(crate) struct ComputeStage<'a> {
    label: &'static str,
    /// True when the *eager* layer charges a compute event for this stage
    /// (every map flavour does; `zip_with` deliberately charges nothing).
    /// The fused executor ignores this — it charges every segment stage
    /// into one summed event — but per-stage streaming charging
    /// ([`SegmentOp::apply`]) replays exactly the eager charges.
    charged: bool,
    /// Hash of the stage's structural parameters (registered symbol names
    /// for symbolic maps), folded into the plan fingerprint. 0 when the
    /// stage has none beyond its label.
    param: u64,
    f: ComputeFn<'a>,
}

/// Unpack an [`ErasedArr`] into the two independent arm inputs of a
/// branch node — the canonical [`FusePort`] conversions of the branch's
/// boundary types (unzip a pair, clone a fanout input).
type SplitFn<'a> = Box<dyn Fn(ErasedArr) -> (ErasedArr, ErasedArr) + 'a>;
/// Zip two arm outputs back into one [`ErasedArr`] at the branch's join
/// barrier.
type JoinFn<'a> = Box<dyn Fn(ErasedArr, ErasedArr) -> ErasedArr + 'a>;
/// Inspect the value and pick an arm (`true` = left) without consuming it.
type ChooseFn<'a> = Box<dyn Fn(ErasedArr) -> (ErasedArr, bool) + 'a>;

/// How a branch node routes its input between its two arms.
pub(crate) enum BranchKind<'a> {
    /// Both arms run, each over its own half of the input: `pair` (unzip
    /// the tuple) and `fanout` (clone the input). The arms are
    /// independent, so the fused executor may run them concurrently; the
    /// `join` is the zip barrier reuniting them.
    Split {
        split: SplitFn<'a>,
        join: JoinFn<'a>,
    },
    /// Exactly one arm runs, selected per value by a predicate: `choice`.
    Choose(ChooseFn<'a>),
}

impl BranchKind<'_> {
    /// Discriminant byte folded into fingerprints, so a `choice` of two
    /// arms never collides with a `fanout` of the same arms even if
    /// labels were ever aliased.
    fn tag_byte(&self) -> u8 {
        match self {
            BranchKind::Split { .. } => 0x00,
            BranchKind::Choose(_) => 0x01,
        }
    }
}

/// A DAG node of a fused chain: two independent arm chains between a
/// split and a join. Built by the arrow combinators
/// ([`Skel::pair`](crate::plan::Skel::pair),
/// [`Skel::fanout`](crate::plan::Skel::fanout),
/// [`Skel::choice`](crate::plan::Skel::choice)).
pub(crate) struct BranchNode<'a> {
    label: &'static str,
    /// Structural-parameter hash of the branch itself (the arms carry
    /// their own).
    param: u64,
    kind: BranchKind<'a>,
    left: Vec<FusedNode<'a>>,
    right: Vec<FusedNode<'a>>,
}

/// One stage of a fused chain.
pub(crate) enum FusedNode<'a> {
    /// Part-local: output part `i` depends only on input part `i`. Runs of
    /// these execute back-to-back on the owning worker.
    Compute(ComputeStage<'a>),
    /// Whole-configuration: a fusion barrier. Runs on the calling thread
    /// through the eager skeleton layer.
    Barrier {
        label: &'static str,
        /// Hash of the barrier's structural parameters (rotation amount,
        /// shift distance, iteration count, partition pattern, registered
        /// symbol names) — what keeps `rotate(1)` and `rotate(2)` apart
        /// in the plan fingerprint even when the surrounding plan is
        /// opaque. 0 when the stage has none beyond its label.
        param: u64,
        f: BarrierFn<'a>,
    },
    /// A DAG fork: two arm chains between a split and a join (or one of
    /// two, for `choice`). Never part of a fused segment — the split and
    /// join are barriers — but pure-compute arms of a `Split` branch run
    /// as one concurrent dispatch on the shared pool.
    Branch(BranchNode<'a>),
}

impl FusedNode<'_> {
    pub(crate) fn label(&self) -> &'static str {
        match self {
            FusedNode::Compute(ComputeStage { label, .. }) | FusedNode::Barrier { label, .. } => {
                label
            }
            FusedNode::Branch(b) => b.label,
        }
    }

    pub(crate) fn is_barrier(&self) -> bool {
        // a branch bounds fused segments on both sides, like a barrier
        !matches!(self, FusedNode::Compute(_))
    }
}

/// The fused form of a plan from `A` to `B`: entry/exit conversions (always
/// the canonical [`FusePort`] ones) around a node chain.
pub(crate) struct FusedPlan<'a, A, B> {
    entry: Box<dyn Fn(A) -> ErasedArr + 'a>,
    pub(crate) nodes: Vec<FusedNode<'a>>,
    exit: Box<dyn Fn(ErasedArr) -> B + 'a>,
}

impl<'a, A: FusePort + 'a, B: FusePort + 'a> FusedPlan<'a, A, B> {
    fn from_nodes(nodes: Vec<FusedNode<'a>>) -> Self {
        FusedPlan {
            entry: Box::new(A::erase),
            nodes,
            exit: Box::new(B::restore),
        }
    }
}

impl<A, B> FusedPlan<'_, A, B> {
    /// Stamp every node with a structural-parameter hash — called by the
    /// plan constructors that carry hashable parameters (rotation
    /// amounts, iteration counts, symbol names), right after building
    /// their single-node plan.
    pub(crate) fn tag_param(&mut self, p: u64) {
        for node in &mut self.nodes {
            match node {
                FusedNode::Compute(st) => st.param = p,
                FusedNode::Barrier { param, .. } => *param = p,
                // the arms carry their own parameter hashes; the branch
                // itself takes the stamp
                FusedNode::Branch(b) => b.param = p,
            }
        }
    }
}

/// Concatenate two fused plans across a shared boundary type. Sound
/// because every constructor builds entry/exit from [`FusePort`], so
/// `a.exit` and `b.entry` are exact inverses — both are dropped.
pub(crate) fn compose<'a, A, B, C>(
    a: FusedPlan<'a, A, B>,
    b: FusedPlan<'a, B, C>,
) -> FusedPlan<'a, A, C> {
    let mut nodes = a.nodes;
    nodes.extend(b.nodes);
    FusedPlan {
        entry: a.entry,
        nodes,
        exit: b.exit,
    }
}

/// A single part-local stage as a fused plan. `timed` selects the eager
/// layer's charging convention: `true` for uncosted stages (host time is
/// measured and charged per `MeasureMode`, like [`Scl::imap`]), `false`
/// for costed ones (only the reported [`Work`] is charged, like
/// [`Scl::imap_costed`]).
pub(crate) fn compute_node<'a, T, R>(
    label: &'static str,
    timed: bool,
    f: impl Fn(usize, &T) -> (R, Work) + Send + Sync + 'a,
) -> FusedPlan<'a, ParArray<T>, ParArray<R>>
where
    T: Send + 'static,
    R: Send + 'static,
{
    FusedPlan::from_nodes(vec![FusedNode::Compute(ComputeStage {
        label,
        charged: true,
        param: 0,
        f: Box::new(move |i, v| {
            let x = v.downcast::<T>().expect("fused stage input type mismatch");
            let t0 = Instant::now();
            let (r, w) = f(i, &x);
            let secs = if timed {
                t0.elapsed().as_secs_f64()
            } else {
                0.0
            };
            (Box::new(r) as PartVal, w, secs)
        }),
    })])
}

/// A part-local stage over a zipped pair boundary ([`Skel::zip_with`]).
///
/// [`Skel::zip_with`]: crate::plan::Skel::zip_with
pub(crate) fn compute_pair_node<'a, A, B, R>(
    label: &'static str,
    f: impl Fn(&A, &B) -> (R, Work) + Send + Sync + 'a,
) -> FusedPlan<'a, (ParArray<A>, ParArray<B>), ParArray<R>>
where
    A: Send + 'static,
    B: Send + 'static,
    R: Send + 'static,
{
    FusedPlan::from_nodes(vec![FusedNode::Compute(ComputeStage {
        label,
        // like the eager `Scl::zip_with`, this charges nothing locally
        charged: false,
        param: 0,
        f: Box::new(move |_, v| {
            let pair = v
                .downcast::<(A, B)>()
                .expect("fused stage input type mismatch");
            let (r, w) = f(&pair.0, &pair.1);
            (Box::new(r) as PartVal, w, 0.0)
        }),
    })])
}

/// The `pair` combinator as a fused plan: one branch node whose split
/// unzips the canonical pair encoding and whose join re-zips the arm
/// outputs. All four conversions are the [`FusePort`] ones, so the node
/// composes across `.then()` exactly like any single-stage plan.
pub(crate) fn pair_node<'a, A, B, C, D>(
    left: FusedPlan<'a, A, B>,
    right: FusedPlan<'a, C, D>,
) -> FusedPlan<'a, (A, C), (B, D)>
where
    A: FusePort + 'a,
    B: FusePort + 'a,
    C: FusePort + 'a,
    D: FusePort + 'a,
    (A, C): FusePort + 'a,
    (B, D): FusePort + 'a,
{
    FusedPlan::from_nodes(vec![FusedNode::Branch(BranchNode {
        label: "pair",
        param: 0,
        kind: BranchKind::Split {
            split: Box::new(|e| {
                let (a, c) = <(A, C)>::restore(e);
                (a.erase(), c.erase())
            }),
            join: Box::new(|l, r| (B::restore(l), D::restore(r)).erase()),
        },
        left: left.nodes,
        right: right.nodes,
    })])
}

/// The `fanout` combinator as a fused plan: the split clones the input
/// into both arms, the join zips the arm outputs into a pair.
pub(crate) fn fanout_node<'a, A, B, C>(
    left: FusedPlan<'a, A, B>,
    right: FusedPlan<'a, A, C>,
) -> FusedPlan<'a, A, (B, C)>
where
    A: FusePort + Clone + 'a,
    B: FusePort + 'a,
    C: FusePort + 'a,
    (B, C): FusePort + 'a,
{
    FusedPlan::from_nodes(vec![FusedNode::Branch(BranchNode {
        label: "fanout",
        param: 0,
        kind: BranchKind::Split {
            split: Box::new(|e| {
                let a = A::restore(e);
                let twin = a.clone();
                (a.erase(), twin.erase())
            }),
            join: Box::new(|l, r| (B::restore(l), C::restore(r)).erase()),
        },
        left: left.nodes,
        right: right.nodes,
    })])
}

/// The `choice` combinator as a fused plan: the predicate inspects the
/// (restored) value and exactly one arm runs.
pub(crate) fn choice_node<'a, A, B>(
    pred: std::sync::Arc<dyn Fn(&A) -> bool + 'a>,
    left: FusedPlan<'a, A, B>,
    right: FusedPlan<'a, A, B>,
) -> FusedPlan<'a, A, B>
where
    A: FusePort + 'a,
    B: FusePort + 'a,
{
    FusedPlan::from_nodes(vec![FusedNode::Branch(BranchNode {
        label: "choice",
        param: 0,
        kind: BranchKind::Choose(Box::new(move |e| {
            let a = A::restore(e);
            let take_left = pred(&a);
            (a.erase(), take_left)
        })),
        left: left.nodes,
        right: right.nodes,
    })])
}

/// A whole-configuration stage as a fused plan (a barrier).
pub(crate) fn barrier_node<'a, A, B>(
    label: &'static str,
    mut f: impl FnMut(&mut Scl, A) -> Result<B> + 'a,
) -> FusedPlan<'a, A, B>
where
    A: FusePort + 'a,
    B: FusePort + 'a,
{
    FusedPlan::from_nodes(vec![FusedNode::Barrier {
        label,
        param: 0,
        f: Box::new(move |scl, e| Ok(B::erase(f(scl, A::restore(e))?))),
    }])
}

// ---- structural fingerprinting ----------------------------------------------

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a 64-bit running hash. FNV is used instead of
/// the standard library's `DefaultHasher` because its value is **stable** —
/// the same plan fingerprints identically across processes and toolchain
/// versions, so fingerprints can appear in logs, bench JSON, and cache
/// keys that outlive one run.
fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Per-node tag bytes keeping compute and barrier stages from colliding
/// even when labels coincide.
const TAG_COMPUTE: &[u8] = &[0x01];
const TAG_BARRIER: &[u8] = &[0x02];
// 0x03 / 0x04 are claimed by `fingerprint_with_repr`
const TAG_BRANCH: &[u8] = &[0x05];

/// A structural fingerprint of a plan's fused operator chain — the key of
/// `scl-serve`'s plan cache.
///
/// Two plans fingerprint equal when their fused stage chains are
/// structurally identical: same stages, in the same order, with the same
/// labels, charging conventions (so `map` vs `map_costed`, a reordered
/// pipeline, or a different barrier kind all hash differently), and the
/// same **structural parameters** — the non-closure values a stage is
/// constructed from are hashed into its node, so `rotate(1)` vs
/// `rotate(2)`, `shift(1, _)` vs `shift(2, _)`, iteration counts,
/// partition patterns, task-pipeline lengths, and registered symbol names
/// (`map_sym("inc")` vs `map_sym("double")`) all differ, inside opaque
/// plans too. Plans in the lowerable fragment additionally fold in their
/// whole-program IR.
///
/// **What the fingerprint cannot see:** the *bodies* of opaque closures
/// and opaque captured values. `Skel::map(|x| x + 1)` and
/// `Skel::map(|x| x * 2)` are structurally identical and fingerprint
/// equal; so are two `Skel::shift(1, fill)` plans with different fill
/// values, or two `Skel::fetch(f)` plans with different index closures. A
/// cache keyed on fingerprints therefore assumes structurally-equal
/// submissions are semantically equal — the standard prepared-statement
/// contract. Callers serving semantically different plans with the same
/// shape must disambiguate with [`PlanFingerprint::with_salt`] (e.g. a
/// plan name or parameter string), as `scl-serve`'s `submit_keyed` does.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanFingerprint(u64);

impl PlanFingerprint {
    /// The raw 64-bit hash value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Derive a fingerprint distinguished by `salt` — how callers keep
    /// structurally identical but semantically different plans apart in a
    /// fingerprint-keyed cache. Salting is deterministic: the same
    /// fingerprint and salt always yield the same derived fingerprint, and
    /// any change to the salt changes the result.
    #[must_use]
    pub fn with_salt(self, salt: &str) -> PlanFingerprint {
        let h = fnv(FNV_OFFSET, &self.0.to_le_bytes());
        PlanFingerprint(fnv(h, salt.as_bytes()))
    }
}

impl std::fmt::Display for PlanFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::fmt::Debug for PlanFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PlanFingerprint({:016x})", self.0)
    }
}

impl ComputeStage<'_> {
    /// Fold this stage's structure into a running FNV hash: tag, label,
    /// the charging convention (so conventions that differ only in how
    /// they charge the machine still hash apart), and the stage's
    /// structural-parameter hash.
    fn hash_into(&self, h: u64) -> u64 {
        let h = fnv(h, TAG_COMPUTE);
        let h = fnv(h, self.label.as_bytes());
        let h = fnv(h, &[self.charged as u8]);
        fnv(h, &self.param.to_le_bytes())
    }
}

/// Fold a barrier's structure — tag, label, parameter hash — into a
/// running FNV hash.
fn hash_barrier(h: u64, label: &str, param: u64) -> u64 {
    let h = fnv(h, TAG_BARRIER);
    let h = fnv(h, label.as_bytes());
    fnv(h, &param.to_le_bytes())
}

/// Fold a branch's structure — tag, label, kind discriminant, parameter
/// hash, then the two arm hashes as fixed-width values — into a running
/// FNV hash. The arm hashes are complete sub-chain fingerprints (each
/// restarted from the offset basis), so arm topology is unambiguous:
/// `pair(f, g)` and `pair(g, f)` differ, as do arms of different depth,
/// and a stage can never "leak" across an arm boundary.
fn hash_branch(h: u64, label: &str, kind: u8, param: u64, left: u64, right: u64) -> u64 {
    let h = fnv(h, TAG_BRANCH);
    let h = fnv(h, label.as_bytes());
    let h = fnv(h, &[kind]);
    let h = fnv(h, &param.to_le_bytes());
    let h = fnv(h, &left.to_le_bytes());
    fnv(h, &right.to_le_bytes())
}

/// Hash a stage-parameter rendering into the value plan constructors
/// stamp through `FusedPlan::tag_param`.
pub(crate) fn param_hash(s: &str) -> u64 {
    fnv(FNV_OFFSET, s.as_bytes())
}

/// Hash a fused node chain. Segment grouping is irrelevant by
/// construction: nodes are hashed stage by stage, so this agrees with
/// [`fingerprint_ops`] over the grouped operator list of the same plan.
pub(crate) fn fingerprint_nodes(nodes: &[FusedNode<'_>]) -> u64 {
    let mut h = FNV_OFFSET;
    for node in nodes {
        h = match node {
            FusedNode::Compute(st) => st.hash_into(h),
            FusedNode::Barrier { label, param, .. } => hash_barrier(h, label, *param),
            FusedNode::Branch(b) => hash_branch(
                h,
                b.label,
                b.kind.tag_byte(),
                b.param,
                fingerprint_nodes(&b.left),
                fingerprint_nodes(&b.right),
            ),
        };
    }
    h
}

/// Structurally fingerprint a streaming operator list — the
/// [`PlanOp`]-level hash, usable after
/// [`Skel::into_stream_ops`](crate::plan::Skel::into_stream_ops) has
/// consumed the plan. Hashes the operator chain only;
/// [`Skel::fingerprint`](crate::plan::Skel::fingerprint) additionally
/// folds in the plan's IR representation (or its absence), so the two
/// values are related but not equal.
pub fn fingerprint_ops(ops: &[PlanOp<'_>]) -> PlanFingerprint {
    PlanFingerprint(hash_ops(FNV_OFFSET, ops))
}

/// The recursive body of [`fingerprint_ops`] — hashes stage by stage, so
/// it agrees with [`fingerprint_nodes`] over the ungrouped chain of the
/// same plan (branch arms included).
fn hash_ops(mut h: u64, ops: &[PlanOp<'_>]) -> u64 {
    for op in ops {
        match op {
            PlanOp::Segment(seg) => {
                for st in &seg.stages {
                    h = st.hash_into(h);
                }
            }
            PlanOp::Barrier(b) => h = hash_barrier(h, b.label, b.param),
            PlanOp::Branch(b) => {
                h = hash_branch(
                    h,
                    b.label,
                    b.kind.tag_byte(),
                    b.param,
                    hash_ops(FNV_OFFSET, &b.left),
                    hash_ops(FNV_OFFSET, &b.right),
                )
            }
        }
    }
    h
}

/// Combine a node-chain hash with a plan's optional IR representation into
/// the final fingerprint (the IR distinguishes lowerable stages whose
/// parameters the node chain cannot see, e.g. `rotate(1)` vs `rotate(2)`).
pub(crate) fn fingerprint_with_repr(nodes_hash: u64, repr: Option<String>) -> PlanFingerprint {
    let h = match repr {
        Some(text) => fnv(fnv(nodes_hash, &[0x03]), text.as_bytes()),
        None => fnv(nodes_hash, &[0x04]),
    };
    PlanFingerprint(h)
}

// ---- streaming introspection ------------------------------------------------

/// One operator of a fused plan, as a streaming runtime consumes it: a
/// maximal run of part-local compute stages ([`PlanOp::Segment`], pure and
/// replicable across farm workers) or a whole-configuration barrier
/// ([`PlanOp::Barrier`], stateful and order-serial). Produced by
/// [`Skel::into_stream_ops`](crate::plan::Skel::into_stream_ops); barriers
/// are exactly the stage boundaries of the persistent operator graph.
pub enum PlanOp<'a> {
    /// A maximal fused compute segment.
    Segment(SegmentOp<'a>),
    /// A fusion barrier.
    Barrier(BarrierOp<'a>),
    /// A DAG fork: two independent arm op chains between a split and a
    /// join (or one of two, for `choice`). A streaming runtime either
    /// decomposes it into sibling farm stages
    /// ([`BranchOp::into_pipelined`]) or runs it whole on the pump thread
    /// ([`BranchOp::try_apply`]).
    Branch(BranchOp<'a>),
}

impl PlanOp<'_> {
    /// Display label: the barrier's stage name, the segment's stage
    /// names joined with `+`, or the branch's label with its arm labels
    /// in brackets.
    pub fn label(&self) -> String {
        match self {
            PlanOp::Segment(seg) => seg.label(),
            PlanOp::Barrier(b) => b.label().to_string(),
            PlanOp::Branch(b) => b.display_label(),
        }
    }
}

/// A maximal run of part-local compute stages, extracted from a fused
/// plan. `Send + Sync`: a streaming runtime shares one `SegmentOp` across
/// all replicas of a farm stage.
pub struct SegmentOp<'a> {
    stages: Vec<ComputeStage<'a>>,
}

impl SegmentOp<'_> {
    /// Number of fused compute stages in the segment.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True for a segment with no stages (never produced by plans).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage labels, in execution order.
    pub fn stage_labels(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.label).collect()
    }

    /// Display label: stage names joined with `+`.
    pub fn label(&self) -> String {
        self.stage_labels().join("+")
    }

    /// Run the whole segment over every part of `val`, charging `scl`
    /// **exactly as the eager layer would**: one compute event per part
    /// per *charged* stage (all map flavours; `zip_with` stays free), in
    /// the same per-processor order as the eager stage-by-stage loops —
    /// so per-item metrics and makespan agree with
    /// [`Skel::run`](crate::plan::Skel::run) bit-for-bit under
    /// [`MeasureMode::None`](crate::ctx::MeasureMode)
    /// and costed stages. (The fused executor instead charges each part
    /// once with the summed work; same totals, different `compute_steps`.)
    ///
    /// # Panics
    /// Re-raises a stage panic labelled
    /// `` fused stage `X` panicked on part i ``, like fused execution.
    pub fn apply(&self, scl: &mut Scl, val: ErasedArr) -> ErasedArr {
        self.try_apply(scl, val).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`SegmentOp::apply`], but a stage panic is caught and returned
    /// as a typed [`RequestError::StagePanic`] carrying the stage label,
    /// part index, and panic payload — failure as a value, for runtimes
    /// that must not unwind. Charges already recorded for earlier stages
    /// and parts stay on `scl` (exactly what the panicking path did too).
    pub fn try_apply(
        &self,
        scl: &mut Scl,
        val: ErasedArr,
    ) -> std::result::Result<ErasedArr, RequestError> {
        let ErasedArr {
            arr,
            side,
            elem_bytes,
        } = val;
        let (parts, procs, shape) = arr.into_raw();
        let mut out = Vec::with_capacity(parts.len());
        for (i, part) in parts.into_iter().enumerate() {
            let mut v = part;
            for st in &self.stages {
                match std::panic::catch_unwind(AssertUnwindSafe(|| (st.f)(i, v))) {
                    Ok((nv, w, secs)) => {
                        if st.charged {
                            let charged = w + scl.measured_work(secs);
                            scl.machine.compute(procs[i], charged, st.label);
                        }
                        v = nv;
                    }
                    Err(payload) => {
                        return Err(RequestError::StagePanic {
                            stage: st.label.to_string(),
                            part: i,
                            message: panic_message(&*payload).to_string(),
                        })
                    }
                }
            }
            out.push(v);
        }
        Ok(ErasedArr {
            arr: ParArray::from_raw(out, procs, shape),
            side,
            elem_bytes,
        })
    }

    /// Run the whole segment over every part of `val`, charging `scl`
    /// **exactly as [`Scl::run_fused`] would**: each part is charged
    /// *once* with the summed work of every stage, as a single `"fused"`
    /// compute event — where [`SegmentOp::apply`] replays the eager
    /// per-stage charges. Same work totals and makespan either way;
    /// `compute_steps` and trace events differ by design.
    ///
    /// A streaming runtime uses this charging mode when its per-item
    /// reports must agree with solo fused execution
    /// ([`Scl::run_fused`] / [`Scl::run_optimized`]) rather than solo
    /// eager execution.
    ///
    /// [`Scl::run_fused`]: crate::ctx::Scl::run_fused
    /// [`Scl::run_optimized`]: crate::ctx::Scl::run_optimized
    ///
    /// # Panics
    /// Re-raises a stage panic labelled
    /// `` fused stage `X` panicked on part i ``, like fused execution.
    pub fn apply_summed(&self, scl: &mut Scl, val: ErasedArr) -> ErasedArr {
        self.try_apply_summed(scl, val)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`SegmentOp::apply_summed`], but a stage panic is caught and
    /// returned as a typed [`RequestError::StagePanic`] instead of
    /// unwinding. Parts already charged stay charged.
    pub fn try_apply_summed(
        &self,
        scl: &mut Scl,
        val: ErasedArr,
    ) -> std::result::Result<ErasedArr, RequestError> {
        let ErasedArr {
            arr,
            side,
            elem_bytes,
        } = val;
        let (parts, procs, shape) = arr.into_raw();
        let mut out = Vec::with_capacity(parts.len());
        for (i, part) in parts.into_iter().enumerate() {
            let mut v = part;
            let mut w = Work::NONE;
            let mut secs = 0.0;
            for st in &self.stages {
                match std::panic::catch_unwind(AssertUnwindSafe(|| (st.f)(i, v))) {
                    Ok((nv, nw, ns)) => {
                        v = nv;
                        w += nw;
                        secs += ns;
                    }
                    Err(payload) => {
                        return Err(RequestError::StagePanic {
                            stage: st.label.to_string(),
                            part: i,
                            message: panic_message(&*payload).to_string(),
                        })
                    }
                }
            }
            let charged = w + scl.measured_work(secs);
            scl.machine.compute(procs[i], charged, "fused");
            out.push(v);
        }
        Ok(ErasedArr {
            arr: ParArray::from_raw(out, procs, shape),
            side,
            elem_bytes,
        })
    }
}

/// A whole-configuration barrier stage, extracted from a fused plan.
/// Stateful (`FnMut`, possibly `Rc`-shared with the plan's eager path), so
/// a streaming runtime must run it on one thread and feed it items in
/// stream order.
pub struct BarrierOp<'a> {
    label: &'static str,
    param: u64,
    f: BarrierFn<'a>,
}

impl BarrierOp<'_> {
    /// The barrier's stage name.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Run the barrier, then validate that the configuration it produced
    /// still fits the machine — the same contract as fused execution.
    pub fn apply(&mut self, scl: &mut Scl, val: ErasedArr) -> Result<ErasedArr> {
        let out = (self.f)(scl, val)?;
        scl.try_check_fits(out.arr.len())?;
        Ok(out)
    }
}

/// A DAG fork extracted from a fused plan: two arm op chains between a
/// split and a join (the `Split` kind — `pair` / `fanout`) or a
/// predicate-selected arm (the `Choose` kind — `choice`).
///
/// A streaming runtime has two ways to run one:
///
/// * [`BranchOp::into_pipelined`] decomposes a `Split` branch whose arms
///   are each a single pure segment into five linear ops — split barrier,
///   left segment, swap barrier, right segment, join barrier — so the arm
///   segments become *sibling farm stages* and independent arms of
///   consecutive items overlap on the shared pool;
/// * [`BranchOp::try_apply`] runs the whole branch on the calling (pump)
///   thread, for branches whose arms contain barriers or nested branches.
pub struct BranchOp<'a> {
    label: &'static str,
    param: u64,
    kind: BranchKind<'a>,
    left: Vec<PlanOp<'a>>,
    right: Vec<PlanOp<'a>>,
}

/// The pipelined decomposition of a `Split` branch whose arms are single
/// pure segments — see [`BranchOp::into_pipelined`]. While the active
/// half flows through one arm's farm, the other half rides along inside
/// the value's *side* slot (which segments never touch), so a linear hop
/// topology carries a forked value without any cross-stage coordination.
pub struct PipelinedBranch<'a> {
    /// Split the input and park the right half in the side slot.
    pub enter: BarrierOp<'a>,
    /// The left arm's compute segment — a farm stage.
    pub left: SegmentOp<'a>,
    /// Swap halves: park the processed left, surface the right.
    pub swap: BarrierOp<'a>,
    /// The right arm's compute segment — a sibling farm stage.
    pub right: SegmentOp<'a>,
    /// Unpark the processed left and zip the halves back together.
    pub exit: BarrierOp<'a>,
}

/// Park `inner` in `host`'s side slot (asserting it was free — branch
/// boundaries in plans over arrays always are).
fn park(mut host: ErasedArr, inner: ErasedArr) -> ErasedArr {
    assert!(
        host.side.is_none() && inner.side.is_none(),
        "pipelined branch halves must not carry side payloads"
    );
    host.side = Some(Box::new(inner));
    host
}

/// Take the parked half back out of `host`'s side slot.
fn unpark(host: &mut ErasedArr) -> ErasedArr {
    *host
        .side
        .take()
        .expect("pipelined branch lost its parked half")
        .downcast::<ErasedArr>()
        .expect("pipelined branch side slot held a foreign payload")
}

impl<'a> BranchOp<'a> {
    /// The branch's own label (`"pair"`, `"fanout"`, `"choice"`).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Display label with arm structure: `pair[map+imap | rotate]`.
    pub fn display_label(&self) -> String {
        let arm = |ops: &[PlanOp<'_>]| {
            ops.iter()
                .map(|op| op.label())
                .collect::<Vec<_>>()
                .join(" . ")
        };
        format!("{}[{} | {}]", self.label, arm(&self.left), arm(&self.right))
    }

    /// Run the whole branch on the calling thread, charging `scl` per
    /// stage (`summed = false`, eager-equivalent charging) or per segment
    /// (`summed = true`, fused-equivalent) — the same flag a streaming
    /// runtime passes to [`SegmentOp::try_apply`] /
    /// [`SegmentOp::try_apply_summed`]. Arm failures come back as typed
    /// [`RequestError`]s: a panicking arm stage is a
    /// [`RequestError::StagePanic`] with the part index *local to the
    /// arm*, a failing arm barrier a [`RequestError::BarrierFailed`].
    /// For a `Split` branch the left arm runs first, exactly like fused
    /// execution, so per-item machine reports agree bit-for-bit.
    pub fn try_apply(
        &mut self,
        scl: &mut Scl,
        val: ErasedArr,
        summed: bool,
    ) -> std::result::Result<ErasedArr, RequestError> {
        match &mut self.kind {
            BranchKind::Choose(decide) => {
                let (val, take_left) = decide(val);
                let arm = if take_left {
                    &mut self.left
                } else {
                    &mut self.right
                };
                apply_ops(arm, scl, val, summed)
            }
            BranchKind::Split { split, join } => {
                let (l, r) = split(val);
                let lo = apply_ops(&mut self.left, scl, l, summed)?;
                let ro = apply_ops(&mut self.right, scl, r, summed)?;
                Ok(join(lo, ro))
            }
        }
    }

    /// Decompose into sibling farm stages, if this is a `Split` branch
    /// whose arms are each exactly one pure compute segment (no barriers,
    /// no nested branches). Returns the branch unchanged otherwise.
    ///
    /// The decomposition is linear — five consecutive ops — so it drops
    /// into a streaming runtime's existing hop/farm topology: the two arm
    /// segments become independent farm stages that overlap across
    /// *items* (item `k`'s right half runs while item `k+1`'s left half
    /// does), and each item still charges its own context left arm first,
    /// keeping per-item reports identical to fused execution.
    #[allow(clippy::result_large_err)] // Err is the undecomposed branch, by design
    pub fn into_pipelined(self) -> std::result::Result<PipelinedBranch<'a>, BranchOp<'a>> {
        let single_segment = |ops: &[PlanOp<'_>]| matches!(ops, [PlanOp::Segment(_)]);
        if !(single_segment(&self.left) && single_segment(&self.right)) {
            return Err(self);
        }
        let BranchKind::Split { split, join } = self.kind else {
            return Err(self);
        };
        let seg = |mut ops: Vec<PlanOp<'a>>| match ops.pop() {
            Some(PlanOp::Segment(seg)) => seg,
            _ => unreachable!("checked single-segment arms"),
        };
        Ok(PipelinedBranch {
            enter: BarrierOp {
                label: "branch-split",
                param: self.param,
                f: Box::new(move |_scl, val| {
                    let (l, r) = split(val);
                    Ok(park(l, r))
                }),
            },
            left: seg(self.left),
            swap: BarrierOp {
                label: "branch-swap",
                param: 0,
                f: Box::new(|_scl, mut l_done| {
                    let r = unpark(&mut l_done);
                    Ok(park(r, l_done))
                }),
            },
            right: seg(self.right),
            exit: BarrierOp {
                label: "branch-join",
                param: 0,
                f: Box::new(move |_scl, mut r_done| {
                    let l_done = unpark(&mut r_done);
                    Ok(join(l_done, r_done))
                }),
            },
        })
    }
}

/// Run an op chain on the calling thread — the recursive body of
/// [`BranchOp::try_apply`].
fn apply_ops<'a>(
    ops: &mut [PlanOp<'a>],
    scl: &mut Scl,
    mut val: ErasedArr,
    summed: bool,
) -> std::result::Result<ErasedArr, RequestError> {
    for op in ops {
        val = match op {
            PlanOp::Segment(seg) => {
                if summed {
                    seg.try_apply_summed(scl, val)?
                } else {
                    seg.try_apply(scl, val)?
                }
            }
            PlanOp::Barrier(b) => {
                b.apply(scl, val)
                    .map_err(|error| RequestError::BarrierFailed {
                        stage: b.label().to_string(),
                        error,
                    })?
            }
            PlanOp::Branch(b) => b.try_apply(scl, val, summed)?,
        };
    }
    Ok(val)
}

/// Group a fused node chain into maximal segments and barriers — the
/// operator list a streaming runtime builds its graph from.
pub(crate) fn plan_ops(nodes: Vec<FusedNode<'_>>) -> Vec<PlanOp<'_>> {
    let mut ops: Vec<PlanOp<'_>> = Vec::new();
    for node in nodes {
        match node {
            FusedNode::Compute(st) => match ops.last_mut() {
                Some(PlanOp::Segment(seg)) => seg.stages.push(st),
                _ => ops.push(PlanOp::Segment(SegmentOp { stages: vec![st] })),
            },
            FusedNode::Barrier { label, param, f } => {
                ops.push(PlanOp::Barrier(BarrierOp { label, param, f }))
            }
            FusedNode::Branch(b) => ops.push(PlanOp::Branch(BranchOp {
                label: b.label,
                param: b.param,
                kind: b.kind,
                left: plan_ops(b.left),
                right: plan_ops(b.right),
            })),
        }
    }
    ops
}

/// Best-effort rendering of a panic payload for the labelled re-raise.
/// Non-string payloads (`panic_any` tokens) are flattened to a
/// placeholder: fused execution trades payload identity for the stage
/// label, unlike the eager path which propagates payloads verbatim.
/// Public so downstream executors (the streaming runtime's poison
/// envelopes) render payloads identically.
pub fn panic_message(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

impl Scl {
    /// Execute a fused plan: walk the node chain, running maximal compute
    /// runs as single partition-resident segments and barriers eagerly.
    pub(crate) fn exec_fused<A, B>(
        &mut self,
        plan: &mut FusedPlan<'_, A, B>,
        input: A,
    ) -> Result<B> {
        let val = (plan.entry)(input);
        self.try_check_fits(val.arr.len())?;
        let out = self.exec_chain(&mut plan.nodes, val)?;
        Ok((plan.exit)(out))
    }

    /// Walk one node chain: maximal compute runs execute as fused
    /// segments, barriers run eagerly, branches recurse into their arms.
    /// Also the executor for each arm of a [`FusedNode::Branch`].
    fn exec_chain(&mut self, nodes: &mut [FusedNode<'_>], mut val: ErasedArr) -> Result<ErasedArr> {
        let mut i = 0;
        while i < nodes.len() {
            match &mut nodes[i] {
                FusedNode::Barrier { f, .. } => {
                    val = f(self, val)?;
                    self.try_check_fits(val.arr.len())?;
                    i += 1;
                }
                FusedNode::Branch(_) => {
                    let FusedNode::Branch(b) = &mut nodes[i] else {
                        unreachable!()
                    };
                    val = self.exec_branch(b, val)?;
                    self.try_check_fits(val.arr.len())?;
                    i += 1;
                }
                FusedNode::Compute(_) => {
                    let mut j = i;
                    while j < nodes.len() && matches!(nodes[j], FusedNode::Compute(_)) {
                        j += 1;
                    }
                    val = self.exec_segment(&nodes[i..j], val);
                    i = j;
                }
            }
        }
        Ok(val)
    }

    /// Execute one branch node. A `Choose` branch runs exactly one arm;
    /// a `Split` branch runs both — concurrently as **one** dispatch over
    /// the concatenated halves when both arms are pure compute chains
    /// (the common `pair`/`fanout` shape), sequentially left-then-right
    /// otherwise. Machine charges are identical either way: each half's
    /// parts are charged in order, left arm first.
    fn exec_branch(&mut self, b: &mut BranchNode<'_>, val: ErasedArr) -> Result<ErasedArr> {
        match &mut b.kind {
            BranchKind::Choose(decide) => {
                let (val, take_left) = decide(val);
                if take_left {
                    self.exec_chain(&mut b.left, val)
                } else {
                    self.exec_chain(&mut b.right, val)
                }
            }
            BranchKind::Split { split, join } => {
                let (l, r) = split(val);
                let pure = |nodes: &[FusedNode<'_>]| {
                    nodes.iter().all(|n| matches!(n, FusedNode::Compute(_)))
                };
                if pure(&b.left) && pure(&b.right) {
                    let (lo, ro) = self.exec_split_segments(&b.left, &b.right, l, r);
                    return Ok(join(lo, ro));
                }
                let lo = self.exec_chain(&mut b.left, l)?;
                let ro = self.exec_chain(&mut b.right, r)?;
                Ok(join(lo, ro))
            }
        }
    }

    /// The branch-parallel fast path: both arms are pure compute chains,
    /// so the left half's parts and the right half's parts are mutually
    /// independent items — run them as a single `par_pipeline` dispatch
    /// over `left parts ++ right parts`, each item routed through its own
    /// arm's stages. Under a multi-thread policy the two arms genuinely
    /// overlap on distinct pool workers. Charging stays deterministic:
    /// after the dispatch, parts are charged in arm order (left first),
    /// exactly like sequential arm-at-a-time execution.
    fn exec_split_segments(
        &mut self,
        left: &[FusedNode<'_>],
        right: &[FusedNode<'_>],
        l: ErasedArr,
        r: ErasedArr,
    ) -> (ErasedArr, ErasedArr) {
        fn stages_of<'n, 'p>(nodes: &'n [FusedNode<'p>]) -> Vec<(&'static str, &'n ComputeFn<'p>)> {
            nodes
                .iter()
                .map(|n| match n {
                    FusedNode::Compute(ComputeStage { label, f, .. }) => (*label, f),
                    _ => unreachable!("pure arms contain only compute nodes"),
                })
                .collect()
        }
        let lstages = stages_of(left);
        let rstages = stages_of(right);

        let ErasedArr {
            arr: larr,
            side: lside,
            elem_bytes: lbytes,
        } = l;
        let ErasedArr {
            arr: rarr,
            side: rside,
            elem_bytes: rbytes,
        } = r;
        let ln = larr.len();
        let (threads, grain) = self.segment_schedule(
            ln + rarr.len(),
            lstages.len().max(rstages.len()),
            lbytes.max(rbytes),
        );
        let (lparts, lprocs, lshape) = larr.into_raw();
        let (rparts, rprocs, rshape) = rarr.into_raw();
        let mut parts = lparts;
        parts.extend(rparts);

        let step = |i: usize, part: PartVal| -> (PartVal, Work, f64) {
            let (local, stages) = if i < ln {
                (i, &lstages)
            } else {
                (i - ln, &rstages)
            };
            let mut v = part;
            let mut w = Work::NONE;
            let mut secs = 0.0;
            for (label, f) in stages {
                match std::panic::catch_unwind(AssertUnwindSafe(|| f(local, v))) {
                    Ok((nv, nw, ns)) => {
                        v = nv;
                        w += nw;
                        secs += ns;
                    }
                    Err(payload) => panic!(
                        "fused stage `{label}` panicked on part {local}: {}",
                        panic_message(&*payload)
                    ),
                }
            }
            (v, w, secs)
        };

        let results: Vec<(PartVal, Work, f64)> = if threads <= 1 || parts.is_empty() {
            parts
                .into_iter()
                .enumerate()
                .map(|(i, p)| step(i, p))
                .collect()
        } else {
            let pool = self.fused_pool(threads);
            par_pipeline(pool, parts, threads, grain, step)
        };

        let mut lout = Vec::with_capacity(ln);
        let mut rout = Vec::with_capacity(results.len() - ln);
        for (i, (v, w, secs)) in results.into_iter().enumerate() {
            let charged = w + self.measured_work(secs);
            if i < ln {
                self.machine.compute(lprocs[i], charged, "fused");
                lout.push(v);
            } else {
                self.machine.compute(rprocs[i - ln], charged, "fused");
                rout.push(v);
            }
        }
        (
            ErasedArr {
                arr: ParArray::from_raw(lout, lprocs, lshape),
                side: lside,
                elem_bytes: lbytes,
            },
            ErasedArr {
                arr: ParArray::from_raw(rout, rprocs, rshape),
                side: rside,
                elem_bytes: rbytes,
            },
        )
    }

    /// Run one fused segment — consecutive compute nodes — over every
    /// partition, charging each partition's accumulated work once.
    fn exec_segment(&mut self, segment: &[FusedNode<'_>], val: ErasedArr) -> ErasedArr {
        let ErasedArr {
            arr,
            side,
            elem_bytes,
        } = val;
        if arr.is_empty() {
            return ErasedArr {
                arr,
                side,
                elem_bytes,
            };
        }
        let stages: Vec<(&'static str, &ComputeFn<'_>)> = segment
            .iter()
            .map(|n| match n {
                FusedNode::Compute(ComputeStage { label, f, .. }) => (*label, f),
                _ => unreachable!("fused segments contain only compute nodes"),
            })
            .collect();

        let n = arr.len();
        let (threads, grain) = self.segment_schedule(n, stages.len(), elem_bytes);
        let (parts, procs, shape) = arr.into_raw();

        let step = |i: usize, part: PartVal| -> (PartVal, Work, f64) {
            let mut v = part;
            let mut w = Work::NONE;
            let mut secs = 0.0;
            for (label, f) in &stages {
                match std::panic::catch_unwind(AssertUnwindSafe(|| f(i, v))) {
                    Ok((nv, nw, ns)) => {
                        v = nv;
                        w += nw;
                        secs += ns;
                    }
                    Err(payload) => panic!(
                        "fused stage `{label}` panicked on part {i}: {}",
                        panic_message(&*payload)
                    ),
                }
            }
            (v, w, secs)
        };

        let results: Vec<(PartVal, Work, f64)> = if threads <= 1 {
            parts
                .into_iter()
                .enumerate()
                .map(|(i, p)| step(i, p))
                .collect()
        } else {
            // the pool only grows, so pass the cap: an earlier, wider
            // dispatch must not over-commit this smaller one
            let pool = self.fused_pool(threads);
            par_pipeline(pool, parts, threads, grain, step)
        };

        let mut out = Vec::with_capacity(results.len());
        for (i, (v, w, secs)) in results.into_iter().enumerate() {
            let charged = w + self.measured_work(secs);
            self.machine.compute(procs[i], charged, "fused");
            out.push(v);
        }
        ErasedArr {
            arr: ParArray::from_raw(out, procs, shape),
            side,
            elem_bytes,
        }
    }

    /// `(threads, grain)` for a segment under the current [`ExecPolicy`] —
    /// also the schedule for the owned compute maps in
    /// [`crate::skeletons::elementary`], which are one-stage segments.
    pub(crate) fn segment_schedule(
        &self,
        parts: usize,
        stages: usize,
        elem_bytes: usize,
    ) -> (usize, usize) {
        match self.policy {
            ExecPolicy::Sequential => (1, 1),
            ExecPolicy::Threads(t) => (t.max(1).min(parts), 1),
            ExecPolicy::CostDriven { threads } => {
                let d = self
                    .machine
                    .model()
                    .fused_decision(parts, stages, elem_bytes, threads);
                (d.threads.min(parts.max(1)), d.grain)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scl_machine::{CostModel, Machine, Topology};

    fn unit_ctx(n: usize) -> Scl {
        Scl::new(Machine::new(
            Topology::FullyConnected { procs: n },
            CostModel::unit(),
        ))
    }

    #[test]
    fn parray_port_roundtrips() {
        let a = ParArray::with_placement(vec![1i64, 2, 3], vec![4, 5, 6]);
        let e = a.clone().erase();
        assert_eq!(e.elem_bytes, std::mem::size_of::<i64>());
        let back: ParArray<i64> = FusePort::restore(e);
        assert_eq!(back, a);
    }

    #[test]
    fn pair_port_roundtrips() {
        let a = ParArray::from_parts(vec![1i64, 2]);
        let b = ParArray::from_parts(vec!["x".to_string(), "y".to_string()]);
        let e = (a.clone(), b.clone()).erase();
        let (ra, rb): (ParArray<i64>, ParArray<String>) = FusePort::restore(e);
        assert_eq!(ra, a);
        assert_eq!(rb, b);
    }

    #[test]
    #[should_panic(expected = "conforming")]
    fn pair_port_rejects_mismatch() {
        let a = ParArray::from_parts(vec![1i64, 2]);
        let b = ParArray::from_parts(vec![1i64]);
        let _ = (a, b).erase();
    }

    #[test]
    fn vec_and_state_ports_roundtrip() {
        let v = vec![1u64, 2, 3];
        let back: Vec<u64> = FusePort::restore(v.clone().erase());
        assert_eq!(back, v);

        let st = (ParArray::from_parts(vec![1.0f64, 2.0]), 7usize, 0.5f64);
        let (arr, iters, res): (ParArray<f64>, usize, f64) = FusePort::restore(st.clone().erase());
        assert_eq!(arr, st.0);
        assert_eq!(iters, 7);
        assert_eq!(res, 0.5);
    }

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        // pinned value: the fingerprint must not drift across releases
        assert_eq!(fnv(FNV_OFFSET, b"scl"), fnv(FNV_OFFSET, b"scl"));
        assert_ne!(fnv(FNV_OFFSET, b"ab"), fnv(FNV_OFFSET, b"ba"));
        assert_eq!(fnv(FNV_OFFSET, b""), FNV_OFFSET);
    }

    #[test]
    fn salt_derives_deterministically_and_distinctly() {
        let fp = PlanFingerprint(42);
        assert_eq!(fp.with_salt("tenant-a"), fp.with_salt("tenant-a"));
        assert_ne!(fp.with_salt("tenant-a"), fp.with_salt("tenant-b"));
        assert_ne!(fp.with_salt("tenant-a"), fp);
        // display is zero-padded hex of the raw value
        assert_eq!(fp.to_string(), format!("{:016x}", fp.raw()));
    }

    #[test]
    fn segment_schedule_honours_policy() {
        let s = unit_ctx(4);
        assert_eq!(s.segment_schedule(8, 3, 8), (1, 1));
        let s = s.with_policy(ExecPolicy::Threads(4));
        assert_eq!(s.segment_schedule(8, 3, 8), (4, 1));
        assert_eq!(s.segment_schedule(2, 3, 8), (2, 1));
        // unit model: any real work justifies fanning out
        let s = s.with_policy(ExecPolicy::CostDriven { threads: 4 });
        assert_eq!(s.segment_schedule(8, 3, 8), (4, 1));
        assert_eq!(s.segment_schedule(1, 3, 8), (1, 1));
    }
}
