#![deny(missing_docs)]
//! # scl-core — Parallel Skeletons for Structured Composition
//!
//! A Rust reproduction of the coordination language **SCL** from
//! Darlington, Guo, To & Yang, *"Parallel Skeletons for Structured
//! Composition"* (PPoPP 1995).
//!
//! SCL structures a parallel program in two tiers: an upper *coordination*
//! layer built by composing **skeletons** — predefined, higher-order
//! parallel forms — and a lower layer of ordinary sequential code (Rust
//! closures here, Fortran/C in the paper). The skeletons abstract *all*
//! parallel behaviour: partitioning, placement, data movement, and control
//! flow. In exchange, programs become portable (retarget the
//! [`scl_machine::CostModel`]), composable, and optimisable by algebraic
//! transformation (see the `scl-transform` crate).
//!
//! ## The three skeleton families — and plans over them
//!
//! | family | skeletons | eager module | plan combinators |
//! |---|---|---|---|
//! | configuration | `partition`, `gather`, `align`, `distribution`, `redistribution`, `split`, `combine` | [`ctx`], [`config`], [`partition`] | [`Skel::partition`], [`Skel::gather`], [`Skel::balance`] |
//! | elementary | `map`, `imap`, `fold`, `scan`, `zip_with` + communication: `rotate`, `rotate_row`, `rotate_col`, `brdcast`, `apply_brdcast`, `send`, `fetch`, `total_exchange` | [`skeletons::elementary`], [`skeletons::comm`] | [`Skel::map`], [`Skel::imap`], [`Skel::fold`], [`Skel::scan`], [`Skel::zip_with`], [`Skel::rotate`], [`Skel::shift`], [`Skel::brdcast`], [`Skel::fetch`], [`Skel::total_exchange`] |
//! | computational | `farm`, `spmd`, `iter_until`, `iter_for`, `dc`, `pipeline` | [`skeletons::compute`] | [`Skel::farm`], [`Skel::spmd`], [`Skel::iter_until`], [`Skel::iter_for`], [`Skel::dc`], [`Skel::task_pipeline`] |
//! | streaming | persistent pipeline/farm operator graphs serving a plan over unbounded input — bounded queues, backpressure, autonomic farm widths | `scl-stream` (`StreamExec`) | [`Skel::into_stream_ops`] → `StreamExec::push`/`drain`/`run_stream` |
//!
//! Every skeleton is available two ways: **eagerly**, as a method on
//! [`Scl`] that executes immediately, and as a **plan combinator** on
//! [`Skel`] that builds a first-class program value. Plans compose with
//! [`Skel::then`] / [`Skel::pipe`], run with [`Skel::run`], and — for the
//! symbolic `i64` fragment ([`Skel::map_sym`], [`Skel::rotate`],
//! [`Skel::fetch_sym`], [`Skel::send_sym`], [`Skel::scan_sym`]) — lower
//! into the `scl-transform` IR so [`Scl::run_optimized`] can apply the
//! paper's §4 rewrite laws *before* executing (see [`plan`]).
//!
//! ## Fused, partition-resident execution
//!
//! Eager execution dispatches each skeleton separately: every `.then()`
//! materialises a full [`ParArray`] and spawns fresh scoped workers.
//! [`Scl::run_fused`] instead compiles a plan into per-partition stage
//! chains (module [`fused`]): runs of part-local **compute** skeletons
//! (`map`, `imap`, `zip_with`, `farm`, their costed forms) execute
//! back-to-back on the worker owning each partition — no intermediate
//! arrays, one persistent-pool dispatch per run — while
//! **communication** skeletons (`rotate`, `fetch`, `total_exchange`,
//! scans, reductions, repartitioning) are the only barriers between fused
//! segments. Results agree with eager execution bit-for-bit (the
//! `tests/fused_vs_eager.rs` differential suite holds this under
//! sequential, threaded, and cost-driven policies), and the simulated
//! machine is charged the same work *totals* either way — makespan and
//! operation counts agree, though a fused segment charges each partition
//! once with the summed work where eager charges per stage, so
//! `compute_steps` and per-stage trace events differ.
//!
//! Which segments fan out across host threads — and at what scheduling
//! grain — is decided by the [`scl_exec::ExecPolicy`]:
//! `ExecPolicy::Sequential` and `ExecPolicy::Threads` behave as named,
//! while `ExecPolicy::CostDriven` consults the machine's
//! [`CostModel::fused_decision`](scl_machine::CostModel::fused_decision)
//! per segment, falling back to sequential execution when a segment's
//! estimated work is within a few multiples of the dispatch overhead.
//! Opaque whole-array stages join fused chains as explicit barriers via
//! [`Skel::barrier`]; plans containing a stage with no fused form fall
//! back to eager execution (same answer). [`Scl::run_optimized`] executes
//! the rewritten program through this executor, so §4 optimisation and
//! fusion compose.
//!
//! ## Zero-copy communication: the ownership discipline
//!
//! Every communication skeleton comes in two forms with **identical
//! machine charges** (routes, messages, bytes, makespan — held by the
//! `tests/owned_vs_borrowed.rs` differential suite):
//!
//! * the **borrowed** form (`rotate(&a)`, `total_exchange(&a)`, …) keeps
//!   the input alive and *clones* every part it routes — right when the
//!   input is reused (Cannon-style sweeps over a retained array, ablation
//!   runs over one dataset);
//! * the **owned** form (`rotate_owned(a)`, `total_exchange_owned(a)`,
//!   `gather_owned(a)`, `partition_owned(data)`, …) consumes the input and
//!   **moves** parts along the routes — permutations
//!   ([`ParArray::permute_owned`]) clone nothing at all; one-to-many
//!   routings ([`ParArray::reindex_owned`], `send_owned`, `fetch_owned`)
//!   move each source's *last* use and clone only the extra copies, which
//!   is exactly the data the simulated machine charges for shipping
//!   anyway.
//!
//! The plan layer uses the owned forms exclusively: every barrier stage of
//! a [`Skel`] receives its array by value and re-emits an owned one, so a
//! fused chain moves part payloads end to end. Heavy local movements — the
//! `total_exchange` bucket transpose, the `gather` concat, the block
//! `partition` scatter — additionally fan out across the context's
//! persistent worker pool (`scl_exec::par_permute` / `par_concat` /
//! `par_scatter`) when
//! [`CostModel::comm_decision`](scl_machine::CostModel::comm_decision)
//! says the moved bytes justify a dispatch; small arrays stay inline.
//!
//! Iterative plans double-buffer through the context's recycled-buffer
//! pool: [`Scl::take_buf`] hands out a cleared buffer (reusing a recycled
//! allocation when one fits), [`Scl::recycle_buf`] parks a spent one, so a
//! convergence loop like jacobi's allocates a constant amount per sweep
//! after its first iteration. The pool is host-side performance state, not
//! machine state: [`Scl::reset`] deliberately keeps it (warm buffers carry
//! across runs), and [`Scl::clear_buffers`] drops it explicitly. Resident
//! bytes are capped ([`DEFAULT_BUFFER_CAP_BYTES`] unless overridden with
//! [`Scl::with_buffer_cap`]) with oldest-first eviction, and
//! [`Scl::pooled_bytes`] reads the gauge.
//!
//! All `ParArray`-returning skeletons are `#[must_use]`: dropping a
//! skeleton result silently is almost always a performance bug (the work
//! and communication were still charged), so it warns at compile time.
//!
//! ## Example: distributed dot product
//!
//! ```
//! use scl_core::prelude::*;
//!
//! let mut scl = Scl::ap1000(4);
//! let x: Vec<f64> = (0..1000).map(|i| i as f64).collect();
//! let y: Vec<f64> = (0..1000).map(|i| 2.0 * i as f64).collect();
//!
//! // Configure: block-distribute both vectors and align them.
//! let cfg = scl.distribution2(Pattern::Block(4), &x, Pattern::Block(4), &y);
//!
//! // Local dot products (costed: 2 flops per element), then a global fold.
//! let partials = scl.map_costed(&cfg, |(xs, ys)| {
//!     let dot: f64 = xs.iter().zip(ys).map(|(a, b)| a * b).sum();
//!     (dot, Work::flops(2 * xs.len() as u64))
//! });
//! let dot = scl.fold(&partials, |a, b| a + b);
//!
//! let expect: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
//! assert_eq!(dot, expect);
//! println!("predicted time on 4 AP1000 cells: {}", scl.makespan());
//! ```

pub mod array;
pub mod bytes;
pub mod config;
pub mod ctx;
pub mod error;
pub mod fused;
pub mod partition;
pub mod plan;
pub mod seq;
pub mod skeletons;
pub mod wire;

pub use array::{GridShape, ParArray};
pub use bytes::Bytes;
pub use config::{align, align3, combine, split, try_align, unalign};
pub use ctx::{MeasureMode, Scl, DEFAULT_BUFFER_CAP_BYTES};
pub use error::{RequestError, Result, SclError};
pub use fused::{
    fingerprint_ops, panic_message, BarrierOp, BranchOp, ErasedArr, FusePort, PartVal,
    PipelinedBranch, PlanFingerprint, PlanOp, SegmentOp,
};
pub use partition::{block_ranges, gather, gather2, owner_1d, Pattern};
pub use plan::Skel;
pub use seq::Matrix;
pub use skeletons::{GlobalOp, LocalOp, PipeStageFn, SpmdStage};
pub use wire::{FrameHeader, WireError, WireReader, WireWriter};

/// Everything a skeleton program usually needs.
pub mod prelude {
    pub use crate::array::{GridShape, ParArray};
    pub use crate::bytes::Bytes;
    pub use crate::config::{align, align3, combine, split, unalign};
    pub use crate::ctx::{MeasureMode, Scl};
    pub use crate::fused::FusePort;
    pub use crate::partition::Pattern;
    pub use crate::plan::Skel;
    pub use crate::seq::Matrix;
    pub use crate::skeletons::{PipeStageFn, SpmdStage};
    pub use scl_exec::ExecPolicy;
    pub use scl_machine::{CostModel, Machine, Time, Topology, Work};
    pub use scl_transform::{Expr as PlanExpr, Registry};
}
