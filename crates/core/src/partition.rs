//! Partitioning strategies — the heart of SCL's configuration model.
//!
//! A [`Pattern`] is the paper's `Partition_pattern`: a function from
//! sequential-array indices to parallel-array indices. [`partition`] divides
//! a sequential array into a [`ParArray`] of sequential sub-arrays, and
//! [`gather`] is its exact inverse. The 2-D strategies (`row_block`,
//! `col_block`, `row_col_block`, `row_cyclic`, `col_cyclic`) mirror the
//! built-ins the paper lists, which themselves follow HPF's distribution
//! directives.
//!
//! These functions are *pure data* transformations; the costed versions that
//! charge the simulated machine live on [`crate::ctx::Scl`].

use crate::array::ParArray;
use crate::seq::Matrix;
use std::ops::Range;

/// A distribution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Contiguous blocks over `p` parts (sizes balanced to ±1).
    Block(usize),
    /// Round-robin elements over `p` parts.
    Cyclic(usize),
    /// Round-robin blocks of `block` elements over `p` parts.
    BlockCyclic {
        /// Number of parts.
        p: usize,
        /// Elements per dealt block.
        block: usize,
    },
    /// Contiguous row blocks of a matrix over `p` parts.
    RowBlock(usize),
    /// Contiguous column blocks of a matrix over `p` parts.
    ColBlock(usize),
    /// Rows dealt round-robin over `p` parts.
    RowCyclic(usize),
    /// Columns dealt round-robin over `p` parts.
    ColCyclic(usize),
    /// 2-D blocks over a `pr × pc` processor grid (`row_col_block`).
    Grid {
        /// Processor-grid rows.
        pr: usize,
        /// Processor-grid columns.
        pc: usize,
    },
}

impl Pattern {
    /// Number of parts this pattern produces.
    pub fn parts(&self) -> usize {
        match *self {
            Pattern::Block(p)
            | Pattern::Cyclic(p)
            | Pattern::BlockCyclic { p, .. }
            | Pattern::RowBlock(p)
            | Pattern::ColBlock(p)
            | Pattern::RowCyclic(p)
            | Pattern::ColCyclic(p) => p,
            Pattern::Grid { pr, pc } => pr * pc,
        }
    }

    /// True for patterns that apply to one-dimensional data.
    pub fn is_1d(&self) -> bool {
        matches!(
            self,
            Pattern::Block(_) | Pattern::Cyclic(_) | Pattern::BlockCyclic { .. }
        )
    }

    /// Validate the pattern itself (non-zero part counts, block sizes).
    pub fn check(&self) {
        assert!(
            self.parts() > 0,
            "pattern must produce at least one part: {self:?}"
        );
        if let Pattern::BlockCyclic { block, .. } = self {
            assert!(*block > 0, "block size must be positive");
        }
    }
}

/// Balanced contiguous ranges: `n` items over `p` parts, first `n % p`
/// parts one longer.
pub fn block_ranges(n: usize, p: usize) -> Vec<Range<usize>> {
    assert!(p > 0, "cannot partition over zero parts");
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0;
    for i in 0..p {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Which part element `j` of an `n`-element array lands on.
pub fn owner_1d(pattern: Pattern, n: usize, j: usize) -> usize {
    debug_assert!(j < n);
    match pattern {
        Pattern::Block(p) => {
            // Invert the balanced ranges analytically.
            let base = n / p;
            let extra = n % p;
            let fat = (base + 1) * extra; // elements in the fat prefix
            if base == 0 {
                // p > n: element j on part j
                j
            } else if j < fat {
                j / (base + 1)
            } else {
                extra + (j - fat) / base
            }
        }
        Pattern::Cyclic(p) => j % p,
        Pattern::BlockCyclic { p, block } => (j / block) % p,
        _ => panic!("owner_1d on a 2-D pattern {pattern:?}"),
    }
}

/// Divide a sequential array into a distributed array of sub-arrays.
///
/// # Panics
/// Panics if `pattern` is not one-dimensional.
pub fn partition<T: Clone>(pattern: Pattern, data: &[T]) -> ParArray<Vec<T>> {
    pattern.check();
    let n = data.len();
    match pattern {
        Pattern::Block(p) => ParArray::from_parts(
            block_ranges(n, p)
                .into_iter()
                .map(|r| data[r].to_vec())
                .collect(),
        ),
        Pattern::Cyclic(p) => {
            let mut parts: Vec<Vec<T>> = vec![Vec::with_capacity(n / p + 1); p];
            for (j, x) in data.iter().enumerate() {
                parts[j % p].push(x.clone());
            }
            ParArray::from_parts(parts)
        }
        Pattern::BlockCyclic { p, block } => {
            let mut parts: Vec<Vec<T>> = vec![Vec::with_capacity(n / p + block); p];
            for (j, x) in data.iter().enumerate() {
                parts[(j / block) % p].push(x.clone());
            }
            ParArray::from_parts(parts)
        }
        _ => panic!("partition of a 1-D array needs a 1-D pattern, got {pattern:?}"),
    }
}

/// [`partition`] that **consumes** the host data, moving each element into
/// its part — no clones. Block patterns split off contiguous ranges;
/// cyclic patterns deal elements out by move.
///
/// # Panics
/// Panics if `pattern` is not one-dimensional.
pub fn partition_owned<T>(pattern: Pattern, data: Vec<T>) -> ParArray<Vec<T>> {
    pattern.check();
    let n = data.len();
    match pattern {
        Pattern::Block(p) => {
            let ranges = block_ranges(n, p);
            let mut data = data;
            let mut parts = Vec::with_capacity(p);
            for r in ranges.iter().rev() {
                parts.push(data.split_off(r.start));
            }
            parts.reverse();
            ParArray::from_parts(parts)
        }
        Pattern::Cyclic(p) => {
            let mut parts: Vec<Vec<T>> = (0..p).map(|_| Vec::with_capacity(n / p + 1)).collect();
            for (j, x) in data.into_iter().enumerate() {
                parts[j % p].push(x);
            }
            ParArray::from_parts(parts)
        }
        Pattern::BlockCyclic { p, block } => {
            let mut parts: Vec<Vec<T>> =
                (0..p).map(|_| Vec::with_capacity(n / p + block)).collect();
            for (j, x) in data.into_iter().enumerate() {
                parts[(j / block) % p].push(x);
            }
            ParArray::from_parts(parts)
        }
        _ => panic!("partition of a 1-D array needs a 1-D pattern, got {pattern:?}"),
    }
}

/// Exact inverse of [`partition`].
pub fn gather<T: Clone>(pattern: Pattern, dist: &ParArray<Vec<T>>) -> Vec<T> {
    pattern.check();
    let p = pattern.parts();
    assert_eq!(
        dist.len(),
        p,
        "distributed array has {} parts, pattern expects {p}",
        dist.len()
    );
    let n: usize = dist.parts().iter().map(Vec::len).sum();
    match pattern {
        Pattern::Block(_) => dist
            .parts()
            .iter()
            .flat_map(|v| v.iter().cloned())
            .collect(),
        Pattern::Cyclic(_) | Pattern::BlockCyclic { .. } => {
            let mut cursors = vec![0usize; p];
            let mut out = Vec::with_capacity(n);
            for j in 0..n {
                let o = owner_1d(pattern, n, j);
                out.push(dist.part(o)[cursors[o]].clone());
                cursors[o] += 1;
            }
            out
        }
        _ => panic!("gather of a 1-D array needs a 1-D pattern, got {pattern:?}"),
    }
}

/// Divide a matrix into a distributed array of sub-matrices.
///
/// `RowBlock`/`RowCyclic`/`ColBlock`/`ColCyclic` produce a 1-D `ParArray`;
/// `Grid` produces a 2-D one.
///
/// # Panics
/// Panics if `pattern` is one-dimensional.
pub fn partition2<T: Clone>(pattern: Pattern, m: &Matrix<T>) -> ParArray<Matrix<T>> {
    pattern.check();
    match pattern {
        Pattern::RowBlock(p) => ParArray::from_parts(
            block_ranges(m.rows(), p)
                .into_iter()
                .map(|r| m.row_range(r.start, r.end))
                .collect(),
        ),
        Pattern::ColBlock(p) => ParArray::from_parts(
            block_ranges(m.cols(), p)
                .into_iter()
                .map(|r| m.col_range(r.start, r.end))
                .collect(),
        ),
        Pattern::RowCyclic(p) => ParArray::from_parts(
            (0..p)
                .map(|i| {
                    let rows: Vec<usize> = (i..m.rows()).step_by(p).collect();
                    Matrix::from_fn(rows.len(), m.cols(), |r, c| m.get(rows[r], c).clone())
                })
                .collect(),
        ),
        Pattern::ColCyclic(p) => ParArray::from_parts(
            (0..p)
                .map(|i| {
                    let cols: Vec<usize> = (i..m.cols()).step_by(p).collect();
                    Matrix::from_fn(m.rows(), cols.len(), |r, c| m.get(r, cols[c]).clone())
                })
                .collect(),
        ),
        Pattern::Grid { pr, pc } => {
            let row_rs = block_ranges(m.rows(), pr);
            let col_rs = block_ranges(m.cols(), pc);
            let mut parts = Vec::with_capacity(pr * pc);
            for rr in &row_rs {
                for cr in &col_rs {
                    parts.push(Matrix::from_fn(rr.len(), cr.len(), |r, c| {
                        m.get(rr.start + r, cr.start + c).clone()
                    }));
                }
            }
            ParArray::from_grid(pr, pc, parts)
        }
        _ => panic!("partition2 of a matrix needs a 2-D pattern, got {pattern:?}"),
    }
}

/// Exact inverse of [`partition2`].
pub fn gather2<T: Clone>(pattern: Pattern, dist: &ParArray<Matrix<T>>) -> Matrix<T> {
    pattern.check();
    assert_eq!(
        dist.len(),
        pattern.parts(),
        "part count mismatch in gather2"
    );
    match pattern {
        Pattern::RowBlock(_) => Matrix::vcat(dist.parts()),
        Pattern::ColBlock(_) => Matrix::hcat(dist.parts()),
        Pattern::RowCyclic(p) => {
            let rows: usize = dist.parts().iter().map(Matrix::rows).sum();
            let cols = dist.part(0).cols();
            Matrix::from_fn(rows, cols, |r, c| dist.part(r % p).get(r / p, c).clone())
        }
        Pattern::ColCyclic(p) => {
            let cols: usize = dist.parts().iter().map(Matrix::cols).sum();
            let rows = dist.part(0).rows();
            Matrix::from_fn(rows, cols, |r, c| dist.part(c % p).get(r, c / p).clone())
        }
        Pattern::Grid { pr, pc } => {
            let row_blocks: Vec<Matrix<T>> = (0..pr)
                .map(|i| {
                    let row: Vec<Matrix<T>> = (0..pc).map(|j| dist.part2(i, j).clone()).collect();
                    Matrix::hcat(&row)
                })
                .collect();
            Matrix::vcat(&row_blocks)
        }
        _ => panic!("gather2 of a matrix needs a 2-D pattern, got {pattern:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_balanced() {
        let rs = block_ranges(10, 3);
        assert_eq!(rs, vec![0..4, 4..7, 7..10]);
        let rs = block_ranges(3, 5);
        assert_eq!(
            rs.iter().map(|r| r.len()).collect::<Vec<_>>(),
            vec![1, 1, 1, 0, 0]
        );
        let rs = block_ranges(0, 2);
        assert!(rs.iter().all(|r| r.is_empty()));
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn block_ranges_rejects_zero() {
        let _ = block_ranges(4, 0);
    }

    #[test]
    fn block_partition_and_owner_agree() {
        let data: Vec<u32> = (0..17).collect();
        for p in 1..=6 {
            let d = partition(Pattern::Block(p), &data);
            for (i, part) in d.parts().iter().enumerate() {
                for x in part {
                    assert_eq!(owner_1d(Pattern::Block(p), 17, *x as usize), i);
                }
            }
        }
    }

    #[test]
    fn cyclic_deals_round_robin() {
        let d = partition(Pattern::Cyclic(3), &[0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(d.part(0), &vec![0, 3, 6]);
        assert_eq!(d.part(1), &vec![1, 4]);
        assert_eq!(d.part(2), &vec![2, 5]);
    }

    #[test]
    fn block_cyclic_deals_blocks() {
        let data: Vec<u32> = (0..12).collect();
        let d = partition(Pattern::BlockCyclic { p: 2, block: 3 }, &data);
        assert_eq!(d.part(0), &vec![0, 1, 2, 6, 7, 8]);
        assert_eq!(d.part(1), &vec![3, 4, 5, 9, 10, 11]);
    }

    #[test]
    fn gather_inverts_partition_1d() {
        let data: Vec<u32> = (0..23).collect();
        for pattern in [
            Pattern::Block(4),
            Pattern::Cyclic(4),
            Pattern::BlockCyclic { p: 4, block: 3 },
            Pattern::Block(1),
            Pattern::Cyclic(23),
            Pattern::Block(40),
        ] {
            let d = partition(pattern, &data);
            assert_eq!(gather(pattern, &d), data, "{pattern:?}");
        }
    }

    #[test]
    fn partition_owned_matches_partition() {
        let data: Vec<u32> = (0..23).collect();
        for pattern in [
            Pattern::Block(4),
            Pattern::Block(1),
            Pattern::Block(40),
            Pattern::Cyclic(4),
            Pattern::BlockCyclic { p: 3, block: 2 },
        ] {
            let cloned = partition(pattern, &data);
            let moved = partition_owned(pattern, data.clone());
            assert_eq!(moved, cloned, "{pattern:?}");
        }
    }

    #[test]
    fn partition_empty_data() {
        let d = partition(Pattern::Block(3), &[] as &[u8]);
        assert_eq!(d.len(), 3);
        assert!(d.parts().iter().all(Vec::is_empty));
        assert_eq!(gather(Pattern::Block(3), &d), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "needs a 1-D pattern")]
    fn partition_rejects_2d_pattern() {
        let _ = partition(Pattern::RowBlock(2), &[1, 2, 3]);
    }

    fn sample() -> Matrix<i32> {
        Matrix::from_fn(4, 6, |r, c| (r * 6 + c) as i32)
    }

    #[test]
    fn row_block_splits_rows() {
        let d = partition2(Pattern::RowBlock(2), &sample());
        assert_eq!(d.len(), 2);
        assert_eq!(d.part(0).dims(), (2, 6));
        assert_eq!(d.part(0).row(0), sample().row(0));
    }

    #[test]
    fn col_block_splits_cols() {
        let d = partition2(Pattern::ColBlock(3), &sample());
        assert_eq!(d.len(), 3);
        assert_eq!(d.part(1).dims(), (4, 2));
        assert_eq!(*d.part(1).get(0, 0), 2);
    }

    #[test]
    fn grid_partitions_both_ways() {
        let d = partition2(Pattern::Grid { pr: 2, pc: 3 }, &sample());
        assert_eq!(d.shape().dims2(), (2, 3));
        assert_eq!(d.part2(1, 2).dims(), (2, 2));
        assert_eq!(*d.part2(1, 2).get(0, 0), 16);
    }

    #[test]
    fn cyclic_2d_variants() {
        let d = partition2(Pattern::RowCyclic(3), &sample());
        assert_eq!(d.part(0).rows(), 2); // rows 0, 3
        assert_eq!(*d.part(0).get(1, 0), 18);
        let d = partition2(Pattern::ColCyclic(2), &sample());
        assert_eq!(d.part(1).cols(), 3); // cols 1, 3, 5
        assert_eq!(*d.part(1).get(0, 2), 5);
    }

    #[test]
    fn gather2_inverts_partition2() {
        let m = sample();
        for pattern in [
            Pattern::RowBlock(3),
            Pattern::ColBlock(4),
            Pattern::RowCyclic(3),
            Pattern::ColCyclic(5),
            Pattern::Grid { pr: 2, pc: 2 },
            Pattern::Grid { pr: 4, pc: 6 },
            Pattern::RowBlock(1),
        ] {
            let d = partition2(pattern, &m);
            assert_eq!(gather2(pattern, &d), m, "{pattern:?}");
        }
    }

    #[test]
    fn pattern_parts_counts() {
        assert_eq!(Pattern::Block(4).parts(), 4);
        assert_eq!(Pattern::Grid { pr: 2, pc: 3 }.parts(), 6);
        assert!(Pattern::Block(1).is_1d());
        assert!(!Pattern::RowBlock(1).is_1d());
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_rejected() {
        Pattern::BlockCyclic { p: 2, block: 0 }.check();
    }
}
