//! First-class skeleton plans: write a skeleton program **once**, then run
//! it eagerly or optimise it first.
//!
//! The paper's central claim is that skeleton programs are *functional
//! expressions* amenable to meaning-preserving transformation. The eager
//! methods on [`Scl`] execute immediately, so by the time a program exists
//! there is nothing left to transform. A [`Skel<A, B>`] closes that gap: it
//! is a *value* describing a skeleton program from input `A` to output `B`,
//! built from typed combinators ([`Skel::map`], [`Skel::fold`],
//! [`Skel::rotate`], [`Skel::farm`], [`Skel::iter_until`], [`Skel::dc`], …)
//! and composed with [`Skel::then`] / [`Skel::pipe`].
//!
//! A plan has **three back-ends**:
//!
//! 1. [`Skel::run`] executes eagerly by delegating to the existing skeleton
//!    methods on [`Scl`] — one skeleton dispatch (and one materialised
//!    intermediate array) per stage;
//! 2. [`Scl::run_fused`] compiles the plan into per-partition stage chains
//!    (see [`crate::fused`]): runs of compute skeletons (`map` / `imap` /
//!    `zip_with` / `farm` and their costed forms) execute back-to-back on
//!    the worker that owns each partition with **no** intermediates, while
//!    communication skeletons (`rotate`, `fetch`, `total_exchange`, …) act
//!    as the only barriers. Same results bit-for-bit, one thread-pool
//!    dispatch per fused segment instead of one spawn per skeleton;
//! 3. [`Skel::lower`] bridges the *lowerable fragment* (maps over registered
//!    function symbols, rotations, fetches/sends over registered index
//!    functions, scans, and pipelines thereof) into the `scl-transform`
//!    [`Expr`] IR, where [`optimize`] applies the paper's §4 laws — map
//!    fusion, communication algebra, flattening — and [`Skel::from_expr`]
//!    raises the optimised program back into an executable plan.
//!
//! [`Scl::run_optimized`] wires the full path: plan → lower → optimise →
//! raise → **fused** execute, falling back to eager execution for plans
//! outside the lowerable fragment.
//!
//! ```
//! use scl_core::prelude::*;
//!
//! let reg = Registry::standard();
//! // map(double) then map(inc) with two cancelling rotations in between
//! let plan = Skel::map_sym("double", &reg)
//!     .then(Skel::rotate(3))
//!     .then(Skel::rotate(-3))
//!     .then(Skel::map_sym("inc", &reg));
//!
//! let input = ParArray::from_parts((0..8).collect::<Vec<i64>>());
//!
//! // eager
//! let mut scl = Scl::ap1000(8);
//! let eager = plan.run(&mut scl, input.clone());
//!
//! // optimise-then-execute: rotations cancel, maps fuse
//! let mut scl = Scl::ap1000(8);
//! let (opt, log) = scl.run_optimized(&plan, &reg, input);
//! assert_eq!(eager, opt);
//! assert!(!log.is_empty());
//! ```

use crate::array::ParArray;
use crate::bytes::Bytes;
use crate::ctx::Scl;
use crate::error::Result as SclResult;
use crate::fused::{self, FusePort, FusedPlan};
use crate::partition::Pattern;
use crate::skeletons::SpmdStage;
use scl_machine::Work;
use scl_transform::rewrite::Applied;
use scl_transform::{optimize, shape_of, Expr, FnRef, IdxRef, Registry, Shape};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// The eager interpretation of a plan: a host computation against a
/// coordination context. `FnMut` so plans may own stateful stages (e.g.
/// [`Skel::dc`] bases); the `RefCell` in [`Skel`] lets `run` stay `&self`.
type ExecFn<'a, A, B> = Box<dyn FnMut(&mut Scl, A) -> B + 'a>;

/// A first-class, typed skeleton program from `A` to `B`.
///
/// Built by the constructors in this module and composed with
/// [`Skel::then`]; executed with [`Skel::run`] (eager, one dispatch per
/// stage) or [`Scl::run_fused`] (partition-resident, see [`crate::fused`]);
/// optimised through [`Skel::lower`] / [`Skel::from_expr`] when it stays
/// inside the lowerable fragment. The lifetime `'a` bounds everything the
/// plan borrows (closures, a [`Registry`] for symbolic stages); plans over
/// owned closures are `'static`.
pub struct Skel<'a, A, B> {
    exec: RefCell<ExecFn<'a, A, B>>,
    /// `Some` iff every stage of the plan is in the lowerable fragment;
    /// composition preserves it, any opaque stage forfeits it.
    repr: Option<Expr>,
    /// `Some` iff every stage supplied a fused form (compute node or
    /// barrier); composition concatenates the node chains, any stage
    /// without one forfeits fusion for the whole plan.
    fused: Option<RefCell<FusedPlan<'a, A, B>>>,
}

impl<'a, A, B> Skel<'a, A, B> {
    /// A plan from an opaque stage: any host computation over the context.
    /// Opaque stages execute fine but are neither lowerable nor fusable —
    /// use [`Skel::barrier`] for an opaque stage that should still compose
    /// into fused chains.
    pub fn from_fn(f: impl FnMut(&mut Scl, A) -> B + 'a) -> Skel<'a, A, B> {
        Skel {
            exec: RefCell::new(Box::new(f)),
            repr: None,
            fused: None,
        }
    }

    /// As [`Skel::from_fn`] but carrying an explicit IR representation —
    /// the escape hatch for callers extending the lowerable fragment.
    pub fn from_fn_repr(f: impl FnMut(&mut Scl, A) -> B + 'a, repr: Expr) -> Skel<'a, A, B> {
        Skel {
            exec: RefCell::new(Box::new(f)),
            repr: Some(repr),
            fused: None,
        }
    }

    /// Run the plan eagerly on `scl`, consuming `input`.
    pub fn run(&self, scl: &mut Scl, input: A) -> B {
        (self.exec.borrow_mut())(scl, input)
    }

    /// Run the plan through the fused executor (see [`crate::fused`]),
    /// falling back to eager execution when any stage lacks a fused form —
    /// same answer either way. Usually called as [`Scl::run_fused`].
    ///
    /// The `Err(MachineTooSmall)` contract applies to the fused path
    /// (every fusable plan); the eager fallback keeps the eager layer's
    /// panicking semantics, so only [`Skel::fusable`] plans are guaranteed
    /// to surface oversized configurations as errors.
    pub fn run_fused(&self, scl: &mut Scl, input: A) -> SclResult<B> {
        match &self.fused {
            Some(cell) => scl.exec_fused(&mut cell.borrow_mut(), input),
            None => Ok(self.run(scl, input)),
        }
    }

    /// True when every stage supplied a fused form, so [`Skel::run_fused`]
    /// takes the partition-resident path rather than falling back.
    pub fn fusable(&self) -> bool {
        self.fused.is_some()
    }

    /// The fused stage structure as `(label, is_barrier)` pairs, or `None`
    /// for unfusable plans. Consecutive non-barrier stages execute as one
    /// fused segment.
    pub fn fused_stages(&self) -> Option<Vec<(&'static str, bool)>> {
        self.fused.as_ref().map(|cell| {
            cell.borrow()
                .nodes
                .iter()
                .map(|n| (n.label(), n.is_barrier()))
                .collect()
        })
    }

    /// Sequential composition: run `self`, feed its output to `next`.
    /// Lowerability and fusability are each preserved when both sides have
    /// them.
    pub fn then<C>(self, next: Skel<'a, B, C>) -> Skel<'a, A, C>
    where
        A: 'a,
        B: 'a,
        C: 'a,
    {
        let mut f = self.exec.into_inner();
        let mut g = next.exec.into_inner();
        let repr = match (self.repr, next.repr) {
            // `next` applies after `self`: composition order is next ∘ self.
            // Normalised so identity seeds (Skel::pipe) leave no `id` term.
            (Some(a), Some(b)) => Some(scl_transform::normalize(b.after(a))),
            _ => None,
        };
        let fused = match (self.fused, next.fused) {
            (Some(a), Some(b)) => {
                Some(RefCell::new(fused::compose(a.into_inner(), b.into_inner())))
            }
            _ => None,
        };
        Skel {
            exec: RefCell::new(Box::new(move |scl: &mut Scl, x| {
                let mid = f(scl, x);
                g(scl, mid)
            })),
            repr,
            fused,
        }
    }

    /// The IR of this plan, if every stage was lowerable (no symbol
    /// validation — see [`Skel::lower`]).
    pub fn repr(&self) -> Option<&Expr> {
        self.repr.as_ref()
    }

    /// The plan's structural fingerprint — the key `scl-serve`'s plan
    /// cache compiles under — or `None` for plans with an unfusable stage
    /// (nothing to compile, so nothing to cache).
    ///
    /// The fingerprint hashes the fused stage chain (stage kinds, labels,
    /// order, charging conventions) and, when the plan is in the lowerable
    /// fragment, its IR representation. It deliberately does **not** hash
    /// closure bodies — see [`PlanFingerprint`](fused::PlanFingerprint)
    /// for the equality contract and the salting escape hatch.
    pub fn fingerprint(&self) -> Option<fused::PlanFingerprint> {
        let cell = self.fused.as_ref()?;
        let nodes_hash = fused::fingerprint_nodes(&cell.borrow().nodes);
        Some(fused::fingerprint_with_repr(
            nodes_hash,
            self.repr.as_ref().map(|e| e.to_string()),
        ))
    }

    /// Decompose a fusable plan into its streaming operator list: maximal
    /// fused compute segments ([`PlanOp::Segment`](fused::PlanOp), pure and
    /// replicable) separated by barriers
    /// ([`PlanOp::Barrier`](fused::PlanOp), stateful, order-serial). This
    /// is the compilation step of the `scl-stream` runtime: each segment
    /// becomes a long-lived farm stage, each barrier a stage boundary.
    ///
    /// Consumes the plan (the ops own the stage closures). Plans with an
    /// unfusable stage are handed back unchanged as `Err` so the caller
    /// can fall back to eager per-item execution.
    #[allow(clippy::result_large_err)] // Err is the unconsumed plan, by design
    pub fn into_stream_ops(self) -> std::result::Result<Vec<fused::PlanOp<'a>>, Self> {
        let Skel { exec, repr, fused } = self;
        match fused {
            Some(cell) => Ok(fused::plan_ops(cell.into_inner().nodes)),
            None => Err(Skel {
                exec,
                repr,
                fused: None,
            }),
        }
    }
}

impl<'a, A, B> Skel<'a, A, B>
where
    A: FusePort + 'a,
    B: FusePort + 'a,
{
    /// An opaque whole-configuration stage that still composes into fused
    /// chains — as a **barrier** between fused segments. This is the fused
    /// counterpart of [`Skel::from_fn`]: use it for global phases (gathers,
    /// broadcasts, anything touching the whole configuration) inside plans
    /// whose other stages should fuse. `label` names the stage in
    /// [`Skel::fused_stages`] and in panic messages.
    pub fn barrier(label: &'static str, f: impl FnMut(&mut Scl, A) -> B + 'a) -> Skel<'a, A, B> {
        let shared = Rc::new(RefCell::new(f));
        let exec = Rc::clone(&shared);
        Skel {
            exec: RefCell::new(Box::new(move |scl: &mut Scl, a| {
                (exec.borrow_mut())(scl, a)
            })),
            repr: None,
            fused: Some(RefCell::new(fused::barrier_node(label, move |scl, a| {
                Ok((shared.borrow_mut())(scl, a))
            }))),
        }
    }

    // ---- arrow combinators: plans as DAGs -----------------------------------

    /// Product composition (the arrow `***`): run `self` on the first
    /// component and `other` on the second, independently. The plan's
    /// input is the pair of both inputs; its output the pair of both
    /// outputs.
    ///
    /// Fusability is preserved when both sides have it — the fused form is
    /// a single **branch node** whose arms are the two stage chains, and
    /// [`Scl::run_fused`] schedules independent pure arms as siblings of
    /// one pool dispatch (see [`crate::fused`]). Not lowerable (the IR's
    /// branch forms are the symbolic [`Skel::fanout_sym`] /
    /// [`Skel::choice_sym`]).
    ///
    /// ```
    /// use scl_core::prelude::*;
    /// let plan = Skel::map(|x: &i64| x + 1).pair(Skel::map(|x: &i64| x * 2));
    /// let mut scl = Scl::ap1000(4);
    /// let a = ParArray::from_parts(vec![1i64, 2, 3, 4]);
    /// let b = ParArray::from_parts(vec![10i64, 20, 30, 40]);
    /// let (l, r) = scl.run_fused(&plan, (a, b)).unwrap();
    /// assert_eq!(l.to_vec(), vec![2, 3, 4, 5]);
    /// assert_eq!(r.to_vec(), vec![20, 40, 60, 80]);
    /// ```
    pub fn pair<C, D>(self, other: Skel<'a, C, D>) -> Skel<'a, (A, C), (B, D)>
    where
        C: FusePort + 'a,
        D: FusePort + 'a,
        (A, C): FusePort + 'a,
        (B, D): FusePort + 'a,
    {
        let mut f = self.exec.into_inner();
        let mut g = other.exec.into_inner();
        let fused = match (self.fused, other.fused) {
            (Some(l), Some(r)) => Some(RefCell::new(fused::pair_node(
                l.into_inner(),
                r.into_inner(),
            ))),
            _ => None,
        };
        Skel {
            exec: RefCell::new(Box::new(move |scl: &mut Scl, (a, c): (A, C)| {
                // left arm first, then right — the fused executor charges
                // the machine in the same order, so reports agree.
                let b = f(scl, a);
                let d = g(scl, c);
                (b, d)
            })),
            repr: None,
            fused,
        }
    }

    /// Fan-out composition (the arrow `&&&`): feed one input to both
    /// `self` and `other` (the second arm receives a clone) and pair the
    /// results. Fusability is preserved when both sides have it, exactly
    /// as for [`Skel::pair`].
    ///
    /// ```
    /// use scl_core::prelude::*;
    /// let plan = Skel::map(|x: &i64| x + 1).fanout(Skel::map(|x: &i64| x * 2));
    /// let mut scl = Scl::ap1000(3);
    /// let a = ParArray::from_parts(vec![1i64, 2, 3]);
    /// let (l, r) = scl.run_fused(&plan, a).unwrap();
    /// assert_eq!(l.to_vec(), vec![2, 3, 4]);
    /// assert_eq!(r.to_vec(), vec![2, 4, 6]);
    /// ```
    pub fn fanout<C>(self, other: Skel<'a, A, C>) -> Skel<'a, A, (B, C)>
    where
        A: Clone,
        C: FusePort + 'a,
        (B, C): FusePort + 'a,
    {
        let mut f = self.exec.into_inner();
        let mut g = other.exec.into_inner();
        let fused = match (self.fused, other.fused) {
            (Some(l), Some(r)) => Some(RefCell::new(fused::fanout_node(
                l.into_inner(),
                r.into_inner(),
            ))),
            _ => None,
        };
        Skel {
            exec: RefCell::new(Box::new(move |scl: &mut Scl, a: A| {
                // clone-then-run order matches the fused split closure
                let twin = a.clone();
                let b = f(scl, a);
                let c = g(scl, twin);
                (b, c)
            })),
            repr: None,
            fused,
        }
    }

    /// Predicate-driven branching (Either-style choice): inspect the input
    /// with `pred`, run `left` when it holds, `right` otherwise. Exactly
    /// one arm executes (and is charged). Fusability is preserved when
    /// both arms have it.
    pub fn choice(
        pred: impl Fn(&A) -> bool + 'a,
        left: Skel<'a, A, B>,
        right: Skel<'a, A, B>,
    ) -> Skel<'a, A, B> {
        let pred: Arc<dyn Fn(&A) -> bool + 'a> = Arc::new(pred);
        let p = Arc::clone(&pred);
        let mut f = left.exec.into_inner();
        let mut g = right.exec.into_inner();
        let fused = match (left.fused, right.fused) {
            (Some(l), Some(r)) => Some(RefCell::new(fused::choice_node(
                pred,
                l.into_inner(),
                r.into_inner(),
            ))),
            _ => None,
        };
        Skel {
            exec: RefCell::new(Box::new(
                move |scl: &mut Scl, a: A| {
                    if p(&a) {
                        f(scl, a)
                    } else {
                        g(scl, a)
                    }
                },
            )),
            repr: None,
            fused,
        }
    }
}

impl<'a, A: 'a> Skel<'a, A, A> {
    /// The identity plan. Lowerable ([`Expr::Id`]) but **not** fusable —
    /// `A` is unconstrained here, so no [`FusePort`] boundary exists;
    /// composing a fusable plan with `identity()` forfeits fusion for the
    /// whole chain ([`Skel::pipe`] therefore seeds from its first stage
    /// instead of an identity).
    pub fn identity() -> Skel<'a, A, A> {
        Skel {
            exec: RefCell::new(Box::new(|_, x| x)),
            repr: Some(Expr::Id),
            fused: None,
        }
    }

    /// Compose a pipeline of same-typed stages given in **execution order**
    /// (first element runs first) — the plan-level analogue of
    /// [`Expr::pipeline`].
    pub fn pipe(stages: Vec<Skel<'a, A, A>>) -> Skel<'a, A, A> {
        let mut it = stages.into_iter();
        match it.next() {
            None => Skel::identity(),
            Some(first) => it.fold(first, |acc, s| acc.then(s)),
        }
    }
}

// ---- elementary skeletons ---------------------------------------------------

/// Stamp a stage's structural parameters into its fused node(s), so the
/// plan fingerprint distinguishes e.g. `rotate(1)` from `rotate(2)` even
/// when the surrounding plan is opaque (and the composed IR therefore
/// dropped). `rendered` is any stable textual rendering of the
/// parameters.
fn tag_param<A, B>(plan: &Skel<'_, A, B>, rendered: &str) {
    if let Some(cell) = &plan.fused {
        cell.borrow_mut().tag_param(fused::param_hash(rendered));
    }
}

/// Build a compute-stage plan: the eager path delegates to `eager`, the
/// fused path runs `node` per part (both share the same user closure, so
/// the two executions are identical arithmetic).
fn compute_stage<'a, T, R>(
    label: &'static str,
    timed: bool,
    eager: impl FnMut(&mut Scl, ParArray<T>) -> ParArray<R> + 'a,
    node: impl Fn(usize, &T) -> (R, Work) + Send + Sync + 'a,
) -> Skel<'a, ParArray<T>, ParArray<R>>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
{
    Skel {
        exec: RefCell::new(Box::new(eager)),
        repr: None,
        fused: Some(RefCell::new(fused::compute_node(label, timed, node))),
    }
}

impl<'a, T, R> Skel<'a, ParArray<T>, ParArray<R>>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
{
    /// The paper's `map f`: apply `f` to every part ([`Scl::map`]).
    /// Part-local, so runs of these fuse under [`Scl::run_fused`].
    pub fn map(f: impl Fn(&T) -> R + Send + Sync + 'a) -> Self {
        let f = Arc::new(f);
        let g = Arc::clone(&f);
        compute_stage(
            "map",
            true,
            move |scl, a| scl.map(&a, &*f),
            move |_, x| (g(x), Work::NONE),
        )
    }

    /// Index-aware map ([`Scl::imap`]).
    pub fn imap(f: impl Fn(usize, &T) -> R + Send + Sync + 'a) -> Self {
        let f = Arc::new(f);
        let g = Arc::clone(&f);
        compute_stage(
            "imap",
            true,
            move |scl, a| scl.imap(&a, &*f),
            move |i, x| (g(i, x), Work::NONE),
        )
    }

    /// Map with self-reported cost ([`Scl::map_costed`]).
    pub fn map_costed(f: impl Fn(&T) -> (R, Work) + Send + Sync + 'a) -> Self {
        let f = Arc::new(f);
        let g = Arc::clone(&f);
        compute_stage(
            "map_costed",
            false,
            move |scl, a| scl.map_costed(&a, &*f),
            move |_, x| g(x),
        )
    }

    /// Index-aware costed map ([`Scl::imap_costed`]).
    pub fn imap_costed(f: impl Fn(usize, &T) -> (R, Work) + Send + Sync + 'a) -> Self {
        let f = Arc::new(f);
        let g = Arc::clone(&f);
        compute_stage(
            "imap_costed",
            false,
            move |scl, a| scl.imap_costed(&a, &*f),
            move |i, x| g(i, x),
        )
    }

    /// The paper's `farm f env`: map with a shared environment
    /// ([`Scl::farm`]).
    pub fn farm<E: Send + Sync + 'a>(f: impl Fn(&E, &T) -> R + Send + Sync + 'a, env: E) -> Self {
        let shared = Arc::new((f, env));
        let node = Arc::clone(&shared);
        compute_stage(
            "farm",
            true,
            move |scl, a| scl.farm(&shared.0, &shared.1, &a),
            move |_, x| ((node.0)(&node.1, x), Work::NONE),
        )
    }
}

impl<'a, A2, B2, R> Skel<'a, (ParArray<A2>, ParArray<B2>), ParArray<R>>
where
    A2: Send + Sync + 'static,
    B2: Send + Sync + 'static,
    R: Send + 'static,
{
    /// Element-wise combination of two conforming arrays
    /// ([`Scl::zip_with`]). The plan's input is the pair of arrays.
    /// Part-local, so it fuses with neighbouring compute stages.
    pub fn zip_with(f: impl Fn(&A2, &B2) -> R + Send + Sync + 'a) -> Self {
        let f = Arc::new(f);
        let g = Arc::clone(&f);
        Skel {
            exec: RefCell::new(Box::new(
                move |scl: &mut Scl, (a, b): (ParArray<A2>, ParArray<B2>)| {
                    scl.zip_with(&a, &b, &*f)
                },
            )),
            repr: None,
            fused: Some(RefCell::new(fused::compute_pair_node(
                "zip_with",
                move |x, y| (g(x, y), Work::NONE),
            ))),
        }
    }
}

impl<'a, T> Skel<'a, ParArray<T>, T>
where
    T: Clone + Bytes + 'a,
{
    /// Tree reduction to a scalar ([`Scl::fold`]); `op` must be
    /// associative.
    pub fn fold(op: impl Fn(&T, &T) -> T + 'a) -> Self {
        Skel::from_fn(move |scl: &mut Scl, a: ParArray<T>| scl.fold(&a, &op))
    }

    /// [`Skel::fold`] with explicit per-phase combine work
    /// ([`Scl::fold_costed`]).
    pub fn fold_costed(op: impl Fn(&T, &T) -> T + 'a, combine: Work) -> Self {
        Skel::from_fn(move |scl: &mut Scl, a: ParArray<T>| scl.fold_costed(&a, &op, combine))
    }
}

impl<'a, T> Skel<'a, ParArray<T>, ParArray<T>>
where
    T: Clone + Bytes + Send + 'static,
{
    /// Inclusive parallel prefix ([`Scl::scan`]); `op` must be associative.
    /// Cross-partition data flow, so a fusion **barrier**.
    pub fn scan(op: impl Fn(&T, &T) -> T + 'a) -> Self {
        Skel::barrier("scan", move |scl: &mut Scl, a: ParArray<T>| {
            scl.scan(&a, &op)
        })
    }

    // ---- communication skeletons -------------------------------------------

    /// Regular rotation by `k` ([`Scl::rotate`]). Lowerable: becomes
    /// [`Expr::Rotate`], so cancelling rotations vanish under
    /// [`optimize`]. A fusion barrier.
    pub fn rotate(k: isize) -> Self {
        let mut plan = Skel::barrier("rotate", move |scl: &mut Scl, a: ParArray<T>| {
            scl.rotate_owned(k, a)
        });
        plan.repr = Some(Expr::Rotate(k as i64));
        tag_param(&plan, &format!("rotate({k})"));
        plan
    }

    /// Boundary-filled shift ([`Scl::shift`]). A fusion barrier.
    pub fn shift(k: isize, fill: T) -> Self {
        let plan = Skel::barrier("shift", move |scl: &mut Scl, a: ParArray<T>| {
            scl.shift_owned(k, a, &fill)
        });
        tag_param(&plan, &format!("shift({k})"));
        plan
    }

    /// Irregular fetch through an opaque index function ([`Scl::fetch`]).
    /// A fusion barrier.
    pub fn fetch(f: impl Fn(usize) -> usize + 'a) -> Self {
        Skel::barrier("fetch", move |scl: &mut Scl, a: ParArray<T>| {
            scl.fetch_owned(&f, a)
        })
    }

    /// All-reduce: the fold result lands on every part
    /// ([`Scl::fold_all`]). A fusion barrier.
    pub fn fold_all(op: impl Fn(&T, &T) -> T + 'a, combine: Work) -> Self {
        Skel::barrier("fold_all", move |scl: &mut Scl, a: ParArray<T>| {
            scl.fold_all(&a, &op, combine)
        })
    }

    /// Counted iteration ([`Scl::iter_for`]): apply `body` `terminator`
    /// times, passing the iteration number. A fusion barrier (the body is
    /// an opaque whole-configuration computation).
    pub fn iter_for(
        terminator: usize,
        mut body: impl FnMut(&mut Scl, usize, ParArray<T>) -> ParArray<T> + 'a,
    ) -> Self {
        let plan = Skel::barrier("iter_for", move |scl: &mut Scl, a: ParArray<T>| {
            scl.iter_for(terminator, &mut body, a)
        });
        tag_param(&plan, &format!("iter_for({terminator})"));
        plan
    }
}

impl<'a, I, U> Skel<'a, ParArray<U>, ParArray<(I, U)>>
where
    I: Clone + Bytes + Send + 'static,
    U: Clone + Send + 'static,
{
    /// Broadcast one value (captured at plan-construction time) to all
    /// parts, pairing it with the local data ([`Scl::brdcast`]). A fusion
    /// barrier.
    pub fn brdcast(item: I) -> Skel<'a, ParArray<U>, ParArray<(I, U)>> {
        Skel::barrier("brdcast", move |scl: &mut Scl, a: ParArray<U>| {
            scl.brdcast_owned(&item, a)
        })
    }
}

impl<'a, T> Skel<'a, ParArray<Vec<Vec<T>>>, ParArray<Vec<Vec<T>>>>
where
    T: Clone + Bytes + Send + 'static,
{
    /// Bucket transpose ([`Scl::total_exchange`]): part `i` ends up holding
    /// bucket `i` from every source. The canonical fusion barrier.
    pub fn total_exchange() -> Self {
        Skel::barrier(
            "total_exchange",
            |scl: &mut Scl, a: ParArray<Vec<Vec<T>>>| scl.total_exchange_owned(a),
        )
    }
}

// ---- configuration skeletons ------------------------------------------------

impl<'a, T> Skel<'a, Vec<T>, ParArray<Vec<T>>>
where
    T: Clone + Bytes + Send + 'static,
{
    /// Scatter a sequential array across the machine ([`Scl::partition`]).
    /// A fusion barrier; under [`Scl::run_fused`] an oversized pattern
    /// surfaces as [`SclError::MachineTooSmall`](crate::error::SclError)
    /// instead of panicking.
    pub fn partition(pattern: Pattern) -> Self {
        let exec = move |scl: &mut Scl, data: Vec<T>| scl.partition_owned(pattern, data);
        let plan = Skel {
            exec: RefCell::new(Box::new(exec)),
            repr: None,
            fused: Some(RefCell::new(fused::barrier_node(
                "partition",
                move |scl: &mut Scl, data: Vec<T>| scl.try_partition_owned(pattern, data),
            ))),
        };
        tag_param(&plan, &format!("partition({pattern:?})"));
        plan
    }
}

impl<'a, T> Skel<'a, ParArray<Vec<T>>, Vec<T>>
where
    T: Clone + Bytes + Send + 'static,
{
    /// Collect a distributed array back to processor 0 ([`Scl::gather`]).
    /// A fusion barrier.
    pub fn gather() -> Self {
        Skel::barrier("gather", |scl: &mut Scl, a: ParArray<Vec<T>>| {
            scl.gather_owned(a)
        })
    }
}

impl<'a, T> Skel<'a, ParArray<Vec<T>>, ParArray<Vec<T>>>
where
    T: Clone + Bytes + Send + 'static,
{
    /// Rebalance part sizes to ±1, preserving global order
    /// ([`Scl::balance`]). A fusion barrier.
    pub fn balance() -> Self {
        Skel::barrier("balance", |scl: &mut Scl, a: ParArray<Vec<T>>| {
            scl.balance_owned(a)
        })
    }
}

// ---- computational skeletons ------------------------------------------------

impl<'a, T> Skel<'a, ParArray<T>, ParArray<T>>
where
    T: Sync + Send + Clone + 'a,
{
    /// SPMD stages ([`Scl::spmd`]). Takes a *factory* producing the stage
    /// list so the plan can be run more than once (stages are consumed per
    /// run).
    pub fn spmd(factory: impl Fn() -> Vec<SpmdStage<'a, T>> + 'a) -> Self {
        Skel::from_fn(move |scl: &mut Scl, a: ParArray<T>| scl.spmd(factory(), a))
    }

    /// Generic divide-and-conquer ([`Scl::dc`]).
    pub fn dc(
        branches: usize,
        is_base: impl Fn(&ParArray<T>) -> bool + 'a,
        mut base: impl FnMut(&mut Scl, ParArray<T>) -> ParArray<T> + 'a,
        mut step: impl FnMut(&mut Scl, ParArray<T>) -> ParArray<T> + 'a,
    ) -> Self {
        Skel::from_fn(move |scl: &mut Scl, a: ParArray<T>| {
            scl.dc(a, branches, &is_base, &mut base, &mut step)
        })
    }
}

impl<'a, X: 'a> Skel<'a, X, X> {
    /// Condition-driven iteration ([`Scl::iter_until`]): apply `iter_solve`
    /// until `con` holds, then `final_solve`. The state type `X` is
    /// anything the loop threads through (arrays, tuples of arrays and
    /// scalars, …). Not fusable — use [`Skel::iter_until_fused`] when `X`
    /// implements [`FusePort`] and the plan should compose into fused
    /// chains.
    pub fn iter_until(
        mut iter_solve: impl FnMut(&mut Scl, X) -> X + 'a,
        mut final_solve: impl FnMut(&mut Scl, X) -> X + 'a,
        con: impl Fn(&X) -> bool + 'a,
    ) -> Skel<'a, X, X> {
        Skel::from_fn(move |scl: &mut Scl, x: X| {
            scl.iter_until(&mut iter_solve, &mut final_solve, &con, x)
        })
    }
}

impl<'a, X: FusePort + 'a> Skel<'a, X, X> {
    /// As [`Skel::iter_until`] for state types with a fused boundary form:
    /// the whole loop participates in fused execution as a single
    /// **barrier** stage (the loop body is free to run its own skeletons),
    /// so surrounding compute stages still fuse and
    /// [`Scl::run_fused`] validates the configuration instead of
    /// panicking.
    pub fn iter_until_fused(
        iter_solve: impl FnMut(&mut Scl, X) -> X + 'a,
        final_solve: impl FnMut(&mut Scl, X) -> X + 'a,
        con: impl Fn(&X) -> bool + 'a,
    ) -> Skel<'a, X, X> {
        let mut solvers = (iter_solve, final_solve);
        Skel::barrier("iter_until", move |scl: &mut Scl, x: X| {
            scl.iter_until(&mut solvers.0, &mut solvers.1, &con, x)
        })
    }

    /// First-class divide-and-conquer over [`Skel::pair`]: unfold `levels`
    /// levels of
    /// `divide(l) · (recurse ∥ recurse) · combine(l)`, bottoming out in
    /// `base()` at level 0. The recursion tree is a static plan DAG — the
    /// two recursive halves at every level are a [`Skel::pair`], so under
    /// [`Scl::run_fused`] independent pure halves run as siblings of one
    /// pool dispatch.
    ///
    /// The factories are invoked once per node of the unfolded tree
    /// (`divide`/`combine` get the level, `1..=levels`); compare
    /// [`Skel::dc`], the eager recursion whose structure is rediscovered
    /// on every run.
    pub fn dac(
        levels: usize,
        divide: impl Fn(usize) -> Skel<'a, X, (X, X)>,
        base: impl Fn() -> Skel<'a, X, X>,
        combine: impl Fn(usize) -> Skel<'a, (X, X), X>,
    ) -> Skel<'a, X, X>
    where
        (X, X): FusePort + 'a,
    {
        // monomorphisation-safe recursion: the helper takes the factories
        // as `&dyn Fn`, so every level shares one instantiation
        fn build<'a, X>(
            level: usize,
            divide: &dyn Fn(usize) -> Skel<'a, X, (X, X)>,
            base: &dyn Fn() -> Skel<'a, X, X>,
            combine: &dyn Fn(usize) -> Skel<'a, (X, X), X>,
        ) -> Skel<'a, X, X>
        where
            X: FusePort + 'a,
            (X, X): FusePort + 'a,
        {
            if level == 0 {
                return base();
            }
            let l = build(level - 1, divide, base, combine);
            let r = build(level - 1, divide, base, combine);
            divide(level).then(l.pair(r)).then(combine(level))
        }
        build(levels, &divide, &base, &combine)
    }
}

/// A boxed task-pipeline stage, as consumed by [`Skel::task_pipeline`].
pub type BoxedStage<'a, T> = Box<dyn Fn(&T) -> (T, Work) + Sync + 'a>;

impl<'a, T> Skel<'a, Vec<T>, Vec<T>>
where
    T: Clone + Bytes + Send + 'static,
{
    /// Task-parallel pipeline over a stream of items ([`Scl::pipeline`]):
    /// stage `s` lives on processor `s`, items stream through. A fusion
    /// barrier (the stream is host-side, not partitioned).
    pub fn task_pipeline(stages: Vec<BoxedStage<'a, T>>) -> Self {
        let n_stages = stages.len();
        let plan = Skel::barrier("task_pipeline", move |scl: &mut Scl, items: Vec<T>| {
            let refs: Vec<crate::skeletons::PipeStageFn<'_, T>> =
                stages.iter().map(|b| &**b as _).collect();
            scl.pipeline(&refs, items)
        });
        tag_param(&plan, &format!("task_pipeline({n_stages})"));
        plan
    }
}

// ---- the lowerable i64 fragment ---------------------------------------------

/// Check that every symbol an expression references resolves in `reg`.
fn symbols_resolve(e: &Expr, reg: &Registry) -> bool {
    let idx_ok = |h: &IdxRef| reg.apply_idx(h, 0, 1).is_ok();
    match e {
        Expr::Id | Expr::Rotate(_) | Expr::Split(_) | Expr::Combine | Expr::SegRotate { .. } => {
            true
        }
        Expr::Compose(es) => es.iter().all(|sub| symbols_resolve(sub, reg)),
        Expr::Map(f) => reg.fn_work(f).is_ok(),
        Expr::Fold(op) | Expr::Scan(op) => reg.op_work(op).is_ok(),
        Expr::FoldrMap(op, g) => reg.op_work(op).is_ok() && reg.fn_work(g).is_ok(),
        Expr::Fetch(h) | Expr::Send(h) => idx_ok(h),
        Expr::SegFetch { f, .. } | Expr::SegSend { f, .. } => idx_ok(f),
        Expr::MapGroups(b) => symbols_resolve(b, reg),
        Expr::Choice { pred, left, right } => {
            reg.fn_work(pred).is_ok() && symbols_resolve(left, reg) && symbols_resolve(right, reg)
        }
        Expr::Fanout {
            left,
            right,
            combine,
        } => {
            reg.op_work(combine).is_ok()
                && symbols_resolve(left, reg)
                && symbols_resolve(right, reg)
        }
    }
}

/// Runtime value threaded through [`exec_expr`]: flat or nested (inside a
/// `split … combine` region).
enum RtVal {
    Flat(ParArray<i64>),
    Nested(ParArray<ParArray<i64>>),
}

/// Interpret an array→array [`Expr`] through the *runtime* skeleton layer,
/// one scalar per virtual processor, charging the simulated machine.
fn exec_expr(e: &Expr, reg: &Registry, scl: &mut Scl, val: RtVal) -> Result<RtVal, String> {
    let flat = |v: RtVal| -> Result<ParArray<i64>, String> {
        match v {
            RtVal::Flat(a) => Ok(a),
            RtVal::Nested(_) => Err(format!("{e}: needs a flat array")),
        }
    };
    match e {
        Expr::Id => Ok(val),
        Expr::Compose(es) => {
            let mut v = val;
            for sub in es.iter().rev() {
                v = exec_expr(sub, reg, scl, v)?;
            }
            Ok(v)
        }
        Expr::Map(f) => {
            let a = flat(val)?;
            // validates the symbol up front; apply_fn below cannot fail
            let w = reg.fn_work(f)?;
            let out = scl.map_costed(&a, |x| (reg.apply_fn(f, *x).unwrap_or(0), w));
            Ok(RtVal::Flat(out))
        }
        Expr::Rotate(k) => Ok(RtVal::Flat(scl.rotate_owned(*k as isize, flat(val)?))),
        Expr::Fetch(h) => {
            let a = flat(val)?;
            let n = a.len();
            // pre-resolve the index map so errors surface as Err
            let mut idx = Vec::with_capacity(n);
            for i in 0..n {
                idx.push(reg.apply_idx(h, i, n)?);
            }
            Ok(RtVal::Flat(scl.fetch_owned(|i| idx[i], a)))
        }
        Expr::Send(h) => {
            let a = flat(val)?;
            let n = a.len();
            let mut dst = Vec::with_capacity(n);
            for k in 0..n {
                dst.push(reg.apply_idx(h, k, n)?);
            }
            let inboxes = scl.send_owned(|k| vec![dst[k]], a);
            // resolve the unordered accumulation with + (the interpreter's
            // canonical monoid)
            Ok(RtVal::Flat(scl.map_costed(&inboxes, |v| {
                (
                    v.iter().fold(0i64, |acc, x| acc.wrapping_add(*x)),
                    Work::flops(v.len() as u64),
                )
            })))
        }
        Expr::Scan(op) => {
            let a = flat(val)?;
            reg.op_work(op)?;
            Ok(RtVal::Flat(
                scl.scan(&a, |x, y| reg.apply_op(op, *x, *y).unwrap_or(0)),
            ))
        }
        Expr::Split(p) => {
            let a = flat(val)?;
            if a.len() < *p {
                return Err(format!("cannot split {} parts into {p} groups", a.len()));
            }
            Ok(RtVal::Nested(scl.split(Pattern::Block(*p), a)))
        }
        Expr::MapGroups(body) => match val {
            RtVal::Nested(groups) => {
                let mut err: Option<String> = None;
                let out = scl.map_groups(groups, &mut |scl, g| match exec_expr(
                    body,
                    reg,
                    scl,
                    RtVal::Flat(g),
                ) {
                    Ok(RtVal::Flat(a)) => a,
                    Ok(RtVal::Nested(_)) => {
                        err = Some("mapGroups body must stay flat".into());
                        ParArray::from_parts(vec![])
                    }
                    Err(e) => {
                        err = Some(e);
                        ParArray::from_parts(vec![])
                    }
                });
                match err {
                    None => Ok(RtVal::Nested(out)),
                    Some(e) => Err(e),
                }
            }
            RtVal::Flat(_) => Err("mapGroups needs a nested input".into()),
        },
        Expr::Combine => match val {
            RtVal::Nested(groups) => Ok(RtVal::Flat(scl.combine(groups))),
            RtVal::Flat(_) => Err("combine needs a nested input".into()),
        },
        // The flattened segmented forms execute as their nested equivalents
        // (split ∘ mapGroups ∘ combine) — same routes, same charges.
        Expr::SegRotate { groups, k } => {
            let body = Expr::Rotate(*k);
            seg(reg, scl, flat(val)?, *groups, &body)
        }
        Expr::SegFetch { groups, f } => {
            let body = Expr::Fetch(f.clone());
            seg(reg, scl, flat(val)?, *groups, &body)
        }
        Expr::SegSend { groups, f } => {
            let body = Expr::Send(f.clone());
            seg(reg, scl, flat(val)?, *groups, &body)
        }
        Expr::Choice { pred, left, right } => {
            let a = flat(val)?;
            // validate up front so apply_fn below cannot fail; the probe
            // itself charges nothing (mirrors the raised Skel::choice_sym)
            reg.fn_work(pred)?;
            let probe = a.parts().first().copied().unwrap_or(0);
            let arm = if reg.apply_fn(pred, probe)? != 0 {
                left
            } else {
                right
            };
            exec_expr(arm, reg, scl, RtVal::Flat(a))
        }
        Expr::Fanout {
            left,
            right,
            combine,
        } => {
            let a = flat(val)?;
            reg.op_work(combine)?;
            let twin = a.clone();
            let l = match exec_expr(left, reg, scl, RtVal::Flat(a))? {
                RtVal::Flat(arr) => arr,
                RtVal::Nested(_) => return Err("fanout arms must stay flat".into()),
            };
            let r = match exec_expr(right, reg, scl, RtVal::Flat(twin))? {
                RtVal::Flat(arr) => arr,
                RtVal::Nested(_) => return Err("fanout arms must stay flat".into()),
            };
            if l.len() != r.len() {
                return Err("fanout arms disagree on length".into());
            }
            // like Skel::zip_sym / Scl::zip_with, the zip charges nothing
            Ok(RtVal::Flat(scl.zip_with(&l, &r, |x, y| {
                reg.apply_op(combine, *x, *y).unwrap_or(0)
            })))
        }
        Expr::Fold(_) | Expr::FoldrMap(_, _) => Err(format!(
            "{e}: scalar-producing programs are outside the array→array plan fragment"
        )),
    }
}

/// Execute `body` within each of `groups` block segments.
fn seg(
    reg: &Registry,
    scl: &mut Scl,
    a: ParArray<i64>,
    groups: usize,
    body: &Expr,
) -> Result<RtVal, String> {
    let nested = exec_expr(&Expr::Split(groups), reg, scl, RtVal::Flat(a))?;
    let mapped = exec_expr(&Expr::MapGroups(Box::new(body.clone())), reg, scl, nested)?;
    exec_expr(&Expr::Combine, reg, scl, mapped)
}

impl<'a> Skel<'a, ParArray<i64>, ParArray<i64>> {
    /// A lowerable map over a scalar function **registered by name**: runs
    /// eagerly through the registry's meaning (charged its registered
    /// [`Work`]) and lowers to [`Expr::Map`].
    ///
    /// Running a plan whose symbol is missing from the registry it was
    /// built against evaluates that stage to `0` per element; [`lower`]
    /// (and therefore [`Scl::run_optimized`]) validates symbols up front.
    ///
    /// [`lower`]: Skel::lower
    pub fn map_sym(name: &str, reg: &'a Registry) -> Self {
        Self::map_ref(FnRef::named(name), reg)
    }

    /// As [`Skel::map_sym`] for an arbitrary (possibly composed) [`FnRef`].
    /// Part-local, so it fuses with neighbouring compute stages.
    pub fn map_ref(f: FnRef, reg: &'a Registry) -> Self {
        let repr = Expr::Map(f.clone());
        let node_f = f.clone();
        // the registry is borrowed immutably for 'a, so the per-application
        // work is a constant of the stage — resolve it once, not per element
        let w = reg.fn_work(&f).unwrap_or(Work::NONE);
        let mut plan = compute_stage(
            "map_sym",
            false,
            move |scl: &mut Scl, a: ParArray<i64>| {
                scl.map_costed(&a, |x| (reg.apply_fn(&f, *x).unwrap_or(0), w))
            },
            move |_, x: &i64| (reg.apply_fn(&node_f, *x).unwrap_or(0), w),
        );
        tag_param(&plan, &repr.to_string());
        plan.repr = Some(repr);
        plan
    }

    /// A lowerable scan over a binary operator registered by name. A
    /// fusion barrier.
    pub fn scan_sym(op: &str, reg: &'a Registry) -> Self {
        let name = op.to_string();
        let repr = Expr::Scan(name.clone());
        let mut plan = Skel::barrier("scan_sym", move |scl: &mut Scl, a: ParArray<i64>| {
            scl.scan(&a, |x, y| reg.apply_op(&name, *x, *y).unwrap_or(0))
        });
        tag_param(&plan, &repr.to_string());
        plan.repr = Some(repr);
        plan
    }

    /// A lowerable fetch through an index function registered by name.
    pub fn fetch_sym(name: &str, reg: &'a Registry) -> Self {
        Self::fetch_ref(IdxRef::named(name), reg)
    }

    /// As [`Skel::fetch_sym`] for an arbitrary [`IdxRef`]. A fusion
    /// barrier.
    pub fn fetch_ref(h: IdxRef, reg: &'a Registry) -> Self {
        let repr = Expr::Fetch(h.clone());
        let mut plan = Skel::barrier("fetch_sym", move |scl: &mut Scl, a: ParArray<i64>| {
            let n = a.len();
            scl.fetch_owned(|i| reg.apply_idx(&h, i, n).unwrap_or(i), a)
        });
        tag_param(&plan, &repr.to_string());
        plan.repr = Some(repr);
        plan
    }

    /// A lowerable send through an index function registered by name;
    /// colliding values combine with wrapping `+` (the IR's canonical
    /// monoid).
    pub fn send_sym(name: &str, reg: &'a Registry) -> Self {
        Self::send_ref(IdxRef::named(name), reg)
    }

    /// As [`Skel::send_sym`] for an arbitrary [`IdxRef`]. A fusion
    /// barrier.
    pub fn send_ref(h: IdxRef, reg: &'a Registry) -> Self {
        let repr = Expr::Send(h.clone());
        let mut plan = Skel::barrier("send_sym", move |scl: &mut Scl, a: ParArray<i64>| {
            let n = a.len();
            let inboxes = scl.send_owned(|k| vec![reg.apply_idx(&h, k, n).unwrap_or(k)], a);
            scl.map_costed(&inboxes, |v| {
                (
                    v.iter().fold(0i64, |acc, x| acc.wrapping_add(*x)),
                    Work::flops(v.len() as u64),
                )
            })
        });
        tag_param(&plan, &repr.to_string());
        plan.repr = Some(repr);
        plan
    }

    /// Element-wise combination of two conforming `i64` arrays through an
    /// operator registered by name — the join stage of
    /// [`Skel::fanout_sym`]. Part-local and uncharged, like
    /// [`Skel::zip_with`].
    pub fn zip_sym(
        op: &str,
        reg: &'a Registry,
    ) -> Skel<'a, (ParArray<i64>, ParArray<i64>), ParArray<i64>> {
        let eager_op = op.to_string();
        let node_op = op.to_string();
        let plan = Skel {
            exec: RefCell::new(Box::new(
                move |scl: &mut Scl, (a, b): (ParArray<i64>, ParArray<i64>)| {
                    scl.zip_with(&a, &b, |x, y| reg.apply_op(&eager_op, *x, *y).unwrap_or(0))
                },
            )),
            repr: None,
            fused: Some(RefCell::new(fused::compute_pair_node(
                "zip_sym",
                move |x: &i64, y: &i64| (reg.apply_op(&node_op, *x, *y).unwrap_or(0), Work::NONE),
            ))),
        };
        tag_param(&plan, &format!("zip({op})"));
        plan
    }

    /// Lowerable predicate-driven branching: [`Skel::choice`] whose
    /// predicate is a scalar function registered by name, probed on the
    /// array's **first element** (an empty array probes `0`); nonzero
    /// selects `left`. Lowers to [`Expr::Choice`] when both arms lower.
    pub fn choice_sym(pred: &str, left: Self, right: Self, reg: &'a Registry) -> Self {
        Self::choice_ref(FnRef::named(pred), left, right, reg)
    }

    /// As [`Skel::choice_sym`] for an arbitrary (possibly composed)
    /// [`FnRef`] predicate.
    pub fn choice_ref(pref: FnRef, left: Self, right: Self, reg: &'a Registry) -> Self {
        let repr = match (left.repr.clone(), right.repr.clone()) {
            (Some(l), Some(r)) => Some(Expr::Choice {
                pred: pref.clone(),
                left: Box::new(l),
                right: Box::new(r),
            }),
            _ => None,
        };
        let p = pref.clone();
        let mut plan = Skel::choice(
            move |a: &ParArray<i64>| {
                let probe = a.parts().first().copied().unwrap_or(0);
                reg.apply_fn(&p, probe).unwrap_or(0) != 0
            },
            left,
            right,
        );
        tag_param(&plan, &format!("choice({pref})"));
        plan.repr = repr;
        plan
    }

    /// Lowerable fan-out: run both arms on (copies of) the input, then
    /// zip the results element-wise with an operator registered by name —
    /// `left.fanout(right).then(zip_sym(combine))` with an
    /// [`Expr::Fanout`] representation when both arms lower.
    pub fn fanout_sym(left: Self, right: Self, combine: &str, reg: &'a Registry) -> Self {
        let repr = match (left.repr.clone(), right.repr.clone()) {
            (Some(l), Some(r)) => Some(Expr::Fanout {
                left: Box::new(l),
                right: Box::new(r),
                combine: combine.to_string(),
            }),
            _ => None,
        };
        let mut plan = left.fanout(right).then(Skel::zip_sym(combine, reg));
        plan.repr = repr;
        plan
    }

    /// Lower the plan into the `scl-transform` IR, if every stage is in
    /// the lowerable fragment **and** every referenced symbol resolves in
    /// `reg` **and** the program is array→array. Returns `None` otherwise.
    pub fn lower(&self, reg: &Registry) -> Option<Expr> {
        let e = self.repr.clone()?;
        if shape_of(&e, Shape::Arr) != Ok(Shape::Arr) {
            return None;
        }
        symbols_resolve(&e, reg).then_some(e)
    }

    /// Raise an array→array IR program back into an executable plan whose
    /// stages delegate to the runtime skeleton layer (one scalar per
    /// virtual processor). The inverse of [`Skel::lower`], used after
    /// [`optimize`].
    ///
    /// The raised plan is built stage by stage, so it is **fusable**: maps
    /// become compute nodes, everything else becomes a barrier, and
    /// [`Scl::run_optimized`] can hand the optimised program to the fused
    /// executor.
    pub fn from_expr(e: &Expr, reg: &'a Registry) -> Result<Self, String> {
        match shape_of(e, Shape::Arr) {
            Ok(Shape::Arr) => {}
            Ok(other) => return Err(format!("plan must be array→array, got {other:?}")),
            Err(err) => return Err(err),
        }
        if !symbols_resolve(e, reg) {
            return Err(format!("{e}: references unregistered symbols"));
        }

        // Top-level stages in execution order (Compose applies right to
        // left).
        let elements: Vec<Expr> = match e {
            Expr::Compose(es) => es.iter().rev().cloned().collect(),
            other => vec![other.clone()],
        };

        // Group the stages so that every emitted piece is array→array:
        // shape-preserving leaves become their own (possibly fusable)
        // stage; a `split … combine` region accumulates until the shape is
        // flat again and runs as one barrier through the interpreter.
        let mut plan: Option<Self> = None;
        let mut region: Vec<Expr> = Vec::new(); // execution order
        let mut shape = Shape::Arr;
        for st in elements {
            shape = shape_of(&st, shape)?;
            if region.is_empty() && shape == Shape::Arr {
                let stage = Self::expr_stage(st, reg);
                plan = Some(match plan {
                    None => stage,
                    Some(p) => p.then(stage),
                });
            } else {
                region.push(st);
                if shape == Shape::Arr {
                    let chunk = Expr::pipeline(std::mem::take(&mut region));
                    let stage = Self::expr_barrier(chunk, reg);
                    plan = Some(match plan {
                        None => stage,
                        Some(p) => p.then(stage),
                    });
                }
            }
        }
        let mut plan = plan.unwrap_or_else(Skel::identity);
        plan.repr = Some(e.clone());
        Ok(plan)
    }

    /// One shape-preserving IR leaf as a plan stage, fused where the leaf
    /// is part-local.
    fn expr_stage(st: Expr, reg: &'a Registry) -> Self {
        match st {
            Expr::Map(f) => Skel::map_ref(f, reg),
            Expr::Rotate(k) => Skel::rotate(k as isize),
            Expr::Scan(op) => Skel::scan_sym(&op, reg),
            Expr::Fetch(h) => Skel::fetch_ref(h, reg),
            Expr::Send(h) => Skel::send_ref(h, reg),
            st @ (Expr::Choice { .. } | Expr::Fanout { .. }) => Self::expr_branch(st, reg),
            other => Self::expr_barrier(other, reg),
        }
    }

    /// A branch IR form as a plan stage: both arms are raised
    /// **recursively** (so nested maps keep their compute-node form and
    /// the raised plan is a real DAG, not a flattened chain), falling back
    /// to the interpreter barrier only if an arm fails to raise — raising
    /// is total either way.
    fn expr_branch(st: Expr, reg: &'a Registry) -> Self {
        match st {
            Expr::Choice { pred, left, right } => {
                match (Self::from_expr(&left, reg), Self::from_expr(&right, reg)) {
                    (Ok(l), Ok(r)) => Skel::choice_ref(pred, l, r, reg),
                    _ => Self::expr_barrier(Expr::Choice { pred, left, right }, reg),
                }
            }
            Expr::Fanout {
                left,
                right,
                combine,
            } => match (Self::from_expr(&left, reg), Self::from_expr(&right, reg)) {
                (Ok(l), Ok(r)) => Skel::fanout_sym(l, r, &combine, reg),
                _ => Self::expr_barrier(
                    Expr::Fanout {
                        left,
                        right,
                        combine,
                    },
                    reg,
                ),
            },
            other => Self::expr_barrier(other, reg),
        }
    }

    /// An arbitrary array→array IR fragment as one barrier stage executed
    /// through the runtime interpreter.
    fn expr_barrier(st: Expr, reg: &'a Registry) -> Self {
        let repr = st.clone();
        let mut plan = Skel::barrier(
            "expr",
            move |scl: &mut Scl, a: ParArray<i64>| match exec_expr(&st, reg, scl, RtVal::Flat(a)) {
                Ok(RtVal::Flat(out)) => out,
                Ok(RtVal::Nested(_)) => unreachable!("shape-checked to Arr"),
                Err(err) => panic!("raised plan failed at runtime: {err}"),
            },
        );
        tag_param(&plan, &repr.to_string());
        plan.repr = Some(repr);
        plan
    }
}

impl Scl {
    /// The plan → optimise → execute entry point: lower `plan`, apply the
    /// §4 rewrite laws with [`optimize`], raise the optimised program and
    /// execute it here **through the fused executor** (the raised plan is
    /// always fusable, so surviving map runs execute partition-resident).
    /// Returns the result and the rewrite log (empty when the plan is
    /// outside the lowerable fragment, in which case it runs eagerly
    /// instead — same answer either way).
    pub fn run_optimized<'r>(
        &mut self,
        plan: &Skel<'r, ParArray<i64>, ParArray<i64>>,
        reg: &'r Registry,
        input: ParArray<i64>,
    ) -> (ParArray<i64>, Vec<Applied>) {
        match plan.lower(reg) {
            Some(e) => {
                let (opt, log) = optimize(e, reg);
                let raised =
                    Skel::from_expr(&opt, reg).expect("optimize preserves the array→array shape");
                let out = self
                    .run_fused(&raised, input)
                    .unwrap_or_else(|err| panic!("optimized plan failed: {err}"));
                (out, log)
            }
            None => (plan.run(self, input), Vec::new()),
        }
    }

    /// Execute `plan` through the fused, partition-resident executor —
    /// [`Skel::run_fused`] as a context method, mirroring
    /// [`Scl::run_optimized`]. On the fused path (any [`Skel::fusable`]
    /// plan) oversized configurations surface as
    /// [`SclError::MachineTooSmall`](crate::error::SclError) instead of
    /// panicking; plans with an unfusable stage fall back to eager
    /// execution (same answer, eager panicking semantics).
    pub fn run_fused<'r, A, B>(&mut self, plan: &Skel<'r, A, B>, input: A) -> SclResult<B> {
        plan.run_fused(self, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scl_machine::{CostModel, Machine, Topology};
    use scl_transform::{eval, Value};

    fn unit_ctx(n: usize) -> Scl {
        Scl::new(Machine::new(
            Topology::FullyConnected { procs: n },
            CostModel::unit(),
        ))
    }

    fn arr(n: i64) -> ParArray<i64> {
        ParArray::from_parts((0..n).collect())
    }

    #[test]
    fn map_plan_matches_eager_map() {
        let plan = Skel::map(|x: &i64| x * 10);
        let mut s1 = unit_ctx(4);
        let out = plan.run(&mut s1, arr(4));
        let mut s2 = unit_ctx(4);
        let eager = s2.map(&arr(4), |x| x * 10);
        assert_eq!(out, eager);
    }

    #[test]
    fn then_composes_in_execution_order() {
        let plan = Skel::map(|x: &i64| x + 1).then(Skel::map(|x: &i64| x * 2));
        let mut s = unit_ctx(3);
        assert_eq!(plan.run(&mut s, arr(3)).to_vec(), vec![2, 4, 6]);
    }

    #[test]
    fn pipe_runs_first_stage_first() {
        let plan = Skel::pipe(vec![Skel::map(|x: &i64| x + 1), Skel::rotate(1)]);
        let mut s = unit_ctx(3);
        // (0,1,2) -> +1 -> (1,2,3) -> rotate 1 -> (2,3,1)
        assert_eq!(plan.run(&mut s, arr(3)).to_vec(), vec![2, 3, 1]);
    }

    #[test]
    fn plans_are_rerunnable() {
        let plan = Skel::map(|x: &i64| x + 1);
        let mut s = unit_ctx(3);
        let a = plan.run(&mut s, arr(3));
        let b = plan.run(&mut s, arr(3));
        assert_eq!(a, b);
    }

    #[test]
    fn symbolic_stages_lower_and_opaque_stages_do_not() {
        let reg = Registry::standard();
        let lowerable = Skel::map_sym("inc", &reg).then(Skel::rotate(2));
        assert!(lowerable.lower(&reg).is_some());

        let opaque = Skel::map(|x: &i64| x + 1).then(Skel::rotate(2));
        assert!(opaque.lower(&reg).is_none());

        // one opaque stage poisons the whole chain
        let mixed = Skel::map_sym("inc", &reg).then(Skel::map(|x: &i64| x + 1));
        assert!(mixed.lower(&reg).is_none());
    }

    #[test]
    fn lower_validates_symbols() {
        let reg = Registry::standard();
        let mut empty = Registry::new();
        empty.scalar("only", |x| x, Work::NONE);
        let plan = Skel::map_sym("inc", &reg);
        assert!(plan.lower(&reg).is_some());
        assert!(
            plan.lower(&empty).is_none(),
            "`inc` is not in the empty registry"
        );
    }

    #[test]
    fn lowered_repr_matches_the_program() {
        let reg = Registry::standard();
        let plan = Skel::map_sym("double", &reg)
            .then(Skel::rotate(1))
            .then(Skel::map_sym("inc", &reg));
        let e = plan.lower(&reg).unwrap();
        assert_eq!(e.to_string(), "map(inc) . rotate(1) . map(double)");
    }

    #[test]
    fn pipe_lowers_without_spurious_identity() {
        let reg = Registry::standard();
        let plan = Skel::pipe(vec![Skel::map_sym("inc", &reg)]);
        assert_eq!(plan.lower(&reg), Some(Expr::Map(FnRef::named("inc"))));
    }

    #[test]
    fn run_matches_interpreter_on_the_lowerable_fragment() {
        let reg = Registry::standard();
        let plan = Skel::map_sym("square", &reg)
            .then(Skel::rotate(-2))
            .then(Skel::send_sym("half", &reg))
            .then(Skel::fetch_sym("succ", &reg))
            .then(Skel::scan_sym("add", &reg));
        let e = plan.lower(&reg).unwrap();

        let input: Vec<i64> = (0..12).map(|i| i * 3 - 5).collect();
        let mut s = unit_ctx(12);
        let got = plan
            .run(&mut s, ParArray::from_parts(input.clone()))
            .to_vec();
        let expect = eval(&e, &reg, Value::Arr(input)).unwrap();
        assert_eq!(Value::Arr(got), expect);
    }

    #[test]
    fn run_optimized_agrees_with_eager_and_shrinks() {
        let reg = Registry::standard();
        let plan = Skel::map_sym("double", &reg)
            .then(Skel::rotate(3))
            .then(Skel::rotate(-3))
            .then(Skel::map_sym("inc", &reg));

        let input = arr(8);
        let mut s1 = unit_ctx(8);
        let eager = plan.run(&mut s1, input.clone());
        let mut s2 = unit_ctx(8);
        let (opt, log) = s2.run_optimized(&plan, &reg, input);

        assert_eq!(eager, opt);
        assert!(log.iter().any(|a| a.rule == "map-fusion"), "{log:?}");
        assert!(log.iter().any(|a| a.rule == "rotate-fusion"), "{log:?}");
        // the optimised run moved strictly less data
        assert!(s2.machine.metrics.messages < s1.machine.metrics.messages);
    }

    #[test]
    fn run_optimized_falls_back_for_opaque_plans() {
        let reg = Registry::standard();
        let plan = Skel::map(|x: &i64| x * 7);
        let mut s = unit_ctx(4);
        let (out, log) = s.run_optimized(&plan, &reg, arr(4));
        assert_eq!(out.to_vec(), vec![0, 7, 14, 21]);
        assert!(log.is_empty());
    }

    #[test]
    fn from_expr_executes_nested_programs() {
        let reg = Registry::standard();
        let e = Expr::pipeline(vec![
            Expr::Split(2),
            Expr::MapGroups(Box::new(Expr::Rotate(1))),
            Expr::Combine,
        ]);
        let raised = Skel::from_expr(&e, &reg).unwrap();
        let mut s = unit_ctx(4);
        let out = raised.run(&mut s, arr(4));
        assert_eq!(out.to_vec(), vec![1, 0, 3, 2]);
        // agrees with the reference interpreter
        let expect = eval(&e, &reg, Value::Arr((0..4).collect())).unwrap();
        assert_eq!(Value::Arr(out.to_vec()), expect);
    }

    #[test]
    fn from_expr_executes_segmented_forms() {
        let reg = Registry::standard();
        for e in [
            Expr::SegRotate { groups: 3, k: 1 },
            Expr::SegFetch {
                groups: 3,
                f: IdxRef::named("rev"),
            },
            Expr::SegSend {
                groups: 3,
                f: IdxRef::named("half"),
            },
        ] {
            let raised = Skel::from_expr(&e, &reg).unwrap();
            let mut s = unit_ctx(12);
            let out = raised.run(&mut s, arr(12));
            let expect = eval(&e, &reg, Value::Arr((0..12).collect())).unwrap();
            assert_eq!(Value::Arr(out.to_vec()), expect, "{e}");
        }
    }

    #[test]
    fn from_expr_rejects_scalar_programs_and_bad_symbols() {
        let reg = Registry::standard();
        assert!(Skel::from_expr(&Expr::Fold("add".into()), &reg).is_err());
        assert!(Skel::from_expr(&Expr::Map(FnRef::named("nope")), &reg).is_err());
    }

    #[test]
    fn fold_and_scan_plans() {
        let plan =
            Skel::scan(|a: &i64, b: &i64| a + b).then(Skel::fold(|a: &i64, b: &i64| *a.max(b)));
        let mut s = unit_ctx(4);
        // scan: 0,1,3,6 -> fold max -> 6
        assert_eq!(plan.run(&mut s, arr(4)), 6);
    }

    #[test]
    fn iter_until_plan_loops() {
        let plan: Skel<'_, i32, i32> = Skel::iter_until(|_, x| x * 2, |_, x| x + 1, |x| *x >= 16);
        let mut s = unit_ctx(1);
        assert_eq!(plan.run(&mut s, 1), 17);
    }

    #[test]
    fn dc_plan_reaches_bases() {
        let plan = Skel::dc(
            2,
            |g: &ParArray<i64>| g.len() == 1,
            |scl: &mut Scl, g| scl.map(&g, |x| x * 10),
            |_scl: &mut Scl, g| g,
        );
        let mut s = unit_ctx(8);
        let out = plan.run(&mut s, arr(8));
        assert_eq!(out.to_vec(), (0..8).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn partition_gather_roundtrip_plan() {
        let plan = Skel::partition(Pattern::Block(4)).then(Skel::gather());
        let mut s = Scl::ap1000(4);
        let data: Vec<i64> = (0..10).collect();
        assert_eq!(plan.run(&mut s, data.clone()), data);
    }

    // ---- structural fingerprinting ------------------------------------------

    #[test]
    fn equal_plans_fingerprint_equal() {
        let a = Skel::map(|x: &i64| x + 1)
            .then(Skel::rotate(2))
            .then(Skel::map_costed(|x: &i64| (x * 2, Work::flops(1))));
        let b = Skel::map(|x: &i64| x + 1)
            .then(Skel::rotate(2))
            .then(Skel::map_costed(|x: &i64| (x * 2, Work::flops(1))));
        assert_eq!(a.fingerprint().unwrap(), b.fingerprint().unwrap());
    }

    #[test]
    fn stage_order_changes_the_fingerprint() {
        let ab = Skel::map(|x: &i64| x + 1).then(Skel::map_costed(|x: &i64| (*x, Work::NONE)));
        let ba = Skel::map_costed(|x: &i64| (*x, Work::NONE)).then(Skel::map(|x: &i64| x + 1));
        assert_ne!(ab.fingerprint().unwrap(), ba.fingerprint().unwrap());
    }

    #[test]
    fn costed_and_uncosted_stages_fingerprint_apart() {
        let plain = Skel::map(|x: &i64| x + 1);
        let costed = Skel::map_costed(|x: &i64| (x + 1, Work::NONE));
        let imap = Skel::imap(|_, x: &i64| x + 1);
        let fp = |p: &Skel<'_, ParArray<i64>, ParArray<i64>>| p.fingerprint().unwrap();
        assert_ne!(fp(&plain), fp(&costed));
        assert_ne!(fp(&plain), fp(&imap));
        assert_ne!(fp(&costed), fp(&imap));
    }

    #[test]
    fn barrier_kinds_fingerprint_apart() {
        let rot = Skel::map(|x: &i64| x + 1).then(Skel::rotate(1));
        let shift = Skel::map(|x: &i64| x + 1).then(Skel::shift(1, 0));
        let scan = Skel::map(|x: &i64| x + 1).then(Skel::scan(|a, b| a + b));
        let fold = Skel::map(|x: &i64| x + 1).then(Skel::fold_all(|a, b| a + b, Work::NONE));
        let fps: Vec<_> = [&rot, &shift, &scan, &fold]
            .iter()
            .map(|p| p.fingerprint().unwrap())
            .collect();
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "barrier kinds {i} and {j} collide");
            }
        }
    }

    #[test]
    fn lowerable_parameters_fingerprint_apart() {
        // same node chain (one `rotate` barrier), different IR parameter
        assert_ne!(
            Skel::<'_, ParArray<i64>, ParArray<i64>>::rotate(1)
                .fingerprint()
                .unwrap(),
            Skel::<'_, ParArray<i64>, ParArray<i64>>::rotate(2)
                .fingerprint()
                .unwrap()
        );
        let reg = Registry::standard();
        assert_ne!(
            Skel::map_sym("inc", &reg).fingerprint().unwrap(),
            Skel::map_sym("double", &reg).fingerprint().unwrap()
        );
    }

    #[test]
    fn barrier_parameters_survive_opaque_composition() {
        // regression: an opaque stage drops the composed IR, but the
        // barrier's own parameters must still reach the fingerprint — a
        // plan cache keyed on it would otherwise serve rotate(1) answers
        // to rotate(2) requests
        let fp = |k: isize| {
            Skel::map(|x: &i64| x + 1)
                .then(Skel::rotate(k))
                .fingerprint()
                .unwrap()
        };
        assert_ne!(fp(1), fp(2));
        assert_eq!(fp(2), fp(2));

        let sh = |k: isize| {
            Skel::map(|x: &i64| x + 1)
                .then(Skel::shift(k, 0))
                .fingerprint()
                .unwrap()
        };
        assert_ne!(sh(1), sh(2));

        let it = |n: usize| {
            Skel::map(|x: &i64| x + 1)
                .then(Skel::iter_for(n, |_, _, a| a))
                .fingerprint()
                .unwrap()
        };
        assert_ne!(it(3), it(4));

        let pt = |p: usize| {
            Skel::<'_, Vec<i64>, ParArray<Vec<i64>>>::partition(Pattern::Block(p))
                .fingerprint()
                .unwrap()
        };
        assert_ne!(pt(2), pt(4));

        let reg = Registry::standard();
        let sym = |name: &str| {
            Skel::map(|x: &i64| x + 1)
                .then(Skel::map_sym(name, &reg))
                .fingerprint()
                .unwrap()
        };
        assert_ne!(sym("inc"), sym("double"));

        // closure-captured values remain invisible — the documented
        // submit_keyed case
        let fill = |v: i64| {
            Skel::<'_, ParArray<i64>, ParArray<i64>>::shift(1, v)
                .fingerprint()
                .unwrap()
        };
        assert_eq!(fill(0), fill(9));
    }

    #[test]
    fn unfusable_plans_have_no_fingerprint() {
        let opaque = Skel::from_fn(|_, a: ParArray<i64>| a);
        assert!(opaque.fingerprint().is_none());
        // one opaque stage poisons the chain's fingerprint too
        let chain = Skel::map(|x: &i64| x + 1).then(Skel::from_fn(|_, a: ParArray<i64>| a));
        assert!(chain.fingerprint().is_none());
    }

    #[test]
    fn stream_ops_fingerprint_like_the_plan_modulo_repr() {
        // the PlanOp-level hash sees the node chain only; an opaque plan
        // (no repr) must fingerprint identically before and after
        // `into_stream_ops` consumes it
        let plan = Skel::map(|x: &i64| x + 1)
            .then(Skel::shift(1, 0))
            .then(Skel::map_costed(|x: &i64| (x * 3, Work::flops(1))));
        let fp = plan.fingerprint().unwrap();
        let ops = plan.into_stream_ops().ok().unwrap();
        let from_ops = crate::fused::fingerprint_ops(&ops);
        // plan-level fingerprint folds in the "no repr" marker
        assert_eq!(
            crate::fused::fingerprint_with_repr(from_ops.raw(), None),
            fp
        );
    }

    // ---- fused execution ----------------------------------------------------

    use scl_exec::ExecPolicy;

    #[test]
    fn fused_stage_structure_groups_compute_runs() {
        let plan = Skel::map(|x: &i64| x + 1)
            .then(Skel::map(|x: &i64| x * 2))
            .then(Skel::rotate(1))
            .then(Skel::map_costed(|x: &i64| (x - 1, Work::flops(1))));
        assert!(plan.fusable());
        assert_eq!(
            plan.fused_stages().unwrap(),
            vec![
                ("map", false),
                ("map", false),
                ("rotate", true),
                ("map_costed", false),
            ]
        );
    }

    #[test]
    fn opaque_from_fn_forfeits_fusion_but_barrier_does_not() {
        let opaque = Skel::map(|x: &i64| x + 1).then(Skel::from_fn(|_, a: ParArray<i64>| a));
        assert!(!opaque.fusable());

        let with_barrier = Skel::map(|x: &i64| x + 1)
            .then(Skel::barrier("pass", |_, a: ParArray<i64>| a))
            .then(Skel::map(|x: &i64| x * 3));
        assert!(with_barrier.fusable());
        let mut s = unit_ctx(4);
        let out = s.run_fused(&with_barrier, arr(4)).unwrap();
        assert_eq!(out.to_vec(), vec![3, 6, 9, 12]);
    }

    #[test]
    fn run_fused_matches_eager_under_every_policy() {
        for policy in [
            ExecPolicy::Sequential,
            ExecPolicy::Threads(4),
            ExecPolicy::cost_driven(),
        ] {
            let plan = Skel::map(|x: &i64| x * 3)
                .then(Skel::imap(|i, x: &i64| x + i as i64))
                .then(Skel::rotate(2))
                .then(Skel::map_costed(|x: &i64| (x * x, Work::flops(1))))
                .then(Skel::scan(|a: &i64, b: &i64| a.wrapping_add(*b)));
            let mut s1 = unit_ctx(8);
            let eager = plan.run(&mut s1, arr(8));
            let mut s2 = unit_ctx(8).with_policy(policy);
            let fused = s2.run_fused(&plan, arr(8)).unwrap();
            assert_eq!(eager, fused, "{policy:?}");
        }
    }

    #[test]
    fn run_fused_charges_like_eager_for_costed_stages() {
        let plan = Skel::map_costed(|x: &i64| (x + 1, Work::flops(2)))
            .then(Skel::map_costed(|x: &i64| (x * 2, Work::cmps(1))))
            .then(Skel::rotate(1));
        let mut s1 = unit_ctx(4);
        let _ = plan.run(&mut s1, arr(4));
        let mut s2 = unit_ctx(4);
        let _ = s2.run_fused(&plan, arr(4)).unwrap();
        assert_eq!(s1.makespan(), s2.makespan());
        assert_eq!(s1.machine.metrics.flops, s2.machine.metrics.flops);
        assert_eq!(s1.machine.metrics.messages, s2.machine.metrics.messages);
    }

    #[test]
    fn fused_costed_stages_never_pick_up_wallclock_charges() {
        use crate::ctx::MeasureMode;
        // Costed stages charge exactly their reported work in both
        // executors, even under WallClock measurement — measured host time
        // applies only to *uncosted* stages, as in the eager layer.
        let plan = Skel::map_costed(|x: &i64| (x + 1, Work::flops(3)));
        let mut s1 = unit_ctx(4).with_measure(MeasureMode::WallClock { scale: 1000.0 });
        let eager = plan.run(&mut s1, arr(4));
        let mut s2 = unit_ctx(4).with_measure(MeasureMode::WallClock { scale: 1000.0 });
        let fused = s2.run_fused(&plan, arr(4)).unwrap();
        assert_eq!(eager, fused);
        assert_eq!(s1.makespan(), s2.makespan());
    }

    #[test]
    fn fused_uncosted_stages_do_charge_wallclock() {
        use crate::ctx::MeasureMode;
        use scl_machine::Time;
        let plan = Skel::map(|n: &u64| (0..200_000u64).fold(*n, |a, i| a.wrapping_add(i)));
        let mut s = unit_ctx(2).with_measure(MeasureMode::WallClock { scale: 1.0 });
        let _ = s
            .run_fused(&plan, ParArray::from_parts(vec![1u64, 2]))
            .unwrap();
        assert!(s.makespan() > Time::ZERO);
    }

    #[test]
    fn run_fused_zip_with_and_pair_input() {
        let plan = Skel::zip_with(|a: &i64, b: &i64| a * 10 + b);
        let input = (arr(4), arr(4));
        let mut s1 = unit_ctx(4);
        let eager = plan.run(&mut s1, input.clone());
        let mut s2 = unit_ctx(4).with_policy(ExecPolicy::Threads(2));
        let fused = s2.run_fused(&plan, input).unwrap();
        assert_eq!(eager, fused);
    }

    #[test]
    fn run_fused_partition_gather_roundtrip() {
        let plan = Skel::partition(Pattern::Block(4)).then(Skel::gather());
        let mut s = Scl::ap1000(4);
        let data: Vec<i64> = (0..10).collect();
        assert_eq!(s.run_fused(&plan, data.clone()).unwrap(), data);
    }

    #[test]
    fn run_fused_reports_machine_too_small() {
        // partition wider than the machine: eager panics, fused errors
        let plan = Skel::partition(Pattern::Block(8)).then(Skel::gather());
        let mut s = Scl::ap1000(2);
        let err = s
            .run_fused(&plan, (0..16).collect::<Vec<i64>>())
            .unwrap_err();
        assert_eq!(
            err,
            crate::error::SclError::MachineTooSmall {
                needed: 8,
                procs: 2
            }
        );

        // input configuration wider than the machine
        let plan = Skel::map(|x: &i64| x + 1);
        let mut s = unit_ctx(2);
        let err = s.run_fused(&plan, arr(6)).unwrap_err();
        assert!(matches!(
            err,
            crate::error::SclError::MachineTooSmall {
                needed: 6,
                procs: 2
            }
        ));
    }

    #[test]
    fn fused_panic_carries_stage_label_sequential() {
        let plan = Skel::map(|x: &i64| if *x == 2 { panic!("boom") } else { *x });
        let mut s = unit_ctx(4);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = s.run_fused(&plan, arr(4));
        }))
        .unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("fused stage `map`"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn fused_panic_carries_stage_label_threaded() {
        let plan = Skel::map_costed(|x: &i64| {
            if *x == 5 {
                panic!("kaboom")
            }
            (*x, Work::NONE)
        });
        let mut s = unit_ctx(8).with_policy(ExecPolicy::Threads(4));
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = s.run_fused(&plan, arr(8));
        }))
        .unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("fused stage `map_costed`"), "{msg}");
        assert!(msg.contains("kaboom"), "{msg}");
    }

    #[test]
    fn pipe_preserves_fusability() {
        let plan = Skel::pipe(vec![
            Skel::map(|x: &i64| x + 1),
            Skel::rotate(1),
            Skel::map(|x: &i64| x * 2),
        ]);
        assert!(plan.fusable());
        let mut s = unit_ctx(3);
        // (0,1,2) -> +1 -> (1,2,3) -> rotate 1 -> (2,3,1) -> *2 -> (4,6,2)
        assert_eq!(s.run_fused(&plan, arr(3)).unwrap().to_vec(), vec![4, 6, 2]);
    }

    #[test]
    fn from_expr_raises_fusable_plans() {
        let reg = Registry::standard();
        let e = Expr::pipeline(vec![
            Expr::Map(FnRef::named("inc")),
            Expr::Map(FnRef::named("double")),
            Expr::Rotate(1),
            Expr::Map(FnRef::named("square")),
        ]);
        let raised = Skel::from_expr(&e, &reg).unwrap();
        assert!(raised.fusable());
        let stages = raised.fused_stages().unwrap();
        assert_eq!(
            stages,
            vec![
                ("map_sym", false),
                ("map_sym", false),
                ("rotate", true),
                ("map_sym", false),
            ]
        );
        // and the raised repr still round-trips
        assert_eq!(raised.lower(&reg), Some(e.clone()));

        let mut s = unit_ctx(6);
        let fused = s.run_fused(&raised, arr(6)).unwrap();
        let expect = scl_transform::eval(&e, &reg, Value::Arr((0..6).collect())).unwrap();
        assert_eq!(Value::Arr(fused.to_vec()), expect);
    }

    #[test]
    fn from_expr_nested_regions_stay_one_barrier() {
        let reg = Registry::standard();
        let e = Expr::pipeline(vec![
            Expr::Map(FnRef::named("inc")),
            Expr::Split(2),
            Expr::MapGroups(Box::new(Expr::Rotate(1))),
            Expr::Combine,
            Expr::Map(FnRef::named("double")),
        ]);
        let raised = Skel::from_expr(&e, &reg).unwrap();
        let stages = raised.fused_stages().unwrap();
        assert_eq!(
            stages,
            vec![("map_sym", false), ("expr", true), ("map_sym", false),]
        );
        let mut s = unit_ctx(4);
        let fused = s.run_fused(&raised, arr(4)).unwrap();
        let expect = scl_transform::eval(&e, &reg, Value::Arr((0..4).collect())).unwrap();
        assert_eq!(Value::Arr(fused.to_vec()), expect);
    }

    #[test]
    fn run_optimized_takes_the_fused_path() {
        let reg = Registry::standard();
        let plan = Skel::map_sym("double", &reg)
            .then(Skel::rotate(3))
            .then(Skel::rotate(-3))
            .then(Skel::map_sym("inc", &reg));
        let input = arr(8);
        let mut s1 = unit_ctx(8);
        let eager = plan.run(&mut s1, input.clone());
        let mut s2 = unit_ctx(8).with_policy(ExecPolicy::Threads(4));
        let (opt, log) = s2.run_optimized(&plan, &reg, input);
        assert_eq!(eager, opt);
        assert!(!log.is_empty());
    }

    #[test]
    fn iter_until_fused_is_a_barrier_stage() {
        let plan = Skel::iter_until_fused(
            |scl: &mut Scl, (a, n, r): (ParArray<i64>, usize, f64)| {
                (scl.map(&a, |x| x + 1), n + 1, r)
            },
            |_, s| s,
            |(_, n, _): &(ParArray<i64>, usize, f64)| *n >= 3,
        );
        assert!(plan.fusable());
        assert_eq!(plan.fused_stages().unwrap(), vec![("iter_until", true)]);
        let mut s = unit_ctx(4);
        let (out, n, _) = s.run_fused(&plan, (arr(4), 0usize, 0.0f64)).unwrap();
        assert_eq!(n, 3);
        assert_eq!(out.to_vec(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn fused_plans_are_rerunnable() {
        let plan = Skel::map(|x: &i64| x + 1).then(Skel::rotate(1));
        let mut s = unit_ctx(3);
        let a = s.run_fused(&plan, arr(3)).unwrap();
        let b = s.run_fused(&plan, arr(3)).unwrap();
        assert_eq!(a, b);
        // and eager still works on the same plan value afterwards
        assert_eq!(plan.run(&mut s, arr(3)), a);
    }
}
