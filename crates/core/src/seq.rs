//! Sequential base-language arrays.
//!
//! The paper's two-tier model keeps *sequential* data in ordinary
//! base-language types: SCL's `SeqArray`. In Rust the one-dimensional
//! `SeqArray` is simply `Vec<T>`; this module adds the two-dimensional
//! [`Matrix`] (row-major) that the HPF-style partitioning strategies
//! (`row_block`, `col_block`, …) operate on.

use crate::bytes::Bytes;
use std::fmt;

/// A dense, row-major 2-D array — SCL's two-dimensional `SeqArray`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T> Matrix<T> {
    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics unless `data.len() == rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Matrix<T> {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Build element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Matrix<T> {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }

    /// Overwrite one element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        *self.get_mut(r, c) = v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Swap two whole rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows);
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    /// The flat row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consume into the flat row-major storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterate rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks(self.cols.max(1)).take(self.rows)
    }

    /// Element-wise map.
    pub fn map<U>(&self, f: impl Fn(&T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl<T: Clone> Matrix<T> {
    /// A `rows × cols` matrix with every element `v`.
    pub fn filled(rows: usize, cols: usize, v: T) -> Matrix<T> {
        Matrix {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Column `c` as an owned vector (columns are strided, so this copies).
    pub fn col(&self, c: usize) -> Vec<T> {
        assert!(c < self.cols, "col {c} out of {}", self.cols);
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c].clone())
            .collect()
    }

    /// A new matrix holding columns `c0 .. c1` (half-open).
    pub fn col_range(&self, c0: usize, c1: usize) -> Matrix<T> {
        assert!(
            c0 <= c1 && c1 <= self.cols,
            "bad col range {c0}..{c1} of {}",
            self.cols
        );
        Matrix::from_fn(self.rows, c1 - c0, |r, c| {
            self.data[r * self.cols + c0 + c].clone()
        })
    }

    /// A new matrix holding rows `r0 .. r1` (half-open).
    pub fn row_range(&self, r0: usize, r1: usize) -> Matrix<T> {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "bad row range {r0}..{r1} of {}",
            self.rows
        );
        Matrix::from_vec(
            r1 - r0,
            self.cols,
            self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        )
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r).clone())
    }

    /// Glue matrices left-to-right (all must share a row count).
    pub fn hcat(blocks: &[Matrix<T>]) -> Matrix<T> {
        assert!(!blocks.is_empty(), "hcat of nothing");
        let rows = blocks[0].rows;
        assert!(blocks.iter().all(|b| b.rows == rows), "hcat: row mismatch");
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for b in blocks {
                data.extend_from_slice(b.row(r));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Glue matrices top-to-bottom (all must share a column count).
    pub fn vcat(blocks: &[Matrix<T>]) -> Matrix<T> {
        assert!(!blocks.is_empty(), "vcat of nothing");
        let cols = blocks[0].cols;
        assert!(blocks.iter().all(|b| b.cols == cols), "vcat: col mismatch");
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            data.extend_from_slice(&b.data);
        }
        Matrix { rows, cols, data }
    }
}

impl Matrix<f64> {
    /// The `n × n` identity.
    pub fn identity(n: usize) -> Matrix<f64> {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Dense matrix-vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "matvec dimension mismatch");
        self.iter_rows()
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Dense matrix-matrix product (naive; baselines only).
    pub fn matmul(&self, other: &Matrix<f64>) -> Matrix<f64> {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        Matrix::from_fn(self.rows, other.cols, |i, j| {
            (0..self.cols)
                .map(|k| self.get(i, k) * other.get(k, j))
                .sum()
        })
    }

    /// Max absolute element difference against another matrix.
    pub fn max_abs_diff(&self, other: &Matrix<f64>) -> f64 {
        assert_eq!(self.dims(), other.dims());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl<T: Bytes> Bytes for Matrix<T> {
    fn bytes(&self) -> usize {
        self.data.bytes()
    }
}

impl<T: fmt::Display> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>8}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<i32> {
        // 0 1 2
        // 3 4 5
        Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as i32)
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.dims(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        assert_eq!(*m.get(1, 2), 5);
        assert_eq!(m.row(1), &[3, 4, 5]);
        assert_eq!(m.col(1), vec![1, 4]);
    }

    #[test]
    #[should_panic(expected = "matrix data length")]
    fn from_vec_checks_len() {
        let _ = Matrix::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn get_bounds_checked() {
        let m = sample();
        let _ = m.get(2, 0);
    }

    #[test]
    fn set_and_row_mut() {
        let mut m = sample();
        m.set(0, 0, 9);
        m.row_mut(1)[2] = 7;
        assert_eq!(*m.get(0, 0), 9);
        assert_eq!(*m.get(1, 2), 7);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = sample();
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[3, 4, 5]);
        assert_eq!(m.row(1), &[0, 1, 2]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[0, 1, 2]);
    }

    #[test]
    fn ranges_and_cat_roundtrip() {
        let m = sample();
        let left = m.col_range(0, 1);
        let right = m.col_range(1, 3);
        assert_eq!(Matrix::hcat(&[left, right]), m);
        let top = m.row_range(0, 1);
        let bottom = m.row_range(1, 2);
        assert_eq!(Matrix::vcat(&[top, bottom]), m);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(*m.transpose().get(2, 1), 5);
    }

    #[test]
    fn map_and_filled() {
        let m = sample().map(|x| x * 2);
        assert_eq!(*m.get(1, 1), 8);
        let f = Matrix::filled(2, 2, 1.0f64);
        assert_eq!(f.as_slice(), &[1.0; 4]);
    }

    #[test]
    fn identity_and_matvec() {
        let i = Matrix::identity(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
    }

    #[test]
    fn max_abs_diff_detects() {
        let a = Matrix::identity(2);
        let mut b = Matrix::identity(2);
        b.set(0, 1, 0.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    fn bytes_accounts_payload() {
        use crate::bytes::Bytes;
        let m = Matrix::filled(2, 3, 0f64);
        assert_eq!(m.bytes(), 48);
    }

    #[test]
    fn display_renders() {
        let s = format!("{}", sample());
        assert!(s.contains('0') && s.contains('5'));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn iter_rows_yields_all() {
        let m = sample();
        let rows: Vec<&[i32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[0, 1, 2]);
    }
}
