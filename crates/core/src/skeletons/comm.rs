//! Communication skeletons: bulk data movement between parts.
//!
//! The paper divides these into *regular* movements, where the routing is a
//! fixed function of the index space (`rotate`, `rotate_row`, `rotate_col`,
//! `brdcast`, `apply_brdcast`), and *irregular* movements, where the
//! destination is computed per index (`send`, `fetch`). All of them are
//! synchronous permutation phases on the simulated machine: the
//! participating processors meet, the routes are delivered in bulk, and the
//! group leaves together ([`scl_machine::Machine::permute`]).
//!
//! Many-to-one `send` accumulates a vector at each destination. The paper
//! leaves the element order unspecified ("the underlying implementation is
//! nondeterministic"); this implementation uses ascending source index,
//! which callers must treat as unspecified — there is a property test that
//! only checks multiset equality, and `scl-apps` code never relies on the
//! order.

use crate::array::ParArray;
use crate::bytes::Bytes;
use crate::ctx::Scl;
use scl_machine::{ProcId, Work};
use std::time::Instant;

/// Normalise a possibly-negative rotation distance into `0..n`.
fn norm(k: isize, n: usize) -> usize {
    debug_assert!(n > 0);
    k.rem_euclid(n as isize) as usize
}

impl Scl {
    /// Regular rotation: the paper's
    /// `rotate k A = ⟨i ↦ A[(i+k) mod n]⟩`.
    ///
    /// `rotate 0` is the identity and costs nothing (the communication
    /// algebra's `rotate 0 → id` law holds by construction).
    #[must_use]
    pub fn rotate<T: Clone + Bytes>(&mut self, k: isize, a: &ParArray<T>) -> ParArray<T> {
        let n = a.len();
        if n == 0 {
            return a.clone();
        }
        let k = norm(k, n);
        if k == 0 {
            return a.clone();
        }
        let routes: Vec<(ProcId, ProcId, usize)> = (0..n)
            .map(|i| {
                let src = (i + k) % n;
                (a.procs()[src], a.procs()[i], a.part(src).bytes())
            })
            .collect();
        self.machine.permute(a.procs(), &routes);
        let parts: Vec<T> = (0..n).map(|i| a.part((i + k) % n).clone()).collect();
        ParArray::like(a, parts)
    }

    /// Rotate every row of a 2-D grid: the paper's
    /// `rotate_row df A = ⟨(i,j) ↦ A[i, (j + df i) mod cols]⟩`.
    #[must_use]
    pub fn rotate_row<T: Clone + Bytes>(
        &mut self,
        df: impl Fn(usize) -> isize,
        a: &ParArray<T>,
    ) -> ParArray<T> {
        let (rows, cols) = a.shape().dims2();
        let src_of = |i: usize, j: usize| -> usize {
            let jj = norm(df(i), cols.max(1));
            i * cols + (j + jj) % cols
        };
        self.rotate_grid(a, rows, cols, src_of)
    }

    /// Rotate every column of a 2-D grid: the paper's
    /// `rotate_col df A = ⟨(i,j) ↦ A[(i + df j) mod rows, j]⟩`.
    #[must_use]
    pub fn rotate_col<T: Clone + Bytes>(
        &mut self,
        df: impl Fn(usize) -> isize,
        a: &ParArray<T>,
    ) -> ParArray<T> {
        let (rows, cols) = a.shape().dims2();
        let src_of = |i: usize, j: usize| -> usize {
            let ii = norm(df(j), rows.max(1));
            ((i + ii) % rows) * cols + j
        };
        self.rotate_grid(a, rows, cols, src_of)
    }

    fn rotate_grid<T: Clone + Bytes>(
        &mut self,
        a: &ParArray<T>,
        rows: usize,
        cols: usize,
        src_of: impl Fn(usize, usize) -> usize,
    ) -> ParArray<T> {
        let mut routes = Vec::with_capacity(rows * cols);
        let mut parts = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                let dst = i * cols + j;
                let src = src_of(i, j);
                if src != dst {
                    routes.push((a.procs()[src], a.procs()[dst], a.part(src).bytes()));
                }
                parts.push(a.part(src).clone());
            }
        }
        if !routes.is_empty() {
            self.machine.permute(a.procs(), &routes);
        }
        ParArray::like(a, parts)
    }

    /// Shift without wraparound: part `i` receives part `i - k` (for
    /// `k > 0`), with `fill` entering at the boundary. The stencil
    /// workhorse (halo exchange).
    #[must_use]
    pub fn shift<T: Clone + Bytes>(&mut self, k: isize, a: &ParArray<T>, fill: &T) -> ParArray<T> {
        let n = a.len() as isize;
        let mut routes = Vec::new();
        let mut parts = Vec::with_capacity(a.len());
        for i in 0..n {
            let src = i - k;
            if src >= 0 && src < n {
                let (si, di) = (src as usize, i as usize);
                if si != di {
                    routes.push((a.procs()[si], a.procs()[di], a.part(si).bytes()));
                }
                parts.push(a.part(src as usize).clone());
            } else {
                parts.push(fill.clone());
            }
        }
        if !routes.is_empty() {
            self.machine.permute(a.procs(), &routes);
        }
        ParArray::like(a, parts)
    }

    /// Broadcast one value to all parts, pairing it with the local data:
    /// the paper's `brdcast a A = map (align_pair a) A`.
    #[must_use]
    pub fn brdcast<T, U>(&mut self, item: &T, a: &ParArray<U>) -> ParArray<(T, U)>
    where
        T: Clone + Bytes,
        U: Clone,
    {
        self.machine.broadcast(a.procs(), item.bytes());
        ParArray::like(
            a,
            a.parts()
                .iter()
                .map(|u| (item.clone(), u.clone()))
                .collect(),
        )
    }

    /// The paper's `applybrdcast f i A = brdcast (f A[i]) A`: apply `f` to
    /// the data on part `i` locally, broadcast the result to the group. The
    /// local work is charged per the context's measure mode.
    #[must_use]
    pub fn apply_brdcast<T, R>(
        &mut self,
        f: impl Fn(&T) -> R,
        i: usize,
        a: &ParArray<T>,
    ) -> ParArray<(R, T)>
    where
        T: Clone,
        R: Clone + Bytes,
    {
        let t0 = Instant::now();
        let r = f(a.part(i));
        let w = self.measured_work(t0.elapsed().as_secs_f64());
        self.charge_part(a, i, w, "apply_brdcast");
        self.machine.broadcast(a.procs(), r.bytes());
        ParArray::like(
            a,
            a.parts().iter().map(|x| (r.clone(), x.clone())).collect(),
        )
    }

    /// [`Scl::apply_brdcast`] with self-reported local work.
    #[must_use]
    pub fn apply_brdcast_costed<T, R>(
        &mut self,
        f: impl Fn(&T) -> (R, Work),
        i: usize,
        a: &ParArray<T>,
    ) -> ParArray<(R, T)>
    where
        T: Clone,
        R: Clone + Bytes,
    {
        let (r, w) = f(a.part(i));
        self.charge_part(a, i, w, "apply_brdcast");
        self.machine.broadcast(a.procs(), r.bytes());
        ParArray::like(
            a,
            a.parts().iter().map(|x| (r.clone(), x.clone())).collect(),
        )
    }

    /// Irregular send: `f(k)` names the destination indices of part `k`
    /// (one-to-many allowed). Destination `j` accumulates every part sent
    /// to it — *in unspecified order* (see module docs).
    #[must_use]
    pub fn send<T: Clone + Bytes>(
        &mut self,
        f: impl Fn(usize) -> Vec<usize>,
        a: &ParArray<T>,
    ) -> ParArray<Vec<T>> {
        let n = a.len();
        let mut routes = Vec::new();
        let mut inboxes: Vec<Vec<T>> = vec![Vec::new(); n];
        for k in 0..n {
            for j in f(k) {
                assert!(j < n, "send: destination {j} out of range ({n} parts)");
                if j != k {
                    routes.push((a.procs()[k], a.procs()[j], a.part(k).bytes()));
                }
                inboxes[j].push(a.part(k).clone());
            }
        }
        self.machine.permute(a.procs(), &routes);
        ParArray::like(a, inboxes)
    }

    /// Irregular fetch: part `i` pulls part `f(i)` (one-to-one or
    /// one-to-many sources; the paper notes `fetch` cannot express
    /// many-to-one).
    #[must_use]
    pub fn fetch<T: Clone + Bytes>(
        &mut self,
        f: impl Fn(usize) -> usize,
        a: &ParArray<T>,
    ) -> ParArray<T> {
        let n = a.len();
        let mut routes = Vec::new();
        let mut parts = Vec::with_capacity(n);
        for i in 0..n {
            let src = f(i);
            assert!(src < n, "fetch: source {src} out of range ({n} parts)");
            if src != i {
                routes.push((a.procs()[src], a.procs()[i], a.part(src).bytes()));
            }
            parts.push(a.part(src).clone());
        }
        self.machine.permute(a.procs(), &routes);
        ParArray::like(a, parts)
    }

    /// All-gather: every part receives the full sequence of parts (in part
    /// order). The data-parallel `allgather` of MPI.
    #[must_use]
    pub fn all_gather<T: Clone + Bytes>(&mut self, a: &ParArray<T>) -> ParArray<Vec<T>> {
        let per = a.parts().iter().map(Bytes::bytes).max().unwrap_or(0);
        self.machine.all_gather(a.procs(), per);
        let everything: Vec<T> = a.parts().to_vec();
        ParArray::like(a, (0..a.len()).map(|_| everything.clone()).collect())
    }

    /// All-reduce: `fold` whose result lands on *every* part (MPI's
    /// `allreduce`). `op` must be associative.
    ///
    /// # Panics
    /// Panics on an empty array.
    #[must_use]
    pub fn fold_all<T: Clone + Bytes>(
        &mut self,
        a: &ParArray<T>,
        op: impl Fn(&T, &T) -> T,
        combine: Work,
    ) -> ParArray<T> {
        assert!(!a.is_empty(), "fold_all of an empty ParArray is undefined");
        let bytes = a.parts().iter().map(Bytes::bytes).max().unwrap_or(0);
        self.machine.all_reduce(a.procs(), bytes, combine);
        let mut acc = a.part(0).clone();
        for x in &a.parts()[1..] {
            acc = op(&acc, x);
        }
        ParArray::like(a, vec![acc; a.len()])
    }

    /// Transpose a 2-D grid of parts: result part `(i, j)` is input part
    /// `(j, i)`. Requires a square grid (placement is preserved, data
    /// moves).
    #[must_use]
    pub fn transpose<T: Clone + Bytes>(&mut self, a: &ParArray<T>) -> ParArray<T> {
        let (rows, cols) = a.shape().dims2();
        assert_eq!(
            rows, cols,
            "transpose needs a square grid, got {rows}x{cols}"
        );
        let mut routes = Vec::new();
        let mut parts = Vec::with_capacity(a.len());
        for i in 0..rows {
            for j in 0..cols {
                let dst = i * cols + j;
                let src = j * cols + i;
                if src != dst {
                    routes.push((a.procs()[src], a.procs()[dst], a.part(src).bytes()));
                }
                parts.push(a.part(src).clone());
            }
        }
        if !routes.is_empty() {
            self.machine.permute(a.procs(), &routes);
        }
        ParArray::like(a, parts)
    }

    /// Rebalance a distributed sequence: redistribute the elements of the
    /// concatenated parts so every part holds a balanced (±1) contiguous
    /// block, preserving global order. The standard fix-up after skewing
    /// operations like hyperquicksort's pivot exchanges.
    #[must_use]
    pub fn balance<T: Clone + Bytes>(&mut self, a: &ParArray<Vec<T>>) -> ParArray<Vec<T>> {
        let p = a.len();
        if p == 0 {
            return a.clone();
        }
        let total: usize = a.parts().iter().map(Vec::len).sum();
        let targets = crate::partition::block_ranges(total, p);

        // Current global offset of each source part.
        let mut offsets = Vec::with_capacity(p);
        let mut acc = 0usize;
        for part in a.parts() {
            offsets.push(acc);
            acc += part.len();
        }

        // Route overlapping [src-range] x [dst-range] element spans.
        let elem_bytes = |v: &Vec<T>| if v.is_empty() { 0 } else { v.bytes() / v.len() };
        let mut routes = Vec::new();
        let mut parts: Vec<Vec<T>> = targets
            .iter()
            .map(|r| Vec::with_capacity(r.len()))
            .collect();
        for (src, part) in a.parts().iter().enumerate() {
            let s0 = offsets[src];
            for (dst, target) in targets.iter().enumerate() {
                let lo = s0.max(target.start);
                let hi = (s0 + part.len()).min(target.end);
                if lo < hi {
                    parts[dst].extend(part[lo - s0..hi - s0].iter().cloned());
                    if src != dst {
                        routes.push((a.procs()[src], a.procs()[dst], (hi - lo) * elem_bytes(part)));
                    }
                }
            }
        }
        if !routes.is_empty() {
            self.machine.permute(a.procs(), &routes);
        }
        ParArray::like(a, parts)
    }

    /// Total exchange: part `i` holds one bucket per destination; after the
    /// exchange, part `i` holds bucket `i` *from* every source (bucket
    /// transpose). The backbone of sample-sort style algorithms.
    ///
    /// Charged **per route**: each cross-processor bucket pays for the
    /// bytes it actually ships
    /// ([`Machine::all_to_all_v`](scl_machine::Machine::all_to_all_v)),
    /// not `g·(g−1)` copies of the globally largest bucket — skewed
    /// exchanges (the common case after sampling-based bucketing) cost
    /// what they move.
    #[must_use]
    pub fn total_exchange<T: Clone + Bytes>(
        &mut self,
        a: &ParArray<Vec<Vec<T>>>,
    ) -> ParArray<Vec<Vec<T>>> {
        let n = a.len();
        let routes = total_exchange_routes(a);
        self.machine.all_to_all_v(a.procs(), &routes);
        let parts: Vec<Vec<Vec<T>>> = (0..n)
            .map(|i| (0..n).map(|k| a.part(k)[i].clone()).collect())
            .collect();
        ParArray::like(a, parts)
    }
}

/// Validate a total-exchange configuration and produce its route table:
/// one `(src, dst, bytes)` entry per non-empty cross-processor bucket (the
/// diagonal stays home, and an empty bucket ships no message at all).
///
/// # Panics
/// Panics if any part does not hold exactly one bucket per destination.
fn total_exchange_routes<T: Bytes>(a: &ParArray<Vec<Vec<T>>>) -> Vec<(ProcId, ProcId, usize)> {
    let n = a.len();
    let mut routes = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)));
    for (k, part) in a.parts().iter().enumerate() {
        assert_eq!(
            part.len(),
            n,
            "total_exchange: part {k} has {} buckets, need {n}",
            part.len()
        );
        for (i, bucket) in part.iter().enumerate() {
            if i != k && !bucket.is_empty() {
                routes.push((a.procs()[k], a.procs()[i], bucket.bytes()));
            }
        }
    }
    routes
}

// ---- owned (zero-copy) variants ---------------------------------------------
//
// Every borrowed communication skeleton has an owned twin that *consumes*
// its input and **moves** parts along the routes instead of cloning them.
// The simulated machine is charged identically — routes are computed from
// the borrowed view before any part moves — so the two forms are
// interchangeable for cost studies; `tests/owned_vs_borrowed.rs` holds
// outputs and `machine.metrics` equal under every `ExecPolicy`. The plan
// layer's barrier stages use the owned forms exclusively: a `BarrierFn`
// receives its array by value, so nothing in a fused chain clones part
// payloads between stages.

impl Scl {
    /// [`Scl::rotate`] consuming its input: parts **move** along the
    /// rotation, no clones (note the relaxed bound — `T` need not be
    /// `Clone`). Charged identically.
    #[must_use]
    pub fn rotate_owned<T: Bytes>(&mut self, k: isize, a: ParArray<T>) -> ParArray<T> {
        let n = a.len();
        if n == 0 {
            return a;
        }
        let k = norm(k, n);
        if k == 0 {
            return a;
        }
        let routes: Vec<(ProcId, ProcId, usize)> = (0..n)
            .map(|i| {
                let src = (i + k) % n;
                (a.procs()[src], a.procs()[i], a.part(src).bytes())
            })
            .collect();
        self.machine.permute(a.procs(), &routes);
        a.permute_owned(|i| (i + k) % n)
    }

    /// [`Scl::rotate_row`] consuming its input — parts move. Charged
    /// identically.
    #[must_use]
    pub fn rotate_row_owned<T: Bytes>(
        &mut self,
        df: impl Fn(usize) -> isize,
        a: ParArray<T>,
    ) -> ParArray<T> {
        let (rows, cols) = a.shape().dims2();
        let src_of = |i: usize, j: usize| -> usize {
            let jj = norm(df(i), cols.max(1));
            i * cols + (j + jj) % cols
        };
        self.rotate_grid_owned(a, rows, cols, src_of)
    }

    /// [`Scl::rotate_col`] consuming its input — parts move. Charged
    /// identically.
    #[must_use]
    pub fn rotate_col_owned<T: Bytes>(
        &mut self,
        df: impl Fn(usize) -> isize,
        a: ParArray<T>,
    ) -> ParArray<T> {
        let (rows, cols) = a.shape().dims2();
        let src_of = |i: usize, j: usize| -> usize {
            let ii = norm(df(j), rows.max(1));
            ((i + ii) % rows) * cols + j
        };
        self.rotate_grid_owned(a, rows, cols, src_of)
    }

    fn rotate_grid_owned<T: Bytes>(
        &mut self,
        a: ParArray<T>,
        rows: usize,
        cols: usize,
        src_of: impl Fn(usize, usize) -> usize,
    ) -> ParArray<T> {
        let mut routes = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                let dst = i * cols + j;
                let src = src_of(i, j);
                if src != dst {
                    routes.push((a.procs()[src], a.procs()[dst], a.part(src).bytes()));
                }
            }
        }
        if !routes.is_empty() {
            self.machine.permute(a.procs(), &routes);
        }
        a.permute_owned(|d| src_of(d / cols, d % cols))
    }

    /// [`Scl::shift`] consuming its input: surviving parts move, only the
    /// boundary clones `fill`. Charged identically.
    #[must_use]
    pub fn shift_owned<T: Clone + Bytes>(
        &mut self,
        k: isize,
        a: ParArray<T>,
        fill: &T,
    ) -> ParArray<T> {
        let n = a.len() as isize;
        let mut routes = Vec::new();
        for i in 0..n {
            let src = i - k;
            if src >= 0 && src < n && src != i {
                routes.push((
                    a.procs()[src as usize],
                    a.procs()[i as usize],
                    a.part(src as usize).bytes(),
                ));
            }
        }
        if !routes.is_empty() {
            self.machine.permute(a.procs(), &routes);
        }
        let (parts, procs, shape) = a.into_raw();
        let mut cells: Vec<Option<T>> = parts.into_iter().map(Some).collect();
        let out: Vec<T> = (0..n)
            .map(|i| {
                let src = i - k;
                if src >= 0 && src < n {
                    cells[src as usize]
                        .take()
                        .expect("shift sources are distinct")
                } else {
                    fill.clone()
                }
            })
            .collect();
        ParArray::from_raw(out, procs, shape)
    }

    /// [`Scl::brdcast`] consuming the array: local data moves into the
    /// pairs, only the broadcast item clones (it genuinely lands on every
    /// part). Charged identically.
    #[must_use]
    pub fn brdcast_owned<T, U>(&mut self, item: &T, a: ParArray<U>) -> ParArray<(T, U)>
    where
        T: Clone + Bytes,
    {
        self.machine.broadcast(a.procs(), item.bytes());
        a.map_into(|_, u| (item.clone(), u))
    }

    /// [`Scl::send`] consuming its input: each part **moves** to its last
    /// destination and clones only for the earlier ones (one-to-one
    /// routings clone nothing). Charged identically; inbox order is the
    /// same unspecified-but-deterministic ascending source order.
    #[must_use]
    pub fn send_owned<T: Clone + Bytes>(
        &mut self,
        f: impl Fn(usize) -> Vec<usize>,
        a: ParArray<T>,
    ) -> ParArray<Vec<T>> {
        let n = a.len();
        let mut routes = Vec::new();
        let mut dests: Vec<Vec<usize>> = Vec::with_capacity(n);
        for k in 0..n {
            let ds = f(k);
            for &j in &ds {
                assert!(j < n, "send: destination {j} out of range ({n} parts)");
                if j != k {
                    routes.push((a.procs()[k], a.procs()[j], a.part(k).bytes()));
                }
            }
            dests.push(ds);
        }
        self.machine.permute(a.procs(), &routes);
        let (parts, procs, shape) = a.into_raw();
        let mut inboxes: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        for (k, x) in parts.into_iter().enumerate() {
            if let Some((&last, init)) = dests[k].split_last() {
                for &j in init {
                    inboxes[j].push(x.clone());
                }
                inboxes[last].push(x);
            }
        }
        ParArray::from_raw(inboxes, procs, shape)
    }

    /// [`Scl::fetch`] consuming its input: each source moves to its last
    /// fetcher and clones only for additional ones (a permutation clones
    /// nothing). Charged identically.
    #[must_use]
    pub fn fetch_owned<T: Clone + Bytes>(
        &mut self,
        f: impl Fn(usize) -> usize,
        a: ParArray<T>,
    ) -> ParArray<T> {
        let n = a.len();
        let mut routes = Vec::new();
        for i in 0..n {
            let src = f(i);
            assert!(src < n, "fetch: source {src} out of range ({n} parts)");
            if src != i {
                routes.push((a.procs()[src], a.procs()[i], a.part(src).bytes()));
            }
        }
        self.machine.permute(a.procs(), &routes);
        a.reindex_owned(f)
    }

    /// [`Scl::balance`] consuming its input: elements **move** into their
    /// rebalanced parts (no per-element clones). Charged identically.
    #[must_use]
    pub fn balance_owned<T: Bytes>(&mut self, a: ParArray<Vec<T>>) -> ParArray<Vec<T>> {
        let p = a.len();
        if p == 0 {
            return a;
        }
        let total: usize = a.parts().iter().map(Vec::len).sum();
        let targets = crate::partition::block_ranges(total, p);

        let mut offsets = Vec::with_capacity(p);
        let mut acc = 0usize;
        for part in a.parts() {
            offsets.push(acc);
            acc += part.len();
        }

        let elem_bytes = |v: &Vec<T>| if v.is_empty() { 0 } else { v.bytes() / v.len() };
        let mut routes = Vec::new();
        for (src, part) in a.parts().iter().enumerate() {
            let s0 = offsets[src];
            for (dst, target) in targets.iter().enumerate() {
                let lo = s0.max(target.start);
                let hi = (s0 + part.len()).min(target.end);
                if lo < hi && src != dst {
                    routes.push((a.procs()[src], a.procs()[dst], (hi - lo) * elem_bytes(part)));
                }
            }
        }
        if !routes.is_empty() {
            self.machine.permute(a.procs(), &routes);
        }

        let (parts, procs, shape) = a.into_raw();
        let mut stream = parts.into_iter().flatten();
        let out: Vec<Vec<T>> = targets
            .iter()
            .map(|r| stream.by_ref().take(r.len()).collect())
            .collect();
        ParArray::from_raw(out, procs, shape)
    }

    /// [`Scl::total_exchange`] consuming its input: buckets **move** to
    /// their destinations (a pure permutation of `n²` bucket cells — zero
    /// clones), on the persistent pool
    /// ([`scl_exec::par_permute`]) when the cost model
    /// says the cell count justifies fanning out. Charged identically
    /// (per-route bucket bytes).
    #[must_use]
    pub fn total_exchange_owned<T: Clone + Bytes + Send>(
        &mut self,
        a: ParArray<Vec<Vec<T>>>,
    ) -> ParArray<Vec<Vec<T>>> {
        let n = a.len();
        let routes = total_exchange_routes(&a);
        self.machine.all_to_all_v(a.procs(), &routes);

        let (parts, procs, shape) = a.into_raw();
        // flatten to n*n bucket cells; destination cell (i, k) takes source
        // cell (k, i) — moving Vec headers, so the payload estimate for the
        // fan-out gate is pointer-sized, not the bucket contents
        let cells: Vec<Vec<T>> = parts.into_iter().flatten().collect();
        let src_of = |c: usize| -> usize {
            let (i, k) = (c / n.max(1), c % n.max(1));
            k * n + i
        };
        let (threads, grain) = self.comm_schedule(n * n, std::mem::size_of::<Vec<T>>());
        let shuffled: Vec<Vec<T>> = if threads <= 1 {
            let mut cells: Vec<Option<Vec<T>>> = cells.into_iter().map(Some).collect();
            (0..n * n)
                .map(|c| cells[src_of(c)].take().expect("bucket transpose is 1:1"))
                .collect()
        } else {
            let table: Vec<usize> = (0..n * n).map(src_of).collect();
            let pool = self.fused_pool(threads);
            scl_exec::par_permute(pool, cells, &table, threads, grain)
        };
        let mut out = Vec::with_capacity(n);
        let mut it = shuffled.into_iter();
        for _ in 0..n {
            out.push(it.by_ref().take(n).collect());
        }
        ParArray::from_raw(out, procs, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scl_machine::{CostModel, Machine, Time, Topology};

    fn unit_ctx(n: usize) -> Scl {
        Scl::new(Machine::new(
            Topology::FullyConnected { procs: n },
            CostModel::unit(),
        ))
    }

    #[test]
    fn rotate_matches_paper_definition() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![10, 20, 30, 40]);
        // result[i] = a[(i+1) mod 4]
        let r = s.rotate(1, &a);
        assert_eq!(r.to_vec(), vec![20, 30, 40, 10]);
        assert_eq!(s.machine.metrics.messages, 4);
    }

    #[test]
    fn rotate_negative_and_wrap() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![10, 20, 30, 40]);
        assert_eq!(s.rotate(-1, &a).to_vec(), vec![40, 10, 20, 30]);
        assert_eq!(s.rotate(5, &a).to_vec(), s.rotate(1, &a).to_vec());
    }

    #[test]
    fn rotate_zero_is_free_identity() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![1, 2, 3, 4]);
        let r = s.rotate(0, &a);
        assert_eq!(r, a);
        assert_eq!(s.makespan(), Time::ZERO);
        assert_eq!(s.machine.metrics.messages, 0);
    }

    #[test]
    fn rotate_composes_additively() {
        let mut s = unit_ctx(5);
        let a = ParArray::from_parts(vec![1, 2, 3, 4, 5]);
        let first = s.rotate(3, &a);
        let twice = s.rotate(2, &first);
        let once = s.rotate(3 + 2, &a);
        assert_eq!(twice.to_vec(), once.to_vec());
    }

    #[test]
    fn rotate_row_per_row_distance() {
        let mut s = unit_ctx(6);
        // 2x3 grid: [0 1 2; 3 4 5]
        let a = ParArray::from_grid(2, 3, (0..6).collect::<Vec<i32>>());
        // row 0 unrotated, row 1 rotated by 1
        let r = s.rotate_row(|i| i as isize, &a);
        assert_eq!(r.to_vec(), vec![0, 1, 2, 4, 5, 3]);
    }

    #[test]
    fn rotate_col_per_col_distance() {
        let mut s = unit_ctx(6);
        // 3x2 grid: [0 1; 2 3; 4 5]
        let a = ParArray::from_grid(3, 2, (0..6).collect::<Vec<i32>>());
        let r = s.rotate_col(|j| j as isize, &a);
        // col 0 unrotated; col 1 rotated down by... A[(i+1) mod 3, 1]
        assert_eq!(r.to_vec(), vec![0, 3, 2, 5, 4, 1]);
    }

    #[test]
    fn shift_fills_boundary() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![1, 2, 3, 4]);
        assert_eq!(s.shift(1, &a, &0).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(s.shift(-1, &a, &9).to_vec(), vec![2, 3, 4, 9]);
        assert_eq!(s.shift(0, &a, &9).to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn brdcast_pairs_item_with_parts() {
        let mut s = unit_ctx(3);
        let a = ParArray::from_parts(vec![1, 2, 3]);
        let r = s.brdcast(&99, &a);
        assert_eq!(r.to_vec(), vec![(99, 1), (99, 2), (99, 3)]);
        assert_eq!(s.machine.metrics.broadcasts, 1);
    }

    #[test]
    fn apply_brdcast_uses_part_i() {
        let mut s = unit_ctx(3);
        let a = ParArray::from_parts(vec![10, 20, 30]);
        let r = s.apply_brdcast(|x| x + 1, 1, &a);
        assert_eq!(r.to_vec(), vec![(21, 10), (21, 20), (21, 30)]);
    }

    #[test]
    fn apply_brdcast_costed_charges_source() {
        let mut s = unit_ctx(3);
        let a = ParArray::from_parts(vec![10u64, 20, 30]);
        let _ = s.apply_brdcast_costed(|x| (*x, Work::cmps(7)), 2, &a);
        assert_eq!(s.machine.metrics.cmps, 7);
    }

    #[test]
    fn fetch_pulls_by_source_index() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![10, 20, 30, 40]);
        // hypercube partner pattern, dim 0
        let r = s.fetch(|i| i ^ 1, &a);
        assert_eq!(r.to_vec(), vec![20, 10, 40, 30]);
        assert_eq!(s.machine.metrics.messages, 4);
    }

    #[test]
    fn fetch_one_to_many() {
        let mut s = unit_ctx(3);
        let a = ParArray::from_parts(vec![7, 8, 9]);
        let r = s.fetch(|_| 0, &a);
        assert_eq!(r.to_vec(), vec![7, 7, 7]);
        // only two real messages (0 -> 1, 0 -> 2)
        assert_eq!(s.machine.metrics.messages, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fetch_bad_source_panics() {
        let mut s = unit_ctx(2);
        let a = ParArray::from_parts(vec![1, 2]);
        let _ = s.fetch(|_| 5, &a);
    }

    #[test]
    fn send_many_to_one_accumulates() {
        let mut s = unit_ctx(3);
        let a = ParArray::from_parts(vec![10, 20, 30]);
        // everyone sends to part 0
        let r = s.send(|_| vec![0], &a);
        assert_eq!(r.part(0).len(), 3);
        assert!(r.part(1).is_empty());
        let mut got = r.part(0).clone();
        got.sort();
        assert_eq!(got, vec![10, 20, 30]);
    }

    #[test]
    fn send_one_to_many_duplicates() {
        let mut s = unit_ctx(3);
        let a = ParArray::from_parts(vec![5, 6, 7]);
        let r = s.send(|k| if k == 0 { vec![1, 2] } else { vec![] }, &a);
        assert_eq!(r.part(1), &vec![5]);
        assert_eq!(r.part(2), &vec![5]);
        assert!(r.part(0).is_empty());
    }

    #[test]
    fn total_exchange_transposes_buckets() {
        let mut s = unit_ctx(2);
        let a = ParArray::from_parts(vec![
            vec![vec![1], vec![2]], // part 0's buckets for 0 and 1
            vec![vec![3], vec![4]], // part 1's buckets for 0 and 1
        ]);
        let r = s.total_exchange(&a);
        assert_eq!(r.part(0), &vec![vec![1], vec![3]]);
        assert_eq!(r.part(1), &vec![vec![2], vec![4]]);
        assert_eq!(s.machine.metrics.exchanges, 1);
    }

    #[test]
    #[should_panic(expected = "buckets")]
    fn total_exchange_checks_bucket_count() {
        let mut s = unit_ctx(2);
        let a = ParArray::from_parts(vec![vec![vec![1]], vec![vec![2], vec![3]]]);
        let _ = s.total_exchange(&a);
    }

    #[test]
    fn all_gather_replicates_everything() {
        let mut s = unit_ctx(3);
        let a = ParArray::from_parts(vec![1, 2, 3]);
        let g = s.all_gather(&a);
        for part in g.parts() {
            assert_eq!(part, &vec![1, 2, 3]);
        }
        assert_eq!(s.machine.metrics.gathers, 1);
    }

    #[test]
    fn fold_all_lands_on_every_part() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![1i64, 2, 3, 4]);
        let r = s.fold_all(&a, |x, y| x + y, Work::NONE);
        assert_eq!(r.to_vec(), vec![10, 10, 10, 10]);
        assert_eq!(s.machine.metrics.reductions, 1);
    }

    #[test]
    fn fold_all_matches_fold() {
        let mut s = unit_ctx(5);
        let a = ParArray::from_parts(vec![3i64, 1, 4, 1, 5]);
        let f = s.fold(&a, |x, y| x + y);
        let fa = s.fold_all(&a, |x, y| x + y, Work::NONE);
        assert!(fa.parts().iter().all(|x| *x == f));
    }

    #[test]
    fn transpose_square_grid() {
        let mut s = unit_ctx(9);
        let a = ParArray::from_grid(3, 3, (0..9).collect::<Vec<i32>>());
        let t = s.transpose(&a);
        assert_eq!(t.to_vec(), vec![0, 3, 6, 1, 4, 7, 2, 5, 8]);
        // transpose twice = identity
        let tt = s.transpose(&t);
        assert_eq!(tt.to_vec(), a.to_vec());
    }

    #[test]
    #[should_panic(expected = "square grid")]
    fn transpose_rejects_rectangles() {
        let mut s = unit_ctx(6);
        let a = ParArray::from_grid(2, 3, (0..6).collect::<Vec<i32>>());
        let _ = s.transpose(&a);
    }

    #[test]
    fn balance_evens_out_skew() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![
            vec![1i64, 2, 3, 4, 5, 6, 7],
            vec![],
            vec![8],
            vec![9, 10],
        ]);
        let b = s.balance(&a);
        let sizes: Vec<usize> = b.parts().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        // global order preserved
        let flat: Vec<i64> = b.parts().iter().flatten().copied().collect();
        assert_eq!(flat, (1..=10).collect::<Vec<_>>());
        assert!(s.machine.metrics.messages > 0);
    }

    #[test]
    fn balance_is_idempotent_and_free_when_balanced() {
        let mut s = unit_ctx(2);
        let a = ParArray::from_parts(vec![vec![1i64, 2], vec![3, 4]]);
        let b = s.balance(&a);
        assert_eq!(b, a);
        assert_eq!(s.machine.metrics.messages, 0);
    }

    #[test]
    fn balance_empty_everything() {
        let mut s = unit_ctx(3);
        let a: ParArray<Vec<i64>> = ParArray::from_parts(vec![vec![], vec![], vec![]]);
        let b = s.balance(&a);
        assert!(b.parts().iter().all(Vec::is_empty));
    }

    #[test]
    fn total_exchange_charges_per_route_bucket_bytes() {
        // 2 procs, unit model, fully connected (1 hop). Buckets:
        //   part 0: [len 1 (stays), len 2 -> proc 1]   (i64 = 8 bytes each)
        //   part 1: [len 3 -> proc 0, len 1 (stays)]
        // Routes: (0 -> 1, 16 B) and (1 -> 0, 24 B).
        // ptp = t_msg(1) + t_hop(1) + bytes; each endpoint sources one route
        // and sinks the other, so the phase is max(1+1+16, 1+1+24) = 26 s.
        let mut s = unit_ctx(2);
        let a = ParArray::from_parts(vec![
            vec![vec![1i64], vec![2, 3]],
            vec![vec![4, 5, 6], vec![7]],
        ]);
        let r = s.total_exchange(&a);
        assert_eq!(r.part(0), &vec![vec![1], vec![4, 5, 6]]);
        assert_eq!(s.makespan().as_secs(), 26.0);
        assert_eq!(s.machine.metrics.exchanges, 1);
        assert_eq!(s.machine.metrics.messages, 2);
        assert_eq!(s.machine.metrics.bytes, 40);

        // the old uniform charge would have been phase(max bucket = 24 B)
        // per pair: (1 + 1 + 24) * (2-1) = 26 only because symmetric; with
        // a skewed third proc the saving is strict:
        let mut s = unit_ctx(3);
        let a = ParArray::from_parts(vec![
            vec![vec![], vec![1i64], vec![]],
            vec![vec![], vec![], vec![]],
            vec![vec![], vec![], vec![]],
        ]);
        let _ = s.total_exchange(&a);
        // single real route 0 -> 1 of 8 bytes: 1 + 1 + 8 = 10 s
        assert_eq!(s.makespan().as_secs(), 10.0);
    }

    #[test]
    fn owned_total_exchange_matches_borrowed() {
        let a = ParArray::from_parts(vec![
            vec![vec![1i64], vec![2, 3]],
            vec![vec![4, 5, 6], vec![]],
        ]);
        let mut s1 = unit_ctx(2);
        let borrowed = s1.total_exchange(&a);
        let mut s2 = unit_ctx(2);
        let owned = s2.total_exchange_owned(a);
        assert_eq!(owned, borrowed);
        assert_eq!(s1.machine.metrics, s2.machine.metrics);
        assert_eq!(s1.makespan(), s2.makespan());
    }

    #[test]
    fn owned_rotate_moves_non_clone_parts() {
        // rotate_owned needs no Clone bound at all
        #[derive(Debug, PartialEq)]
        struct Heavy(Vec<u8>);
        impl Bytes for Heavy {
            fn bytes(&self) -> usize {
                self.0.len()
            }
        }
        let mut s = unit_ctx(3);
        let a = ParArray::from_parts((0..3).map(|i| Heavy(vec![i; 4])).collect());
        let r = s.rotate_owned(1, a);
        assert_eq!(
            r.parts(),
            &[Heavy(vec![1; 4]), Heavy(vec![2; 4]), Heavy(vec![0; 4])]
        );
        assert_eq!(s.machine.metrics.messages, 3);
    }

    #[test]
    fn owned_shift_and_fetch_match_borrowed() {
        let a = ParArray::from_parts(vec![10i64, 20, 30, 40]);
        let mut s1 = unit_ctx(4);
        let mut s2 = unit_ctx(4);
        assert_eq!(s1.shift(1, &a, &0), s2.shift_owned(1, a.clone(), &0));
        assert_eq!(
            s1.fetch(|i| i ^ 1, &a),
            s2.fetch_owned(|i| i ^ 1, a.clone())
        );
        // one-to-many fetch clones only the duplicates
        assert_eq!(s1.fetch(|_| 0, &a), s2.fetch_owned(|_| 0, a.clone()));
        assert_eq!(s1.machine.metrics, s2.machine.metrics);
        assert_eq!(s1.makespan(), s2.makespan());
    }

    #[test]
    fn owned_send_and_balance_match_borrowed() {
        let mut s1 = unit_ctx(3);
        let mut s2 = unit_ctx(3);
        let a = ParArray::from_parts(vec![5i64, 6, 7]);
        let f = |k: usize| if k == 0 { vec![1, 2] } else { vec![0] };
        assert_eq!(s1.send(f, &a), s2.send_owned(f, a.clone()));

        let skew = ParArray::from_parts(vec![vec![1i64, 2, 3, 4, 5], vec![], vec![6]]);
        assert_eq!(s1.balance(&skew), s2.balance_owned(skew.clone()));
        assert_eq!(s1.machine.metrics, s2.machine.metrics);
        assert_eq!(s1.makespan(), s2.makespan());
    }

    #[test]
    fn comm_on_subgroup_charges_subgroup() {
        let mut s = unit_ctx(8);
        let a = ParArray::with_placement(vec![1, 2], vec![6, 7]);
        let _ = s.rotate(1, &a);
        assert_eq!(s.machine.clocks.get(0), Time::ZERO);
        assert!(s.machine.clocks.get(6) > Time::ZERO);
        assert!(s.machine.clocks.get(7) > Time::ZERO);
    }
}
