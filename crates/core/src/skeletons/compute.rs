//! Computational skeletons: control-flow coordination.
//!
//! The paper's §2.3: `farm` (simplest data parallelism), `SPMD` (stages of
//! ⟨global, local⟩ operation pairs whose composition models barrier
//! synchronisation), `iterUntil` / `iterFor` (iteration), plus a generic
//! divide-and-conquer `dc` built from `split` / `combine` — the nested
//! parallel structure hyperquicksort needs.

use crate::array::ParArray;
use crate::bytes::Bytes;
use crate::ctx::Scl;
use crate::partition::Pattern;
use scl_machine::Work;

/// A boxed local operation of an SPMD stage: flat sequential code applied
/// per part with its index, reporting the work it performed.
pub type LocalOp<'a, T> = Box<dyn Fn(usize, &T) -> (T, Work) + Sync + 'a>;

/// A boxed global operation of an SPMD stage: a whole-configuration
/// transformation that may use any skeleton on the context.
pub type GlobalOp<'a, T> = Box<dyn FnMut(&mut Scl, ParArray<T>) -> ParArray<T> + 'a>;

/// A pipeline stage: a sequential transformation reporting its own work.
pub type PipeStageFn<'a, T> = &'a (dyn Fn(&T) -> (T, Work) + Sync);

/// One stage of an SPMD computation: a *local* operation farmed to every
/// part, then a *global* (communication/synchronisation) operation over the
/// whole configuration. The paper writes a stage as the pair `⟨gf, lf⟩` and
/// defines `SPMD ((gf, lf) : fs) = SPMD fs ∘ gf ∘ imap lf`.
pub struct SpmdStage<'a, T> {
    /// Display label used in traces.
    pub label: &'static str,
    /// Local operation: flat sequential code, applied to each part with its
    /// index; returns the new part and the work it performed.
    pub local: LocalOp<'a, T>,
    /// Global operation over the whole configuration (may use any skeleton
    /// on the context).
    pub global: GlobalOp<'a, T>,
}

impl<'a, T: Clone> SpmdStage<'a, T> {
    /// A full ⟨global, local⟩ stage.
    pub fn new(
        label: &'static str,
        local: impl Fn(usize, &T) -> (T, Work) + Sync + 'a,
        global: impl FnMut(&mut Scl, ParArray<T>) -> ParArray<T> + 'a,
    ) -> SpmdStage<'a, T> {
        SpmdStage {
            label,
            local: Box::new(local),
            global: Box::new(global),
        }
    }

    /// A stage with only a local operation (global = identity).
    pub fn local_only(
        label: &'static str,
        local: impl Fn(usize, &T) -> (T, Work) + Sync + 'a,
    ) -> SpmdStage<'a, T> {
        SpmdStage {
            label,
            local: Box::new(local),
            global: Box::new(|_, d| d),
        }
    }

    /// A stage with only a global operation (local = identity, no work).
    pub fn global_only(
        label: &'static str,
        global: impl FnMut(&mut Scl, ParArray<T>) -> ParArray<T> + 'a,
    ) -> SpmdStage<'a, T> {
        SpmdStage {
            label,
            local: Box::new(|_, x: &T| (x.clone(), Work::NONE)),
            global: Box::new(global),
        }
    }
}

impl Scl {
    /// The paper's `farm f env`: apply `f env` to every part, the
    /// environment being common data shared by all processes.
    #[must_use]
    pub fn farm<E, T, R>(
        &mut self,
        f: impl Fn(&E, &T) -> R + Sync,
        env: &E,
        a: &ParArray<T>,
    ) -> ParArray<R>
    where
        E: Sync,
        T: Sync,
        R: Send,
    {
        self.map(a, |x| f(env, x))
    }

    /// [`Scl::farm`] with self-reported work.
    #[must_use]
    pub fn farm_costed<E, T, R>(
        &mut self,
        f: impl Fn(&E, &T) -> (R, Work) + Sync,
        env: &E,
        a: &ParArray<T>,
    ) -> ParArray<R>
    where
        E: Sync,
        T: Sync,
        R: Send,
    {
        self.map_costed(a, |x| f(env, x))
    }

    /// Run a sequence of SPMD stages over a configuration. Between each
    /// local phase and its global phase, the configuration's processor
    /// group barrier-synchronises — the paper: "the composition operator
    /// models the behaviour of barrier synchronisation".
    #[must_use]
    pub fn spmd<T>(&mut self, stages: Vec<SpmdStage<'_, T>>, mut data: ParArray<T>) -> ParArray<T>
    where
        T: Sync + Send,
    {
        for mut stage in stages {
            let local = &stage.local;
            data = self.imap_costed(&data, |i, x| local(i, x));
            self.machine.barrier_group(data.procs());
            data = (stage.global)(self, data);
        }
        data
    }

    /// The paper's `iterUntil iterSolve finalSolve con x`: apply
    /// `iter_solve` until `con` holds, then apply `final_solve`.
    pub fn iter_until<X>(
        &mut self,
        mut iter_solve: impl FnMut(&mut Scl, X) -> X,
        final_solve: impl FnOnce(&mut Scl, X) -> X,
        con: impl Fn(&X) -> bool,
        mut x: X,
    ) -> X {
        while !con(&x) {
            x = iter_solve(self, x);
        }
        final_solve(self, x)
    }

    /// The paper's `iterFor terminator iterSolve x`: a counted loop,
    /// passing the iteration number to the body.
    pub fn iter_for<X>(
        &mut self,
        terminator: usize,
        mut iter_solve: impl FnMut(&mut Scl, usize, X) -> X,
        mut x: X,
    ) -> X {
        for i in 0..terminator {
            x = iter_solve(self, i, x);
        }
        x
    }

    /// Apply `f` to each subgroup of a nested configuration. Groups are
    /// processed one after another on the host, but each touches only its
    /// own processors' clocks, so virtual time behaves as if the groups ran
    /// concurrently — which is exactly the paper's nested-parallelism
    /// semantics for `map` over a nested `ParArray`.
    #[must_use]
    pub fn map_groups<T, R>(
        &mut self,
        nested: ParArray<ParArray<T>>,
        f: &mut dyn FnMut(&mut Scl, ParArray<T>) -> ParArray<R>,
    ) -> ParArray<ParArray<R>> {
        let (groups, leaders, _) = nested.into_raw();
        let mut out = Vec::with_capacity(groups.len());
        for g in groups {
            out.push(f(self, g));
        }
        ParArray::with_placement(out, leaders)
    }

    /// Task-parallel pipeline: stage `s` lives on processor `s`; items
    /// stream through the stages, each stage reporting its own work. The
    /// per-processor clocks produce the classic pipeline timing for free:
    /// stage `s` starts item `j` only once it has finished item `j-1`
    /// *and* item `j` has arrived from stage `s-1` — so with many items
    /// the predicted makespan approaches
    /// `(items + stages - 1) · max_stage_time`, not the sequential
    /// `items · total_time`.
    ///
    /// This is the "parallel composition of concurrent tasks" extension
    /// the paper's conclusion sketches on top of the data-parallel core.
    ///
    /// # Panics
    /// Panics if the machine has fewer processors than stages.
    pub fn pipeline<T: Clone + Bytes>(
        &mut self,
        stages: &[PipeStageFn<'_, T>],
        items: Vec<T>,
    ) -> Vec<T> {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        self.check_fits(stages.len());
        let mut out = Vec::with_capacity(items.len());
        for mut x in items {
            for (s, stage) in stages.iter().enumerate() {
                if s > 0 {
                    // hand the item to the next stage's processor
                    self.machine.send(s - 1, s, x.bytes());
                }
                let (next, w) = stage(&x);
                self.machine.compute(s, w, "pipeline stage");
                x = next;
            }
            out.push(x);
        }
        // the pipeline drains when the last stage finishes its last item
        out
    }

    /// Generic divide-and-conquer over a configuration:
    ///
    /// 1. if `is_base` holds (or the group is too small to divide), apply
    ///    `base`;
    /// 2. otherwise apply `step` (the pre-division work — e.g.
    ///    hyperquicksort's pivot/exchange phase), `split` into `branches`
    ///    groups, recurse into each, and `combine`.
    #[must_use]
    pub fn dc<T>(
        &mut self,
        data: ParArray<T>,
        branches: usize,
        is_base: &dyn Fn(&ParArray<T>) -> bool,
        base: &mut dyn FnMut(&mut Scl, ParArray<T>) -> ParArray<T>,
        step: &mut dyn FnMut(&mut Scl, ParArray<T>) -> ParArray<T>,
    ) -> ParArray<T> {
        assert!(branches >= 2, "dc needs at least 2 branches");
        if is_base(&data) || data.len() < branches {
            return base(self, data);
        }
        let data = step(self, data);
        let groups = self.split(Pattern::Block(branches), data);
        let solved = self.map_groups(groups, &mut |scl, g| {
            scl.dc(g, branches, is_base, base, step)
        });
        self.combine(solved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scl_machine::{CostModel, Machine, Time, Topology};

    fn unit_ctx(n: usize) -> Scl {
        Scl::new(Machine::new(
            Topology::FullyConnected { procs: n },
            CostModel::unit(),
        ))
    }

    #[test]
    fn farm_shares_environment() {
        let mut s = unit_ctx(3);
        let env = 100;
        let a = ParArray::from_parts(vec![1, 2, 3]);
        let r = s.farm(|e, x| e + x, &env, &a);
        assert_eq!(r.to_vec(), vec![101, 102, 103]);
    }

    #[test]
    fn farm_costed_charges() {
        let mut s = unit_ctx(2);
        let a = ParArray::from_parts(vec![1u64, 2]);
        let _ = s.farm_costed(|_, x| (*x, Work::flops(*x)), &(), &a);
        assert_eq!(s.machine.metrics.flops, 3);
    }

    #[test]
    fn spmd_runs_local_then_global() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![1, 2, 3, 4]);
        let stages = vec![SpmdStage::new(
            "double-then-rotate",
            |_, x: &i32| (x * 2, Work::cmps(1)),
            |scl: &mut Scl, d: ParArray<i32>| scl.rotate(1, &d),
        )];
        let r = s.spmd(stages, a);
        assert_eq!(r.to_vec(), vec![4, 6, 8, 2]);
        // one group barrier per stage
        assert_eq!(s.machine.metrics.group_barriers, 1);
        assert_eq!(s.machine.metrics.cmps, 4);
    }

    #[test]
    fn spmd_multi_stage_barriers() {
        let mut s = unit_ctx(2);
        let a = ParArray::from_parts(vec![0, 0]);
        let stages: Vec<SpmdStage<'_, i32>> = vec![
            SpmdStage::local_only("inc", |_, x| (x + 1, Work::NONE)),
            SpmdStage::local_only("inc", |_, x| (x + 1, Work::NONE)),
            SpmdStage::local_only("inc", |_, x| (x + 1, Work::NONE)),
        ];
        let r = s.spmd(stages, a);
        assert_eq!(r.to_vec(), vec![3, 3]);
        assert_eq!(s.machine.metrics.group_barriers, 3);
    }

    #[test]
    fn iter_until_stops_on_condition() {
        let mut s = unit_ctx(1);
        let out = s.iter_until(|_, x: i32| x * 2, |_, x| x + 1, |x| *x >= 16, 1);
        assert_eq!(out, 17); // 1→2→4→8→16, then final +1
    }

    #[test]
    fn iter_until_condition_checked_before_first() {
        let mut s = unit_ctx(1);
        let out = s.iter_until(|_, x: i32| x * 2, |_, x| x, |x| *x >= 0, 5);
        assert_eq!(out, 5); // body never runs
    }

    #[test]
    fn iter_for_passes_counter() {
        let mut s = unit_ctx(1);
        let out = s.iter_for(
            4,
            |_, i, acc: Vec<usize>| {
                let mut acc = acc;
                acc.push(i);
                acc
            },
            vec![],
        );
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn map_groups_isolates_clocks() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![1u64, 2, 3, 4]);
        let groups = s.split(Pattern::Block(2), a);
        let out = s.map_groups(groups, &mut |scl, g| {
            scl.map_costed(&g, |x| (*x, Work::cmps(*x)))
        });
        // group 0 = parts {1,2} on procs {0,1}; group 1 = {3,4} on {2,3}
        assert_eq!(s.machine.clocks.get(0).as_secs(), 1.0);
        assert_eq!(s.machine.clocks.get(3).as_secs(), 4.0);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn pipeline_computes_stage_composition() {
        let mut s = unit_ctx(3);
        let add1: &(dyn Fn(&i64) -> (i64, Work) + Sync) = &|x| (x + 1, Work::flops(1));
        let dbl: &(dyn Fn(&i64) -> (i64, Work) + Sync) = &|x| (x * 2, Work::flops(1));
        let neg: &(dyn Fn(&i64) -> (i64, Work) + Sync) = &|x| (-x, Work::flops(1));
        let out = s.pipeline(&[add1, dbl, neg], vec![1, 2, 3]);
        assert_eq!(out, vec![-4, -6, -8]);
    }

    #[test]
    fn pipeline_overlaps_stages() {
        // Two stages of equal weight, many items, communication-free
        // machine: the pipeline's predicted time must approach
        // (items + 1) * unit, well below the sequential 2 * items * unit.
        let mut s = Scl::new(Machine::new(
            Topology::FullyConnected { procs: 2 },
            CostModel::zero_comm(),
        ));
        let stage: &(dyn Fn(&i64) -> (i64, Work) + Sync) = &|x| (*x, Work::seconds(1.0));
        let items: Vec<i64> = (0..50).collect();
        let _ = s.pipeline(&[stage, stage], items);
        let t = s.makespan().as_secs();
        assert!(
            (t - 51.0).abs() < 1e-9,
            "expected (items+1)*unit = 51, got {t}"
        );
    }

    #[test]
    fn single_stage_pipeline_is_sequential() {
        let mut s = unit_ctx(1);
        let stage: &(dyn Fn(&i64) -> (i64, Work) + Sync) = &|x| (x + 1, Work::seconds(1.0));
        let out = s.pipeline(&[stage], vec![10, 20]);
        assert_eq!(out, vec![11, 21]);
        assert_eq!(s.makespan().as_secs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn pipeline_rejects_no_stages() {
        let mut s = unit_ctx(1);
        let _ = s.pipeline::<i64>(&[], vec![1]);
    }

    #[test]
    fn dc_reaches_base_on_every_group() {
        let mut s = unit_ctx(8);
        let a = ParArray::from_parts((0..8).collect::<Vec<i32>>());
        let mut base_calls = 0;
        let r = s.dc(
            a,
            2,
            &|g| g.len() == 1,
            &mut |scl, g| {
                base_calls += 1;
                scl.map(&g, |x| x * 10)
            },
            &mut |_, g| g,
        );
        assert_eq!(base_calls, 8);
        assert_eq!(r.to_vec(), (0..8).map(|x| x * 10).collect::<Vec<_>>());
        // placement survives the recursion
        assert_eq!(r.procs(), &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn dc_step_applies_before_divide() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![1, 1, 1, 1]);
        let r = s.dc(a, 2, &|g| g.len() == 1, &mut |_, g| g, &mut |scl, g| {
            scl.map(&g, |x| x + 1)
        });
        // depth log2(4) = 2 step applications per element
        assert_eq!(r.to_vec(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn dc_groups_run_in_virtual_parallel() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![10u64, 10, 10, 10]);
        let _ = s.dc(
            a,
            2,
            &|g| g.len() == 1,
            &mut |scl, g| scl.map_costed(&g, |x| (*x, Work::cmps(*x))),
            &mut |_, g| g,
        );
        // all four leaves charge 10 cmps in parallel: makespan = 10, not 40
        assert_eq!(s.makespan(), Time::from_secs(10.0));
    }
}
