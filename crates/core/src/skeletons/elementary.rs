//! Elementary skeletons: `map`, `imap`, `fold`, `scan` and friends.
//!
//! These are the paper's §2.2 data-parallel basics. Each comes in two
//! flavours:
//!
//! * the plain form (`map`, `imap`, …) runs an opaque closure per part and
//!   charges local time according to the context's [`MeasureMode`]
//!   (nothing, or measured host wall time);
//! * the `_costed` form takes a closure that *reports its own work*
//!   (`(result, Work)`), which instrumented sequential kernels use for
//!   deterministic, machine-independent cost accounting.
//!
//! Host execution goes through `scl-exec`, so with a threaded
//! [`ExecPolicy`](scl_exec::ExecPolicy) the parts really are processed in
//! parallel.
//!
//! [`MeasureMode`]: crate::ctx::MeasureMode

use crate::array::ParArray;
use crate::bytes::Bytes;
use crate::ctx::Scl;
use scl_exec::{par_map_indexed, par_pipeline};
use scl_machine::Work;
use std::time::Instant;

impl Scl {
    /// Apply `f` to every part: the paper's
    /// `map f ⟨x₀,…,xₙ⟩ = ⟨f x₀,…,f xₙ⟩`.
    #[must_use]
    pub fn map<T, R>(&mut self, a: &ParArray<T>, f: impl Fn(&T) -> R + Sync) -> ParArray<R>
    where
        T: Sync,
        R: Send,
    {
        self.imap(a, |_, x| f(x))
    }

    /// Index-aware map: the paper's
    /// `imap f ⟨x₀,…,xₙ⟩ = ⟨f 0 x₀,…,f n xₙ⟩`.
    #[must_use]
    pub fn imap<T, R>(&mut self, a: &ParArray<T>, f: impl Fn(usize, &T) -> R + Sync) -> ParArray<R>
    where
        T: Sync,
        R: Send,
    {
        let timed: Vec<(R, f64)> = par_map_indexed(self.policy, a.parts(), |i, x| {
            let t0 = Instant::now();
            let r = f(i, x);
            (r, t0.elapsed().as_secs_f64())
        });
        let mut parts = Vec::with_capacity(timed.len());
        for (i, (r, secs)) in timed.into_iter().enumerate() {
            let w = self.measured_work(secs);
            self.charge_part(a, i, w, "map");
            parts.push(r);
        }
        ParArray::like(a, parts)
    }

    /// Map with self-reported cost: `f` returns `(result, work)` and the
    /// work is charged to the owning processor.
    #[must_use]
    pub fn map_costed<T, R>(
        &mut self,
        a: &ParArray<T>,
        f: impl Fn(&T) -> (R, Work) + Sync,
    ) -> ParArray<R>
    where
        T: Sync,
        R: Send,
    {
        self.imap_costed(a, |_, x| f(x))
    }

    /// Index-aware [`Scl::map_costed`].
    #[must_use]
    pub fn imap_costed<T, R>(
        &mut self,
        a: &ParArray<T>,
        f: impl Fn(usize, &T) -> (R, Work) + Sync,
    ) -> ParArray<R>
    where
        T: Sync,
        R: Send,
    {
        let results: Vec<(R, Work)> = par_map_indexed(self.policy, a.parts(), |i, x| f(i, x));
        let mut parts = Vec::with_capacity(results.len());
        for (i, (r, w)) in results.into_iter().enumerate() {
            self.charge_part(a, i, w, "map");
            parts.push(r);
        }
        ParArray::like(a, parts)
    }

    /// Element-wise combination of two conforming arrays.
    #[must_use]
    pub fn zip_with<A, B, R>(
        &mut self,
        a: &ParArray<A>,
        b: &ParArray<B>,
        f: impl Fn(&A, &B) -> R + Sync,
    ) -> ParArray<R>
    where
        A: Sync,
        B: Sync,
        R: Send,
    {
        assert!(a.conforms(b), "zip_with needs conforming arrays");
        let results: Vec<R> = par_map_indexed(self.policy, a.parts(), |i, x| f(x, b.part(i)));
        // zip_with charges nothing locally (use map_costed over an aligned
        // configuration when cost matters).
        ParArray::like(a, results)
    }

    /// Tree reduction over the parts: the paper's
    /// `fold ⊕ ⟨x₀,…,xₙ⟩ = x₀ ⊕ … ⊕ xₙ`. `op` **must be associative**
    /// or the result is undefined (the paper says exactly the same).
    ///
    /// Charges a log-depth reduction; per-phase local combine work can be
    /// supplied with [`Scl::fold_costed`].
    ///
    /// # Panics
    /// Panics on an empty array.
    pub fn fold<T>(&mut self, a: &ParArray<T>, op: impl Fn(&T, &T) -> T) -> T
    where
        T: Clone + Bytes,
    {
        self.fold_costed(a, op, Work::NONE)
    }

    /// [`Scl::fold`] with explicit per-phase combine work.
    pub fn fold_costed<T>(&mut self, a: &ParArray<T>, op: impl Fn(&T, &T) -> T, combine: Work) -> T
    where
        T: Clone + Bytes,
    {
        assert!(!a.is_empty(), "fold of an empty ParArray is undefined");
        let bytes = a.parts().iter().map(Bytes::bytes).max().unwrap_or(0);
        self.machine.reduce(a.procs(), bytes, combine);
        let mut acc = a.part(0).clone();
        for x in &a.parts()[1..] {
            acc = op(&acc, x);
        }
        acc
    }

    /// Inclusive parallel prefix: the paper's
    /// `scan ⊕ ⟨x₀,x₁,…⟩ = ⟨x₀, x₀⊕x₁, …⟩`. `op` must be associative.
    #[must_use]
    pub fn scan<T>(&mut self, a: &ParArray<T>, op: impl Fn(&T, &T) -> T) -> ParArray<T>
    where
        T: Clone + Bytes,
    {
        self.scan_costed(a, op, Work::NONE)
    }

    /// [`Scl::scan`] with explicit per-phase combine work.
    #[must_use]
    pub fn scan_costed<T>(
        &mut self,
        a: &ParArray<T>,
        op: impl Fn(&T, &T) -> T,
        combine: Work,
    ) -> ParArray<T>
    where
        T: Clone + Bytes,
    {
        assert!(!a.is_empty(), "scan of an empty ParArray is undefined");
        let bytes = a.parts().iter().map(Bytes::bytes).max().unwrap_or(0);
        self.machine.scan(a.procs(), bytes, combine);
        let mut parts = Vec::with_capacity(a.len());
        let mut acc = a.part(0).clone();
        parts.push(acc.clone());
        for x in &a.parts()[1..] {
            acc = op(&acc, x);
            parts.push(acc.clone());
        }
        ParArray::like(a, parts)
    }

    // ---- owned (consuming) maps --------------------------------------------
    //
    // The owned maps take the array by value and hand each part to the
    // closure **by value**, so iterative kernels can mutate buffers in
    // place or return their spent input for recycling
    // ([`Scl::recycle_buf`]) instead of cloning every element each sweep.
    // Charging matches the borrowed forms exactly. Threaded execution uses
    // the persistent pool ([`scl_exec::par_pipeline`] — owned items can't
    // ride the borrowed scoped-thread path), gated like a one-stage fused
    // segment.

    /// [`Scl::map`] consuming the array: `f` receives each part by value.
    #[must_use]
    pub fn map_owned<T, R>(&mut self, a: ParArray<T>, f: impl Fn(T) -> R + Sync) -> ParArray<R>
    where
        T: Send,
        R: Send,
    {
        let (pairs, procs, shape) = self
            .run_owned(a, |_, x| {
                let t0 = Instant::now();
                let r = f(x);
                (r, t0.elapsed().as_secs_f64())
            })
            .into_raw();
        let mut parts = Vec::with_capacity(pairs.len());
        for (i, (r, secs)) in pairs.into_iter().enumerate() {
            let w = self.measured_work(secs);
            self.machine.compute(procs[i], w, "map");
            parts.push(r);
        }
        ParArray::from_raw(parts, procs, shape)
    }

    /// [`Scl::map_costed`] consuming the array.
    #[must_use]
    pub fn map_costed_owned<T, R>(
        &mut self,
        a: ParArray<T>,
        f: impl Fn(T) -> (R, Work) + Sync,
    ) -> ParArray<R>
    where
        T: Send,
        R: Send,
    {
        self.imap_costed_owned(a, |_, x| f(x))
    }

    /// [`Scl::imap_costed`] consuming the array.
    #[must_use]
    pub fn imap_costed_owned<T, R>(
        &mut self,
        a: ParArray<T>,
        f: impl Fn(usize, T) -> (R, Work) + Sync,
    ) -> ParArray<R>
    where
        T: Send,
        R: Send,
    {
        let (pairs, procs, shape) = self.run_owned(a, f).into_raw();
        let mut parts = Vec::with_capacity(pairs.len());
        for (i, (r, w)) in pairs.into_iter().enumerate() {
            self.machine.compute(procs[i], w, "map");
            parts.push(r);
        }
        ParArray::from_raw(parts, procs, shape)
    }

    /// Dispatch an owned per-part step over the policy's threads.
    fn run_owned<T, R>(
        &mut self,
        a: ParArray<T>,
        step: impl Fn(usize, T) -> R + Sync,
    ) -> ParArray<R>
    where
        T: Send,
        R: Send,
    {
        let n = a.len();
        // scheduled exactly like a one-stage fused segment: Threads(t)
        // fans out unconditionally (as the borrowed maps do), CostDriven
        // consults the model with the static payload estimate
        let (threads, grain) = self.segment_schedule(n, 1, std::mem::size_of::<T>());
        let (parts, procs, shape) = a.into_raw();
        let results: Vec<R> = if threads <= 1 {
            parts
                .into_iter()
                .enumerate()
                .map(|(i, x)| step(i, x))
                .collect()
        } else {
            let pool = self.fused_pool(threads);
            par_pipeline(pool, parts, threads, grain, step)
        };
        ParArray::from_raw(results, procs, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::MeasureMode;
    use scl_exec::ExecPolicy;
    use scl_machine::{CostModel, Machine, Time, Topology};

    fn unit_ctx(n: usize) -> Scl {
        Scl::new(Machine::new(
            Topology::FullyConnected { procs: n },
            CostModel::unit(),
        ))
    }

    #[test]
    fn map_applies_per_part() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![1, 2, 3, 4]);
        let b = s.map(&a, |x| x * 10);
        assert_eq!(b.to_vec(), vec![10, 20, 30, 40]);
        assert!(b.conforms(&a));
    }

    #[test]
    fn map_threaded_matches_sequential() {
        let a = ParArray::from_parts((0..64).collect::<Vec<i64>>());
        let mut s1 = unit_ctx(64);
        let r1 = s1.map(&a, |x| x * x);
        let mut s2 = unit_ctx(64).with_policy(ExecPolicy::Threads(4));
        let r2 = s2.map(&a, |x| x * x);
        assert_eq!(r1, r2);
    }

    #[test]
    fn imap_sees_index() {
        let mut s = unit_ctx(3);
        let a = ParArray::from_parts(vec![0, 0, 0]);
        let b = s.imap(&a, |i, x| x + i as i32);
        assert_eq!(b.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn map_costed_charges_owner() {
        let mut s = unit_ctx(3);
        let a = ParArray::from_parts(vec![1u64, 2, 3]);
        let _ = s.map_costed(&a, |x| (*x, Work::cmps(*x)));
        assert_eq!(s.machine.clocks.get(0).as_secs(), 1.0);
        assert_eq!(s.machine.clocks.get(1).as_secs(), 2.0);
        assert_eq!(s.machine.clocks.get(2).as_secs(), 3.0);
        assert_eq!(s.machine.metrics.cmps, 6);
    }

    #[test]
    fn map_uncharged_without_wallclock() {
        let mut s = unit_ctx(2);
        let a = ParArray::from_parts(vec![1, 2]);
        let _ = s.map(&a, |x| x + 1);
        assert_eq!(s.makespan(), Time::ZERO);
    }

    #[test]
    fn map_wallclock_charges_time() {
        let mut s = unit_ctx(2).with_measure(MeasureMode::WallClock { scale: 1.0 });
        let a = ParArray::from_parts(vec![200_000u64, 200_000]);
        let _ = s.map(&a, |n| (0..*n).fold(0u64, |acc, i| acc.wrapping_add(i)));
        assert!(s.makespan() > Time::ZERO);
    }

    #[test]
    fn zip_with_combines() {
        let mut s = unit_ctx(3);
        let a = ParArray::from_parts(vec![1, 2, 3]);
        let b = ParArray::from_parts(vec![10, 20, 30]);
        let c = s.zip_with(&a, &b, |x, y| x + y);
        assert_eq!(c.to_vec(), vec![11, 22, 33]);
    }

    #[test]
    #[should_panic(expected = "conforming")]
    fn zip_with_rejects_mismatch() {
        let mut s = unit_ctx(3);
        let a = ParArray::from_parts(vec![1, 2, 3]);
        let b = ParArray::from_parts(vec![10, 20]);
        let _ = s.zip_with(&a, &b, |x, y| x + y);
    }

    #[test]
    fn fold_sums() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![1i64, 2, 3, 4]);
        assert_eq!(s.fold(&a, |x, y| x + y), 10);
        assert_eq!(s.machine.metrics.reductions, 1);
        assert!(s.makespan() > Time::ZERO); // reduction phases charged
    }

    #[test]
    fn fold_singleton_is_free() {
        let mut s = unit_ctx(1);
        let a = ParArray::from_parts(vec![7i64]);
        assert_eq!(s.fold(&a, |x, y| x + y), 7);
        assert_eq!(s.makespan(), Time::ZERO); // group of 1: no comm
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fold_empty_panics() {
        let mut s = unit_ctx(1);
        let a: ParArray<i64> = ParArray::from_parts(vec![]);
        let _ = s.fold(&a, |x, y| x + y);
    }

    #[test]
    fn scan_prefixes() {
        let mut s = unit_ctx(4);
        let a = ParArray::from_parts(vec![1i64, 2, 3, 4]);
        let b = s.scan(&a, |x, y| x + y);
        assert_eq!(b.to_vec(), vec![1, 3, 6, 10]);
        assert_eq!(s.machine.metrics.scans, 1);
    }

    #[test]
    fn fold_scan_agree_on_last() {
        let mut s = unit_ctx(5);
        let a = ParArray::from_parts(vec![3i64, 1, 4, 1, 5]);
        let total = s.fold(&a, |x, y| x + y);
        let prefix = s.scan(&a, |x, y| x + y);
        assert_eq!(*prefix.part(4), total);
    }

    #[test]
    fn owned_maps_match_borrowed_and_charge_identically() {
        let a = ParArray::with_placement((0..8u64).collect(), (0..8).rev().collect());
        for policy in [ExecPolicy::Sequential, ExecPolicy::Threads(4)] {
            let mut s1 = unit_ctx(8).with_policy(policy);
            let borrowed = s1.imap_costed(&a, |i, x| (x * 2 + i as u64, Work::cmps(*x)));
            let mut s2 = unit_ctx(8).with_policy(policy);
            let owned = s2.imap_costed_owned(a.clone(), |i, x| (x * 2 + i as u64, Work::cmps(x)));
            assert_eq!(borrowed, owned, "{policy:?}");
            assert_eq!(s1.machine.metrics, s2.machine.metrics, "{policy:?}");
            assert_eq!(s1.makespan(), s2.makespan(), "{policy:?}");
        }
    }

    #[test]
    fn owned_maps_fan_out_under_threads_policy() {
        // Threads(t) is unconditional for the borrowed maps, so the owned
        // maps must honour it too — a tiny static payload must not gate
        // them back to the caller thread.
        use std::sync::Mutex;
        let seen = Mutex::new(std::collections::HashSet::new());
        let a = ParArray::from_parts((0..64i64).collect());
        let mut s = unit_ctx(64).with_policy(ExecPolicy::Threads(4));
        let out = s.map_owned(a, |x| {
            seen.lock().unwrap().insert(std::thread::current().id());
            x + 1
        });
        assert_eq!(out.to_vec(), (1..=64).collect::<Vec<i64>>());
        let seen = seen.into_inner().unwrap();
        assert!(
            !seen.contains(&std::thread::current().id()) || seen.len() > 1,
            "owned map ran inline despite Threads(4)"
        );
    }

    #[test]
    fn map_owned_consumes_parts_in_place() {
        // the closure receives the part by value and may reuse its buffer
        let a = ParArray::from_parts(vec![vec![1i64, 2], vec![3, 4]]);
        let mut s = unit_ctx(2);
        let b = s.map_owned(a, |mut v: Vec<i64>| {
            for x in &mut v {
                *x *= 10;
            }
            v
        });
        assert_eq!(b.to_vec(), vec![vec![10, 20], vec![30, 40]]);
    }

    #[test]
    fn fold_over_group_charges_group_only() {
        let mut s = unit_ctx(8);
        // array placed on procs 4..8
        let a = ParArray::with_placement(vec![1i64, 2, 3, 4], vec![4, 5, 6, 7]);
        let _ = s.fold(&a, |x, y| x + y);
        assert_eq!(s.machine.clocks.get(0), Time::ZERO);
        assert!(s.machine.clocks.get(4) > Time::ZERO);
    }
}
