//! The three skeleton families of SCL, as methods on [`crate::ctx::Scl`].
//!
//! * [`elementary`] — `map`, `imap`, `fold`, `scan`, `zip_with`
//! * [`comm`] — `rotate`, `rotate_row`, `rotate_col`, `shift`, `brdcast`,
//!   `apply_brdcast`, `send`, `fetch`, `total_exchange`
//! * [`compute`] — `farm`, `spmd`, `iter_until`, `iter_for`, `map_groups`,
//!   `dc`
//!
//! (Configuration skeletons — `partition`, `gather`, `distribution`,
//! `redistribution`, `split`, `combine` — live on the context itself in
//! [`crate::ctx`].)

pub mod comm;
pub mod compute;
pub mod elementary;

pub use compute::{GlobalOp, LocalOp, PipeStageFn, SpmdStage};
