//! Length-prefixed binary framing for skeleton payloads on a real wire.
//!
//! The simulated machine accounts for bytes through [`crate::bytes::Bytes`];
//! this module is its host-side twin: when a plan service grows a TCP front
//! door (`scl-net`), request and reply payloads must actually be encoded.
//! Everything here is buffer-based — no sockets, no I/O — so the codec can
//! be property-tested in isolation and reused by any transport (TCP today,
//! the process backend on the roadmap tomorrow).
//!
//! Three pieces:
//!
//! * [`WireWriter`] / [`WireReader`] — primitive little-endian
//!   encode/decode with typed, position-carrying errors ([`WireError`]).
//!   Readers never panic on malformed input: every getter bounds-checks
//!   and truncated input is an `Err`, not an out-of-bounds slice.
//! * [`FrameHeader`] — the versioned frame header every `scl-net` message
//!   starts with: magic, version, a kind byte, and a `u32` body length
//!   bounded by [`MAX_FRAME_LEN`] (an oversized prefix is rejected
//!   *before* any allocation, so a hostile length cannot balloon memory).
//! * payload helpers — `Vec<i64>` array payloads, strings, and
//!   [`Bytes`]-sized sanity checks shared by both
//!   directions.

use crate::bytes::Bytes;

/// Frame magic: `b"SC"` — two bytes so an HTTP request or TLS hello
/// aimed at the wrong port fails fast with [`WireError::BadMagic`].
pub const MAGIC: [u8; 2] = *b"SC";

/// Current protocol version carried in every frame header.
pub const VERSION: u8 = 1;

/// Encoded size of a [`FrameHeader`] on the wire.
pub const HEADER_LEN: usize = 8;

/// Hard ceiling on a frame body's length. A length prefix above this is a
/// protocol error ([`WireError::Oversize`]) — the reader must not trust a
/// 4 GiB prefix enough to allocate for it.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// A typed decode error. Carries enough context that a server can turn it
/// into a protocol-level error reply and a test can assert on the exact
/// failure mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value did: `needed` more bytes at `at`.
    Truncated {
        /// Byte offset the read started at.
        at: usize,
        /// Bytes the value still needed.
        needed: usize,
    },
    /// A length prefix exceeded its bound.
    Oversize {
        /// The length the prefix claimed.
        len: usize,
        /// The maximum the decoder accepts.
        max: usize,
    },
    /// The frame did not start with [`MAGIC`].
    BadMagic,
    /// The frame's version byte is not one this decoder speaks.
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A structurally valid but semantically impossible field.
    Invalid(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { at, needed } => {
                write!(f, "truncated input: needed {needed} more bytes at {at}")
            }
            WireError::Oversize { len, max } => {
                write!(f, "length prefix {len} exceeds the {max}-byte bound")
            }
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion { got } => write!(f, "unsupported frame version {got}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::Invalid(msg) => write!(f, "invalid field: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The versioned header that starts every frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version ([`VERSION`] for frames this build emits).
    pub version: u8,
    /// Message kind byte — meaning is the transport layer's business.
    pub kind: u8,
    /// Body length in bytes, at most [`MAX_FRAME_LEN`].
    pub len: usize,
}

impl FrameHeader {
    /// Encode into the fixed [`HEADER_LEN`] wire form:
    /// `magic(2) | version(1) | kind(1) | len(4, LE)`.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[..2].copy_from_slice(&MAGIC);
        out[2] = self.version;
        out[3] = self.kind;
        out[4..8].copy_from_slice(&(self.len as u32).to_le_bytes());
        out
    }

    /// Decode and validate a header: magic, version, and the body-length
    /// bound are all checked here, so a caller that sees `Ok` may safely
    /// allocate `len` bytes for the body.
    pub fn decode(buf: &[u8; HEADER_LEN]) -> Result<FrameHeader, WireError> {
        if buf[..2] != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = buf[2];
        if version != VERSION {
            return Err(WireError::BadVersion { got: version });
        }
        let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversize {
                len,
                max: MAX_FRAME_LEN,
            });
        }
        Ok(FrameHeader {
            version,
            kind: buf[3],
            len,
        })
    }
}

/// Append-only primitive encoder over a growable buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (little-endian), so a
    /// round trip is bit-exact — the differential suites compare reports
    /// bit-for-bit and the codec must not launder NaNs or signed zeros.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a `u32`-count-prefixed `i64` array payload — the wire form
    /// of one `ParArray<i64>` configuration (one scalar per partition).
    /// The encoded size is exactly `4 + values.bytes()`.
    pub fn put_i64s(&mut self, values: &[i64]) {
        debug_assert_eq!(values.bytes(), values.len() * 8);
        self.put_u32(values.len() as u32);
        for v in values {
            self.put_i64(*v);
        }
    }
}

/// Bounds-checked primitive decoder over a borrowed buffer.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset (for error context).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Fail unless the whole buffer was consumed — trailing bytes after a
    /// complete message are a protocol error, not padding.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Invalid(format!(
                "{} trailing bytes after message",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                at: self.pos,
                needed: n - self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read an `f64` from its bit pattern (the inverse of
    /// [`WireWriter::put_f64`], bit-exact).
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `u32`-length-prefixed UTF-8 string, bounded by `max` bytes.
    pub fn get_str(&mut self, max: usize) -> Result<String, WireError> {
        let len = self.get_u32()? as usize;
        if len > max {
            return Err(WireError::Oversize { len, max });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Read a `u32`-count-prefixed `i64` array payload, bounded by
    /// `max_elems` elements (the inverse of [`WireWriter::put_i64s`]).
    /// The count is validated against both the bound and the bytes
    /// actually present before anything is allocated.
    pub fn get_i64s(&mut self, max_elems: usize) -> Result<Vec<i64>, WireError> {
        let n = self.get_u32()? as usize;
        if n > max_elems {
            return Err(WireError::Oversize {
                len: n,
                max: max_elems,
            });
        }
        if self.remaining() < n * 8 {
            return Err(WireError::Truncated {
                at: self.pos,
                needed: n * 8 - self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_i64()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(i64::MIN);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("héllo");
        w.put_i64s(&[1, -2, 3]);
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), i64::MIN);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_str(64).unwrap(), "héllo");
        assert_eq!(r.get_i64s(8).unwrap(), vec![1, -2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(matches!(r.get_u64(), Err(WireError::Truncated { .. })));
        }
    }

    #[test]
    fn string_and_array_bounds_are_enforced() {
        let mut w = WireWriter::new();
        w.put_str("abcdef");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.get_str(3), Err(WireError::Oversize { .. })));

        let mut w = WireWriter::new();
        w.put_i64s(&[1, 2, 3, 4]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.get_i64s(2), Err(WireError::Oversize { .. })));

        // a count prefix larger than the actual bytes is truncation, and
        // must be detected before the Vec allocation
        let mut w = WireWriter::new();
        w.put_u32(1_000_000);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.get_i64s(usize::MAX),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut w = WireWriter::new();
        w.put_u32(2);
        w.put_u8(0xFF);
        w.put_u8(0xFE);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_str(16), Err(WireError::BadUtf8));
    }

    #[test]
    fn header_round_trip_and_validation() {
        let h = FrameHeader {
            version: VERSION,
            kind: 0x42,
            len: 12345,
        };
        assert_eq!(FrameHeader::decode(&h.encode()).unwrap(), h);

        let mut bad = h.encode();
        bad[0] = b'X';
        assert_eq!(FrameHeader::decode(&bad), Err(WireError::BadMagic));

        let mut bad = h.encode();
        bad[2] = 99;
        assert_eq!(
            FrameHeader::decode(&bad),
            Err(WireError::BadVersion { got: 99 })
        );

        let mut bad = h.encode();
        bad[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            FrameHeader::decode(&bad),
            Err(WireError::Oversize { .. })
        ));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut w = WireWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.get_u8().unwrap();
        assert!(matches!(r.finish(), Err(WireError::Invalid(_))));
    }
}
