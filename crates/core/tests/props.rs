//! Property-based tests for scl-core invariants:
//! partition/gather inverses, skeleton algebra, placement preservation.
//! (Randomised via `scl-testkit`, the workspace's proptest replacement.)

use scl_core::partition::{gather, gather2, partition, Pattern};
use scl_core::prelude::*;
use scl_testkit::{cases, Rng};

fn unit_ctx(n: usize) -> Scl {
    Scl::new(Machine::new(
        Topology::FullyConnected { procs: n },
        CostModel::unit(),
    ))
}

fn arb_pattern_1d(rng: &mut Rng) -> Pattern {
    match rng.below(3) {
        0 => Pattern::Block(rng.range_usize(1, 9)),
        1 => Pattern::Cyclic(rng.range_usize(1, 9)),
        _ => Pattern::BlockCyclic {
            p: rng.range_usize(1, 9),
            block: rng.range_usize(1, 6),
        },
    }
}

fn arb_pattern_2d(rng: &mut Rng) -> Pattern {
    match rng.below(5) {
        0 => Pattern::RowBlock(rng.range_usize(1, 6)),
        1 => Pattern::ColBlock(rng.range_usize(1, 6)),
        2 => Pattern::RowCyclic(rng.range_usize(1, 6)),
        3 => Pattern::ColCyclic(rng.range_usize(1, 6)),
        _ => Pattern::Grid {
            pr: rng.range_usize(1, 5),
            pc: rng.range_usize(1, 5),
        },
    }
}

#[test]
fn gather_inverts_partition() {
    cases(128, 0xC1, |rng| {
        let len = rng.range_usize(0, 200);
        let data = rng.vec_of(len, Rng::any_i64);
        let pattern = arb_pattern_1d(rng);
        let d = partition(pattern, &data);
        assert_eq!(gather(pattern, &d), data);
    });
}

#[test]
fn partition_conserves_elements() {
    cases(128, 0xC2, |rng| {
        let len = rng.range_usize(0, 200);
        let data = rng.vec_of(len, |r| r.any_i64() as i32);
        let pattern = arb_pattern_1d(rng);
        let d = partition(pattern, &data);
        let total: usize = d.parts().iter().map(Vec::len).sum();
        assert_eq!(total, data.len());
        let mut all: Vec<i32> = d.parts().iter().flatten().copied().collect();
        let mut expect = data.clone();
        all.sort_unstable();
        expect.sort_unstable();
        assert_eq!(all, expect);
    });
}

#[test]
fn block_partition_is_balanced() {
    cases(128, 0xC3, |rng| {
        let n = rng.range_usize(0, 500);
        let p = rng.range_usize(1, 16);
        let data: Vec<u8> = vec![0; n];
        let d = partition(Pattern::Block(p), &data);
        let sizes: Vec<usize> = d.parts().iter().map(Vec::len).collect();
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    });
}

#[test]
fn gather2_inverts_partition2() {
    cases(96, 0xC4, |rng| {
        let rows = rng.range_usize(1, 12);
        let cols = rng.range_usize(1, 12);
        let pattern = arb_pattern_2d(rng);
        let m = Matrix::from_fn(rows, cols, |r, c| (r * 100 + c) as i64);
        let d = scl_core::partition::partition2(pattern, &m);
        assert_eq!(gather2(pattern, &d), m);
    });
}

#[test]
fn combine_inverts_split_block() {
    cases(96, 0xC5, |rng| {
        let n_parts = rng.range_usize(1, 32);
        let groups = rng.range_usize(1, 8);
        if groups > n_parts {
            return;
        }
        let a = ParArray::from_parts((0..n_parts as i64).collect::<Vec<_>>());
        let nested = split(Pattern::Block(groups), a.clone());
        assert_eq!(combine(nested), a);
    });
}

#[test]
fn rotate_composition_law() {
    cases(128, 0xC6, |rng| {
        // communication algebra: rotate a . rotate b == rotate (a+b)
        let n = rng.range_usize(1, 16);
        let a = rng.range_i64(-20, 20) as isize;
        let b = rng.range_i64(-20, 20) as isize;
        let mut s = unit_ctx(n);
        let data = ParArray::from_parts((0..n as i64).collect::<Vec<_>>());
        let r1 = s.rotate(b, &data);
        let r1 = s.rotate(a, &r1);
        let r2 = s.rotate(a + b, &data);
        assert_eq!(r1.to_vec(), r2.to_vec());
    });
}

#[test]
fn rotate_full_cycle_is_identity() {
    cases(64, 0xC7, |rng| {
        let n = rng.range_usize(1, 16);
        let mut s = unit_ctx(n);
        let data = ParArray::from_parts((0..n as i64).collect::<Vec<_>>());
        assert_eq!(s.rotate(n as isize, &data).to_vec(), data.to_vec());
    });
}

#[test]
fn fetch_fusion_law() {
    cases(128, 0xC8, |rng| {
        // fetch f . fetch g == fetch (g . f)   (paper §4, communication algebra)
        let n = rng.range_usize(1, 12);
        let fa = rng.range_usize(0, 12);
        let fb = rng.range_usize(0, 12);
        let f = move |i: usize| (i + fa) % n;
        let g = move |i: usize| (i * 7 + fb) % n;
        let mut s = unit_ctx(n);
        let data = ParArray::from_parts((0..n as i64).collect::<Vec<_>>());
        let lhs = s.fetch(g, &data);
        let lhs = s.fetch(f, &lhs);
        let rhs = s.fetch(move |i| g(f(i)), &data);
        assert_eq!(lhs.to_vec(), rhs.to_vec());
    });
}

#[test]
fn map_fusion_law() {
    cases(96, 0xC9, |rng| {
        // map f . map g == map (f . g)
        let len = rng.range_usize(1, 32);
        let data = rng.vec_of(len, |r| r.any_i64() as i32);
        let n = data.len();
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts(data);
        let g = |x: &i32| x.wrapping_mul(3);
        let f = |x: &i32| x.wrapping_add(17);
        let lhs_inner = s.map(&a, g);
        let lhs = s.map(&lhs_inner, f);
        let rhs = s.map(&a, |x| f(&g(x)));
        assert_eq!(lhs.to_vec(), rhs.to_vec());
    });
}

#[test]
fn map_distribution_law() {
    cases(96, 0xCA, |rng| {
        // foldr (f . g) == fold f . map g  for associative f (here +, g = square)
        let len = rng.range_usize(1, 32);
        let data = rng.vec_of(len, |r| r.range_i64(-1000, 1000));
        let n = data.len();
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts(data.clone());
        let mapped = s.map(&a, |x| x * x);
        let parallel = s.fold(&mapped, |x, y| x + y);
        let sequential: i64 = data.iter().map(|x| x * x).sum();
        assert_eq!(parallel, sequential);
    });
}

#[test]
fn scan_last_equals_fold() {
    cases(96, 0xCB, |rng| {
        let len = rng.range_usize(1, 32);
        let data = rng.vec_of(len, |r| r.range_i64(-100, 100));
        let n = data.len();
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts(data);
        let scanned = s.scan(&a, |x, y| x + y);
        let folded = s.fold(&a, |x, y| x + y);
        assert_eq!(*scanned.part(n - 1), folded);
    });
}

#[test]
fn send_delivers_multiset() {
    cases(96, 0xCC, |rng| {
        let n = rng.range_usize(1, 10);
        let dests: Vec<Vec<usize>> = (0..n)
            .map(|_| {
                let fanout = rng.range_usize(0, 4);
                rng.vec_of(fanout, |r| r.range_usize(0, 10) % n)
            })
            .collect();
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts((0..n as i64).collect::<Vec<_>>());
        let d2 = dests.clone();
        let out = s.send(move |k| d2[k].clone(), &a);
        // every (src, dst) pair delivered exactly once, nothing invented
        let mut sent: Vec<(usize, i64)> = vec![];
        for (k, ds) in dests.iter().enumerate() {
            for &d in ds {
                sent.push((d, k as i64));
            }
        }
        let mut got: Vec<(usize, i64)> = vec![];
        for (j, inbox) in out.parts().iter().enumerate() {
            for &v in inbox {
                got.push((j, v));
            }
        }
        sent.sort_unstable();
        got.sort_unstable();
        assert_eq!(sent, got);
    });
}

#[test]
fn skeletons_preserve_placement() {
    cases(64, 0xCD, |rng| {
        let n = rng.range_usize(1, 12);
        let k = rng.range_i64(-5, 5) as isize;
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts((0..n as i64).collect::<Vec<_>>());
        let m = s.map(&a, |x| x + 1);
        assert_eq!(m.procs(), a.procs());
        let r = s.rotate(k, &a);
        assert_eq!(r.procs(), a.procs());
        let f = s.fetch(|i| i, &a);
        assert_eq!(f.procs(), a.procs());
    });
}

#[test]
fn threaded_and_sequential_skeletons_agree() {
    cases(48, 0xCE, |rng| {
        let len = rng.range_usize(1, 64);
        let data = rng.vec_of(len, Rng::any_i64);
        let threads = rng.range_usize(2, 6);
        let n = data.len();
        let a = ParArray::from_parts(data);
        let mut s1 = unit_ctx(n);
        let mut s2 = unit_ctx(n).with_policy(ExecPolicy::Threads(threads));
        let m1 = s1.map(&a, |x| x.wrapping_mul(5));
        let m2 = s2.map(&a, |x| x.wrapping_mul(5));
        let f1 = s1.fold(&m1, |x, y| x.wrapping_add(*y));
        let f2 = s2.fold(&m2, |x, y| x.wrapping_add(*y));
        assert_eq!(m1, m2);
        assert_eq!(f1, f2);
    });
}

#[test]
fn comm_skeletons_preserve_multisets() {
    cases(96, 0xCF, |rng| {
        let len = rng.range_usize(1, 24);
        let data = rng.vec_of(len, Rng::any_i64);
        let k = rng.range_i64(-9, 9) as isize;
        let f_add = rng.range_usize(0, 24);
        let n = data.len();
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts(data.clone());
        let mut expect = data.clone();
        expect.sort_unstable();

        let mut r = s.rotate(k, &a).to_vec();
        r.sort_unstable();
        assert_eq!(&r, &expect, "rotate must permute");

        // bijective fetch (a rotation expressed as fetch) also permutes
        let mut r = s.fetch(move |i| (i + f_add) % n, &a).to_vec();
        r.sort_unstable();
        assert_eq!(&r, &expect, "bijective fetch must permute");
    });
}

#[test]
fn balance_preserves_order_and_evens() {
    cases(96, 0xD0, |rng| {
        let len = rng.range_usize(1, 10);
        let sizes = rng.vec_of(len, |r| r.range_usize(0, 12));
        let p = sizes.len();
        let mut s = unit_ctx(p);
        let mut next = 0i64;
        let parts: Vec<Vec<i64>> = sizes
            .iter()
            .map(|&len| {
                (0..len)
                    .map(|_| {
                        next += 1;
                        next
                    })
                    .collect()
            })
            .collect();
        let total: usize = sizes.iter().sum();
        let a = ParArray::from_parts(parts);
        let b = s.balance(&a);
        // order preserved
        let flat: Vec<i64> = b.parts().iter().flatten().copied().collect();
        assert_eq!(flat, (1..=total as i64).collect::<Vec<_>>());
        // sizes balanced to +-1
        let min = b.parts().iter().map(Vec::len).min().unwrap();
        let max = b.parts().iter().map(Vec::len).max().unwrap();
        assert!(
            max - min <= 1,
            "sizes {:?}",
            b.parts().iter().map(Vec::len).collect::<Vec<_>>()
        );
    });
}

#[test]
fn all_gather_and_fold_all_agree_with_basics() {
    cases(64, 0xD1, |rng| {
        let len = rng.range_usize(1, 16);
        let data = rng.vec_of(len, |r| r.range_i64(-100, 100));
        let n = data.len();
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts(data.clone());
        let gathered = s.all_gather(&a);
        for part in gathered.parts() {
            assert_eq!(part, &data);
        }
        let folded = s.fold(&a, |x, y| x + y);
        let folded_all = s.fold_all(&a, |x, y| x + y, Work::NONE);
        assert!(folded_all.parts().iter().all(|x| *x == folded));
    });
}

#[test]
fn virtual_time_deterministic() {
    cases(48, 0xD2, |rng| {
        let len = rng.range_usize(1, 32);
        let data = rng.vec_of(len, |r| r.below(1000));
        let n = data.len();
        let run = |data: &[u64]| -> (f64, u64) {
            let mut s = Scl::ap1000(n);
            let a = ParArray::from_parts(data.to_vec());
            let m = s.map_costed(&a, |x| (*x, Work::cmps(*x)));
            let _ = s.fold(&m, |x, y| x + y);
            (s.makespan().as_secs(), s.machine.metrics.messages)
        };
        assert_eq!(run(&data), run(&data));
    });
}
