//! Property-based tests for scl-core invariants:
//! partition/gather inverses, skeleton algebra, placement preservation.

use proptest::prelude::*;
use scl_core::prelude::*;
use scl_core::partition::{gather, gather2, partition, Pattern};

fn unit_ctx(n: usize) -> Scl {
    Scl::new(Machine::new(Topology::FullyConnected { procs: n }, CostModel::unit()))
}

fn arb_pattern_1d() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (1usize..=8).prop_map(Pattern::Block),
        (1usize..=8).prop_map(Pattern::Cyclic),
        ((1usize..=8), (1usize..=5)).prop_map(|(p, block)| Pattern::BlockCyclic { p, block }),
    ]
}

fn arb_pattern_2d() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (1usize..=5).prop_map(Pattern::RowBlock),
        (1usize..=5).prop_map(Pattern::ColBlock),
        (1usize..=5).prop_map(Pattern::RowCyclic),
        (1usize..=5).prop_map(Pattern::ColCyclic),
        ((1usize..=4), (1usize..=4)).prop_map(|(pr, pc)| Pattern::Grid { pr, pc }),
    ]
}

proptest! {
    #[test]
    fn gather_inverts_partition(data in prop::collection::vec(any::<i64>(), 0..200),
                                pattern in arb_pattern_1d()) {
        let d = partition(pattern, &data);
        prop_assert_eq!(gather(pattern, &d), data);
    }

    #[test]
    fn partition_conserves_elements(data in prop::collection::vec(any::<i32>(), 0..200),
                                    pattern in arb_pattern_1d()) {
        let d = partition(pattern, &data);
        let total: usize = d.parts().iter().map(Vec::len).sum();
        prop_assert_eq!(total, data.len());
        let mut all: Vec<i32> = d.parts().iter().flatten().copied().collect();
        let mut expect = data.clone();
        all.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn block_partition_is_balanced(n in 0usize..500, p in 1usize..16) {
        let data: Vec<u8> = vec![0; n];
        let d = partition(Pattern::Block(p), &data);
        let sizes: Vec<usize> = d.parts().iter().map(Vec::len).collect();
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn gather2_inverts_partition2(rows in 1usize..12, cols in 1usize..12,
                                  pattern in arb_pattern_2d()) {
        let m = Matrix::from_fn(rows, cols, |r, c| (r * 100 + c) as i64);
        let d = scl_core::partition::partition2(pattern, &m);
        let _ = &d;
        prop_assert_eq!(gather2(pattern, &d), m);
    }

    #[test]
    fn combine_inverts_split_block(n_parts in 1usize..32, groups in 1usize..8) {
        prop_assume!(groups <= n_parts);
        let a = ParArray::from_parts((0..n_parts as i64).collect::<Vec<_>>());
        let nested = split(Pattern::Block(groups), a.clone());
        prop_assert_eq!(combine(nested), a);
    }

    #[test]
    fn rotate_composition_law(n in 1usize..16, a in -20isize..20, b in -20isize..20) {
        // communication algebra: rotate a . rotate b == rotate (a+b)
        let mut s = unit_ctx(n);
        let data = ParArray::from_parts((0..n as i64).collect::<Vec<_>>());
        let r1 = s.rotate(b, &data);
        let r1 = s.rotate(a, &r1);
        let r2 = s.rotate(a + b, &data);
        prop_assert_eq!(r1.to_vec(), r2.to_vec());
    }

    #[test]
    fn rotate_full_cycle_is_identity(n in 1usize..16) {
        let mut s = unit_ctx(n);
        let data = ParArray::from_parts((0..n as i64).collect::<Vec<_>>());
        prop_assert_eq!(s.rotate(n as isize, &data).to_vec(), data.to_vec());
    }

    #[test]
    fn fetch_fusion_law(n in 1usize..12, fa in 0usize..12, fb in 0usize..12) {
        // fetch f . fetch g == fetch (g . f)   (paper §4, communication algebra)
        let f = move |i: usize| (i + fa) % n;
        let g = move |i: usize| (i * 7 + fb) % n;
        let mut s = unit_ctx(n);
        let data = ParArray::from_parts((0..n as i64).collect::<Vec<_>>());
        let lhs = s.fetch(g, &data);
        let lhs = s.fetch(f, &lhs);
        let rhs = s.fetch(move |i| g(f(i)), &data);
        prop_assert_eq!(lhs.to_vec(), rhs.to_vec());
    }

    #[test]
    fn map_fusion_law(data in prop::collection::vec(any::<i32>(), 1..32)) {
        // map f . map g == map (f . g)
        let n = data.len();
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts(data);
        let g = |x: &i32| x.wrapping_mul(3);
        let f = |x: &i32| x.wrapping_add(17);
        let lhs_inner = s.map(&a, g);
        let lhs = s.map(&lhs_inner, f);
        let rhs = s.map(&a, |x| f(&g(x)));
        prop_assert_eq!(lhs.to_vec(), rhs.to_vec());
    }

    #[test]
    fn map_distribution_law(data in prop::collection::vec(-1000i64..1000, 1..32)) {
        // foldr (f . g) == fold f . map g  for associative f (here +, g = square)
        let n = data.len();
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts(data.clone());
        let mapped = s.map(&a, |x| x * x);
        let parallel = s.fold(&mapped, |x, y| x + y);
        let sequential: i64 = data.iter().map(|x| x * x).sum();
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn scan_last_equals_fold(data in prop::collection::vec(-100i64..100, 1..32)) {
        let n = data.len();
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts(data);
        let scanned = s.scan(&a, |x, y| x + y);
        let folded = s.fold(&a, |x, y| x + y);
        prop_assert_eq!(*scanned.part(n - 1), folded);
    }

    #[test]
    fn send_delivers_multiset(dests in prop::collection::vec(prop::collection::vec(0usize..10, 0..4), 1..10)) {
        let n = dests.len();
        let dests: Vec<Vec<usize>> =
            dests.into_iter().map(|v| v.into_iter().map(|d| d % n).collect()).collect();
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts((0..n as i64).collect::<Vec<_>>());
        let d2 = dests.clone();
        let out = s.send(move |k| d2[k].clone(), &a);
        // every (src, dst) pair delivered exactly once, nothing invented
        let mut sent: Vec<(usize, i64)> = vec![];
        for (k, ds) in dests.iter().enumerate() {
            for &d in ds {
                sent.push((d, k as i64));
            }
        }
        let mut got: Vec<(usize, i64)> = vec![];
        for (j, inbox) in out.parts().iter().enumerate() {
            for &v in inbox {
                got.push((j, v));
            }
        }
        sent.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(sent, got);
    }

    #[test]
    fn skeletons_preserve_placement(n in 1usize..12, k in -5isize..5) {
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts((0..n as i64).collect::<Vec<_>>());
        let m = s.map(&a, |x| x + 1);
        prop_assert_eq!(m.procs(), a.procs());
        let r = s.rotate(k, &a);
        prop_assert_eq!(r.procs(), a.procs());
        let f = s.fetch(|i| i, &a);
        prop_assert_eq!(f.procs(), a.procs());
    }

    #[test]
    fn threaded_and_sequential_skeletons_agree(
        data in prop::collection::vec(any::<i64>(), 1..64),
        threads in 2usize..6,
    ) {
        let n = data.len();
        let a = ParArray::from_parts(data);
        let mut s1 = unit_ctx(n);
        let mut s2 = unit_ctx(n).with_policy(ExecPolicy::Threads(threads));
        let m1 = s1.map(&a, |x| x.wrapping_mul(5));
        let m2 = s2.map(&a, |x| x.wrapping_mul(5));
        let f1 = s1.fold(&m1, |x, y| x.wrapping_add(*y));
        let f2 = s2.fold(&m2, |x, y| x.wrapping_add(*y));
        prop_assert_eq!(m1, m2);
        prop_assert_eq!(f1, f2);
    }

    #[test]
    fn comm_skeletons_preserve_multisets(data in prop::collection::vec(any::<i64>(), 1..24),
                                         k in -9isize..9, f_add in 0usize..24) {
        let n = data.len();
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts(data.clone());
        let mut expect = data.clone();
        expect.sort_unstable();

        let mut r = s.rotate(k, &a).to_vec();
        r.sort_unstable();
        prop_assert_eq!(&r, &expect, "rotate must permute");

        // bijective fetch (a rotation expressed as fetch) also permutes
        let mut r = s.fetch(move |i| (i + f_add) % n, &a).to_vec();
        r.sort_unstable();
        prop_assert_eq!(&r, &expect, "bijective fetch must permute");
    }

    #[test]
    fn balance_preserves_order_and_evens(sizes in prop::collection::vec(0usize..12, 1..10)) {
        let p = sizes.len();
        let mut s = unit_ctx(p);
        let mut next = 0i64;
        let parts: Vec<Vec<i64>> = sizes
            .iter()
            .map(|&len| (0..len).map(|_| { next += 1; next }).collect())
            .collect();
        let total: usize = sizes.iter().sum();
        let a = ParArray::from_parts(parts);
        let b = s.balance(&a);
        // order preserved
        let flat: Vec<i64> = b.parts().iter().flatten().copied().collect();
        prop_assert_eq!(flat, (1..=total as i64).collect::<Vec<_>>());
        // sizes balanced to +-1
        let min = b.parts().iter().map(Vec::len).min().unwrap();
        let max = b.parts().iter().map(Vec::len).max().unwrap();
        prop_assert!(max - min <= 1, "sizes {:?}", b.parts().iter().map(Vec::len).collect::<Vec<_>>());
    }

    #[test]
    fn all_gather_and_fold_all_agree_with_basics(data in prop::collection::vec(-100i64..100, 1..16)) {
        let n = data.len();
        let mut s = unit_ctx(n);
        let a = ParArray::from_parts(data.clone());
        let gathered = s.all_gather(&a);
        for part in gathered.parts() {
            prop_assert_eq!(part, &data);
        }
        let folded = s.fold(&a, |x, y| x + y);
        let folded_all = s.fold_all(&a, |x, y| x + y, Work::NONE);
        prop_assert!(folded_all.parts().iter().all(|x| *x == folded));
    }

    #[test]
    fn virtual_time_deterministic(
        data in prop::collection::vec(0u64..1000, 1..32),
    ) {
        let n = data.len();
        let run = |data: &[u64]| -> (f64, u64) {
            let mut s = Scl::ap1000(n);
            let a = ParArray::from_parts(data.to_vec());
            let m = s.map_costed(&a, |x| (*x, Work::cmps(*x)));
            let _ = s.fold(&m, |x, y| x + y);
            (s.makespan().as_secs(), s.machine.metrics.messages)
        };
        prop_assert_eq!(run(&data), run(&data));
    }
}
