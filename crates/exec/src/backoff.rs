//! Spin-then-park backoff: the waiting discipline of the lock-free queue
//! layer.
//!
//! A lock-free ring has no condvar to sleep on, so a blocked side must
//! decide how to wait. The classic ladder (FastFlow, crossbeam) is
//!
//! 1. **spin** a few exponentially growing rounds of [`std::hint::spin_loop`]
//!    — the other side is usually mid-operation and the wait is tens of
//!    nanoseconds; never spin on a 1-core host (the other side *cannot* be
//!    running — see [`host_threads`]);
//! 2. **yield** the timeslice a few times — cheap on an oversubscribed
//!    host, and on one core it is exactly what hands the CPU to the peer;
//! 3. **park** the thread ([`std::thread::park_timeout`]) after registering
//!    in a `ParkSlot` so the peer's next operation wakes it. The timeout
//!    is a pure safety net — the wake protocol below is lossless — so it
//!    can be long without costing latency.
//!
//! The park/wake protocol is the standard Dekker-style handshake: the
//! waiter publishes `waiting = true` (a sequentially consistent store),
//! re-checks the queue condition, and only then parks; the waker makes the
//! condition true, issues a `fence(SeqCst)`, and reads `waiting`. The
//! two SeqCst points guarantee at least one side sees the other, so a wake
//! is never lost.

use crate::host_threads;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread::Thread;
use std::time::Duration;

/// Exponential-spin rounds before yielding (skipped entirely on one core).
const SPIN_LIMIT: u32 = 6;
/// Yield rounds after spinning, before the caller should park.
const YIELD_LIMIT: u32 = 4;

/// The spin-then-yield ladder; see the [module docs](self).
///
/// Call [`Backoff::snooze`] once per failed attempt: it burns an
/// exponentially growing spin (or yields), and returns `true` once the
/// caller should stop burning CPU and park on its `ParkSlot`.
#[derive(Debug)]
pub struct Backoff {
    step: u32,
    spin_limit: u32,
}

impl Backoff {
    /// A fresh ladder, sized to the host: multi-core hosts spin first,
    /// a 1-core host goes straight to yielding.
    pub fn new() -> Backoff {
        Backoff {
            step: 0,
            spin_limit: if host_threads() > 1 { SPIN_LIMIT } else { 0 },
        }
    }

    /// Back to the bottom of the ladder (call after real progress).
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// One failed attempt: spin or yield, returning `true` when the ladder
    /// is exhausted and the caller should park instead.
    pub fn snooze(&mut self) -> bool {
        if self.step < self.spin_limit {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
            false
        } else if self.step < self.spin_limit + YIELD_LIMIT {
            std::thread::yield_now();
            self.step += 1;
            false
        } else {
            true
        }
    }
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff::new()
    }
}

/// One side's parking place on a lock-free queue: a published `waiting`
/// flag plus the parked thread's handle. The mutex is slow-path only —
/// the hot path reads `waiting` (a plain load behind a SeqCst fence) and
/// touches nothing else.
#[derive(Default, Debug)]
pub(crate) struct ParkSlot {
    waiting: AtomicBool,
    thread: Mutex<Option<Thread>>,
}

/// Safety-net park bound: with the lossless wake protocol this never
/// matters for liveness, it only caps the damage of a future bug.
pub(crate) const PARK_SAFETY: Duration = Duration::from_millis(100);

impl ParkSlot {
    /// Publish intent to park. The caller MUST re-check its wait condition
    /// after this (the SeqCst store orders the re-check after the
    /// publication) and skip [`ParkSlot::park`] if the condition cleared.
    pub(crate) fn prepare(&self) {
        *self.thread.lock().expect("poisoned park slot") = Some(std::thread::current());
        self.waiting.store(true, Ordering::SeqCst);
    }

    /// Park for at most `timeout` (spurious wakes are fine — callers loop).
    pub(crate) fn park(&self, timeout: Duration) {
        std::thread::park_timeout(timeout);
    }

    /// Withdraw the parked state (call after waking, before retrying).
    pub(crate) fn clear(&self) {
        self.waiting.store(false, Ordering::SeqCst);
    }

    /// Hot-path probe: is anyone (possibly about to be) parked here?
    /// Callers must order this load after their condition-making store
    /// with a `fence(SeqCst)`.
    pub(crate) fn is_waiting(&self) -> bool {
        self.waiting.load(Ordering::SeqCst)
    }

    /// Wake the parked thread, if any. Cheap when nobody waits (the caller
    /// gates on [`ParkSlot::is_waiting`]).
    pub(crate) fn wake(&self) {
        if self.waiting.swap(false, Ordering::SeqCst) {
            if let Some(t) = self.thread.lock().expect("poisoned park slot").take() {
                t.unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ladder_eventually_asks_for_park() {
        let mut b = Backoff::new();
        let mut steps = 0;
        while !b.snooze() {
            steps += 1;
            assert!(steps < 64, "ladder never exhausted");
        }
        b.reset();
        assert!(!b.snooze(), "reset restarts the ladder");
    }

    #[test]
    fn park_slot_wakes_a_parked_thread() {
        let slot = Arc::new(ParkSlot::default());
        let s2 = Arc::clone(&slot);
        let waiter = std::thread::spawn(move || {
            s2.prepare();
            s2.park(Duration::from_secs(10));
            s2.clear();
        });
        // spin until the flag is published, then wake
        while !slot.is_waiting() {
            std::thread::yield_now();
        }
        slot.wake();
        waiter.join().unwrap(); // returns promptly, not after 10s
    }

    #[test]
    fn wake_without_waiter_is_a_noop() {
        let slot = ParkSlot::default();
        slot.wake();
        assert!(!slot.is_waiting());
    }
}
