//! A shared host-thread budget with leased capacity.
//!
//! Persistent runtimes that coexist in one process — several streaming
//! operator graphs, a multi-tenant plan service sharding one machine
//! across clients — all want host threads, and the host has a fixed
//! number. [`ThreadBudget`] is the hand-off point: one shared counter of
//! total capacity from which each consumer **claims a lease**
//! ([`ThreadBudget::try_claim`]) and to which the lease returns its
//! capacity on drop. Nothing here spawns or parks threads; the budget only
//! *accounts* — enforcement is the consumer's business (a streaming graph
//! caps its farm width gates at its lease, a scheduler recomputes shares
//! from `total` and `in_use`).
//!
//! Claims are best-effort and non-blocking: a claim asks for a preferred
//! width and a minimum, and receives whatever slice of the remaining
//! budget fits (or `None` when even the minimum does not). That favours
//! admission over fairness — fair *shares* are a policy the caller
//! computes (see `scl-serve`'s shard scheduler); the budget just keeps the
//! process-wide total honest.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared pool of host-thread capacity; see the [module docs](self).
#[derive(Debug)]
pub struct ThreadBudget {
    total: usize,
    used: AtomicUsize,
}

impl ThreadBudget {
    /// A budget of `total` threads (at least 1), ready to share.
    pub fn new(total: usize) -> Arc<ThreadBudget> {
        Arc::new(ThreadBudget {
            total: total.max(1),
            used: AtomicUsize::new(0),
        })
    }

    /// Total capacity the budget was created with.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Capacity currently out on leases.
    pub fn in_use(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Capacity not yet leased.
    pub fn available(&self) -> usize {
        self.total.saturating_sub(self.in_use())
    }

    /// Claim between `min` and `want` threads (both at least 1; `want` is
    /// raised to `min` if below it): the lease receives `want` when it
    /// fits, otherwise whatever remains if that still covers `min`, and
    /// `None` when even `min` is unavailable. Never blocks.
    pub fn try_claim(self: &Arc<ThreadBudget>, want: usize, min: usize) -> Option<BudgetLease> {
        let min = min.max(1);
        let want = want.max(min);
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let avail = self.total.saturating_sub(cur);
            let grant = want.min(avail);
            if grant < min {
                return None;
            }
            match self.used.compare_exchange_weak(
                cur,
                cur + grant,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(BudgetLease {
                        granted: grant,
                        budget: Arc::clone(self),
                    })
                }
                Err(observed) => cur = observed,
            }
        }
    }
}

/// A slice of a [`ThreadBudget`], returned to the budget on drop.
#[derive(Debug)]
pub struct BudgetLease {
    granted: usize,
    budget: Arc<ThreadBudget>,
}

impl BudgetLease {
    /// How many threads this lease holds.
    pub fn granted(&self) -> usize {
        self.granted
    }

    /// Shrink the lease to `keep` threads (no-op if already at or below),
    /// returning the difference to the budget immediately — how a consumer
    /// hands capacity back mid-flight when a scheduler narrows its share.
    pub fn shrink_to(&mut self, keep: usize) {
        let keep = keep.max(1).min(self.granted);
        let give_back = self.granted - keep;
        if give_back > 0 {
            self.granted = keep;
            self.budget.used.fetch_sub(give_back, Ordering::AcqRel);
        }
    }
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        self.budget.used.fetch_sub(self.granted, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_grant_within_the_total() {
        let b = ThreadBudget::new(4);
        assert_eq!((b.total(), b.in_use(), b.available()), (4, 0, 4));
        let l1 = b.try_claim(3, 1).unwrap();
        assert_eq!(l1.granted(), 3);
        // 1 left: a want of 3 degrades to the remainder when min allows
        let l2 = b.try_claim(3, 1).unwrap();
        assert_eq!(l2.granted(), 1);
        assert_eq!(b.available(), 0);
        // nothing left: even min=1 is refused
        assert!(b.try_claim(1, 1).is_none());
        drop(l1);
        assert_eq!(b.available(), 3);
        drop(l2);
        assert_eq!(b.available(), 4);
    }

    #[test]
    fn min_is_respected() {
        let b = ThreadBudget::new(4);
        let _l = b.try_claim(3, 3).unwrap();
        // 1 remaining < min 2: refused rather than degraded
        assert!(b.try_claim(4, 2).is_none());
        // want below min is raised to min
        let l = b.try_claim(0, 1).unwrap();
        assert_eq!(l.granted(), 1);
    }

    #[test]
    fn total_is_at_least_one() {
        let b = ThreadBudget::new(0);
        assert_eq!(b.total(), 1);
        assert!(b.try_claim(1, 1).is_some() || b.available() == 0);
    }

    #[test]
    fn shrink_returns_capacity_early() {
        let b = ThreadBudget::new(8);
        let mut l = b.try_claim(6, 1).unwrap();
        l.shrink_to(2);
        assert_eq!(l.granted(), 2);
        assert_eq!(b.available(), 6);
        // shrinking below 1 clamps, growing is not a thing
        l.shrink_to(0);
        assert_eq!(l.granted(), 1);
        l.shrink_to(5);
        assert_eq!(l.granted(), 1);
        drop(l);
        assert_eq!(b.available(), 8);
    }

    #[test]
    fn concurrent_claims_never_oversubscribe() {
        let b = ThreadBudget::new(7);
        let peak = Arc::new(AtomicUsize::new(0));
        let joins: Vec<_> = (0..8)
            .map(|_| {
                let b = Arc::clone(&b);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if let Some(lease) = b.try_claim(3, 1) {
                            peak.fetch_max(b.in_use(), Ordering::Relaxed);
                            assert!(lease.granted() >= 1 && lease.granted() <= 3);
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert!(peak.load(Ordering::Relaxed) <= 7, "budget oversubscribed");
        assert_eq!(b.in_use(), 0, "all leases returned");
    }
}
