//! A shared host-thread budget with leased capacity.
//!
//! Persistent runtimes that coexist in one process — several streaming
//! operator graphs, a multi-tenant plan service sharding one machine
//! across clients — all want host threads, and the host has a fixed
//! number. [`ThreadBudget`] is the hand-off point: one shared counter of
//! total capacity from which each consumer **claims a lease**
//! ([`ThreadBudget::try_claim`]) and to which the lease returns its
//! capacity on drop. Nothing here spawns or parks threads; the budget only
//! *accounts* — enforcement is the consumer's business (a streaming graph
//! caps its farm width gates at its lease, a scheduler recomputes shares
//! from `total` and `in_use`).
//!
//! Claims are best-effort and non-blocking: a claim asks for a preferred
//! width and a minimum, and receives whatever slice of the remaining
//! budget fits (or `None` when even the minimum does not). That favours
//! admission over fairness — fair *shares* are a policy the caller
//! computes (see `scl-serve`'s shard scheduler); the budget just keeps the
//! process-wide total honest.
//!
//! The total itself is mutable at runtime ([`ThreadBudget::resize`]): an
//! autonomic manager narrowing a service's host footprint shrinks the
//! budget, and the contraction takes effect *as leases return* — capacity
//! already out on leases is never revoked (replicas parked on width gates
//! would otherwise deadlock mid-item). While `in_use > total` the budget
//! is **over-committed**: `available()` reads 0, every claim is refused,
//! and the overshoot drains as leases drop. The introspection gauges —
//! [`ThreadBudget::outstanding`], [`ThreadBudget::peak_in_use`],
//! [`ThreadBudget::is_overcommitted`] — exist so a manager can observe
//! that contention instead of guessing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared pool of host-thread capacity; see the [module docs](self).
#[derive(Debug)]
pub struct ThreadBudget {
    total: AtomicUsize,
    used: AtomicUsize,
    /// Live leases (claimed, not yet dropped).
    leases: AtomicUsize,
    /// High-water mark of `used` since construction.
    peak: AtomicUsize,
}

impl ThreadBudget {
    /// A budget of `total` threads (at least 1), ready to share.
    pub fn new(total: usize) -> Arc<ThreadBudget> {
        Arc::new(ThreadBudget {
            total: AtomicUsize::new(total.max(1)),
            used: AtomicUsize::new(0),
            leases: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        })
    }

    /// Current total capacity (see [`ThreadBudget::resize`]).
    pub fn total(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// Capacity currently out on leases.
    pub fn in_use(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Capacity not yet leased (0 while over-committed after a shrink).
    pub fn available(&self) -> usize {
        self.total().saturating_sub(self.in_use())
    }

    /// Live leases right now — claims that have not yet dropped.
    pub fn outstanding(&self) -> usize {
        self.leases.load(Ordering::Relaxed)
    }

    /// High-water mark of [`ThreadBudget::in_use`] since construction —
    /// how hard the budget has ever been pressed, for managers deciding
    /// whether contention is real or historical.
    pub fn peak_in_use(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Whether leased capacity currently exceeds the total — only
    /// possible after [`ThreadBudget::resize`] shrank the budget below
    /// what was already out on leases.
    pub fn is_overcommitted(&self) -> bool {
        self.in_use() > self.total()
    }

    /// Retarget the total capacity (clamped to at least 1). Growing takes
    /// effect immediately. Shrinking **never revokes** capacity already
    /// out on leases: outstanding leases stay valid and return their full
    /// grant on drop; until enough have returned, the budget reads
    /// over-committed ([`ThreadBudget::is_overcommitted`]), `available()`
    /// is 0, and claims are refused. Returns the previous total.
    pub fn resize(&self, new_total: usize) -> usize {
        self.total.swap(new_total.max(1), Ordering::AcqRel)
    }

    /// Claim between `min` and `want` threads (both at least 1; `want` is
    /// raised to `min` if below it): the lease receives `want` when it
    /// fits, otherwise whatever remains if that still covers `min`, and
    /// `None` when even `min` is unavailable. Never blocks.
    pub fn try_claim(self: &Arc<ThreadBudget>, want: usize, min: usize) -> Option<BudgetLease> {
        let min = min.max(1);
        let want = want.max(min);
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let avail = self.total().saturating_sub(cur);
            let grant = want.min(avail);
            if grant < min {
                return None;
            }
            match self.used.compare_exchange_weak(
                cur,
                cur + grant,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.leases.fetch_add(1, Ordering::Relaxed);
                    self.peak.fetch_max(cur + grant, Ordering::Relaxed);
                    return Some(BudgetLease {
                        granted: grant,
                        budget: Arc::clone(self),
                    });
                }
                Err(observed) => cur = observed,
            }
        }
    }
}

/// A slice of a [`ThreadBudget`], returned to the budget on drop.
#[derive(Debug)]
pub struct BudgetLease {
    granted: usize,
    budget: Arc<ThreadBudget>,
}

impl BudgetLease {
    /// How many threads this lease holds.
    pub fn granted(&self) -> usize {
        self.granted
    }

    /// Shrink the lease to `keep` threads (no-op if already at or below),
    /// returning the difference to the budget immediately — how a consumer
    /// hands capacity back mid-flight when a scheduler narrows its share.
    pub fn shrink_to(&mut self, keep: usize) {
        let keep = keep.max(1).min(self.granted);
        let give_back = self.granted - keep;
        if give_back > 0 {
            self.granted = keep;
            self.budget.used.fetch_sub(give_back, Ordering::AcqRel);
        }
    }
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        self.budget.used.fetch_sub(self.granted, Ordering::AcqRel);
        self.budget.leases.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_grant_within_the_total() {
        let b = ThreadBudget::new(4);
        assert_eq!((b.total(), b.in_use(), b.available()), (4, 0, 4));
        let l1 = b.try_claim(3, 1).unwrap();
        assert_eq!(l1.granted(), 3);
        // 1 left: a want of 3 degrades to the remainder when min allows
        let l2 = b.try_claim(3, 1).unwrap();
        assert_eq!(l2.granted(), 1);
        assert_eq!(b.available(), 0);
        // nothing left: even min=1 is refused
        assert!(b.try_claim(1, 1).is_none());
        drop(l1);
        assert_eq!(b.available(), 3);
        drop(l2);
        assert_eq!(b.available(), 4);
    }

    #[test]
    fn min_is_respected() {
        let b = ThreadBudget::new(4);
        let _l = b.try_claim(3, 3).unwrap();
        // 1 remaining < min 2: refused rather than degraded
        assert!(b.try_claim(4, 2).is_none());
        // want below min is raised to min
        let l = b.try_claim(0, 1).unwrap();
        assert_eq!(l.granted(), 1);
    }

    #[test]
    fn total_is_at_least_one() {
        let b = ThreadBudget::new(0);
        assert_eq!(b.total(), 1);
        assert!(b.try_claim(1, 1).is_some() || b.available() == 0);
    }

    #[test]
    fn shrink_returns_capacity_early() {
        let b = ThreadBudget::new(8);
        let mut l = b.try_claim(6, 1).unwrap();
        l.shrink_to(2);
        assert_eq!(l.granted(), 2);
        assert_eq!(b.available(), 6);
        // shrinking below 1 clamps, growing is not a thing
        l.shrink_to(0);
        assert_eq!(l.granted(), 1);
        l.shrink_to(5);
        assert_eq!(l.granted(), 1);
        drop(l);
        assert_eq!(b.available(), 8);
    }

    #[test]
    fn lease_and_peak_gauges_track_claims() {
        let b = ThreadBudget::new(6);
        assert_eq!((b.outstanding(), b.peak_in_use()), (0, 0));
        let l1 = b.try_claim(4, 1).unwrap();
        let l2 = b.try_claim(4, 1).unwrap();
        assert_eq!(b.outstanding(), 2);
        assert_eq!(b.peak_in_use(), 6);
        drop(l1);
        drop(l2);
        assert_eq!(b.outstanding(), 0);
        assert_eq!(b.in_use(), 0);
        // the peak is a high-water mark, not a gauge
        assert_eq!(b.peak_in_use(), 6);
    }

    // ---- regression: resize/shrink below outstanding leases ---------------
    //
    // Pinned behaviour: shrinking the total below what is already leased
    // must (a) never revoke or corrupt live leases, (b) refuse all new
    // claims while over-committed, (c) drain back to consistency as the
    // old leases drop — with no underflow on the used counter.

    #[test]
    fn shrink_below_outstanding_leases_never_revokes_or_underflows() {
        let b = ThreadBudget::new(8);
        let l1 = b.try_claim(5, 1).unwrap();
        let l2 = b.try_claim(3, 1).unwrap();
        assert_eq!(b.in_use(), 8);

        // shrink to 2 while 8 are out on leases
        assert_eq!(b.resize(2), 8);
        assert_eq!(b.total(), 2);
        assert!(b.is_overcommitted());
        assert_eq!(b.available(), 0, "no capacity while over-committed");
        assert!(b.try_claim(1, 1).is_none(), "claims refused");
        // the live leases still hold their full grants
        assert_eq!((l1.granted(), l2.granted()), (5, 3));

        // first lease returns: still over-committed (3 > 2)
        drop(l1);
        assert_eq!(b.in_use(), 3);
        assert!(b.is_overcommitted());
        assert!(b.try_claim(1, 1).is_none());

        // second returns: consistent again, capacity is the new total
        drop(l2);
        assert_eq!(b.in_use(), 0, "no underflow after draining");
        assert!(!b.is_overcommitted());
        assert_eq!(b.available(), 2);
        let l = b.try_claim(4, 1).unwrap();
        assert_eq!(l.granted(), 2, "grants respect the shrunken total");
    }

    #[test]
    fn lease_shrink_to_interacts_safely_with_budget_resize() {
        let b = ThreadBudget::new(8);
        let mut l = b.try_claim(6, 1).unwrap();
        b.resize(3); // over-committed: 6 > 3
        assert!(b.is_overcommitted());
        // handing capacity back mid-flight relieves the overshoot
        l.shrink_to(2);
        assert_eq!(b.in_use(), 2);
        assert!(!b.is_overcommitted());
        assert_eq!(b.available(), 1);
        drop(l);
        assert_eq!(b.in_use(), 0);
        assert_eq!(b.available(), 3);
    }

    #[test]
    fn grow_takes_effect_immediately() {
        let b = ThreadBudget::new(2);
        let _l = b.try_claim(2, 1).unwrap();
        assert!(b.try_claim(1, 1).is_none());
        b.resize(6);
        let l2 = b.try_claim(8, 1).unwrap();
        assert_eq!(l2.granted(), 4, "grown headroom is claimable at once");
    }

    #[test]
    fn resize_churn_under_concurrency_stays_consistent() {
        let b = ThreadBudget::new(7);
        let joins: Vec<_> = (0..6)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for k in 0..200 {
                        if i == 0 {
                            // one thread churns the total between 2 and 9
                            b.resize(2 + (k % 8));
                        } else if let Some(lease) = b.try_claim(3, 1) {
                            assert!(lease.granted() >= 1 && lease.granted() <= 3);
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(b.in_use(), 0, "all leases returned, no underflow");
        assert_eq!(b.outstanding(), 0);
    }

    #[test]
    fn concurrent_claims_never_oversubscribe() {
        let b = ThreadBudget::new(7);
        let peak = Arc::new(AtomicUsize::new(0));
        let joins: Vec<_> = (0..8)
            .map(|_| {
                let b = Arc::clone(&b);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if let Some(lease) = b.try_claim(3, 1) {
                            peak.fetch_max(b.in_use(), Ordering::Relaxed);
                            assert!(lease.granted() >= 1 && lease.granted() <= 3);
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert!(peak.load(Ordering::Relaxed) <= 7, "budget oversubscribed");
        assert_eq!(b.in_use(), 0, "all leases returned");
        let hw = b.peak_in_use();
        assert!((1..=7).contains(&hw), "high-water mark in bounds: {hw}");
    }
}
