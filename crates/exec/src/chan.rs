//! A bounded multi-producer / multi-consumer channel.
//!
//! `std::sync::mpsc` is single-consumer, which rules it out for farm
//! stages where several replica workers pull items off one queue. This is
//! the minimal MPMC complement: a [`Bounded<T>`] channel over a
//! `Mutex<VecDeque>` and two condvars, with
//!
//! * a hard **capacity** — [`Bounded::send`] blocks while the queue is
//!   full, which is what gives a streaming operator graph backpressure
//!   (memory stays O(capacity) regardless of stream length);
//! * a **close** bit — [`Bounded::close`] wakes every blocked sender and
//!   receiver; receivers drain the remaining items and then observe
//!   disconnection, the standard shutdown protocol for persistent stage
//!   workers;
//! * a **depth gauge** — [`Bounded::len`] reads the current queue depth
//!   without disturbing it, which is what an autonomic controller samples
//!   to decide whether a stage is keeping up.
//!
//! Handles are cheap clones sharing one queue (`Arc` internally); any
//! handle may send, receive, or close.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct State<T> {
    buf: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

/// A bounded MPMC channel; see the [module docs](self).
pub struct Bounded<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Bounded<T> {
    fn clone(&self) -> Self {
        Bounded {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Outcome of a non-blocking receive.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecv<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue is currently empty but the channel is open.
    Empty,
    /// The channel is closed and fully drained.
    Closed,
}

impl<T> Bounded<T> {
    /// A channel holding at most `cap` items (at least 1).
    pub fn new(cap: usize) -> Bounded<T> {
        Bounded {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    buf: VecDeque::with_capacity(cap.max(1)),
                    closed: false,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                cap: cap.max(1),
            }),
        }
    }

    /// The capacity the channel was created with.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }

    /// Current queue depth (racy by nature; a gauge, not a guarantee).
    pub fn len(&self) -> usize {
        self.inner.state.lock().expect("poisoned channel").buf.len()
    }

    /// True when the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`Bounded::close`] has been called on any handle.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().expect("poisoned channel").closed
    }

    /// Close the channel: blocked senders fail, receivers drain what is
    /// left and then observe [`TryRecv::Closed`] / `None`.
    pub fn close(&self) {
        self.inner.state.lock().expect("poisoned channel").closed = true;
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }

    /// Enqueue, blocking while the channel is full. `Err(item)` if the
    /// channel closed (the item is handed back).
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut st = self.inner.state.lock().expect("poisoned channel");
        loop {
            if st.closed {
                return Err(item);
            }
            if st.buf.len() < self.inner.cap {
                st.buf.push_back(item);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            st = self.inner.not_full.wait(st).expect("poisoned channel");
        }
    }

    /// Enqueue without blocking. `Err(item)` when full or closed.
    pub fn try_send(&self, item: T) -> Result<(), T> {
        let mut st = self.inner.state.lock().expect("poisoned channel");
        if st.closed || st.buf.len() >= self.inner.cap {
            return Err(item);
        }
        st.buf.push_back(item);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while the channel is open and empty. `None` once
    /// the channel is closed *and* drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.inner.state.lock().expect("poisoned channel");
        loop {
            if let Some(x) = st.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Some(x);
            }
            if st.closed {
                return None;
            }
            st = self.inner.not_empty.wait(st).expect("poisoned channel");
        }
    }

    /// [`Bounded::recv`] that gives up after `timeout`, returning
    /// [`TryRecv::Empty`] — the idle loop of a stage worker that must also
    /// periodically re-check its activation gate.
    pub fn recv_timeout(&self, timeout: Duration) -> TryRecv<T> {
        let mut st = self.inner.state.lock().expect("poisoned channel");
        loop {
            if let Some(x) = st.buf.pop_front() {
                self.inner.not_full.notify_one();
                return TryRecv::Item(x);
            }
            if st.closed {
                return TryRecv::Closed;
            }
            let (guard, res) = self
                .inner
                .not_empty
                .wait_timeout(st, timeout)
                .expect("poisoned channel");
            st = guard;
            if res.timed_out() && st.buf.is_empty() {
                return if st.closed {
                    TryRecv::Closed
                } else {
                    TryRecv::Empty
                };
            }
        }
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> TryRecv<T> {
        let mut st = self.inner.state.lock().expect("poisoned channel");
        match st.buf.pop_front() {
            Some(x) => {
                self.inner.not_full.notify_one();
                TryRecv::Item(x)
            }
            None if st.closed => TryRecv::Closed,
            None => TryRecv::Empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn fifo_order_and_depth() {
        let ch = Bounded::new(4);
        assert_eq!(ch.capacity(), 4);
        ch.send(1).unwrap();
        ch.send(2).unwrap();
        assert_eq!(ch.len(), 2);
        assert!(!ch.is_empty());
        assert_eq!(ch.recv(), Some(1));
        assert_eq!(ch.recv(), Some(2));
        assert!(ch.is_empty());
    }

    #[test]
    fn try_send_observes_capacity() {
        let ch = Bounded::new(2);
        ch.try_send(1).unwrap();
        ch.try_send(2).unwrap();
        assert_eq!(ch.try_send(3), Err(3));
        assert_eq!(ch.recv(), Some(1));
        ch.try_send(3).unwrap();
    }

    #[test]
    fn close_drains_then_disconnects() {
        let ch = Bounded::new(4);
        ch.send("a").unwrap();
        ch.close();
        assert!(ch.is_closed());
        assert_eq!(ch.send("b"), Err("b"));
        assert_eq!(ch.recv(), Some("a"));
        assert_eq!(ch.recv(), None);
        assert_eq!(ch.try_recv(), TryRecv::Closed);
    }

    #[test]
    fn try_recv_distinguishes_empty_and_closed() {
        let ch: Bounded<u8> = Bounded::new(1);
        assert_eq!(ch.try_recv(), TryRecv::Empty);
        ch.close();
        assert_eq!(ch.try_recv(), TryRecv::Closed);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let ch: Bounded<u8> = Bounded::new(1);
        assert_eq!(ch.recv_timeout(Duration::from_millis(1)), TryRecv::Empty);
        ch.send(9).unwrap();
        assert_eq!(ch.recv_timeout(Duration::from_millis(1)), TryRecv::Item(9));
    }

    #[test]
    fn blocked_sender_resumes_when_room_appears() {
        let ch = Bounded::new(1);
        ch.send(0u64).unwrap();
        let tx = ch.clone();
        let sender = std::thread::spawn(move || tx.send(1).is_ok());
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(ch.recv(), Some(0)); // frees the slot
        assert!(sender.join().unwrap());
        assert_eq!(ch.recv(), Some(1));
    }

    #[test]
    fn close_wakes_blocked_sender() {
        let ch = Bounded::new(1);
        ch.send(0u64).unwrap();
        let tx = ch.clone();
        let sender = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(Duration::from_millis(5));
        ch.close();
        assert_eq!(sender.join().unwrap(), Err(1));
    }

    #[test]
    fn multi_consumer_claims_each_item_once() {
        let ch = Bounded::new(64);
        let taken = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let rx = ch.clone();
            let taken = Arc::clone(&taken);
            joins.push(std::thread::spawn(move || {
                while rx.recv().is_some() {
                    taken.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for i in 0..500 {
            ch.send(i).unwrap();
        }
        ch.close();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(taken.load(Ordering::Relaxed), 500);
    }
}
