//! A bounded multi-producer / multi-consumer channel.
//!
//! `std::sync::mpsc` is single-consumer, which rules it out for farm
//! stages where several replica workers pull items off one queue. This is
//! the minimal MPMC complement: a [`Bounded<T>`] channel over a
//! `Mutex<VecDeque>` and two condvars, with
//!
//! * a hard **capacity** — [`Bounded::send`] blocks while the queue is
//!   full, which is what gives a streaming operator graph backpressure
//!   (memory stays O(capacity) regardless of stream length);
//! * a **close** bit — [`Bounded::close`] wakes every blocked sender and
//!   receiver; receivers drain the remaining items and then observe
//!   disconnection, the standard shutdown protocol for persistent stage
//!   workers;
//! * a **depth gauge** — [`Bounded::len`] reads the current queue depth
//!   without disturbing it, which is what an autonomic controller samples
//!   to decide whether a stage is keeping up.
//!
//! Handles are cheap clones sharing one queue (`Arc` internally); any
//! handle may send, receive, or close.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    buf: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

/// A bounded MPMC channel; see the [module docs](self).
pub struct Bounded<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Bounded<T> {
    fn clone(&self) -> Self {
        Bounded {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Outcome of a non-blocking receive.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecv<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue is currently empty but the channel is open.
    Empty,
    /// The channel is closed and fully drained.
    Closed,
}

impl<T> Bounded<T> {
    /// A channel holding at most `cap` items (at least 1).
    pub fn new(cap: usize) -> Bounded<T> {
        Bounded {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    buf: VecDeque::with_capacity(cap.max(1)),
                    closed: false,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                cap: cap.max(1),
            }),
        }
    }

    /// The capacity the channel was created with.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }

    /// Current queue depth (racy by nature; a gauge, not a guarantee).
    pub fn len(&self) -> usize {
        self.inner.state.lock().expect("poisoned channel").buf.len()
    }

    /// True when the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`Bounded::close`] has been called on any handle.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().expect("poisoned channel").closed
    }

    /// Close the channel: blocked senders fail, receivers drain what is
    /// left and then observe [`TryRecv::Closed`] / `None`.
    pub fn close(&self) {
        self.inner.state.lock().expect("poisoned channel").closed = true;
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }

    /// Enqueue, blocking while the channel is full. `Err(item)` if the
    /// channel closed (the item is handed back).
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut st = self.inner.state.lock().expect("poisoned channel");
        loop {
            if st.closed {
                return Err(item);
            }
            if st.buf.len() < self.inner.cap {
                st.buf.push_back(item);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            st = self.inner.not_full.wait(st).expect("poisoned channel");
        }
    }

    /// Enqueue without blocking. `Err(item)` when full or closed.
    pub fn try_send(&self, item: T) -> Result<(), T> {
        let mut st = self.inner.state.lock().expect("poisoned channel");
        if st.closed || st.buf.len() >= self.inner.cap {
            return Err(item);
        }
        st.buf.push_back(item);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while the channel is open and empty. `None` once
    /// the channel is closed *and* drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.inner.state.lock().expect("poisoned channel");
        loop {
            if let Some(x) = st.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Some(x);
            }
            if st.closed {
                return None;
            }
            st = self.inner.not_empty.wait(st).expect("poisoned channel");
        }
    }

    /// [`Bounded::recv`] that gives up at a **deadline**, returning
    /// [`TryRecv::Empty`]: the total wait never exceeds `timeout` (plus
    /// scheduling noise), no matter how many spurious or item-less
    /// notified wakeups occur in between — each loop iteration re-arms
    /// the wait with the *remaining* budget, not the full one.
    pub fn recv_timeout(&self, timeout: Duration) -> TryRecv<T> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().expect("poisoned channel");
        loop {
            if let Some(x) = st.buf.pop_front() {
                self.inner.not_full.notify_one();
                return TryRecv::Item(x);
            }
            if st.closed {
                return TryRecv::Closed;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return TryRecv::Empty;
            };
            let (guard, _) = self
                .inner
                .not_empty
                .wait_timeout(st, remaining)
                .expect("poisoned channel");
            st = guard;
        }
    }

    /// Single-wait receive: block until an item arrives, the channel
    /// closes, **or any wakeup at all** (a [`Bounded::wake_all`], a
    /// spurious wake, or `timeout` as a safety net), returning
    /// [`TryRecv::Empty`] on a wakeup that finds the buffer empty.
    ///
    /// This is the stage-worker idle primitive: unlike
    /// [`Bounded::recv_timeout`], which absorbs wakeups until its
    /// deadline, this hands control back on the *first* one so the
    /// caller can re-check out-of-band state (its width gate) that the
    /// waker changed.
    pub fn recv_or_wake(&self, timeout: Duration) -> TryRecv<T> {
        let mut st = self.inner.state.lock().expect("poisoned channel");
        if let Some(x) = st.buf.pop_front() {
            self.inner.not_full.notify_one();
            return TryRecv::Item(x);
        }
        if st.closed {
            return TryRecv::Closed;
        }
        let (mut st, _) = self
            .inner
            .not_empty
            .wait_timeout(st, timeout)
            .expect("poisoned channel");
        match st.buf.pop_front() {
            Some(x) => {
                self.inner.not_full.notify_one();
                TryRecv::Item(x)
            }
            None if st.closed => TryRecv::Closed,
            None => TryRecv::Empty,
        }
    }

    /// Wake every blocked receiver without enqueuing anything — the hook
    /// a width gate's waker uses so workers parked in
    /// [`Bounded::recv_or_wake`] re-check their admission promptly
    /// instead of waiting out a park interval.
    pub fn wake_all(&self) {
        // taking the lock orders this notify against any receiver
        // between its buffer check and its wait: no missed wakeups
        let _st = self.inner.state.lock().expect("poisoned channel");
        self.inner.not_empty.notify_all();
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> TryRecv<T> {
        let mut st = self.inner.state.lock().expect("poisoned channel");
        match st.buf.pop_front() {
            Some(x) => {
                self.inner.not_full.notify_one();
                TryRecv::Item(x)
            }
            None if st.closed => TryRecv::Closed,
            None => TryRecv::Empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn fifo_order_and_depth() {
        let ch = Bounded::new(4);
        assert_eq!(ch.capacity(), 4);
        ch.send(1).unwrap();
        ch.send(2).unwrap();
        assert_eq!(ch.len(), 2);
        assert!(!ch.is_empty());
        assert_eq!(ch.recv(), Some(1));
        assert_eq!(ch.recv(), Some(2));
        assert!(ch.is_empty());
    }

    #[test]
    fn try_send_observes_capacity() {
        let ch = Bounded::new(2);
        ch.try_send(1).unwrap();
        ch.try_send(2).unwrap();
        assert_eq!(ch.try_send(3), Err(3));
        assert_eq!(ch.recv(), Some(1));
        ch.try_send(3).unwrap();
    }

    #[test]
    fn close_drains_then_disconnects() {
        let ch = Bounded::new(4);
        ch.send("a").unwrap();
        ch.close();
        assert!(ch.is_closed());
        assert_eq!(ch.send("b"), Err("b"));
        assert_eq!(ch.recv(), Some("a"));
        assert_eq!(ch.recv(), None);
        assert_eq!(ch.try_recv(), TryRecv::Closed);
    }

    #[test]
    fn try_recv_distinguishes_empty_and_closed() {
        let ch: Bounded<u8> = Bounded::new(1);
        assert_eq!(ch.try_recv(), TryRecv::Empty);
        ch.close();
        assert_eq!(ch.try_recv(), TryRecv::Closed);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let ch: Bounded<u8> = Bounded::new(1);
        assert_eq!(ch.recv_timeout(Duration::from_millis(1)), TryRecv::Empty);
        ch.send(9).unwrap();
        assert_eq!(ch.recv_timeout(Duration::from_millis(1)), TryRecv::Item(9));
    }

    /// Regression (issue 7): `recv_timeout` used to re-arm the *full*
    /// timeout after every item-less wakeup, so a storm of notifies kept
    /// a 50 ms wait alive indefinitely. Deadline-based now: the total
    /// wait stays within ~2× the request even while another thread
    /// hammers the not-empty condvar.
    #[test]
    fn recv_timeout_is_deadline_bound_under_notify_storm() {
        let ch: Bounded<u8> = Bounded::new(1);
        let storm_ch = ch.clone();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let storm = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                storm_ch.wake_all(); // notify with nothing enqueued
                std::thread::yield_now();
            }
        });
        let t0 = std::time::Instant::now();
        assert_eq!(ch.recv_timeout(Duration::from_millis(50)), TryRecv::Empty);
        let waited = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        storm.join().unwrap();
        assert!(waited >= Duration::from_millis(45), "{waited:?}");
        assert!(
            waited <= Duration::from_millis(100),
            "recv_timeout overshot its deadline under a notify storm: {waited:?}"
        );
    }

    #[test]
    fn recv_or_wake_returns_on_first_empty_wakeup() {
        let ch: Bounded<u8> = Bounded::new(1);
        let waker = ch.clone();
        let w = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            waker.wake_all();
        });
        let t0 = std::time::Instant::now();
        // a 10 s budget, but the wake (no item) hands control back early
        assert_eq!(ch.recv_or_wake(Duration::from_secs(10)), TryRecv::Empty);
        assert!(t0.elapsed() < Duration::from_secs(5));
        w.join().unwrap();
        ch.send(3).unwrap();
        assert_eq!(ch.recv_or_wake(Duration::from_secs(10)), TryRecv::Item(3));
        ch.close();
        assert_eq!(ch.recv_or_wake(Duration::from_secs(10)), TryRecv::Closed);
    }

    #[test]
    fn blocked_sender_resumes_when_room_appears() {
        let ch = Bounded::new(1);
        ch.send(0u64).unwrap();
        let tx = ch.clone();
        let sender = std::thread::spawn(move || tx.send(1).is_ok());
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(ch.recv(), Some(0)); // frees the slot
        assert!(sender.join().unwrap());
        assert_eq!(ch.recv(), Some(1));
    }

    #[test]
    fn close_wakes_blocked_sender() {
        let ch = Bounded::new(1);
        ch.send(0u64).unwrap();
        let tx = ch.clone();
        let sender = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(Duration::from_millis(5));
        ch.close();
        assert_eq!(sender.join().unwrap(), Err(1));
    }

    #[test]
    fn multi_consumer_claims_each_item_once() {
        let ch = Bounded::new(64);
        let taken = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let rx = ch.clone();
            let taken = Arc::clone(&taken);
            joins.push(std::thread::spawn(move || {
                while rx.recv().is_some() {
                    taken.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for i in 0..500 {
            ch.send(i).unwrap();
        }
        ch.close();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(taken.load(Ordering::Relaxed), 500);
    }
}
