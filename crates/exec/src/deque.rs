//! Per-worker index-range deques with work stealing — the dispatch layer
//! under [`par_pipeline`](crate::par_pipeline).
//!
//! Self-scheduling every item off one shared atomic counter puts a
//! contended fetch-add on the critical path of every cheap item. The
//! stealing alternative: split the index space into one contiguous block
//! per worker up front (perfect locality, zero contention while balanced)
//! and rebalance **only when a worker runs dry**, by stealing half of a
//! victim's remaining block from the far end.
//!
//! A [`StealRange`] packs `(next, limit)` into one `AtomicU64` (each
//! half-range is a `u32` — fine for index spaces; [`par_pipeline`](crate::par_pipeline) items
//! are batch elements, not bytes), so both claim paths are a single CAS:
//!
//! * the **owner** takes `grain` items from the *front*
//!   ([`StealRange::take_front`]), advancing `next`;
//! * a **thief** takes up to half the remainder from the *back*
//!   ([`StealRange::steal_back`]), retreating `limit`.
//!
//! Front and back never hand out the same index because both moves go
//! through the same CAS'd word: any interleaving of successful updates
//! keeps `next <= limit`, and every index in the original range is handed
//! out exactly once.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// One worker's claimable index range, `next..limit`, packed into a
/// single CAS-able word; see the [module docs](self).
#[derive(Debug)]
pub struct StealRange(AtomicU64);

fn pack(next: u32, limit: u32) -> u64 {
    ((limit as u64) << 32) | next as u64
}

fn unpack(word: u64) -> (u32, u32) {
    (word as u32, (word >> 32) as u32)
}

impl StealRange {
    /// The range `start..end` (indices must fit in `u32`).
    pub fn new(start: usize, end: usize) -> StealRange {
        let start = u32::try_from(start).expect("StealRange index space exceeds u32");
        let end = u32::try_from(end).expect("StealRange index space exceeds u32");
        StealRange(AtomicU64::new(pack(start, end.max(start))))
    }

    /// Indices not yet claimed (racy gauge — used to pick victims).
    pub fn remaining(&self) -> usize {
        let (next, limit) = unpack(self.0.load(Ordering::Relaxed));
        (limit - next) as usize
    }

    /// Owner's claim: up to `grain` indices off the front, or `None` when
    /// the range is exhausted.
    pub fn take_front(&self, grain: usize) -> Option<Range<usize>> {
        let grain = grain.max(1) as u32;
        let mut claimed = 0..0u32;
        let res = self
            .0
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |word| {
                let (next, limit) = unpack(word);
                if next >= limit {
                    return None;
                }
                let take = grain.min(limit - next);
                claimed = next..next + take;
                Some(pack(next + take, limit))
            });
        res.ok()
            .map(|_| claimed.start as usize..claimed.end as usize)
    }

    /// Owner-only refill: install `range` (typically just stolen from a
    /// victim) as this deque's new claimable range. Only the owner may
    /// call this, and only when its own range is exhausted; the indices
    /// being installed were removed from exactly one other word by the
    /// thief's CAS, so the global claim-once invariant carries over.
    /// (No ABA hazard: a word can never repeat an earlier value of
    /// itself, because refilled indices were — by claim-once — never in
    /// this word before.)
    pub fn refill(&self, range: Range<usize>) {
        debug_assert_eq!(self.remaining(), 0, "refill would orphan unclaimed indices");
        let start = u32::try_from(range.start).expect("StealRange index space exceeds u32");
        let end = u32::try_from(range.end).expect("StealRange index space exceeds u32");
        self.0.store(pack(start, end.max(start)), Ordering::Release);
    }

    /// Thief's claim: up to half the remainder (capped at `max`) off the
    /// back, or `None` when there is nothing worth stealing.
    pub fn steal_back(&self, max: usize) -> Option<Range<usize>> {
        let max = max.max(1) as u32;
        let mut claimed = 0..0u32;
        let res = self
            .0
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |word| {
                let (next, limit) = unpack(word);
                if next >= limit {
                    return None;
                }
                // half the remainder, rounded up so a 1-item range is stealable
                let take = limit
                    .div_ceil(2)
                    .saturating_sub(next / 2)
                    .min(limit - next)
                    .min(max);
                if take == 0 {
                    return None;
                }
                claimed = limit - take..limit;
                Some(pack(next, limit - take))
            });
        res.ok()
            .map(|_| claimed.start as usize..claimed.end as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn owner_drains_front_in_order() {
        let r = StealRange::new(0, 10);
        assert_eq!(r.take_front(4), Some(0..4));
        assert_eq!(r.take_front(4), Some(4..8));
        assert_eq!(r.take_front(4), Some(8..10));
        assert_eq!(r.take_front(4), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn thief_takes_about_half_from_the_back() {
        let r = StealRange::new(0, 8);
        assert_eq!(r.steal_back(usize::MAX), Some(4..8));
        assert_eq!(r.steal_back(usize::MAX), Some(2..4));
        assert_eq!(r.take_front(8), Some(0..2));
        assert_eq!(r.steal_back(usize::MAX), None);
    }

    #[test]
    fn single_item_range_is_stealable() {
        let r = StealRange::new(5, 6);
        assert_eq!(r.steal_back(usize::MAX), Some(5..6));
        assert_eq!(r.take_front(1), None);
    }

    #[test]
    fn empty_range_yields_nothing() {
        let r = StealRange::new(3, 3);
        assert_eq!(r.take_front(1), None);
        assert_eq!(r.steal_back(1), None);
    }

    /// Concurrency claim-once: an owner hammering the front and thieves
    /// hammering the back must hand out every index exactly once.
    #[test]
    fn concurrent_owner_and_thieves_claim_each_index_once() {
        const N: usize = 40_000;
        let r = Arc::new(StealRange::new(0, N));
        let mut joins = Vec::new();
        // owner
        {
            let r = Arc::clone(&r);
            joins.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(range) = r.take_front(7) {
                    got.extend(range);
                }
                got
            }));
        }
        // thieves
        for _ in 0..3 {
            let r = Arc::clone(&r);
            joins.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(range) = r.steal_back(64) {
                    got.extend(range);
                }
                got
            }));
        }
        let mut all: Vec<usize> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..N).collect::<Vec<_>>(), "lost or duplicated index");
    }
}
