#![warn(missing_docs)]
//! # scl-exec — execution substrate for SCL skeletons
//!
//! The paper's skeletons were "implemented in a problem independent manner"
//! as templates over Fortran + MPI. In this reproduction the equivalent
//! substrate is this crate: a small, from-scratch threaded runtime (no
//! `rayon`) that the skeleton layer uses to apply sequential base-language
//! fragments to the partitions of a distributed array — really in parallel
//! when the host has cores to spare, or sequentially for deterministic
//! debugging.
//!
//! Two building blocks are provided:
//!
//! * [`par_map`] / [`par_map_indexed`] — scoped, self-scheduling parallel map
//!   over a slice, preserving output order and propagating worker panics.
//! * [`ThreadPool`] — a persistent pool for `'static` jobs with joinable
//!   [`JobHandle`]s.
//!
//! An [`ExecPolicy`] selects between sequential and threaded execution and is
//! threaded through `scl-core`'s context type.

pub mod policy;
pub mod pool;
pub mod scope;

pub use policy::ExecPolicy;
pub use pool::{JobHandle, ThreadPool};
pub use scope::{par_for_each, par_map, par_map_indexed};
