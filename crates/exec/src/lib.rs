#![warn(missing_docs)]
//! # scl-exec — execution substrate for SCL skeletons
//!
//! The paper's skeletons were "implemented in a problem independent manner"
//! as templates over Fortran + MPI. In this reproduction the equivalent
//! substrate is this crate: a small, from-scratch threaded runtime (no
//! `rayon`) that the skeleton layer uses to apply sequential base-language
//! fragments to the partitions of a distributed array — really in parallel
//! when the host has cores to spare, or sequentially for deterministic
//! debugging.
//!
//! Three building blocks are provided:
//!
//! * [`par_map`] / [`par_map_indexed`] — scoped, self-scheduling parallel map
//!   over a slice, preserving output order and propagating worker panics.
//!   This is the *eager* path: every skeleton invocation spawns (and joins)
//!   its own scoped workers.
//! * [`ThreadPool`] — a persistent pool for `'static` jobs with joinable
//!   [`JobHandle`]s.
//! * [`par_pipeline`] — the *fused* path: carry a batch of items through a
//!   whole per-item stage chain on a persistent [`ThreadPool`], so a run of
//!   fused plan stages costs one dispatch instead of one thread-spawn per
//!   skeleton, and each partition stays resident on one worker with no
//!   materialised intermediates between stages.
//! * [`par_permute`] / [`par_concat`] / [`par_scatter`] — the *zero-copy
//!   communication* path: move cells along a routing table, move-concatenate
//!   parts, and move-split a vector into contiguous ranges, all on the
//!   persistent pool with no clones. These back the owned communication
//!   skeletons (`total_exchange` bucket transpose, `gather` concat,
//!   `partition` scatter) when the cost model says the payload justifies
//!   fanning out.
//!
//! For *streaming* execution (the `scl-stream` crate) two queue families
//! live here, behind one trait face:
//!
//! * the **lock-free fast path** — a cache-padded SPSC ring
//!   ([`ring`], [`spsc`]) and its MPMC composition into per-producer /
//!   per-consumer lane matrices ([`ring_mpmc`], [`mpmc`]), with
//!   spin-then-park waiting ([`Backoff`], [`backoff`]): stage-to-stage
//!   links whose hot path takes no lock and whose idle path costs
//!   nothing;
//! * [`Bounded`] — the mutex+condvar MPMC fallback with a depth gauge
//!   and a close protocol, for links whose topology or capacity split
//!   doesn't fit the rings;
//! * [`LinkTx`] / [`LinkRx`] ([`link`]) — the common face, so pumps and
//!   replica loops are written once over either family;
//! * [`spawn_stage_workers`] — long-lived pipeline-stage workers on a
//!   [`ThreadPool`], each looping `take → work → emit` over a shared
//!   [`Bounded`] input, gated by an atomic width so an autonomic
//!   controller can widen/narrow a farm without spawning threads — and
//!   [`spawn_farm_workers`], the lock-free counterpart where each
//!   replica owns a private ring pair and admission control lives in the
//!   pump's routing;
//! * [`StealRange`] ([`deque`]) — the per-worker stealing deques under
//!   [`par_pipeline`]'s dispatch.
//!
//! When several such runtimes share one process — a multi-tenant plan
//! service running many graphs against one machine — [`ThreadBudget`]
//! accounts for the host-wide thread capacity: consumers claim
//! [`BudgetLease`]s and cap their width gates at the grant, keeping the
//! sum of *active* replicas across all tenants within the host budget
//! whenever capacity is claimable. The budget accounts rather than
//! enforces: a consumer that chooses to run after an empty grant (as a
//! serving layer may, preferring admission over stalling) does so at
//! minimum width, outside the accounted total.
//!
//! An [`ExecPolicy`] selects between sequential, threaded, and
//! cost-model-driven execution and is threaded through `scl-core`'s context
//! type. Host parallelism is queried once per process ([`host_threads`]) —
//! never per call. [`ExecPolicy::from_env`] reads the `SCL_EXEC_POLICY`
//! pin the CI matrix sets, erroring (never silently falling back) on
//! unrecognised values.

pub mod backoff;
pub mod budget;
pub mod chan;
pub mod deque;
pub mod link;
pub mod mpmc;
pub mod policy;
pub mod pool;
pub mod scope;
pub mod spsc;
pub mod stage;

pub use backoff::Backoff;
pub use budget::{BudgetLease, ThreadBudget};
pub use chan::{Bounded, TryRecv};
pub use deque::StealRange;
pub use link::{LinkRx, LinkTx};
pub use mpmc::{ring_mpmc, RingReceiver, RingSender};
pub use policy::{host_threads, ExecPolicy, POLICY_ENV_VAR};
pub use pool::{JobHandle, ThreadPool};
pub use scope::{
    par_concat, par_for_each, par_map, par_map_indexed, par_permute, par_pipeline, par_scatter,
};
pub use spsc::{ring, SpscReceiver, SpscSender};
pub use stage::{spawn_farm_workers, spawn_stage_workers, StageCrew, WidthGate};
