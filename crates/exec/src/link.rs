//! A common face over the two queue families: the lock-free rings
//! ([`spsc`](crate::spsc), [`mpmc`](crate::mpmc)) and the mutex+condvar
//! [`Bounded`] fallback.
//!
//! Stage-to-stage plumbing (farm replica loops, generic pumps) is written
//! once against [`LinkTx`]/[`LinkRx`] and works over either family; the
//! caller picks the implementation per link — rings when the topology is
//! known (one pump, one consumer per lane) and the capacity splits
//! cleanly, [`Bounded`] otherwise. Semantics both
//! families share and the traits promise:
//!
//! * **bounded**: `try_send` fails (item handed back) rather than grow;
//! * **close-then-drain**: after `close`, receivers drain what was queued
//!   and then observe [`TryRecv::Closed`] / `None`, senders fail;
//! * **deadline-based timed receive**: `recv_timeout` never waits more
//!   than the requested budget in total, no matter how many spurious
//!   wakeups occur.

use crate::chan::{Bounded, TryRecv};
use crate::mpmc::{RingReceiver, RingSender};
use crate::spsc::{SpscReceiver, SpscSender};
use std::time::Duration;

/// The sending end of a bounded stage-to-stage link.
pub trait LinkTx<T: Send>: Send {
    /// Enqueue without blocking. `Err(item)` when full or closed.
    fn try_send(&self, item: T) -> Result<(), T>;
    /// Enqueue, blocking while full. `Err(item)` once closed.
    fn send(&self, item: T) -> Result<(), T>;
    /// Close the link: receivers drain, then observe disconnection.
    fn close(&self);
    /// Items currently queued (racy gauge).
    fn len(&self) -> usize;
    /// True when the gauge reads zero.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The capacity the link was created with.
    fn capacity(&self) -> usize;
}

/// The receiving end of a bounded stage-to-stage link.
pub trait LinkRx<T: Send>: Send {
    /// Dequeue without blocking.
    fn try_recv(&self) -> TryRecv<T>;
    /// Dequeue, blocking while open and empty. `None` once closed and
    /// drained.
    fn recv(&self) -> Option<T>;
    /// [`LinkRx::recv`] bounded by a total-wait deadline.
    fn recv_timeout(&self, timeout: Duration) -> TryRecv<T>;
    /// Close the link: blocked senders fail.
    fn close(&self);
}

impl<T: Send> LinkTx<T> for Bounded<T> {
    fn try_send(&self, item: T) -> Result<(), T> {
        Bounded::try_send(self, item)
    }
    fn send(&self, item: T) -> Result<(), T> {
        Bounded::send(self, item)
    }
    fn close(&self) {
        Bounded::close(self)
    }
    fn len(&self) -> usize {
        Bounded::len(self)
    }
    fn capacity(&self) -> usize {
        Bounded::capacity(self)
    }
}

impl<T: Send> LinkRx<T> for Bounded<T> {
    fn try_recv(&self) -> TryRecv<T> {
        Bounded::try_recv(self)
    }
    fn recv(&self) -> Option<T> {
        Bounded::recv(self)
    }
    fn recv_timeout(&self, timeout: Duration) -> TryRecv<T> {
        Bounded::recv_timeout(self, timeout)
    }
    fn close(&self) {
        Bounded::close(self)
    }
}

impl<T: Send> LinkTx<T> for SpscSender<T> {
    fn try_send(&self, item: T) -> Result<(), T> {
        SpscSender::try_send(self, item)
    }
    fn send(&self, item: T) -> Result<(), T> {
        SpscSender::send(self, item)
    }
    fn close(&self) {
        SpscSender::close(self)
    }
    fn len(&self) -> usize {
        SpscSender::len(self)
    }
    fn capacity(&self) -> usize {
        SpscSender::capacity(self)
    }
}

impl<T: Send> LinkRx<T> for SpscReceiver<T> {
    fn try_recv(&self) -> TryRecv<T> {
        SpscReceiver::try_recv(self)
    }
    fn recv(&self) -> Option<T> {
        SpscReceiver::recv(self)
    }
    fn recv_timeout(&self, timeout: Duration) -> TryRecv<T> {
        SpscReceiver::recv_timeout(self, timeout)
    }
    fn close(&self) {
        SpscReceiver::close(self)
    }
}

impl<T: Send> LinkTx<T> for RingSender<T> {
    fn try_send(&self, item: T) -> Result<(), T> {
        RingSender::try_send(self, item)
    }
    fn send(&self, item: T) -> Result<(), T> {
        RingSender::send(self, item)
    }
    fn close(&self) {
        RingSender::close(self)
    }
    fn len(&self) -> usize {
        RingSender::len(self)
    }
    fn capacity(&self) -> usize {
        RingSender::capacity(self)
    }
}

impl<T: Send> LinkRx<T> for RingReceiver<T> {
    fn try_recv(&self) -> TryRecv<T> {
        RingReceiver::try_recv(self)
    }
    fn recv(&self) -> Option<T> {
        RingReceiver::recv(self)
    }
    fn recv_timeout(&self, timeout: Duration) -> TryRecv<T> {
        RingReceiver::recv_timeout(self, timeout)
    }
    fn close(&self) {
        RingReceiver::close(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpmc::ring_mpmc;
    use crate::spsc::ring;

    /// One generic pump, three link families: the trait really is a
    /// common face.
    fn pump<T: Send, R: LinkRx<T>, S: LinkTx<T>>(rx: R, tx: S) -> usize {
        let mut moved = 0;
        while let Some(x) = rx.recv() {
            if tx.send(x).is_err() {
                break;
            }
            moved += 1;
        }
        tx.close();
        moved
    }

    #[test]
    fn generic_pump_runs_over_every_link_family() {
        // Bounded → SPSC ring
        let a: Bounded<u32> = Bounded::new(4);
        let (btx, brx) = ring::<u32>(4);
        for i in 0..4 {
            a.send(i).unwrap();
        }
        a.close();
        assert_eq!(pump(a, btx), 4);
        // SPSC ring → MPMC matrix
        let (mut ctxs, mut crxs) = ring_mpmc::<u32>(1, 1, 4);
        assert_eq!(pump(brx, ctxs.remove(0)), 4);
        let crx = crxs.remove(0);
        let mut got = vec![];
        while let Some(x) = crx.recv() {
            got.push(x);
        }
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
