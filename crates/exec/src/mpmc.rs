//! MPMC by composition: a P×C matrix of SPSC rings.
//!
//! The FastFlow recipe (PAPERS.md) for a lock-free multi-producer /
//! multi-consumer queue is not a CAS loop over one shared array — it is
//! **no shared array at all**: producer `p` and consumer `c` communicate
//! over a private [`spsc`](crate::spsc) ring `(p, c)`, so every queue
//! operation in the matrix is still the wait-free single-writer /
//! single-reader protocol, and the only cross-thread contention is the
//! cache traffic of the rings themselves.
//!
//! * [`RingSender`] `p` owns row `p`: it round-robins its pushes over the
//!   open, non-full lanes of the row ([`RingSender::try_send_within`]
//!   restricts the dispatch to a prefix of the consumers — how a farm
//!   pump honours its width gate without the workers ever taking a lock);
//! * [`RingReceiver`] `c` owns column `c`: it round-robins its pops over
//!   the column and reports [`TryRecv::Closed`] only when **every** lane
//!   is closed and drained — one producer (or worker) leaving never
//!   strands another's in-flight items;
//! * each side parks on one `ParkSlot` shared by all its lanes (a pop
//!   anywhere in row `p` wakes producer `p`; a push anywhere in column
//!   `c` wakes consumer `c`), with the same SeqCst handshake as the
//!   underlying rings.
//!
//! Capacity: each lane holds `max(1, capacity / max(P, C))` items, so the
//! 1×C and P×1 matrices a farm actually builds (emitter→replicas,
//! replicas→collector) hold ≈ `capacity` items in total, matching the
//! backpressure bound of a [`Bounded`](crate::Bounded) link they replace.
//! A general P×C matrix (both > 1) holds up to `min(P, C) × capacity`.
//!
//! Handles are `Send` but neither `Clone` nor `Sync` — the type system
//! keeps every lane single-producer/single-consumer.

use crate::backoff::{Backoff, ParkSlot, PARK_SAFETY};
use crate::chan::TryRecv;
use crate::spsc::{ring_shared, SpscReceiver, SpscSender};
use std::cell::Cell;
use std::sync::atomic::{fence, AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Producer handle over one row of the ring matrix; see the
/// [module docs](self).
pub struct RingSender<T> {
    lanes: Vec<SpscSender<T>>,
    cursor: Cell<usize>,
    park: Arc<ParkSlot>,
    cap: usize,
}

/// Consumer handle over one column of the ring matrix; see the
/// [module docs](self).
pub struct RingReceiver<T> {
    lanes: Vec<SpscReceiver<T>>,
    cursor: Cell<usize>,
    park: Arc<ParkSlot>,
    cap: usize,
}

/// A `producers` × `consumers` ring matrix holding ≈ `capacity` items in
/// total (see the [module docs](self) for the per-lane split). Returns
/// one [`RingSender`] per producer and one [`RingReceiver`] per consumer;
/// dropping a handle closes its lanes, so the matrix shuts down like
/// `mpsc`: receivers observe `Closed` once every producer is gone (and
/// the lanes are drained), senders fail once every consumer is gone.
pub fn ring_mpmc<T: Send>(
    producers: usize,
    consumers: usize,
    capacity: usize,
) -> (Vec<RingSender<T>>, Vec<RingReceiver<T>>) {
    let producers = producers.max(1);
    let consumers = consumers.max(1);
    let lane_cap = (capacity / producers.max(consumers)).max(1);
    let prod_parks: Vec<Arc<ParkSlot>> = (0..producers)
        .map(|_| Arc::new(ParkSlot::default()))
        .collect();
    let cons_parks: Vec<Arc<ParkSlot>> = (0..consumers)
        .map(|_| Arc::new(ParkSlot::default()))
        .collect();
    let mut rows: Vec<Vec<SpscSender<T>>> = (0..producers)
        .map(|_| Vec::with_capacity(consumers))
        .collect();
    let mut cols: Vec<Vec<SpscReceiver<T>>> = (0..consumers)
        .map(|_| Vec::with_capacity(producers))
        .collect();
    for (p, row) in rows.iter_mut().enumerate() {
        for (c, col) in cols.iter_mut().enumerate() {
            let (tx, rx) = ring_shared(
                lane_cap,
                Arc::new(AtomicBool::new(false)),
                Arc::clone(&prod_parks[p]),
                Arc::clone(&cons_parks[c]),
            );
            row.push(tx);
            col.push(rx);
        }
    }
    let senders = rows
        .into_iter()
        .enumerate()
        .map(|(p, lanes)| RingSender {
            lanes,
            cursor: Cell::new(0),
            park: Arc::clone(&prod_parks[p]),
            cap: capacity.max(1),
        })
        .collect();
    let receivers = cols
        .into_iter()
        .enumerate()
        .map(|(c, lanes)| RingReceiver {
            lanes,
            cursor: Cell::new(0),
            park: Arc::clone(&cons_parks[c]),
            cap: capacity.max(1),
        })
        .collect();
    (senders, receivers)
}

/// Why a non-blocking matrix push failed.
enum PushErr<T> {
    Full(T),
    Closed(T),
}

impl<T: Send> RingSender<T> {
    /// The total capacity the matrix was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Items currently queued across this row's lanes (racy gauge).
    pub fn len(&self) -> usize {
        self.lanes.iter().map(SpscSender::len).sum()
    }

    /// True when the row gauge reads zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close this producer's lanes: each consumer drains what this row
    /// published, then stops counting it.
    pub fn close(&self) {
        for lane in &self.lanes {
            lane.close();
        }
    }

    /// Round-robin push over the first `cols` open, non-full lanes.
    fn push_within(&self, mut item: T, cols: usize) -> Result<(), PushErr<T>> {
        let n = cols.min(self.lanes.len()).max(1);
        let start = self.cursor.get() % n;
        let mut any_open = false;
        for i in 0..n {
            let lane_idx = (start + i) % n;
            let lane = &self.lanes[lane_idx];
            if lane.is_closed() {
                continue;
            }
            any_open = true;
            match lane.try_send(item) {
                Ok(()) => {
                    self.cursor.set((lane_idx + 1) % n);
                    return Ok(());
                }
                // closed-vs-full is racy here; the retry loop re-checks
                Err(x) => item = x,
            }
        }
        if any_open {
            Err(PushErr::Full(item))
        } else {
            Err(PushErr::Closed(item))
        }
    }

    /// Enqueue without blocking. `Err(item)` when every lane is full or
    /// closed.
    pub fn try_send(&self, item: T) -> Result<(), T> {
        self.try_send_within(item, self.lanes.len())
    }

    /// [`RingSender::try_send`] restricted to the first `cols` consumers
    /// — the pump-side routing hook for a farm's width gate: narrowed-off
    /// replicas simply stop receiving new items (they still drain their
    /// own ring, so nothing is ever stranded behind a narrowed gate).
    pub fn try_send_within(&self, item: T, cols: usize) -> Result<(), T> {
        self.push_within(item, cols).map_err(|e| match e {
            PushErr::Full(x) | PushErr::Closed(x) => x,
        })
    }

    /// Enqueue, blocking (spin-then-park) while every lane is full.
    /// `Err(item)` once every lane is closed.
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut item = item;
        let mut backoff = Backoff::new();
        loop {
            match self.push_within(item, self.lanes.len()) {
                Ok(()) => return Ok(()),
                Err(PushErr::Closed(x)) => return Err(x),
                Err(PushErr::Full(x)) => item = x,
            }
            if backoff.snooze() {
                self.park.prepare();
                // order the re-check after the published waiting flag
                // (see backoff.rs: the peer's pop fences then probes it)
                fence(Ordering::SeqCst);
                match self.push_within(item, self.lanes.len()) {
                    Ok(()) => {
                        self.park.clear();
                        return Ok(());
                    }
                    Err(PushErr::Closed(x)) => {
                        self.park.clear();
                        return Err(x);
                    }
                    Err(PushErr::Full(x)) => {
                        item = x;
                        self.park.park(PARK_SAFETY);
                        self.park.clear();
                    }
                }
                backoff.reset();
            }
        }
    }
}

impl<T: Send> RingReceiver<T> {
    /// The total capacity the matrix was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Items currently queued across this column's lanes (racy gauge).
    pub fn len(&self) -> usize {
        self.lanes.iter().map(SpscReceiver::len).sum()
    }

    /// True when the column gauge reads zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close this consumer's lanes: producers stop routing to this
    /// column; blocked producers fail once every column is closed.
    pub fn close(&self) {
        for lane in &self.lanes {
            lane.close();
        }
    }

    /// Dequeue without blocking. [`TryRecv::Closed`] only once every lane
    /// is closed **and** drained.
    pub fn try_recv(&self) -> TryRecv<T> {
        let n = self.lanes.len();
        let start = self.cursor.get() % n;
        let mut all_closed = true;
        for i in 0..n {
            let lane_idx = (start + i) % n;
            match self.lanes[lane_idx].try_recv() {
                TryRecv::Item(x) => {
                    self.cursor.set((lane_idx + 1) % n);
                    return TryRecv::Item(x);
                }
                TryRecv::Empty => all_closed = false,
                TryRecv::Closed => {}
            }
        }
        if all_closed {
            TryRecv::Closed
        } else {
            TryRecv::Empty
        }
    }

    /// Dequeue, blocking (spin-then-park) while every lane is open and
    /// empty. `None` once every lane is closed and drained.
    pub fn recv(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_recv() {
                TryRecv::Item(x) => return Some(x),
                TryRecv::Closed => return None,
                TryRecv::Empty => {}
            }
            if backoff.snooze() {
                if let Some(done) = self.park_empty(PARK_SAFETY) {
                    return done;
                }
                backoff.reset();
            }
        }
    }

    /// [`RingReceiver::recv`] that gives up at a **deadline**: the total
    /// wait never exceeds `timeout` (plus scheduling noise), no matter
    /// how many wakeups occur in between.
    pub fn recv_timeout(&self, timeout: Duration) -> TryRecv<T> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::new();
        loop {
            match self.try_recv() {
                TryRecv::Item(x) => return TryRecv::Item(x),
                TryRecv::Closed => return TryRecv::Closed,
                TryRecv::Empty => {}
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return TryRecv::Empty;
            };
            if backoff.snooze() {
                if let Some(done) = self.park_empty(remaining.min(PARK_SAFETY)) {
                    return match done {
                        Some(x) => TryRecv::Item(x),
                        None => TryRecv::Closed,
                    };
                }
                backoff.reset();
            }
        }
    }

    /// Park until a producer publishes or closes (bounded by `limit`).
    /// `Some(outcome)` short-circuits the caller's loop when the
    /// pre-park re-check already resolved the receive.
    fn park_empty(&self, limit: Duration) -> Option<Option<T>> {
        self.park.prepare();
        // order the re-check after the published waiting flag (see
        // backoff.rs: the peer's push fences then probes it)
        fence(Ordering::SeqCst);
        match self.try_recv() {
            TryRecv::Item(x) => {
                self.park.clear();
                Some(Some(x))
            }
            TryRecv::Closed => {
                self.park.clear();
                Some(None)
            }
            TryRecv::Empty => {
                self.park.park(limit);
                self.park.clear();
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn one_by_one_matrix_is_a_plain_ring() {
        let (mut txs, mut rxs) = ring_mpmc::<u32>(1, 1, 4);
        let (tx, rx) = (txs.remove(0), rxs.remove(0));
        assert_eq!(tx.capacity(), 4);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.try_recv(), TryRecv::Item(1));
        assert_eq!(rx.try_recv(), TryRecv::Item(2));
        assert_eq!(rx.try_recv(), TryRecv::Empty);
        tx.close();
        assert_eq!(rx.try_recv(), TryRecv::Closed);
    }

    #[test]
    fn send_within_routes_only_to_the_admitted_prefix() {
        let (mut txs, rxs) = ring_mpmc::<u32>(1, 3, 9);
        let tx = txs.remove(0);
        // width narrowed to 1: every item lands in column 0
        for i in 0..3 {
            tx.try_send_within(i, 1).unwrap();
        }
        assert_eq!(tx.try_send_within(99, 1), Err(99), "lane 0 is full");
        assert_eq!(rxs[0].len(), 3);
        assert_eq!(rxs[1].len(), 0);
        assert_eq!(rxs[2].len(), 0);
        // widened back: the overflow item now fits elsewhere
        tx.try_send_within(99, 3).unwrap();
        assert_eq!(rxs[1].len() + rxs[2].len(), 1);
    }

    #[test]
    fn dropping_one_producer_does_not_strand_the_others() {
        let (mut txs, mut rxs) = ring_mpmc::<u32>(2, 1, 8);
        let rx = rxs.remove(0);
        let tx1 = txs.remove(1);
        let tx0 = txs.remove(0);
        tx0.try_send(10).unwrap();
        drop(tx0); // closes row 0 only
        tx1.try_send(20).unwrap();
        let mut got = vec![];
        while let TryRecv::Item(x) = rx.try_recv() {
            got.push(x);
        }
        got.sort_unstable();
        assert_eq!(got, vec![10, 20]);
        assert_eq!(rx.try_recv(), TryRecv::Empty, "tx1 still open");
        drop(tx1);
        assert_eq!(rx.try_recv(), TryRecv::Closed);
    }

    /// The issue's claim-once test, mirroring
    /// `chan.rs::multi_consumer_claims_each_item_once` over the ring
    /// composition: 4 producers × 4 consumers, 500 distinct items, every
    /// one delivered exactly once.
    #[test]
    fn multi_consumer_claims_each_item_once() {
        let (txs, rxs) = ring_mpmc::<u32>(4, 4, 64);
        let seen = Arc::new(Mutex::new(HashSet::new()));
        let mut joins = Vec::new();
        for rx in rxs {
            let seen = Arc::clone(&seen);
            joins.push(std::thread::spawn(move || {
                while let Some(x) = rx.recv() {
                    assert!(seen.lock().unwrap().insert(x), "item {x} claimed twice");
                }
            }));
        }
        let mut prod = Vec::new();
        for (p, tx) in txs.into_iter().enumerate() {
            prod.push(std::thread::spawn(move || {
                for i in 0..125u32 {
                    tx.send(p as u32 * 1000 + i).expect("consumers alive");
                }
                // tx drops here: closes row p
            }));
        }
        for j in prod {
            j.join().unwrap();
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(seen.lock().unwrap().len(), 500);
    }
}
