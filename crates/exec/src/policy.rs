//! Execution policy: sequential or threaded.

use std::num::NonZeroUsize;

/// How partition-local work should be executed on the host.
///
/// The simulated machine's *virtual* processor count is independent of this:
/// a 32-cell simulation can run on 4 host threads, or on one (sequentially,
/// fully deterministic scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPolicy {
    /// Run everything on the calling thread, in partition order.
    #[default]
    Sequential,
    /// Run on up to this many host threads (at least 1).
    Threads(usize),
}

impl ExecPolicy {
    /// Threaded policy sized to the host's available parallelism.
    pub fn auto() -> ExecPolicy {
        let n = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        if n <= 1 {
            ExecPolicy::Sequential
        } else {
            ExecPolicy::Threads(n)
        }
    }

    /// The number of host threads this policy will actually use for `tasks`
    /// independent tasks (never more threads than tasks, never zero).
    pub fn effective_threads(&self, tasks: usize) -> usize {
        match *self {
            ExecPolicy::Sequential => 1,
            ExecPolicy::Threads(n) => n.max(1).min(tasks.max(1)),
        }
    }

    /// True if this policy may use more than one thread.
    pub fn is_parallel(&self) -> bool {
        matches!(self, ExecPolicy::Threads(n) if *n > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(ExecPolicy::Sequential.effective_threads(100), 1);
        assert_eq!(ExecPolicy::Threads(8).effective_threads(3), 3);
        assert_eq!(ExecPolicy::Threads(8).effective_threads(100), 8);
        assert_eq!(ExecPolicy::Threads(0).effective_threads(5), 1);
        assert_eq!(ExecPolicy::Threads(4).effective_threads(0), 1);
    }

    #[test]
    fn parallel_predicate() {
        assert!(!ExecPolicy::Sequential.is_parallel());
        assert!(!ExecPolicy::Threads(1).is_parallel());
        assert!(ExecPolicy::Threads(2).is_parallel());
    }

    #[test]
    fn auto_is_sane() {
        match ExecPolicy::auto() {
            ExecPolicy::Sequential => {}
            ExecPolicy::Threads(n) => assert!(n >= 2),
        }
    }

    #[test]
    fn default_is_sequential() {
        assert_eq!(ExecPolicy::default(), ExecPolicy::Sequential);
    }
}
