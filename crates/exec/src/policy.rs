//! Execution policy: sequential, threaded, or cost-model-driven.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// The host's available parallelism, queried **once** and cached for the
/// lifetime of the process.
///
/// `std::thread::available_parallelism` can be surprisingly expensive (it
/// reads cgroup limits / sysfs on Linux), and policies used to re-query it
/// on every [`ExecPolicy::auto`] call; all callers now share this cache.
pub fn host_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// How partition-local work should be executed on the host.
///
/// The simulated machine's *virtual* processor count is independent of this:
/// a 32-cell simulation can run on 4 host threads, or on one (sequentially,
/// fully deterministic scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPolicy {
    /// Run everything on the calling thread, in partition order.
    #[default]
    Sequential,
    /// Run on up to this many host threads (at least 1).
    Threads(usize),
    /// Let a cost model decide, per fused segment, between sequential and
    /// threaded execution and pick the scheduling grain. Outside a fused
    /// segment (plain `par_map` dispatch) this behaves like
    /// [`ExecPolicy::Threads`] at the cap.
    ///
    /// This crate knows nothing about cost models; the decision itself is
    /// made by the caller (`scl-core` consults `scl-machine`'s
    /// `CostModel::fused_decision`). The variant only carries the host
    /// thread ceiling so the choice of *how many* threads stays cached here.
    ///
    /// The decision's payload estimate is **static** (`size_of` of the
    /// part type), so heap-backed parts (`Vec<T>` partitions) are
    /// under-estimated and bias the model toward sequential execution —
    /// the cheap mistake. When the caller *knows* partitions carry heavy
    /// heap payloads, [`ExecPolicy::Threads`] states that directly.
    CostDriven {
        /// Upper bound on host threads (usually [`host_threads`]).
        threads: usize,
    },
}

impl ExecPolicy {
    /// Threaded policy sized to the host's available parallelism (cached —
    /// see [`host_threads`]).
    pub fn auto() -> ExecPolicy {
        let n = host_threads();
        if n <= 1 {
            ExecPolicy::Sequential
        } else {
            ExecPolicy::Threads(n)
        }
    }

    /// Cost-driven policy capped at the host's available parallelism
    /// (cached — see [`host_threads`]).
    pub fn cost_driven() -> ExecPolicy {
        ExecPolicy::CostDriven {
            threads: host_threads(),
        }
    }

    /// The number of host threads this policy will actually use for `tasks`
    /// independent tasks (never more threads than tasks, never zero).
    /// [`ExecPolicy::CostDriven`] answers with its ceiling; the per-segment
    /// decision happens in the fused executor.
    pub fn effective_threads(&self, tasks: usize) -> usize {
        match *self {
            ExecPolicy::Sequential => 1,
            ExecPolicy::Threads(n) | ExecPolicy::CostDriven { threads: n } => {
                n.max(1).min(tasks.max(1))
            }
        }
    }

    /// True if this policy may use more than one thread.
    pub fn is_parallel(&self) -> bool {
        matches!(
            self,
            ExecPolicy::Threads(n) | ExecPolicy::CostDriven { threads: n } if *n > 1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(ExecPolicy::Sequential.effective_threads(100), 1);
        assert_eq!(ExecPolicy::Threads(8).effective_threads(3), 3);
        assert_eq!(ExecPolicy::Threads(8).effective_threads(100), 8);
        assert_eq!(ExecPolicy::Threads(0).effective_threads(5), 1);
        assert_eq!(ExecPolicy::Threads(4).effective_threads(0), 1);
    }

    #[test]
    fn parallel_predicate() {
        assert!(!ExecPolicy::Sequential.is_parallel());
        assert!(!ExecPolicy::Threads(1).is_parallel());
        assert!(ExecPolicy::Threads(2).is_parallel());
    }

    #[test]
    fn auto_is_sane() {
        match ExecPolicy::auto() {
            ExecPolicy::Sequential => {}
            ExecPolicy::Threads(n) => assert!(n >= 2),
            ExecPolicy::CostDriven { .. } => panic!("auto never yields CostDriven"),
        }
    }

    #[test]
    fn host_threads_is_cached_and_positive() {
        let a = host_threads();
        let b = host_threads();
        assert!(a >= 1);
        assert_eq!(a, b);
    }

    #[test]
    fn cost_driven_carries_the_cached_ceiling() {
        let p = ExecPolicy::cost_driven();
        assert_eq!(
            p,
            ExecPolicy::CostDriven {
                threads: host_threads()
            }
        );
        assert_eq!(p.effective_threads(2), host_threads().min(2));
        assert_eq!(
            p.is_parallel(),
            host_threads() > 1,
            "cost-driven parallelism mirrors the host"
        );
        assert!(!ExecPolicy::CostDriven { threads: 1 }.is_parallel());
    }

    #[test]
    fn default_is_sequential() {
        assert_eq!(ExecPolicy::default(), ExecPolicy::Sequential);
    }
}
