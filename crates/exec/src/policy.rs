//! Execution policy: sequential, threaded, or cost-model-driven.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// The host's available parallelism, queried **once** and cached for the
/// lifetime of the process.
///
/// `std::thread::available_parallelism` can be surprisingly expensive (it
/// reads cgroup limits / sysfs on Linux), and policies used to re-query it
/// on every [`ExecPolicy::auto`] call; all callers now share this cache.
pub fn host_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// How partition-local work should be executed on the host.
///
/// The simulated machine's *virtual* processor count is independent of this:
/// a 32-cell simulation can run on 4 host threads, or on one (sequentially,
/// fully deterministic scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPolicy {
    /// Run everything on the calling thread, in partition order.
    #[default]
    Sequential,
    /// Run on up to this many host threads (at least 1).
    Threads(usize),
    /// Let a cost model decide, per fused segment, between sequential and
    /// threaded execution and pick the scheduling grain. Outside a fused
    /// segment (plain `par_map` dispatch) this behaves like
    /// [`ExecPolicy::Threads`] at the cap.
    ///
    /// This crate knows nothing about cost models; the decision itself is
    /// made by the caller (`scl-core` consults `scl-machine`'s
    /// `CostModel::fused_decision`). The variant only carries the host
    /// thread ceiling so the choice of *how many* threads stays cached here.
    ///
    /// The decision's payload estimate is **static** (`size_of` of the
    /// part type), so heap-backed parts (`Vec<T>` partitions) are
    /// under-estimated and bias the model toward sequential execution —
    /// the cheap mistake. When the caller *knows* partitions carry heavy
    /// heap payloads, [`ExecPolicy::Threads`] states that directly.
    CostDriven {
        /// Upper bound on host threads (usually [`host_threads`]).
        threads: usize,
    },
}

/// The environment variable [`ExecPolicy::from_env`] reads.
pub const POLICY_ENV_VAR: &str = "SCL_EXEC_POLICY";

impl ExecPolicy {
    /// Parse a policy name as accepted in [`POLICY_ENV_VAR`]:
    ///
    /// * `seq` / `sequential` — [`ExecPolicy::Sequential`]
    /// * `auto` — [`ExecPolicy::auto`]
    /// * `cost` / `cost-driven` — [`ExecPolicy::cost_driven`]
    /// * `threads:N` (N ≥ 1) — [`ExecPolicy::Threads`]`(N)`
    ///
    /// Unrecognised values are an error, never a silent fallback.
    pub fn parse(s: &str) -> Result<ExecPolicy, String> {
        match s.trim() {
            "seq" | "sequential" => Ok(ExecPolicy::Sequential),
            "auto" => Ok(ExecPolicy::auto()),
            "cost" | "cost-driven" => Ok(ExecPolicy::cost_driven()),
            other => {
                if let Some(n) = other.strip_prefix("threads:") {
                    return match n.parse::<usize>() {
                        Ok(t) if t >= 1 => Ok(ExecPolicy::Threads(t)),
                        _ => Err(format!(
                            "invalid thread count in `{other}` (want `threads:N`, N >= 1)"
                        )),
                    };
                }
                Err(format!(
                    "unrecognised execution policy `{other}` \
                     (want seq | auto | cost | threads:N)"
                ))
            }
        }
    }

    /// The policy pinned through the `SCL_EXEC_POLICY` environment
    /// variable, as the CI matrix does: `Ok(None)` when unset (callers
    /// supply their own default matrix), `Ok(Some(policy))` when set to a
    /// value [`ExecPolicy::parse`] accepts, and `Err` — not a silent
    /// fallback — when set to anything else.
    ///
    /// The accepted values (see [`ExecPolicy::parse`]):
    ///
    /// | value | policy |
    /// |---|---|
    /// | `seq` / `sequential` | [`ExecPolicy::Sequential`] |
    /// | `auto` | [`ExecPolicy::auto`] — threads sized to the host |
    /// | `cost` / `cost-driven` | [`ExecPolicy::cost_driven`] |
    /// | `threads:N` (N ≥ 1) | [`ExecPolicy::Threads`]`(N)` |
    ///
    /// # Examples
    ///
    /// Doctests run in their own single-threaded process, so mutating the
    /// environment here is safe; in multi-threaded programs prefer
    /// setting `SCL_EXEC_POLICY` from the launching shell, as the CI
    /// matrix does.
    ///
    /// ```
    /// use scl_exec::{ExecPolicy, POLICY_ENV_VAR};
    ///
    /// // unset: callers fall back to their own policy matrix
    /// std::env::remove_var(POLICY_ENV_VAR);
    /// assert_eq!(ExecPolicy::from_env(), Ok(None));
    ///
    /// // pinned, as `SCL_EXEC_POLICY=threads:4 cargo test` would
    /// std::env::set_var(POLICY_ENV_VAR, "threads:4");
    /// assert_eq!(ExecPolicy::from_env(), Ok(Some(ExecPolicy::Threads(4))));
    ///
    /// std::env::set_var(POLICY_ENV_VAR, "seq");
    /// assert_eq!(ExecPolicy::from_env(), Ok(Some(ExecPolicy::Sequential)));
    ///
    /// // unrecognised values are loud errors, never silent fallbacks
    /// std::env::set_var(POLICY_ENV_VAR, "warp-speed");
    /// assert!(ExecPolicy::from_env().is_err());
    /// ```
    pub fn from_env() -> Result<Option<ExecPolicy>, String> {
        match std::env::var(POLICY_ENV_VAR) {
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(e) => Err(format!("{POLICY_ENV_VAR}: {e}")),
            Ok(s) => ExecPolicy::parse(&s)
                .map(Some)
                .map_err(|e| format!("{POLICY_ENV_VAR}: {e}")),
        }
    }

    /// Threaded policy sized to the host's available parallelism (cached —
    /// see [`host_threads`]).
    pub fn auto() -> ExecPolicy {
        let n = host_threads();
        if n <= 1 {
            ExecPolicy::Sequential
        } else {
            ExecPolicy::Threads(n)
        }
    }

    /// Cost-driven policy capped at the host's available parallelism
    /// (cached — see [`host_threads`]).
    pub fn cost_driven() -> ExecPolicy {
        ExecPolicy::CostDriven {
            threads: host_threads(),
        }
    }

    /// The number of host threads this policy will actually use for `tasks`
    /// independent tasks (never more threads than tasks, never zero).
    /// [`ExecPolicy::CostDriven`] answers with its ceiling; the per-segment
    /// decision happens in the fused executor.
    pub fn effective_threads(&self, tasks: usize) -> usize {
        match *self {
            ExecPolicy::Sequential => 1,
            ExecPolicy::Threads(n) | ExecPolicy::CostDriven { threads: n } => {
                n.max(1).min(tasks.max(1))
            }
        }
    }

    /// True if this policy may use more than one thread.
    pub fn is_parallel(&self) -> bool {
        matches!(
            self,
            ExecPolicy::Threads(n) | ExecPolicy::CostDriven { threads: n } if *n > 1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(ExecPolicy::Sequential.effective_threads(100), 1);
        assert_eq!(ExecPolicy::Threads(8).effective_threads(3), 3);
        assert_eq!(ExecPolicy::Threads(8).effective_threads(100), 8);
        assert_eq!(ExecPolicy::Threads(0).effective_threads(5), 1);
        assert_eq!(ExecPolicy::Threads(4).effective_threads(0), 1);
    }

    #[test]
    fn parallel_predicate() {
        assert!(!ExecPolicy::Sequential.is_parallel());
        assert!(!ExecPolicy::Threads(1).is_parallel());
        assert!(ExecPolicy::Threads(2).is_parallel());
    }

    #[test]
    fn auto_is_sane() {
        match ExecPolicy::auto() {
            ExecPolicy::Sequential => {}
            ExecPolicy::Threads(n) => assert!(n >= 2),
            ExecPolicy::CostDriven { .. } => panic!("auto never yields CostDriven"),
        }
    }

    #[test]
    fn host_threads_is_cached_and_positive() {
        let a = host_threads();
        let b = host_threads();
        assert!(a >= 1);
        assert_eq!(a, b);
    }

    #[test]
    fn cost_driven_carries_the_cached_ceiling() {
        let p = ExecPolicy::cost_driven();
        assert_eq!(
            p,
            ExecPolicy::CostDriven {
                threads: host_threads()
            }
        );
        assert_eq!(p.effective_threads(2), host_threads().min(2));
        assert_eq!(
            p.is_parallel(),
            host_threads() > 1,
            "cost-driven parallelism mirrors the host"
        );
        assert!(!ExecPolicy::CostDriven { threads: 1 }.is_parallel());
    }

    #[test]
    fn default_is_sequential() {
        assert_eq!(ExecPolicy::default(), ExecPolicy::Sequential);
    }

    #[test]
    fn parse_accepts_the_ci_matrix_names() {
        assert_eq!(ExecPolicy::parse("seq"), Ok(ExecPolicy::Sequential));
        assert_eq!(ExecPolicy::parse("sequential"), Ok(ExecPolicy::Sequential));
        assert_eq!(ExecPolicy::parse("auto"), Ok(ExecPolicy::auto()));
        assert_eq!(ExecPolicy::parse("cost"), Ok(ExecPolicy::cost_driven()));
        assert_eq!(
            ExecPolicy::parse("cost-driven"),
            Ok(ExecPolicy::cost_driven())
        );
        assert_eq!(ExecPolicy::parse("threads:6"), Ok(ExecPolicy::Threads(6)));
        assert_eq!(ExecPolicy::parse(" seq "), Ok(ExecPolicy::Sequential));
    }

    #[test]
    fn parse_rejects_garbage_loudly() {
        for bad in ["", "fast", "threads:", "threads:0", "threads:x", "SEQ"] {
            let err = ExecPolicy::parse(bad).unwrap_err();
            assert!(
                err.contains("polic") || err.contains("thread"),
                "{bad}: {err}"
            );
        }
    }

    // from_env itself is covered indirectly: the test binaries run with
    // SCL_EXEC_POLICY either unset or set by the CI matrix, and mutating
    // the process environment from a multi-threaded test harness is UB in
    // Rust 2024 terms — parse() above covers the interesting logic.
    #[test]
    fn from_env_agrees_with_the_current_environment() {
        match std::env::var(POLICY_ENV_VAR) {
            Err(_) => assert_eq!(ExecPolicy::from_env(), Ok(None)),
            Ok(s) => match ExecPolicy::parse(&s) {
                Ok(p) => assert_eq!(ExecPolicy::from_env(), Ok(Some(p))),
                Err(_) => assert!(ExecPolicy::from_env().is_err()),
            },
        }
    }
}
