//! A persistent thread pool for `'static` jobs.
//!
//! [`ThreadPool`] complements the scoped [`crate::scope`] primitives: it owns
//! long-lived worker threads fed from a single shared queue, for workloads
//! that submit independent jobs over time (e.g. a stream of `farm` tasks)
//! rather than one bulk-parallel slice. Each submission returns a
//! [`JobHandle`] that can be joined for the job's result; panics inside a job
//! are caught and surfaced at join time, never killing a worker.

use std::any::Any;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

/// The result of a submitted job: either its return value or the panic
/// payload it raised.
pub struct JobHandle<R> {
    rx: Receiver<std::thread::Result<R>>,
}

impl<R> JobHandle<R> {
    /// Wait for the job and return its result; a panicking job yields
    /// `Err(payload)` just like [`std::thread::JoinHandle::join`].
    pub fn join(self) -> std::thread::Result<R> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(Box::new("scl-exec: job dropped before completion") as Box<dyn Any + Send>)
        })
    }

    /// Non-blocking poll: `Some(result)` once the job has finished — or
    /// once its result channel died, which yields the same "job dropped
    /// before completion" panic payload [`JobHandle::join`] synthesizes.
    /// (Mapping disconnection to `None`, as this used to, turns every
    /// poll loop over a dead job into an infinite spin.)
    pub fn try_join(&self) -> Option<std::thread::Result<R>>
    where
        R: Send,
    {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(Box::new(
                "scl-exec: job dropped before completion",
            ) as Box<dyn Any + Send>)),
        }
    }
}

impl ThreadPool {
    /// Spawn a pool with `size` workers (at least 1).
    pub fn new(size: usize) -> ThreadPool {
        let size = size.max(1);
        let (tx, rx) = channel::<Job>();
        // std::sync::mpsc is single-consumer, so the workers share the
        // receiver behind a mutex; a worker holds the lock only while
        // *taking* a job, never while running it.
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..size)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("scl-worker-{i}"))
                    .spawn(move || loop {
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break, // a worker panicked holding the lock
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // channel closed: pool dropped
                        }
                    })
                    .expect("failed to spawn scl-exec worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submit a job, returning a handle to its eventual result.
    pub fn submit<R, F>(&self, f: F) -> JobHandle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let (rtx, rrx) = sync_channel::<std::thread::Result<R>>(1);
        let job: Job = Box::new(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let _ = rtx.send(result);
        });
        self.tx
            .as_ref()
            .expect("pool already shut down")
            .send(job)
            .expect("all scl-exec workers exited");
        JobHandle { rx: rrx }
    }

    /// Submit a batch and wait for all results, in submission order.
    ///
    /// # Panics
    /// Re-raises the first job panic encountered.
    pub fn submit_all<R, F, I>(&self, jobs: I) -> Vec<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
        I: IntoIterator<Item = F>,
    {
        let handles: Vec<JobHandle<R>> = jobs.into_iter().map(|f| self.submit(f)).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.size())
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets each worker drain and exit.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_submitted_jobs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.size(), 4);
        let h = pool.submit(|| 21 * 2);
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn size_is_at_least_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        assert_eq!(pool.submit(|| 1).join().unwrap(), 1);
    }

    #[test]
    fn submit_all_preserves_order() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = (0..100).map(|i| move || i * i).collect();
        let out = pool.submit_all(jobs);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn job_panic_is_caught_at_join() {
        let pool = ThreadPool::new(2);
        let h = pool.submit(|| -> u32 { panic!("job exploded") });
        assert!(h.join().is_err());
        // the worker survived and keeps serving:
        assert_eq!(pool.submit(|| 7).join().unwrap(), 7);
    }

    #[test]
    #[should_panic(expected = "job exploded")]
    fn submit_all_reraises_panics() {
        let pool = ThreadPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("job exploded"))];
        let _ = pool.submit_all(jobs);
    }

    #[test]
    fn drop_joins_workers_after_draining() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let hits = hits.clone();
                // fire-and-forget handles: results discarded
                let _ = pool.submit(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            // pool dropped here: must drain all 50 jobs before joining
        }
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn try_join_eventually_ready() {
        let pool = ThreadPool::new(1);
        let h = pool.submit(|| 5u32);
        let mut val = None;
        for _ in 0..10_000 {
            if let Some(r) = h.try_join() {
                val = Some(r.unwrap());
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(val, Some(5));
    }

    /// Regression (issue 7): a dropped result channel used to come back
    /// as `None` from `try_join`, indistinguishable from "still running"
    /// — a poll loop on such a job spins forever. It must surface the
    /// same panic payload `join` synthesizes.
    #[test]
    fn try_join_reports_dropped_job_instead_of_none() {
        let (tx, rx) = sync_channel::<std::thread::Result<u32>>(1);
        drop(tx); // the job's result can never arrive
        let h = JobHandle { rx };
        let result = h
            .try_join()
            .expect("disconnection must be reported, not polled forever");
        let payload = result.expect_err("a lost job is an error, not a value");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("scl-exec: job dropped before completion")
        );
        // and join agrees with try_join on the payload
        let (tx, rx) = sync_channel::<std::thread::Result<u32>>(1);
        drop(tx);
        let payload = JobHandle { rx }.join().unwrap_err();
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("scl-exec: job dropped before completion")
        );
    }

    #[test]
    fn many_concurrent_submitters() {
        let pool = Arc::new(ThreadPool::new(4));
        let mut joins = vec![];
        for t in 0..8 {
            let pool = pool.clone();
            joins.push(std::thread::spawn(move || {
                let jobs: Vec<_> = (0..50u64).map(|i| move || i + t).collect();
                pool.submit_all(jobs).iter().sum::<u64>()
            }));
        }
        let total: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        let expect: u64 = (0..8u64)
            .map(|t| (0..50u64).map(|i| i + t).sum::<u64>())
            .sum();
        assert_eq!(total, expect);
    }
}
