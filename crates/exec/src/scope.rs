//! Scoped parallel map over a slice, and the persistent-pool pipeline.
//!
//! [`par_map_indexed`] is the workhorse behind every *eager* data-parallel
//! skeleton: it applies a function to each element of a slice, using
//! self-scheduling (an atomic work counter) so that unevenly sized
//! partitions — the `farm` skeleton's raison d'être — balance across host
//! threads automatically. It spawns **scoped threads per call**, which is
//! fine for one bulk skeleton but wasteful when a plan runs many skeletons
//! back to back.
//!
//! [`par_pipeline`] is the fused-execution counterpart: it runs a batch of
//! items through an arbitrary per-item stage chain on a persistent
//! [`ThreadPool`], so a whole run of fused stages costs **one** dispatch
//! instead of one thread-spawn per skeleton, and each item stays resident
//! on one worker for the entire chain (no materialised intermediates).
//!
//! Results come back **in input order** regardless of completion order, and
//! a panic in any worker propagates to the caller (after all workers have
//! stopped), matching the behaviour of a plain sequential loop closely
//! enough for tests to rely on it.

use crate::deque::StealRange;
use crate::policy::ExecPolicy;
use crate::pool::ThreadPool;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Joins every outstanding handle on drop, so submitted jobs can never
/// outlive a borrow they were (unsafely) granted — even if the submitting
/// frame unwinds mid-submission.
struct JoinOnDrop<R>(Vec<crate::pool::JobHandle<R>>);
impl<R> Drop for JoinOnDrop<R> {
    fn drop(&mut self) {
        for h in self.0.drain(..) {
            let _ = h.join();
        }
    }
}

/// Submit `workers` copies of `job` to the pool and join them all,
/// re-raising the first job panic after every worker has stopped.
///
/// # Safety
/// The pool's workers require `'static` jobs; this function transmutes the
/// borrow away. That is sound **only** because every submitted job is
/// joined before this function returns, on every path: the handles live in
/// a [`JoinOnDrop`], so even a panic out of `pool.submit` (its internal
/// `expect`s) or an unwinding join cannot let a worker outlive the data
/// `job` borrows. The caller must not stash `job` anywhere that outlives
/// the call.
unsafe fn run_static_jobs(pool: &ThreadPool, workers: usize, job: &(dyn Fn() + Sync)) {
    let job: &'static (dyn Fn() + Sync) = std::mem::transmute(job);
    let mut pending = JoinOnDrop(Vec::with_capacity(workers));
    for _ in 0..workers {
        pending.0.push(pool.submit(job));
    }
    let mut first_panic = None;
    for h in pending.0.drain(..) {
        if let Err(payload) = h.join() {
            first_panic.get_or_insert(payload);
        }
    }
    drop(pending);
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
}

/// Apply `f(index, &item)` to every element, returning results in input
/// order.
///
/// With [`ExecPolicy::Sequential`] this is a plain loop; with
/// [`ExecPolicy::Threads`] items are pulled off a shared atomic counter by
/// up to `n` scoped threads.
///
/// # Panics
/// Propagates the first panic raised by `f`.
pub fn par_map_indexed<T, R, F>(policy: ExecPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n_threads = policy.effective_threads(items.len());
    if n_threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();

    let mut out: Vec<Option<R>> = std::thread::scope(|s| {
        for _ in 0..n_threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out
        // scope joins all workers here; a worker panic re-raises now,
        // superseding any missing results.
    });

    if out.iter().any(Option::is_none) {
        // A worker died without panicking through scope (can't normally
        // happen) — fail loudly rather than return partial data.
        panic!("scl-exec: worker thread failed to produce a result");
    }
    out.iter_mut().map(|slot| slot.take().unwrap()).collect()
}

/// [`par_map_indexed`] without the index.
pub fn par_map<T, R, F>(policy: ExecPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(policy, items, |_, x| f(x))
}

/// Run `f(index, &item)` for side effects only.
pub fn par_for_each<T, F>(policy: ExecPolicy, items: &[T], f: F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    let _: Vec<()> = par_map_indexed(policy, items, |i, x| f(i, x));
}

/// Carry every item of a batch through a per-item stage chain on a
/// persistent [`ThreadPool`] — the partition-resident primitive behind
/// fused plan execution.
///
/// `step(index, item)` is the whole chain for one item (the caller composes
/// the stages). Dispatch is by **per-worker deques with work stealing**
/// ([`StealRange`]): the index space is pre-split into
/// one contiguous block per worker — zero scheduling traffic and perfect
/// locality while the load is balanced — and a worker that runs dry steals
/// about half of the richest victim's remainder, so the `farm` skeleton's
/// unevenly sized items still balance. The owner claims `grain` consecutive
/// indices per dip into its own deque. Results come back in input order.
/// Unlike [`par_map_indexed`], which spawns scoped threads per
/// call, this submits at most `min(threads, pool.size())` jobs to workers
/// that already exist — reusing the pool across every fused segment of a
/// run. `threads` is the scheduler's cap for *this* batch: a pool kept
/// large by an earlier, wider dispatch never over-commits a later, smaller
/// one.
///
/// With one usable worker (or a batch smaller than one grain block) the
/// chain runs inline on the caller.
///
/// # Panics
/// Propagates the first panic raised by `step`, after every worker has
/// finished; the pool itself survives (workers catch job panics).
pub fn par_pipeline<T, R, F>(
    pool: &ThreadPool,
    items: Vec<T>,
    threads: usize,
    grain: usize,
    step: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let grain = grain.max(1);
    let workers = threads.min(pool.size()).min(n.div_ceil(grain));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| step(i, x))
            .collect();
    }

    struct Shared<'s, T, R, F> {
        items: Vec<Mutex<Option<T>>>,
        out: Vec<Mutex<Option<R>>>,
        /// One deque per worker; worker `w` owns `ranges[w]` and steals
        /// from the others when it runs dry.
        ranges: Vec<StealRange>,
        next_worker: AtomicUsize,
        grain: usize,
        step: &'s F,
    }
    impl<T: Send, R: Send, F: Fn(usize, T) -> R + Sync> Shared<'_, T, R, F> {
        fn run(&self, range: std::ops::Range<usize>) {
            for i in range {
                // The guard drops before `step` runs, so a panicking
                // step never poisons a lock.
                let x = self.items[i]
                    .lock()
                    .expect("scl-exec: poisoned pipeline slot")
                    .take()
                    .expect("scl-exec: pipeline item claimed twice");
                let r = (self.step)(i, x);
                *self.out[i].lock().expect("scl-exec: poisoned result slot") = Some(r);
            }
        }
        fn drain(&self) {
            let me = self.next_worker.fetch_add(1, Ordering::Relaxed) % self.ranges.len();
            loop {
                if let Some(r) = self.ranges[me].take_front(self.grain) {
                    self.run(r);
                    continue;
                }
                // own deque dry: steal about half of the richest
                // victim's remainder, then work it off our own deque so
                // it stays stealable in turn
                let victim = (0..self.ranges.len())
                    .filter(|&v| v != me)
                    .map(|v| (self.ranges[v].remaining(), v))
                    .max();
                match victim {
                    Some((rem, v)) if rem > 0 => {
                        if let Some(stolen) = self.ranges[v].steal_back(usize::MAX) {
                            self.ranges[me].refill(stolen);
                        }
                        // a lost steal race just re-scans for a victim
                    }
                    _ => break, // every deque empty: batch fully claimed
                }
            }
        }
    }

    let shared = Shared {
        items: items.into_iter().map(|x| Mutex::new(Some(x))).collect(),
        out: (0..n).map(|_| Mutex::new(None)).collect(),
        ranges: (0..workers)
            .map(|w| StealRange::new(w * n / workers, (w + 1) * n / workers))
            .collect(),
        next_worker: AtomicUsize::new(0),
        grain,
        step: &step,
    };

    let job: &(dyn Fn() + Sync) = &|| shared.drain();
    // SAFETY: `job` borrows `shared` (and through it `step` and the items)
    // from this stack frame, and `run_static_jobs` joins every submitted
    // worker before returning on every path, so no worker can outlive
    // `shared`.
    unsafe { run_static_jobs(pool, workers, job) };

    shared
        .out
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("scl-exec: poisoned result slot")
                .expect("scl-exec: pipeline worker skipped an item")
        })
        .collect()
}

/// Move every cell of `items` to its destination — `out[j] =
/// items[src_of[j]]` — with **no clones**: the owned counterpart of a
/// routing table, used by the owned communication skeletons
/// (`total_exchange` bucket transpose, owned rotations over grids) when the
/// cost model says the cell count justifies fanning out.
///
/// `src_of` must be a permutation of `0..items.len()`: a repeated source
/// panics, and (by pigeonhole, since lengths match) every cell is then
/// consumed exactly once. Destinations are claimed off a shared atomic
/// counter in blocks of `grain` consecutive indices; with one usable worker
/// the permutation runs inline on the caller.
///
/// # Panics
/// Panics if `src_of.len() != items.len()`, if an index is out of range, or
/// if a source index repeats.
pub fn par_permute<T>(
    pool: &ThreadPool,
    items: Vec<T>,
    src_of: &[usize],
    threads: usize,
    grain: usize,
) -> Vec<T>
where
    T: Send,
{
    let n = items.len();
    assert_eq!(
        src_of.len(),
        n,
        "par_permute: routing table length mismatch"
    );
    let grain = grain.max(1);
    let workers = threads.min(pool.size()).min(n.div_ceil(grain).max(1));
    if workers <= 1 {
        let mut cells: Vec<Option<T>> = items.into_iter().map(Some).collect();
        return src_of
            .iter()
            .map(|&s| {
                cells[s]
                    .take()
                    .expect("par_permute: source index used twice")
            })
            .collect();
    }

    struct Shared<'s, T> {
        cells: Vec<Mutex<Option<T>>>,
        out: Vec<Mutex<Option<T>>>,
        src_of: &'s [usize],
        next: AtomicUsize,
        grain: usize,
    }
    impl<T: Send> Shared<'_, T> {
        fn drain(&self) {
            loop {
                let start = self.next.fetch_add(self.grain, Ordering::Relaxed);
                if start >= self.out.len() {
                    break;
                }
                for j in start..(start + self.grain).min(self.out.len()) {
                    let x = self.cells[self.src_of[j]]
                        .lock()
                        .expect("scl-exec: poisoned permute cell")
                        .take()
                        .expect("par_permute: source index used twice");
                    *self.out[j].lock().expect("scl-exec: poisoned permute slot") = Some(x);
                }
            }
        }
    }

    let shared = Shared {
        cells: items.into_iter().map(|x| Mutex::new(Some(x))).collect(),
        out: (0..n).map(|_| Mutex::new(None)).collect(),
        src_of,
        next: AtomicUsize::new(0),
        grain,
    };
    let job: &(dyn Fn() + Sync) = &|| shared.drain();
    // SAFETY: `job` borrows `shared` from this frame; `run_static_jobs`
    // joins every worker before returning on every path.
    unsafe { run_static_jobs(pool, workers, job) };

    shared
        .out
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("scl-exec: poisoned permute slot")
                .expect("scl-exec: permute worker skipped a cell")
        })
        .collect()
}

/// Wrapper making a raw pointer shareable across pool workers. Soundness is
/// the caller's obligation: workers must touch disjoint ranges only.
struct RawCursor<T>(*mut T);
unsafe impl<T: Send> Sync for RawCursor<T> {}
unsafe impl<T: Send> Send for RawCursor<T> {}

/// Move-concatenate `parts` into one flat vector — the pool-parallel form
/// of the `gather` skeleton's concat. Each part's elements are *moved*
/// (byte-copied, never cloned, never dropped twice) into a pre-sized
/// destination; workers claim whole parts off a shared counter, so the
/// memcpys of different parts proceed in parallel. With one usable worker
/// the concat runs inline.
///
/// On an internal invariant failure (a worker panicking inside the pool
/// plumbing — element moves themselves cannot panic) the destination is
/// abandoned un-lengthened and not-yet-moved elements leak rather than
/// double-drop.
pub fn par_concat<T: Send>(pool: &ThreadPool, parts: Vec<Vec<T>>, threads: usize) -> Vec<T> {
    let total: usize = parts.iter().map(Vec::len).sum();
    let workers = threads.min(pool.size()).min(parts.len().max(1));
    if workers <= 1 {
        let mut out = Vec::with_capacity(total);
        for v in parts {
            out.extend(v);
        }
        return out;
    }

    let mut offsets = Vec::with_capacity(parts.len());
    let mut acc = 0usize;
    for v in &parts {
        offsets.push(acc);
        acc += v.len();
    }
    let mut out: Vec<T> = Vec::with_capacity(total);

    struct Shared<T> {
        sources: Vec<Mutex<Option<Vec<T>>>>,
        offsets: Vec<usize>,
        base: RawCursor<T>,
        next: AtomicUsize,
    }
    impl<T: Send> Shared<T> {
        fn drain(&self) {
            loop {
                let k = self.next.fetch_add(1, Ordering::Relaxed);
                if k >= self.sources.len() {
                    break;
                }
                let mut src = self.sources[k]
                    .lock()
                    .expect("scl-exec: poisoned concat source")
                    .take()
                    .expect("scl-exec: concat source claimed twice");
                // SAFETY: destination range [offsets[k], offsets[k]+len) is
                // disjoint per source and within the `total`-element
                // allocation; the source's len is zeroed after the copy so
                // its elements are owned exactly once (by the destination).
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        src.as_ptr(),
                        self.base.0.add(self.offsets[k]),
                        src.len(),
                    );
                    src.set_len(0);
                }
            }
        }
    }

    let shared = Shared {
        sources: parts.into_iter().map(|v| Mutex::new(Some(v))).collect(),
        offsets,
        base: RawCursor(out.as_mut_ptr()),
        next: AtomicUsize::new(0),
    };
    let job: &(dyn Fn() + Sync) = &|| shared.drain();
    // SAFETY: `job` borrows `shared` from this frame; `run_static_jobs`
    // joins every worker before returning on every path.
    unsafe { run_static_jobs(pool, workers, job) };
    drop(shared); // every source claimed and fully moved out

    // SAFETY: all `total` elements were initialised by the disjoint copies.
    unsafe { out.set_len(total) };
    out
}

/// Split `data` into the given contiguous `ranges` by **moving** elements —
/// the pool-parallel form of the `partition` skeleton's scatter (block
/// patterns). Ranges must be ascending, contiguous, and cover the whole
/// vector; workers claim whole ranges off a shared counter and byte-copy
/// their span into a fresh exactly-sized vector. With one usable worker the
/// split runs inline (reverse `split_off`s, still zero-clone).
///
/// # Panics
/// Panics if the ranges are not an ascending contiguous cover of
/// `0..data.len()`.
pub fn par_scatter<T: Send>(
    pool: &ThreadPool,
    mut data: Vec<T>,
    ranges: &[Range<usize>],
    threads: usize,
) -> Vec<Vec<T>> {
    let mut expect = 0usize;
    for r in ranges {
        assert_eq!(
            r.start, expect,
            "par_scatter: ranges must be ascending and contiguous"
        );
        assert!(r.end >= r.start, "par_scatter: inverted range");
        expect = r.end;
    }
    assert_eq!(
        expect,
        data.len(),
        "par_scatter: ranges must cover the data"
    );

    let workers = threads.min(pool.size()).min(ranges.len().max(1));
    if workers <= 1 {
        let mut parts = Vec::with_capacity(ranges.len());
        for r in ranges.iter().rev() {
            parts.push(data.split_off(r.start));
        }
        parts.reverse();
        return parts;
    }

    struct Shared<'s, T> {
        base: RawCursor<T>,
        ranges: &'s [Range<usize>],
        out: Vec<Mutex<Option<Vec<T>>>>,
        next: AtomicUsize,
    }
    impl<T: Send> Shared<'_, T> {
        fn drain(&self) {
            loop {
                let k = self.next.fetch_add(1, Ordering::Relaxed);
                if k >= self.ranges.len() {
                    break;
                }
                let r = &self.ranges[k];
                let mut v: Vec<T> = Vec::with_capacity(r.len());
                // SAFETY: source spans are disjoint per range and within the
                // original allocation, whose len was zeroed up front — the
                // copies are the sole owners of the moved elements.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        self.base.0.add(r.start),
                        v.as_mut_ptr(),
                        r.len(),
                    );
                    v.set_len(r.len());
                }
                *self.out[k].lock().expect("scl-exec: poisoned scatter slot") = Some(v);
            }
        }
    }

    let base = RawCursor(data.as_mut_ptr());
    // SAFETY: zero the length *before* sharing so the moved-from vector can
    // never drop elements that workers copied out; on an internal panic the
    // un-copied elements leak rather than double-drop.
    unsafe { data.set_len(0) };
    let shared = Shared {
        base,
        ranges,
        out: (0..ranges.len()).map(|_| Mutex::new(None)).collect(),
        next: AtomicUsize::new(0),
    };
    let job: &(dyn Fn() + Sync) = &|| shared.drain();
    // SAFETY: `job` borrows `shared` (and through it `data`'s buffer) from
    // this frame; `run_static_jobs` joins every worker before returning.
    unsafe { run_static_jobs(pool, workers, job) };

    shared
        .out
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("scl-exec: poisoned scatter slot")
                .expect("scl-exec: scatter worker skipped a range")
        })
        .collect()
    // `data` drops here with len 0: frees the allocation, drops no elements
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    const POLICIES: [ExecPolicy; 3] = [
        ExecPolicy::Sequential,
        ExecPolicy::Threads(2),
        ExecPolicy::Threads(8),
    ];

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for p in POLICIES {
            let out = par_map(p, &items, |x| x * 2);
            assert_eq!(
                out,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "{p:?}"
            );
        }
    }

    #[test]
    fn indexed_map_sees_indices() {
        let items = vec!["a", "b", "c"];
        for p in POLICIES {
            let out = par_map_indexed(p, &items, |i, s| format!("{i}{s}"));
            assert_eq!(out, vec!["0a", "1b", "2c"], "{p:?}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        for p in POLICIES {
            let empty: Vec<i32> = vec![];
            assert!(par_map(p, &empty, |x| *x).is_empty());
            assert_eq!(par_map(p, &[42], |x| x + 1), vec![43]);
        }
    }

    #[test]
    fn unbalanced_work_self_schedules() {
        // Heavily skewed task sizes: correctness must not depend on balance.
        let items: Vec<u64> = (0..64).map(|i| if i == 0 { 200_000 } else { 10 }).collect();
        let spin = |n: &u64| -> u64 { (0..*n).fold(0u64, |a, i| a.wrapping_add(i)) };
        let seq = par_map(ExecPolicy::Sequential, &items, spin);
        let par = par_map(ExecPolicy::Threads(4), &items, spin);
        assert_eq!(seq, par);
    }

    #[test]
    fn for_each_runs_every_item() {
        for p in POLICIES {
            let hits = AtomicU64::new(0);
            let items: Vec<u64> = (0..257).collect();
            par_for_each(p, &items, |_, x| {
                hits.fetch_add(*x + 1, Ordering::Relaxed);
            });
            assert_eq!(
                hits.load(Ordering::Relaxed),
                (0..257).map(|x| x + 1).sum::<u64>()
            );
        }
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates_threaded() {
        let items: Vec<u32> = (0..32).collect();
        let _ = par_map(ExecPolicy::Threads(4), &items, |x| {
            if *x == 17 {
                panic!("boom");
            }
            *x
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates_sequential() {
        let items: Vec<u32> = (0..32).collect();
        let _ = par_map(ExecPolicy::Sequential, &items, |x| {
            if *x == 17 {
                panic!("boom");
            }
            *x
        });
    }

    #[test]
    fn borrows_from_environment() {
        let base = [10, 20, 30];
        let items = vec![0usize, 1, 2];
        let out = par_map(ExecPolicy::Threads(2), &items, |i| base[*i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn pipeline_matches_sequential_chain() {
        let pool = ThreadPool::new(4);
        for grain in [1, 2, 7, 100] {
            let items: Vec<u64> = (0..257).collect();
            let out = par_pipeline(&pool, items.clone(), 4, grain, |i, x| {
                // a three-stage chain, fused into one step
                let a = x * 2;
                let b = a + i as u64;
                b * 3
            });
            let expect: Vec<u64> = items
                .iter()
                .enumerate()
                .map(|(i, x)| (x * 2 + i as u64) * 3)
                .collect();
            assert_eq!(out, expect, "grain={grain}");
        }
    }

    #[test]
    fn pipeline_borrows_from_environment() {
        let pool = ThreadPool::new(3);
        let base = [100u64, 200, 300, 400];
        let out = par_pipeline(&pool, vec![0usize, 1, 2, 3], 3, 1, |_, i| base[i] + 1);
        assert_eq!(out, vec![101, 201, 301, 401]);
    }

    #[test]
    fn pipeline_reuses_one_pool_across_calls() {
        let pool = ThreadPool::new(2);
        for round in 0..50u64 {
            let out = par_pipeline(&pool, vec![1u64, 2, 3, 4, 5], 2, 1, |_, x| x + round);
            assert_eq!(
                out,
                vec![1 + round, 2 + round, 3 + round, 4 + round, 5 + round]
            );
        }
        assert_eq!(pool.size(), 2, "pool survives every dispatch");
    }

    #[test]
    fn pipeline_empty_and_single() {
        let pool = ThreadPool::new(2);
        let empty: Vec<u8> = vec![];
        assert!(par_pipeline(&pool, empty, 2, 1, |_, x: u8| x).is_empty());
        assert_eq!(par_pipeline(&pool, vec![9u8], 2, 1, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn pipeline_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let items: Vec<u32> = (0..64).collect();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_pipeline(&pool, items, 4, 1, |_, x| {
                if x == 33 {
                    panic!("stage blew up");
                }
                x
            })
        }));
        assert!(r.is_err());
        // pool still works afterwards
        assert_eq!(
            par_pipeline(&pool, vec![1u32, 2], 4, 1, |_, x| x * 2),
            vec![2, 4]
        );
    }

    #[test]
    fn pipeline_balances_skewed_items_via_stealing() {
        let pool = ThreadPool::new(4);
        // every heavy item lands in worker 0's initial block: the other
        // workers run dry immediately and must steal — and stealing must
        // still claim each index exactly once
        let items: Vec<u64> = (0..256).map(|i| if i < 32 { 20_000 } else { 1 }).collect();
        let spin = |n: u64| (0..n).fold(0u64, |a, i| a.wrapping_add(i));
        let expect: Vec<u64> = items.iter().map(|&n| spin(n)).collect();
        let out = par_pipeline(&pool, items, 4, 4, |_, n| spin(n));
        assert_eq!(out, expect);
    }

    #[test]
    fn pipeline_thread_cap_overrides_pool_size() {
        // a pool kept large by an earlier dispatch must not over-commit a
        // later batch whose scheduler asked for 1 thread: cap 1 runs
        // inline on the caller
        let pool = ThreadPool::new(4);
        let caller = std::thread::current().id();
        let out = par_pipeline(&pool, vec![1u8, 2, 3], 1, 1, |_, x| {
            assert_eq!(std::thread::current().id(), caller);
            x * 2
        });
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn pipeline_moves_owned_items() {
        let pool = ThreadPool::new(2);
        let items: Vec<Vec<u64>> = (0..16).map(|i| vec![i; 8]).collect();
        let out = par_pipeline(&pool, items, 2, 2, |_, v| v.iter().sum::<u64>());
        assert_eq!(out, (0..16).map(|i| i * 8).collect::<Vec<u64>>());
    }

    #[test]
    fn permute_matches_indexing_all_widths() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 1, 2, 7, 64, 257] {
            // a deterministic non-trivial permutation: reversal
            let src_of: Vec<usize> = (0..n).map(|j| n - 1 - j).collect();
            let items: Vec<Vec<u64>> = (0..n as u64).map(|i| vec![i; 3]).collect();
            for threads in [1usize, 2, 4] {
                for grain in [1usize, 3] {
                    let out = par_permute(&pool, items.clone(), &src_of, threads, grain);
                    let expect: Vec<Vec<u64>> = src_of.iter().map(|&s| items[s].clone()).collect();
                    assert_eq!(out, expect, "n={n} threads={threads} grain={grain}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "source index used twice")]
    fn permute_rejects_duplicate_sources() {
        let pool = ThreadPool::new(2);
        let _ = par_permute(&pool, vec![1, 2, 3], &[0, 0, 1], 1, 1);
    }

    #[test]
    fn concat_moves_all_elements_in_order() {
        let pool = ThreadPool::new(4);
        for sizes in [vec![], vec![0usize, 0], vec![3, 0, 5, 1], vec![100; 9]] {
            let mut next = 0u64;
            let parts: Vec<Vec<u64>> = sizes
                .iter()
                .map(|&len| {
                    (0..len)
                        .map(|_| {
                            next += 1;
                            next
                        })
                        .collect()
                })
                .collect();
            let expect: Vec<u64> = parts.iter().flatten().copied().collect();
            for threads in [1usize, 3] {
                assert_eq!(
                    par_concat(&pool, parts.clone(), threads),
                    expect,
                    "sizes={sizes:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn concat_handles_heap_elements_without_double_drop() {
        // Strings exercise real drops: a double-drop or a leak-into-drop
        // bug would abort under the allocator long before the assert.
        let pool = ThreadPool::new(3);
        let parts: Vec<Vec<String>> = (0..8)
            .map(|k| (0..50).map(|i| format!("s{k}_{i}")).collect())
            .collect();
        let expect: Vec<String> = parts.iter().flatten().cloned().collect();
        assert_eq!(par_concat(&pool, parts, 3), expect);
    }

    #[test]
    fn scatter_splits_by_ranges() {
        let pool = ThreadPool::new(4);
        let data: Vec<String> = (0..23).map(|i| format!("x{i}")).collect();
        let ranges = [0usize..7, 7..7, 7..20, 20..23];
        for threads in [1usize, 4] {
            let parts = par_scatter(&pool, data.clone(), &ranges, threads);
            assert_eq!(parts.len(), 4);
            for (r, part) in ranges.iter().zip(&parts) {
                assert_eq!(part.as_slice(), &data[r.clone()], "{r:?} threads={threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cover the data")]
    fn scatter_rejects_partial_cover() {
        let pool = ThreadPool::new(2);
        let _ = par_scatter(&pool, vec![1, 2, 3, 4], &[0..2, 2..3], 2);
    }

    #[test]
    fn scatter_concat_roundtrip() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let ranges = [0..250, 250..251, 251..999, 999..1000];
        let parts = par_scatter(&pool, data.clone(), &ranges, 4);
        assert_eq!(par_concat(&pool, parts, 4), data);
    }
}
