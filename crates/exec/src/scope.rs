//! Scoped parallel map over a slice.
//!
//! [`par_map_indexed`] is the workhorse behind every data-parallel skeleton:
//! it applies a function to each element of a slice, using self-scheduling
//! (an atomic work counter) so that unevenly sized partitions — the `farm`
//! skeleton's raison d'être — balance across host threads automatically.
//!
//! Results come back **in input order** regardless of completion order, and
//! a panic in any worker propagates to the caller (after all workers have
//! stopped), matching the behaviour of a plain sequential loop closely
//! enough for tests to rely on it.

use crate::policy::ExecPolicy;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Apply `f(index, &item)` to every element, returning results in input
/// order.
///
/// With [`ExecPolicy::Sequential`] this is a plain loop; with
/// [`ExecPolicy::Threads`] items are pulled off a shared atomic counter by
/// up to `n` scoped threads.
///
/// # Panics
/// Propagates the first panic raised by `f`.
pub fn par_map_indexed<T, R, F>(policy: ExecPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n_threads = policy.effective_threads(items.len());
    if n_threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();

    let mut out: Vec<Option<R>> = std::thread::scope(|s| {
        for _ in 0..n_threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out
        // scope joins all workers here; a worker panic re-raises now,
        // superseding any missing results.
    });

    if out.iter().any(Option::is_none) {
        // A worker died without panicking through scope (can't normally
        // happen) — fail loudly rather than return partial data.
        panic!("scl-exec: worker thread failed to produce a result");
    }
    out.iter_mut().map(|slot| slot.take().unwrap()).collect()
}

/// [`par_map_indexed`] without the index.
pub fn par_map<T, R, F>(policy: ExecPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(policy, items, |_, x| f(x))
}

/// Run `f(index, &item)` for side effects only.
pub fn par_for_each<T, F>(policy: ExecPolicy, items: &[T], f: F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    let _: Vec<()> = par_map_indexed(policy, items, |i, x| f(i, x));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    const POLICIES: [ExecPolicy; 3] = [
        ExecPolicy::Sequential,
        ExecPolicy::Threads(2),
        ExecPolicy::Threads(8),
    ];

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for p in POLICIES {
            let out = par_map(p, &items, |x| x * 2);
            assert_eq!(
                out,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "{p:?}"
            );
        }
    }

    #[test]
    fn indexed_map_sees_indices() {
        let items = vec!["a", "b", "c"];
        for p in POLICIES {
            let out = par_map_indexed(p, &items, |i, s| format!("{i}{s}"));
            assert_eq!(out, vec!["0a", "1b", "2c"], "{p:?}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        for p in POLICIES {
            let empty: Vec<i32> = vec![];
            assert!(par_map(p, &empty, |x| *x).is_empty());
            assert_eq!(par_map(p, &[42], |x| x + 1), vec![43]);
        }
    }

    #[test]
    fn unbalanced_work_self_schedules() {
        // Heavily skewed task sizes: correctness must not depend on balance.
        let items: Vec<u64> = (0..64).map(|i| if i == 0 { 200_000 } else { 10 }).collect();
        let spin = |n: &u64| -> u64 { (0..*n).fold(0u64, |a, i| a.wrapping_add(i)) };
        let seq = par_map(ExecPolicy::Sequential, &items, spin);
        let par = par_map(ExecPolicy::Threads(4), &items, spin);
        assert_eq!(seq, par);
    }

    #[test]
    fn for_each_runs_every_item() {
        for p in POLICIES {
            let hits = AtomicU64::new(0);
            let items: Vec<u64> = (0..257).collect();
            par_for_each(p, &items, |_, x| {
                hits.fetch_add(*x + 1, Ordering::Relaxed);
            });
            assert_eq!(
                hits.load(Ordering::Relaxed),
                (0..257).map(|x| x + 1).sum::<u64>()
            );
        }
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates_threaded() {
        let items: Vec<u32> = (0..32).collect();
        let _ = par_map(ExecPolicy::Threads(4), &items, |x| {
            if *x == 17 {
                panic!("boom");
            }
            *x
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates_sequential() {
        let items: Vec<u32> = (0..32).collect();
        let _ = par_map(ExecPolicy::Sequential, &items, |x| {
            if *x == 17 {
                panic!("boom");
            }
            *x
        });
    }

    #[test]
    fn borrows_from_environment() {
        let base = [10, 20, 30];
        let items = vec![0usize, 1, 2];
        let out = par_map(ExecPolicy::Threads(2), &items, |i| base[*i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }
}
