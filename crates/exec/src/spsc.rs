//! A cache-padded, lock-free single-producer / single-consumer ring buffer
//! — the FastFlow-style fast path under every stage-to-stage link.
//!
//! The mutex+condvar [`Bounded`](crate::Bounded) channel costs a lock
//! round-trip plus a condvar signal **per operation**; on a farm or
//! pipeline hot path that queue cost is exactly what gates throughput.
//! This ring replaces it for the 1-producer/1-consumer case with two
//! monotone indices and a fixed slot array:
//!
//! * the **producer** owns `tail`: it writes the slot, then publishes with
//!   a `Release` store; its view of `head` is a cached copy, refreshed
//!   (one `Acquire` load) only when the ring *looks* full;
//! * the **consumer** owns `head`: it reads the slot after an `Acquire`
//!   load of `tail` observed the publication, then frees the slot with a
//!   `Release` store of `head + 1`; its view of `tail` is likewise cached;
//! * `head` and `tail` live on **separate cache lines**
//!   (`CachePadded`) so the two sides never false-share;
//! * indices grow monotonically and wrap modulo a power-of-two slot count
//!   (occupancy is bounded by the *requested* capacity, which need not be
//!   a power of two).
//!
//! Blocking sends/receives use spin-then-park backoff
//! ([`Backoff`] + a Dekker-style park handshake — see
//! [`crate::backoff`]): the empty↔non-empty and full↔non-full transitions
//! wake the parked peer, so idle links cost nothing.
//!
//! Each end is `Send` but deliberately **not** `Clone` and not `Sync`:
//! the type system enforces the single-producer/single-consumer contract.
//! Dropping either end closes the ring (the peer drains, then observes
//! disconnection), same shutdown protocol as [`Bounded`](crate::Bounded).

use crate::backoff::{Backoff, ParkSlot, PARK_SAFETY};
use crate::chan::TryRecv;
use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pads-and-aligns to a 64-byte cache line so `head` and `tail` (and the
/// slot array) never share one — the producer's publishing store must not
/// invalidate the consumer's index line and vice versa.
#[repr(align(64))]
pub(crate) struct CachePadded<T>(pub(crate) T);

struct Inner<T> {
    /// Slot array; length is `cap.next_power_of_two()`, indexed by
    /// `position & mask`. A slot is owned by the producer from
    /// `tail.store` − 1 back to `head`, by the consumer otherwise.
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Requested capacity: occupancy never exceeds it.
    cap: usize,
    /// Next position to read. Written only by the consumer (`Release`),
    /// read by the producer (`Acquire`) to learn about freed slots.
    head: CachePadded<AtomicUsize>,
    /// Next position to write. Written only by the producer (`Release` —
    /// this is the publication of the slot contents), read by the
    /// consumer (`Acquire`).
    tail: CachePadded<AtomicUsize>,
    /// Close bit (either end, or a composition sharing it). `SeqCst` so a
    /// close is never ordered after the wakes it must precede.
    closed: Arc<AtomicBool>,
    /// Where a full-ring producer parks; woken by the consumer's pops.
    prod_park: Arc<ParkSlot>,
    /// Where an empty-ring consumer parks; woken by the producer's pushes.
    cons_park: Arc<ParkSlot>,
}

// SAFETY: the split into one sender and one receiver (each !Sync, neither
// Clone) guarantees at most one thread touches each index; slot accesses
// are handed over by the Release/Acquire index protocol documented above.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Both ends are gone: drop whatever was published but not consumed.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        let mut pos = head;
        while pos != tail {
            unsafe { (*self.buf[pos & self.mask].get()).assume_init_drop() };
            pos = pos.wrapping_add(1);
        }
    }
}

/// The producing end of an SPSC ring; see the [module docs](self).
pub struct SpscSender<T> {
    inner: Arc<Inner<T>>,
    /// Mirror of `inner.tail` (only we write it — no atomic load needed).
    tail: Cell<usize>,
    /// Cached consumer index; refreshed only when the ring looks full.
    head_cache: Cell<usize>,
}

/// The consuming end of an SPSC ring; see the [module docs](self).
pub struct SpscReceiver<T> {
    inner: Arc<Inner<T>>,
    /// Mirror of `inner.head` (only we write it).
    head: Cell<usize>,
    /// Cached producer index; refreshed only when the ring looks empty.
    tail_cache: Cell<usize>,
}

// SAFETY: each end may migrate between threads (sequentially — the Cells
// travel with it); it just can't be *shared*, which !Sync already forbids.
unsafe impl<T: Send> Send for SpscSender<T> {}
unsafe impl<T: Send> Send for SpscReceiver<T> {}

/// A fresh SPSC ring holding at most `cap` items (at least 1).
pub fn ring<T: Send>(cap: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    ring_shared(
        cap,
        Arc::new(AtomicBool::new(false)),
        Arc::new(ParkSlot::default()),
        Arc::new(ParkSlot::default()),
    )
}

/// An SPSC ring wired to externally owned close/park state — how the
/// MPMC composition ([`crate::mpmc`]) shares one close bit and one park
/// slot per side across a whole lane matrix.
pub(crate) fn ring_shared<T: Send>(
    cap: usize,
    closed: Arc<AtomicBool>,
    prod_park: Arc<ParkSlot>,
    cons_park: Arc<ParkSlot>,
) -> (SpscSender<T>, SpscReceiver<T>) {
    let cap = cap.max(1);
    let slots = cap.next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..slots)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        buf,
        mask: slots - 1,
        cap,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed,
        prod_park,
        cons_park,
    });
    (
        SpscSender {
            inner: Arc::clone(&inner),
            tail: Cell::new(0),
            head_cache: Cell::new(0),
        },
        SpscReceiver {
            inner,
            head: Cell::new(0),
            tail_cache: Cell::new(0),
        },
    )
}

/// Why a non-blocking ring push failed.
enum PushErr<T> {
    Full(T),
    Closed(T),
}

impl<T: Send> SpscSender<T> {
    /// The capacity the ring was created with.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }

    /// Current occupancy (racy gauge).
    pub fn len(&self) -> usize {
        len_of(&self.inner)
    }

    /// True when the gauge reads zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once either end closed (or dropped).
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::SeqCst)
    }

    /// Close the ring: the consumer drains what is published, then
    /// observes disconnection; a parked peer is woken.
    pub fn close(&self) {
        close_inner(&self.inner);
    }

    fn push(&self, item: T) -> Result<(), PushErr<T>> {
        if self.inner.closed.load(Ordering::SeqCst) {
            return Err(PushErr::Closed(item));
        }
        let tail = self.tail.get();
        if tail.wrapping_sub(self.head_cache.get()) >= self.inner.cap {
            // looks full: refresh the cached consumer index
            self.head_cache
                .set(self.inner.head.0.load(Ordering::Acquire));
            if tail.wrapping_sub(self.head_cache.get()) >= self.inner.cap {
                return Err(PushErr::Full(item));
            }
        }
        // SAFETY: slot `tail` is producer-owned until the Release store
        // below publishes it; only this (single) producer writes tail.
        unsafe { (*self.inner.buf[tail & self.inner.mask].get()).write(item) };
        self.tail.set(tail.wrapping_add(1));
        self.inner
            .tail
            .0
            .store(tail.wrapping_add(1), Ordering::Release);
        // StoreLoad point of the wake handshake: the publication above
        // must be globally visible before we probe the consumer's flag.
        fence(Ordering::SeqCst);
        if self.inner.cons_park.is_waiting() {
            self.inner.cons_park.wake();
        }
        Ok(())
    }

    /// Enqueue without blocking. `Err(item)` when full or closed.
    pub fn try_send(&self, item: T) -> Result<(), T> {
        self.push(item).map_err(|e| match e {
            PushErr::Full(x) | PushErr::Closed(x) => x,
        })
    }

    /// Enqueue, blocking (spin-then-park) while the ring is full.
    /// `Err(item)` if the ring closed.
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut item = item;
        let mut backoff = Backoff::new();
        loop {
            match self.push(item) {
                Ok(()) => return Ok(()),
                Err(PushErr::Closed(x)) => return Err(x),
                Err(PushErr::Full(x)) => item = x,
            }
            if backoff.snooze() {
                let park = &self.inner.prod_park;
                park.prepare();
                // re-check under the published flag: a pop (or close)
                // after `prepare` is guaranteed to see it and wake us
                let head = self.inner.head.0.load(Ordering::SeqCst);
                self.head_cache.set(head);
                let full = self.tail.get().wrapping_sub(head) >= self.inner.cap;
                if full && !self.inner.closed.load(Ordering::SeqCst) {
                    park.park(PARK_SAFETY);
                }
                park.clear();
                backoff.reset();
            }
        }
    }
}

impl<T: Send> SpscReceiver<T> {
    /// The capacity the ring was created with.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }

    /// Current occupancy (racy gauge).
    pub fn len(&self) -> usize {
        len_of(&self.inner)
    }

    /// True when the gauge reads zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once either end closed (or dropped).
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::SeqCst)
    }

    /// Close the ring: a blocked producer fails with its item handed back.
    pub fn close(&self) {
        close_inner(&self.inner);
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> TryRecv<T> {
        let head = self.head.get();
        if self.tail_cache.get() == head {
            // looks empty: refresh the cached producer index
            let tail = self.inner.tail.0.load(Ordering::Acquire);
            self.tail_cache.set(tail);
            if tail == head {
                if !self.inner.closed.load(Ordering::SeqCst) {
                    return TryRecv::Empty;
                }
                // closed: one final reload so a close that raced a last
                // publication never swallows the item
                let tail = self.inner.tail.0.load(Ordering::Acquire);
                self.tail_cache.set(tail);
                if tail == head {
                    return TryRecv::Closed;
                }
            }
        }
        // SAFETY: the Acquire load of `tail` observed the publication of
        // slot `head`; only this (single) consumer advances head.
        let item = unsafe { (*self.inner.buf[head & self.inner.mask].get()).assume_init_read() };
        self.head.set(head.wrapping_add(1));
        self.inner
            .head
            .0
            .store(head.wrapping_add(1), Ordering::Release);
        // StoreLoad point of the wake handshake (mirror of the push side).
        fence(Ordering::SeqCst);
        if self.inner.prod_park.is_waiting() {
            self.inner.prod_park.wake();
        }
        TryRecv::Item(item)
    }

    /// Dequeue, blocking (spin-then-park) while the ring is open and
    /// empty. `None` once the ring is closed *and* drained.
    pub fn recv(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_recv() {
                TryRecv::Item(x) => return Some(x),
                TryRecv::Closed => return None,
                TryRecv::Empty => {}
            }
            if backoff.snooze() {
                self.park_empty(PARK_SAFETY);
                backoff.reset();
            }
        }
    }

    /// [`SpscReceiver::recv`] that gives up at a **deadline**: the total
    /// wait never exceeds `timeout` (plus scheduling noise), no matter how
    /// many wakeups occur in between.
    pub fn recv_timeout(&self, timeout: Duration) -> TryRecv<T> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::new();
        loop {
            match self.try_recv() {
                TryRecv::Item(x) => return TryRecv::Item(x),
                TryRecv::Closed => return TryRecv::Closed,
                TryRecv::Empty => {}
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return TryRecv::Empty;
            };
            if backoff.snooze() {
                self.park_empty(remaining.min(PARK_SAFETY));
                backoff.reset();
            }
        }
    }

    /// Park until the producer publishes or closes (bounded by `limit`).
    fn park_empty(&self, limit: Duration) {
        let park = &self.inner.cons_park;
        park.prepare();
        // re-check under the published flag: a push (or close) after
        // `prepare` is guaranteed to see it and wake us
        let tail = self.inner.tail.0.load(Ordering::SeqCst);
        self.tail_cache.set(tail);
        if tail == self.head.get() && !self.inner.closed.load(Ordering::SeqCst) {
            park.park(limit);
        }
        park.clear();
    }
}

fn len_of<T>(inner: &Inner<T>) -> usize {
    let tail = inner.tail.0.load(Ordering::Acquire);
    let head = inner.head.0.load(Ordering::Acquire);
    tail.wrapping_sub(head).min(inner.cap)
}

fn close_inner<T>(inner: &Inner<T>) {
    inner.closed.store(true, Ordering::SeqCst);
    inner.prod_park.wake();
    inner.cons_park.wake();
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        close_inner(&self.inner);
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        close_inner(&self.inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_capacity() {
        let (tx, rx) = ring::<u64>(4);
        assert_eq!(tx.capacity(), 4);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.try_recv(), TryRecv::Item(1));
        assert_eq!(rx.try_recv(), TryRecv::Item(2));
        assert_eq!(rx.try_recv(), TryRecv::Empty);
    }

    #[test]
    fn capacity_is_the_requested_one_not_the_power_of_two() {
        let (tx, rx) = ring::<u8>(3); // slots rounded to 4, occupancy capped at 3
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        tx.try_send(3).unwrap();
        assert_eq!(tx.try_send(4), Err(4));
        assert_eq!(rx.try_recv(), TryRecv::Item(1));
        tx.try_send(4).unwrap();
    }

    #[test]
    fn close_drains_then_disconnects() {
        let (tx, rx) = ring::<&str>(4);
        tx.try_send("a").unwrap();
        tx.close();
        assert!(rx.is_closed());
        assert_eq!(tx.try_send("b"), Err("b"));
        assert_eq!(rx.try_recv(), TryRecv::Item("a"));
        assert_eq!(rx.try_recv(), TryRecv::Closed);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn dropping_sender_closes_after_drain() {
        let (tx, rx) = ring::<u32>(4);
        tx.try_send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn dropping_receiver_fails_blocked_sender() {
        let (tx, rx) = ring::<u32>(1);
        tx.try_send(0).unwrap();
        let sender = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(Duration::from_millis(5));
        drop(rx);
        assert_eq!(sender.join().unwrap(), Err(1));
    }

    #[test]
    fn unconsumed_items_drop_exactly_once() {
        // heap payloads: a double-drop or leak aborts under the counting
        // allocator long before an assert would fire
        let (tx, rx) = ring::<String>(8);
        for i in 0..5 {
            tx.try_send(format!("item-{i}")).unwrap();
        }
        assert_eq!(rx.try_recv(), TryRecv::Item("item-0".to_string()));
        drop(rx);
        drop(tx); // 4 published-but-unconsumed strings drop with the ring
    }

    #[test]
    fn recv_timeout_is_deadline_bound() {
        let (tx, rx) = ring::<u8>(1);
        let t0 = Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)), TryRecv::Empty);
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(25), "{waited:?}");
        assert!(waited < Duration::from_millis(300), "{waited:?}");
        tx.try_send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)), TryRecv::Item(9));
    }

    /// The two-thread soak the issue asks for: every item delivered
    /// exactly once, in order, across a ring much smaller than the
    /// stream, with both blocking paths (full producer, empty consumer)
    /// exercised continuously.
    #[test]
    fn two_thread_soak_delivers_everything_in_order() {
        const N: u64 = 200_000;
        let (tx, rx) = ring::<u64>(8);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.send(i).expect("receiver alive");
            }
            // tx drops here: closes the ring
        });
        let mut expect = 0u64;
        while let Some(x) = rx.recv() {
            assert_eq!(x, expect, "out-of-order or duplicated delivery");
            expect += 1;
        }
        assert_eq!(expect, N, "lost items");
        producer.join().unwrap();
    }

    /// Same soak with the consumer using the deadline API — Empty returns
    /// are allowed (deadline passed), items must still arrive exactly
    /// once, in order.
    #[test]
    fn soak_through_recv_timeout() {
        const N: u64 = 50_000;
        let (tx, rx) = ring::<u64>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.send(i).expect("receiver alive");
            }
        });
        let mut expect = 0u64;
        loop {
            match rx.recv_timeout(Duration::from_millis(1)) {
                TryRecv::Item(x) => {
                    assert_eq!(x, expect);
                    expect += 1;
                }
                TryRecv::Empty => {}
                TryRecv::Closed => break,
            }
        }
        assert_eq!(expect, N);
        producer.join().unwrap();
    }
}
