//! Persistent stage workers: the farm form of a streaming pipeline stage.
//!
//! [`par_pipeline`](crate::par_pipeline) dispatches one *batch* onto the
//! pool and joins; a streaming runtime instead needs workers that live as
//! long as the stream does, each looping `take → work → emit` over a
//! shared [`Bounded`] input queue. [`spawn_stage_workers`] submits
//! `replicas` such loops as long-running pool jobs and returns a
//! [`StageCrew`] of their handles.
//!
//! Two contracts matter to the caller:
//!
//! * **Shutdown** is by closing the input channel: workers drain what is
//!   queued, then exit; [`StageCrew::join`] re-raises the first worker
//!   panic (worker panics never kill pool threads — the pool catches
//!   them — so a paniced stage surfaces at join, not as a hang). Wake
//!   parked workers promptly by opening the gate wide
//!   ([`WidthGate::open_all`]) after closing the channel: admitted
//!   workers observe the closed channel and exit.
//! * **Autonomic gating**: each worker re-checks the shared [`WidthGate`]
//!   before claiming an item; workers with index `>= width` **park on
//!   the gate's condvar** (no busy-polling) until a controller widens it,
//!   so adaptation never spawns or joins threads and idle replicas cost
//!   nothing but memory.

use crate::chan::{Bounded, TryRecv};
use crate::pool::{JobHandle, ThreadPool};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A farm's replica-width gate: worker `i` may claim work only while
/// `width() > i`. Controllers move it with [`WidthGate::set`] (which
/// wakes every parked worker); shutdown uses [`WidthGate::open_all`] so
/// parked workers run into the closed input channel and exit.
pub struct WidthGate {
    width: Mutex<usize>,
    changed: Condvar,
}

impl WidthGate {
    /// A gate admitting the first `width` workers.
    pub fn new(width: usize) -> Arc<WidthGate> {
        Arc::new(WidthGate {
            width: Mutex::new(width),
            changed: Condvar::new(),
        })
    }

    /// Current width.
    pub fn width(&self) -> usize {
        *self.width.lock().expect("poisoned width gate")
    }

    /// Set the width and wake every parked worker to re-check it.
    pub fn set(&self, width: usize) {
        *self.width.lock().expect("poisoned width gate") = width;
        self.changed.notify_all();
    }

    /// Admit every worker — the shutdown wake-up: parked workers resume,
    /// observe the closed input channel, and exit.
    pub fn open_all(&self) {
        self.set(usize::MAX);
    }

    /// Park until worker `idx` is admitted or `timeout` elapses (the
    /// timeout is a defensive re-check, not the wake path — [`set`] and
    /// [`open_all`] notify). Returns whether the worker is now admitted.
    ///
    /// [`set`]: WidthGate::set
    /// [`open_all`]: WidthGate::open_all
    pub fn wait_admitted(&self, idx: usize, timeout: Duration) -> bool {
        let guard = self.width.lock().expect("poisoned width gate");
        let (guard, _) = self
            .changed
            .wait_timeout_while(guard, timeout, |w| *w <= idx)
            .expect("poisoned width gate");
        *guard > idx
    }
}

/// Handles of one stage's workers; join on shutdown.
pub struct StageCrew {
    handles: Vec<JobHandle<()>>,
}

impl StageCrew {
    /// Number of workers spawned (the stage's maximum width).
    pub fn size(&self) -> usize {
        self.handles.len()
    }

    /// Wait for every worker to exit (close the input channel first, or
    /// this blocks forever), re-raising the first worker panic.
    pub fn join(self) {
        let mut first_panic = None;
        for h in self.handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Spawn `replicas` persistent workers on `pool`, each looping over
/// `input` and calling `work(worker_index, item)` per claimed item —
/// emission is `work`'s business (it usually sends into a downstream
/// [`Bounded`]). Workers whose index is not admitted by `gate` park on
/// its condvar without claiming items; see the [module docs](self).
///
/// The pool must have at least `replicas` threads to spare: each worker
/// occupies one pool thread until the input channel closes.
pub fn spawn_stage_workers<T: Send + 'static>(
    pool: &ThreadPool,
    replicas: usize,
    gate: Arc<WidthGate>,
    input: Bounded<T>,
    work: Arc<dyn Fn(usize, T) + Send + Sync>,
) -> StageCrew {
    // pure safety nets: the real wake paths are gate notifications and
    // channel closes
    const GATE_PARK: Duration = Duration::from_millis(250);
    const IDLE_POLL: Duration = Duration::from_millis(1);
    let handles = (0..replicas)
        .map(|r| {
            let input = input.clone();
            let gate = Arc::clone(&gate);
            let work = Arc::clone(&work);
            pool.submit(move || loop {
                if gate.width() <= r {
                    // gated off: park, but still notice shutdown
                    if input.is_closed() && input.is_empty() {
                        break;
                    }
                    let _ = gate.wait_admitted(r, GATE_PARK);
                    continue;
                }
                match input.recv_timeout(IDLE_POLL) {
                    TryRecv::Item(x) => work(r, x),
                    TryRecv::Closed => break,
                    TryRecv::Empty => {}
                }
            })
        })
        .collect();
    StageCrew { handles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[test]
    fn gate_admits_and_parks() {
        let gate = WidthGate::new(2);
        assert_eq!(gate.width(), 2);
        assert!(gate.wait_admitted(1, Duration::from_millis(1)));
        assert!(!gate.wait_admitted(2, Duration::from_millis(1)));
        gate.set(3);
        assert!(gate.wait_admitted(2, Duration::from_millis(1)));
        gate.open_all();
        assert!(gate.wait_admitted(usize::MAX - 1, Duration::from_millis(1)));
    }

    #[test]
    fn gate_set_wakes_parked_waiter() {
        let gate = WidthGate::new(0);
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.wait_admitted(0, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(5));
        gate.set(1); // must wake the waiter well before the 10s timeout
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn workers_process_everything_then_exit() {
        let pool = ThreadPool::new(3);
        let input = Bounded::new(8);
        let output = Bounded::new(1024);
        let out = output.clone();
        let crew = spawn_stage_workers(
            &pool,
            3,
            WidthGate::new(3),
            input.clone(),
            Arc::new(move |_, x: u64| {
                let _ = out.send(x * 2);
            }),
        );
        assert_eq!(crew.size(), 3);
        for i in 0..200 {
            input.send(i).unwrap();
        }
        input.close();
        crew.join();
        output.close();
        let mut got = Vec::new();
        while let Some(x) = output.recv() {
            got.push(x);
        }
        got.sort_unstable();
        assert_eq!(got, (0..200).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn gated_workers_claim_nothing() {
        let pool = ThreadPool::new(4);
        let input = Bounded::new(64);
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let hits = Arc::new(AtomicU64::new(0));
        // only worker 0 is admitted
        let gate = WidthGate::new(1);
        let crew = {
            let seen = Arc::clone(&seen);
            let hits = Arc::clone(&hits);
            spawn_stage_workers(
                &pool,
                4,
                Arc::clone(&gate),
                input.clone(),
                Arc::new(move |r, _x: u64| {
                    seen.lock().unwrap().insert(r);
                    hits.fetch_add(1, Ordering::Relaxed);
                }),
            )
        };
        for i in 0..50 {
            input.send(i).unwrap();
        }
        // let the lone admitted worker drain the queue
        while hits.load(Ordering::Relaxed) < 50 {
            std::thread::yield_now();
        }
        input.close();
        gate.open_all(); // wake the parked workers so they observe the close
        crew.join();
        assert_eq!(*seen.lock().unwrap(), std::collections::HashSet::from([0]));
    }

    #[test]
    fn widening_activates_more_workers() {
        let pool = ThreadPool::new(2);
        let input = Bounded::new(64);
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let gate = WidthGate::new(1);
        let crew = {
            let seen = Arc::clone(&seen);
            spawn_stage_workers(
                &pool,
                2,
                Arc::clone(&gate),
                input.clone(),
                Arc::new(move |r, _x: u64| {
                    seen.lock().unwrap().insert(r);
                    // slow stage: gives the second worker a chance to claim
                    std::thread::sleep(Duration::from_micros(300));
                }),
            )
        };
        gate.set(2); // widen: wakes the parked second worker
        for i in 0..300 {
            input.send(i).unwrap();
        }
        input.close();
        crew.join();
        assert_eq!(
            *seen.lock().unwrap(),
            std::collections::HashSet::from([0, 1])
        );
    }

    #[test]
    fn worker_panic_surfaces_at_join() {
        let pool = ThreadPool::new(1);
        let input = Bounded::new(4);
        let crew = spawn_stage_workers(
            &pool,
            1,
            WidthGate::new(1),
            input.clone(),
            Arc::new(|_, x: u64| {
                if x == 2 {
                    panic!("stage died");
                }
            }),
        );
        for i in 0..4 {
            input.send(i).unwrap();
        }
        input.close();
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| crew.join())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "stage died");
    }
}
