//! Persistent stage workers: the farm form of a streaming pipeline stage.
//!
//! [`par_pipeline`](crate::par_pipeline) dispatches one *batch* onto the
//! pool and joins; a streaming runtime instead needs workers that live as
//! long as the stream does, each looping `take → work → emit` over a
//! shared [`Bounded`] input queue. [`spawn_stage_workers`] submits
//! `replicas` such loops as long-running pool jobs and returns a
//! [`StageCrew`] of their handles.
//!
//! Two contracts matter to the caller:
//!
//! * **Shutdown** is by closing the input channel: workers drain what is
//!   queued, then exit; [`StageCrew::join`] re-raises the first worker
//!   panic (worker panics never kill pool threads — the pool catches
//!   them — so a paniced stage surfaces at join, not as a hang). Wake
//!   parked workers promptly by opening the gate wide
//!   ([`WidthGate::open_all`]) after closing the channel: admitted
//!   workers observe the closed channel and exit.
//! * **Autonomic gating**: each worker re-checks the shared [`WidthGate`]
//!   before claiming an item; workers with index `>= width` **park on
//!   the gate's condvar** (no busy-polling) until a controller widens it,
//!   so adaptation never spawns or joins threads and idle replicas cost
//!   nothing but memory.

use crate::chan::{Bounded, TryRecv};
use crate::link::{LinkRx, LinkTx};
use crate::pool::{JobHandle, ThreadPool};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A farm's replica-width gate: worker `i` may claim work only while
/// `width() > i`. Controllers move it with [`WidthGate::set`] (which
/// wakes every parked worker); shutdown uses [`WidthGate::open_all`] so
/// parked workers run into the closed input channel and exit.
pub struct WidthGate {
    width: Mutex<usize>,
    changed: Condvar,
    /// Out-of-band wake hooks run after every width change — e.g. a
    /// [`Bounded::wake_all`] so workers parked *in the channel* (not on
    /// this condvar) also re-check their admission promptly.
    wakers: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
}

impl WidthGate {
    /// A gate admitting the first `width` workers.
    pub fn new(width: usize) -> Arc<WidthGate> {
        Arc::new(WidthGate {
            width: Mutex::new(width),
            changed: Condvar::new(),
            wakers: Mutex::new(Vec::new()),
        })
    }

    /// Current width.
    pub fn width(&self) -> usize {
        *self.width.lock().expect("poisoned width gate")
    }

    /// Register a hook to run after every [`WidthGate::set`] /
    /// [`WidthGate::open_all`] — how a crew couples its input channel's
    /// wakeups to the gate (workers idle *in the channel* learn of
    /// narrowing without polling).
    pub fn add_waker(&self, waker: impl Fn() + Send + Sync + 'static) {
        self.wakers
            .lock()
            .expect("poisoned width gate")
            .push(Box::new(waker));
    }

    /// Set the width and wake every parked worker to re-check it.
    pub fn set(&self, width: usize) {
        *self.width.lock().expect("poisoned width gate") = width;
        self.changed.notify_all();
        for w in self.wakers.lock().expect("poisoned width gate").iter() {
            w();
        }
    }

    /// Admit every worker — the shutdown wake-up: parked workers resume,
    /// observe the closed input channel, and exit.
    pub fn open_all(&self) {
        self.set(usize::MAX);
    }

    /// Park until worker `idx` is admitted or `timeout` elapses (the
    /// timeout is a defensive re-check, not the wake path — [`set`] and
    /// [`open_all`] notify). Returns whether the worker is now admitted.
    /// The wait is deadline-based: item-less wakeups re-arm only the
    /// *remaining* budget.
    ///
    /// [`set`]: WidthGate::set
    /// [`open_all`]: WidthGate::open_all
    pub fn wait_admitted(&self, idx: usize, timeout: Duration) -> bool {
        self.wait_admitted_or(idx, timeout, || false)
    }

    /// [`WidthGate::wait_admitted`] with an extra way out: the wait also
    /// ends when `exit()` turns true. Crucially `exit` is evaluated
    /// **under the gate lock**, so a state change (close + [`open_all`])
    /// signalled concurrently can never slip between an unlocked check
    /// and the park — the lost-wakeup race this gate's workers used to
    /// pay a full park interval for.
    ///
    /// [`open_all`]: WidthGate::open_all
    pub fn wait_admitted_or(&self, idx: usize, timeout: Duration, exit: impl Fn() -> bool) -> bool {
        let guard = self.width.lock().expect("poisoned width gate");
        let (guard, _) = self
            .changed
            .wait_timeout_while(guard, timeout, |w| *w <= idx && !exit())
            .expect("poisoned width gate");
        *guard > idx
    }
}

/// Handles of one stage's workers; join on shutdown.
pub struct StageCrew {
    handles: Vec<JobHandle<()>>,
}

impl StageCrew {
    /// Number of workers spawned (the stage's maximum width).
    pub fn size(&self) -> usize {
        self.handles.len()
    }

    /// Wait for every worker to exit (close the input channel first, or
    /// this blocks forever), re-raising the first worker panic.
    pub fn join(self) {
        let mut first_panic = None;
        for h in self.handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Spawn `replicas` persistent workers on `pool`, each looping over
/// `input` and calling `work(worker_index, item)` per claimed item —
/// emission is `work`'s business (it usually sends into a downstream
/// [`Bounded`]). Workers whose index is not admitted by `gate` park on
/// its condvar without claiming items; see the [module docs](self).
///
/// The pool must have at least `replicas` threads to spare: each worker
/// occupies one pool thread until the input channel closes.
pub fn spawn_stage_workers<T: Send + 'static>(
    pool: &ThreadPool,
    replicas: usize,
    gate: Arc<WidthGate>,
    input: Bounded<T>,
    work: Arc<dyn Fn(usize, T) + Send + Sync>,
) -> StageCrew {
    // a pure safety net: every real transition (item, close, width
    // change) wakes the relevant park explicitly
    const SAFETY_PARK: Duration = Duration::from_millis(250);
    // width changes must also reach workers parked *in the channel*
    // (admitted, idle) so narrowing takes effect without polling
    {
        let input = input.clone();
        gate.add_waker(move || input.wake_all());
    }
    let handles = (0..replicas)
        .map(|r| {
            let input = input.clone();
            let gate = Arc::clone(&gate);
            let work = Arc::clone(&work);
            pool.submit(move || loop {
                if gate.width() <= r {
                    // gated off: park on the gate. The shutdown check
                    // runs under the gate lock (wait_admitted_or), so a
                    // concurrent close()+open_all() can't slip between
                    // an unlocked check and the park and cost a whole
                    // park interval.
                    let exit = || input.is_closed() && input.is_empty();
                    if !gate.wait_admitted_or(r, SAFETY_PARK, exit) && exit() {
                        break;
                    }
                    continue;
                }
                // admitted: single-wait receive — an item, a close, or a
                // gate-change wake_all all hand control back immediately
                match input.recv_or_wake(SAFETY_PARK) {
                    TryRecv::Item(x) => work(r, x),
                    TryRecv::Closed => break,
                    TryRecv::Empty => {}
                }
            })
        })
        .collect();
    StageCrew { handles }
}

/// Spawn one persistent worker per `(input, output)` link pair on
/// `pool`, each looping `recv → work → send` until its input closes (or
/// its output rejects a send). This is the lock-free-farm counterpart of
/// [`spawn_stage_workers`]: each replica **owns** both ends of its
/// private links — typically one column of an input
/// [`ring_mpmc`](crate::mpmc::ring_mpmc) matrix and one row of an output
/// one — so the loop body takes no lock anywhere. Admission control
/// happens upstream (the pump routes with
/// [`RingSender::try_send_within`](crate::mpmc::RingSender::try_send_within));
/// a narrowed-off replica simply stops receiving new items, drains its
/// ring, and parks in `recv` at zero cost.
///
/// Worker index `r` is the link's position in `links`; the worker's
/// handles drop when it exits, which closes ring lanes (shutdown
/// propagates downstream) — see the close semantics of the link family
/// in use.
pub fn spawn_farm_workers<T, U, R, S>(
    pool: &ThreadPool,
    links: Vec<(R, S)>,
    work: Arc<dyn Fn(usize, T) -> U + Send + Sync>,
) -> StageCrew
where
    T: Send + 'static,
    U: Send + 'static,
    R: LinkRx<T> + 'static,
    S: LinkTx<U> + 'static,
{
    let handles = links
        .into_iter()
        .enumerate()
        .map(|(r, (rx, tx))| {
            let work = Arc::clone(&work);
            pool.submit(move || {
                while let Some(x) = rx.recv() {
                    if tx.send(work(r, x)).is_err() {
                        break;
                    }
                }
            })
        })
        .collect();
    StageCrew { handles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[test]
    fn gate_admits_and_parks() {
        let gate = WidthGate::new(2);
        assert_eq!(gate.width(), 2);
        assert!(gate.wait_admitted(1, Duration::from_millis(1)));
        assert!(!gate.wait_admitted(2, Duration::from_millis(1)));
        gate.set(3);
        assert!(gate.wait_admitted(2, Duration::from_millis(1)));
        gate.open_all();
        assert!(gate.wait_admitted(usize::MAX - 1, Duration::from_millis(1)));
    }

    #[test]
    fn gate_set_wakes_parked_waiter() {
        let gate = WidthGate::new(0);
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.wait_admitted(0, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(5));
        gate.set(1); // must wake the waiter well before the 10s timeout
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn workers_process_everything_then_exit() {
        let pool = ThreadPool::new(3);
        let input = Bounded::new(8);
        let output = Bounded::new(1024);
        let out = output.clone();
        let crew = spawn_stage_workers(
            &pool,
            3,
            WidthGate::new(3),
            input.clone(),
            Arc::new(move |_, x: u64| {
                let _ = out.send(x * 2);
            }),
        );
        assert_eq!(crew.size(), 3);
        for i in 0..200 {
            input.send(i).unwrap();
        }
        input.close();
        crew.join();
        output.close();
        let mut got = Vec::new();
        while let Some(x) = output.recv() {
            got.push(x);
        }
        got.sort_unstable();
        assert_eq!(got, (0..200).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn gated_workers_claim_nothing() {
        let pool = ThreadPool::new(4);
        let input = Bounded::new(64);
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let hits = Arc::new(AtomicU64::new(0));
        // only worker 0 is admitted
        let gate = WidthGate::new(1);
        let crew = {
            let seen = Arc::clone(&seen);
            let hits = Arc::clone(&hits);
            spawn_stage_workers(
                &pool,
                4,
                Arc::clone(&gate),
                input.clone(),
                Arc::new(move |r, _x: u64| {
                    seen.lock().unwrap().insert(r);
                    hits.fetch_add(1, Ordering::Relaxed);
                }),
            )
        };
        for i in 0..50 {
            input.send(i).unwrap();
        }
        // let the lone admitted worker drain the queue
        while hits.load(Ordering::Relaxed) < 50 {
            std::thread::yield_now();
        }
        input.close();
        gate.open_all(); // wake the parked workers so they observe the close
        crew.join();
        assert_eq!(*seen.lock().unwrap(), std::collections::HashSet::from([0]));
    }

    #[test]
    fn widening_activates_more_workers() {
        let pool = ThreadPool::new(2);
        let input = Bounded::new(64);
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let gate = WidthGate::new(1);
        let crew = {
            let seen = Arc::clone(&seen);
            spawn_stage_workers(
                &pool,
                2,
                Arc::clone(&gate),
                input.clone(),
                Arc::new(move |r, _x: u64| {
                    seen.lock().unwrap().insert(r);
                    // slow stage: gives the second worker a chance to claim
                    std::thread::sleep(Duration::from_micros(300));
                }),
            )
        };
        gate.set(2); // widen: wakes the parked second worker
        for i in 0..300 {
            input.send(i).unwrap();
        }
        input.close();
        crew.join();
        assert_eq!(
            *seen.lock().unwrap(),
            std::collections::HashSet::from([0, 1])
        );
    }

    /// Regression (issue 7): a gated-off worker used to check
    /// closed+empty *outside* the gate lock and then park up to 250 ms —
    /// a `close()` + `open_all()` signalled in that window was lost and
    /// `StageCrew::join` stalled a full park interval. With the check
    /// under the lock, shutdown of parked workers is prompt. Run many
    /// rounds: the race needs the interleaving, the fix must never lose
    /// it.
    #[test]
    fn shutdown_of_gated_workers_is_prompt() {
        let pool = ThreadPool::new(2);
        for _ in 0..20 {
            let input: Bounded<u64> = Bounded::new(4);
            let gate = WidthGate::new(0); // both workers gated off
            let crew = spawn_stage_workers(
                &pool,
                2,
                Arc::clone(&gate),
                input.clone(),
                Arc::new(|_, _| {}),
            );
            // race the shutdown pair against the workers' first park
            input.close();
            gate.open_all();
            let t0 = std::time::Instant::now();
            crew.join();
            assert!(
                t0.elapsed() < Duration::from_millis(200),
                "join stalled a park interval: {:?}",
                t0.elapsed()
            );
        }
    }

    #[test]
    fn narrowing_reaches_workers_idle_in_the_channel() {
        let pool = ThreadPool::new(1);
        let input: Bounded<u64> = Bounded::new(4);
        let gate = WidthGate::new(1);
        let crew = spawn_stage_workers(
            &pool,
            1,
            Arc::clone(&gate),
            input.clone(),
            Arc::new(|_, _| {}),
        );
        // the admitted worker is idle-parked in recv_or_wake; narrowing
        // must wake it (via the gate's channel waker) so it re-parks on
        // the gate — then close+open_all must still join promptly
        std::thread::sleep(Duration::from_millis(10));
        gate.set(0);
        std::thread::sleep(Duration::from_millis(10));
        input.close();
        gate.open_all();
        let t0 = std::time::Instant::now();
        crew.join();
        assert!(t0.elapsed() < Duration::from_millis(200));
    }

    #[test]
    fn farm_workers_move_items_over_private_rings() {
        use crate::mpmc::ring_mpmc;
        let pool = ThreadPool::new(3);
        let (mut in_txs, in_rxs) = ring_mpmc::<u64>(1, 3, 12);
        let (out_txs, mut out_rxs) = ring_mpmc::<u64>(3, 1, 12);
        let in_tx = in_txs.remove(0);
        let out_rx = out_rxs.remove(0);
        let links: Vec<_> = in_rxs.into_iter().zip(out_txs).collect();
        let crew = spawn_farm_workers(&pool, links, Arc::new(|_, x: u64| x * 2));
        assert_eq!(crew.size(), 3);
        let feeder = std::thread::spawn(move || {
            for i in 0..300 {
                in_tx.send(i).unwrap();
            }
            // in_tx drops: workers drain, exit, drop their out rows
        });
        let mut got = Vec::new();
        while let Some(x) = out_rx.recv() {
            got.push(x);
        }
        feeder.join().unwrap();
        crew.join();
        got.sort_unstable();
        assert_eq!(got, (0..300).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn worker_panic_surfaces_at_join() {
        let pool = ThreadPool::new(1);
        let input = Bounded::new(4);
        let crew = spawn_stage_workers(
            &pool,
            1,
            WidthGate::new(1),
            input.clone(),
            Arc::new(|_, x: u64| {
                if x == 2 {
                    panic!("stage died");
                }
            }),
        );
        for i in 0..4 {
            input.send(i).unwrap();
        }
        input.close();
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| crew.join())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "stage died");
    }
}
