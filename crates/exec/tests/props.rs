//! Property tests: threaded execution is observationally equivalent to
//! sequential execution for pure functions.

use proptest::prelude::*;
use scl_exec::{par_map, par_map_indexed, ExecPolicy, ThreadPool};

proptest! {
    #[test]
    fn par_map_equals_seq_map(items in prop::collection::vec(any::<i64>(), 0..200),
                              threads in 1usize..8) {
        let f = |x: &i64| x.wrapping_mul(31).wrapping_add(7);
        let seq: Vec<i64> = items.iter().map(f).collect();
        let par = par_map(ExecPolicy::Threads(threads), &items, f);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn indexed_map_equals_enumerate(items in prop::collection::vec(any::<u32>(), 0..200)) {
        let f = |i: usize, x: &u32| (i as u64) * 1000 + *x as u64 % 997;
        let seq: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        let par = par_map_indexed(ExecPolicy::Threads(4), &items, f);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn pool_submit_all_matches_direct(values in prop::collection::vec(any::<u16>(), 0..100)) {
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = values.iter().map(|&v| move || v as u32 + 1).collect();
        let out = pool.submit_all(jobs);
        let expect: Vec<u32> = values.iter().map(|&v| v as u32 + 1).collect();
        prop_assert_eq!(out, expect);
    }
}
