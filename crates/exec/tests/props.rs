//! Property tests: threaded execution is observationally equivalent to
//! sequential execution for pure functions. (Randomised via `scl-testkit`,
//! the workspace's zero-dependency proptest replacement.)

use scl_exec::{par_map, par_map_indexed, ExecPolicy, ThreadPool};
use scl_testkit::{cases, Rng};

#[test]
fn par_map_equals_seq_map() {
    cases(64, 0xE1, |rng: &mut Rng| {
        let len = rng.range_usize(0, 200);
        let items = rng.vec_of(len, Rng::any_i64);
        let threads = rng.range_usize(1, 8);
        let f = |x: &i64| x.wrapping_mul(31).wrapping_add(7);
        let seq: Vec<i64> = items.iter().map(f).collect();
        let par = par_map(ExecPolicy::Threads(threads), &items, f);
        assert_eq!(seq, par);
    });
}

#[test]
fn indexed_map_equals_enumerate() {
    cases(64, 0xE2, |rng: &mut Rng| {
        let len = rng.range_usize(0, 200);
        let items = rng.vec_of(len, |r| r.next_u64() as u32);
        let f = |i: usize, x: &u32| (i as u64) * 1000 + *x as u64 % 997;
        let seq: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        let par = par_map_indexed(ExecPolicy::Threads(4), &items, f);
        assert_eq!(seq, par);
    });
}

#[test]
fn pool_submit_all_matches_direct() {
    cases(32, 0xE3, |rng: &mut Rng| {
        let len = rng.range_usize(0, 100);
        let values = rng.vec_of(len, |r| r.next_u64() as u16);
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = values.iter().map(|&v| move || v as u32 + 1).collect();
        let out = pool.submit_all(jobs);
        let expect: Vec<u32> = values.iter().map(|&v| v as u32 + 1).collect();
        assert_eq!(out, expect);
    });
}
