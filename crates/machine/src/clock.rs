//! Per-processor virtual clocks.
//!
//! Each simulated processor owns a clock; local work advances the owner's
//! clock, and synchronising operations (barriers, collectives) bring groups
//! of clocks together. The predicted runtime of a program is the *makespan*:
//! the largest clock once the program finishes.

use crate::time::Time;
use crate::topology::ProcId;

/// The clocks of a set of processors.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcClocks {
    t: Vec<Time>,
}

impl ProcClocks {
    /// `n` clocks, all at zero.
    pub fn new(n: usize) -> ProcClocks {
        assert!(n > 0, "need at least one processor");
        ProcClocks {
            t: vec![Time::ZERO; n],
        }
    }

    /// Number of processors.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Always false (a machine has ≥ 1 processor), provided for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Current time of processor `p`.
    pub fn get(&self, p: ProcId) -> Time {
        self.t[p]
    }

    /// Overwrite the time of processor `p` (used by message delivery, where
    /// the receiver's clock becomes `max(receiver, sender + transit)`).
    pub fn set(&mut self, p: ProcId, t: Time) {
        self.t[p] = t;
    }

    /// Advance processor `p` by `dt`.
    pub fn advance(&mut self, p: ProcId, dt: Time) {
        debug_assert!(dt.is_valid(), "negative or non-finite time advance: {dt:?}");
        self.t[p] += dt;
    }

    /// Advance every processor by `dt`.
    pub fn advance_all(&mut self, dt: Time) {
        for t in &mut self.t {
            *t += dt;
        }
    }

    /// Move the clock of `p` forward to at least `t` (no-op if already past).
    pub fn raise_to(&mut self, p: ProcId, t: Time) {
        if self.t[p] < t {
            self.t[p] = t;
        }
    }

    /// Synchronise **all** processors: every clock jumps to the current
    /// maximum plus `cost`. Returns the post-barrier time.
    pub fn barrier(&mut self, cost: Time) -> Time {
        let m = self.makespan() + cost;
        for t in &mut self.t {
            *t = m;
        }
        m
    }

    /// Synchronise a subset of processors (a *group* in MPI terms — what
    /// SCL's nested arrays map to). Clocks outside the group are untouched.
    ///
    /// # Panics
    /// Panics if `group` is empty or contains an out-of-range id.
    pub fn barrier_group(&mut self, group: &[ProcId], cost: Time) -> Time {
        assert!(!group.is_empty(), "barrier over empty group");
        let m = group.iter().map(|&p| self.t[p]).fold(Time::ZERO, Time::max) + cost;
        for &p in group {
            self.t[p] = m;
        }
        m
    }

    /// The largest clock — the predicted elapsed time so far.
    pub fn makespan(&self) -> Time {
        self.t.iter().copied().fold(Time::ZERO, Time::max)
    }

    /// The smallest clock.
    pub fn min_time(&self) -> Time {
        self.t.iter().copied().fold(Time(f64::INFINITY), Time::min)
    }

    /// Mean of all clocks.
    pub fn mean(&self) -> Time {
        self.t.iter().copied().sum::<Time>() / self.t.len() as f64
    }

    /// Load imbalance: `makespan / mean`, 1.0 when perfectly balanced.
    /// Returns 1.0 when no time has elapsed at all.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean();
        if mean == Time::ZERO {
            1.0
        } else {
            self.makespan() / mean
        }
    }

    /// Reset every clock to zero.
    pub fn reset(&mut self) {
        for t in &mut self.t {
            *t = Time::ZERO;
        }
    }

    /// Snapshot of all clock values.
    pub fn snapshot(&self) -> Vec<Time> {
        self.t.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = ProcClocks::new(4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.makespan(), Time::ZERO);
        assert_eq!(c.mean(), Time::ZERO);
        assert_eq!(c.imbalance(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_procs() {
        let _ = ProcClocks::new(0);
    }

    #[test]
    fn advance_and_makespan() {
        let mut c = ProcClocks::new(3);
        c.advance(0, Time::from_secs(1.0));
        c.advance(1, Time::from_secs(3.0));
        c.advance(1, Time::from_secs(1.0));
        assert_eq!(c.get(0).as_secs(), 1.0);
        assert_eq!(c.get(1).as_secs(), 4.0);
        assert_eq!(c.get(2).as_secs(), 0.0);
        assert_eq!(c.makespan().as_secs(), 4.0);
        assert_eq!(c.min_time().as_secs(), 0.0);
    }

    #[test]
    fn barrier_syncs_to_max_plus_cost() {
        let mut c = ProcClocks::new(3);
        c.advance(2, Time::from_secs(5.0));
        let t = c.barrier(Time::from_secs(0.5));
        assert_eq!(t.as_secs(), 5.5);
        for p in 0..3 {
            assert_eq!(c.get(p).as_secs(), 5.5);
        }
    }

    #[test]
    fn group_barrier_leaves_outsiders_alone() {
        let mut c = ProcClocks::new(4);
        c.advance(0, Time::from_secs(1.0));
        c.advance(1, Time::from_secs(2.0));
        c.advance(3, Time::from_secs(9.0));
        c.barrier_group(&[0, 1], Time::from_secs(1.0));
        assert_eq!(c.get(0).as_secs(), 3.0);
        assert_eq!(c.get(1).as_secs(), 3.0);
        assert_eq!(c.get(2).as_secs(), 0.0);
        assert_eq!(c.get(3).as_secs(), 9.0);
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn group_barrier_rejects_empty() {
        let mut c = ProcClocks::new(2);
        c.barrier_group(&[], Time::ZERO);
    }

    #[test]
    fn raise_to_is_monotone() {
        let mut c = ProcClocks::new(1);
        c.raise_to(0, Time::from_secs(2.0));
        assert_eq!(c.get(0).as_secs(), 2.0);
        c.raise_to(0, Time::from_secs(1.0));
        assert_eq!(c.get(0).as_secs(), 2.0);
    }

    #[test]
    fn imbalance_measures_skew() {
        let mut c = ProcClocks::new(2);
        c.advance(0, Time::from_secs(2.0));
        // mean = 1.0, max = 2.0
        assert_eq!(c.imbalance(), 2.0);
        c.advance(1, Time::from_secs(2.0));
        assert_eq!(c.imbalance(), 1.0);
    }

    #[test]
    fn reset_clears() {
        let mut c = ProcClocks::new(2);
        c.advance_all(Time::from_secs(1.0));
        c.reset();
        assert_eq!(c.makespan(), Time::ZERO);
    }

    #[test]
    fn snapshot_copies_state() {
        let mut c = ProcClocks::new(2);
        c.advance(1, Time::from_secs(7.0));
        let s = c.snapshot();
        assert_eq!(s[0].as_secs(), 0.0);
        assert_eq!(s[1].as_secs(), 7.0);
    }
}
