//! Machine cost models.
//!
//! A [`CostModel`] turns abstract quantities — messages, bytes, hops,
//! comparisons, floating-point operations — into [`Time`]. All the simulator's
//! performance predictions flow through one of these, so swapping the model
//! re-targets the whole library to a different machine: the paper's Fujitsu
//! AP1000, a modern commodity cluster, or a synthetic "communication is free"
//! machine used for ablation studies.

use crate::time::Time;

/// Linear (LogP-flavoured) machine cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-message software overhead (send + receive path).
    pub t_msg: Time,
    /// Time to move one byte across the network (inverse bandwidth).
    pub t_byte: Time,
    /// Extra latency per link crossed.
    pub t_hop: Time,
    /// Cost of a full-machine barrier (the AP1000 has a dedicated
    /// synchronisation network, so this is small and size-independent).
    pub t_barrier: Time,
    /// Time per floating-point operation.
    pub t_flop: Time,
    /// Time per key comparison (sorting workloads).
    pub t_cmp: Time,
    /// Time per element move/copy in local memory.
    pub t_mem: Time,
    /// True if the machine has single-phase hardware broadcast
    /// (the AP1000 B-net); otherwise broadcast uses a log-depth tree.
    pub hw_broadcast: bool,
    /// Link-contention factor applied to the byte-transfer term of bulk
    /// phases (permutations, collectives): `1.0` = contention-free links,
    /// `2.0` = each byte effectively costs double because phases share
    /// channels. Point-to-point sends are unaffected.
    pub contention: f64,
}

impl CostModel {
    /// Approximate Fujitsu AP1000 parameters, assembled from the machine
    /// description in Ishihata et al. (1991) cited by the paper:
    /// 25 MHz SPARC cells, 25 MB/s T-net channels, a B-net broadcast network
    /// and an S-net barrier network. Software messaging overhead dominates
    /// small messages (tens of microseconds, as was typical of the era).
    ///
    /// These are *calibration* constants: the reproduction targets the shape
    /// of the paper's scaling results, not its absolute seconds.
    pub fn ap1000() -> CostModel {
        CostModel {
            t_msg: Time::from_micros(50.0),
            t_byte: Time::from_nanos(40.0), // 25 MB/s
            t_hop: Time::from_micros(0.2),
            t_barrier: Time::from_micros(5.0), // hardware S-net
            t_flop: Time::from_micros(0.4),    // ~2.5 MFLOPS sustained
            t_cmp: Time::from_micros(0.4),     // compare + branch + memory
            t_mem: Time::from_micros(0.2),
            hw_broadcast: true, // B-net
            contention: 1.0,
        }
    }

    /// A contemporary commodity cluster: ~1 µs MPI latency, ~10 GB/s links,
    /// ~1 ns cores.
    pub fn modern_cluster() -> CostModel {
        CostModel {
            t_msg: Time::from_micros(1.0),
            t_byte: Time::from_nanos(0.1),
            t_hop: Time::from_nanos(30.0),
            t_barrier: Time::from_micros(3.0),
            t_flop: Time::from_nanos(0.5),
            t_cmp: Time::from_nanos(1.0),
            t_mem: Time::from_nanos(0.5),
            hw_broadcast: false,
            contention: 1.0,
        }
    }

    /// All communication is free; computation costs remain. Used by the
    /// ablation benches to isolate communication overheads.
    pub fn zero_comm() -> CostModel {
        CostModel {
            t_msg: Time::ZERO,
            t_byte: Time::ZERO,
            t_hop: Time::ZERO,
            t_barrier: Time::ZERO,
            ..CostModel::ap1000()
        }
    }

    /// Every unit quantity costs exactly one second. Makes analytic tests
    /// read as plain operation counts.
    pub fn unit() -> CostModel {
        CostModel {
            t_msg: Time::from_secs(1.0),
            t_byte: Time::from_secs(1.0),
            t_hop: Time::from_secs(1.0),
            t_barrier: Time::from_secs(1.0),
            t_flop: Time::from_secs(1.0),
            t_cmp: Time::from_secs(1.0),
            t_mem: Time::from_secs(1.0),
            hw_broadcast: false,
            contention: 1.0,
        }
    }

    /// Cost of one point-to-point message of `bytes` payload over `hops`
    /// links: `t_msg + hops·t_hop + bytes·t_byte`.
    #[inline]
    pub fn ptp(&self, bytes: usize, hops: usize) -> Time {
        self.t_msg + self.t_hop * hops + self.t_byte * bytes
    }

    /// A copy of this model with the given link-contention factor.
    pub fn with_contention(mut self, factor: f64) -> CostModel {
        self.contention = factor;
        self
    }

    /// Decide how one **fused segment** — `stages` part-local stages run
    /// back-to-back over `parts` partitions of roughly `elem_bytes` each —
    /// should execute on a host offering up to `max_threads` threads.
    ///
    /// The model weighs the segment's estimated local work per partition
    /// (`stages · elem_bytes · t_mem`) against its per-phase coordination
    /// overhead (`t_msg + t_barrier`, standing in for the host cost of
    /// waking and joining workers): segments whose total work is within a
    /// few multiples of the overhead run sequentially, larger ones fan out
    /// with a grain that gives each thread several scheduling quanta for
    /// self-balancing. `elem_bytes` is a *static* estimate
    /// (`size_of::<T>()` of the part type), so heap-heavy parts are
    /// under-estimated — the decision errs toward sequential, which is the
    /// cheap mistake.
    pub fn fused_decision(
        &self,
        parts: usize,
        stages: usize,
        elem_bytes: usize,
        max_threads: usize,
    ) -> FusedDecision {
        let sequential = FusedDecision {
            threads: 1,
            grain: 1,
        };
        if max_threads <= 1 || parts <= 1 {
            return sequential;
        }
        let per_part = self.t_mem * (stages.max(1) * elem_bytes.max(1));
        let overhead = self.t_msg + self.t_barrier;
        if per_part * parts <= overhead * 4u64 {
            return sequential;
        }
        let threads = max_threads.min(parts);
        FusedDecision {
            threads,
            grain: (parts / (threads * 4)).max(1),
        }
    }

    /// Decide whether a **communication barrier's local data movement** —
    /// moving `parts` cells of roughly `per_part_bytes` each (a bucket
    /// transpose, a gather concat, a partition scatter) — should fan out
    /// over the persistent pool. Same weighing as
    /// [`CostModel::fused_decision`] with a single stage, but the payload
    /// estimate is the *actual* bytes the skeleton is about to move (it has
    /// them, for route charging), not a static `size_of`: pure pointer
    /// moves report pointer-sized payloads and stay sequential, while
    /// element-copying movements (concat, scatter) report the real span and
    /// fan out once it dwarfs the dispatch overhead.
    pub fn comm_decision(
        &self,
        parts: usize,
        per_part_bytes: usize,
        max_threads: usize,
    ) -> FusedDecision {
        self.fused_decision(parts, 1, per_part_bytes, max_threads)
    }

    /// Sanity check: every parameter finite and non-negative, contention
    /// at least 1.
    pub fn is_valid(&self) -> bool {
        [
            self.t_msg,
            self.t_byte,
            self.t_hop,
            self.t_barrier,
            self.t_flop,
            self.t_cmp,
            self.t_mem,
        ]
        .iter()
        .all(|t| t.is_valid())
            && self.contention.is_finite()
            && self.contention >= 1.0
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ap1000()
    }
}

/// The execution choice a [`CostModel`] makes for one fused segment — see
/// [`CostModel::fused_decision`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedDecision {
    /// Host threads to run the segment on (`1` = sequential, inline).
    pub threads: usize,
    /// Consecutive partitions a worker claims per scheduling step.
    pub grain: usize,
}

/// A bag of abstract local work, charged to a processor's clock via
/// [`Work::cost`].
///
/// Sequential kernels in `scl-apps` are instrumented to *count* their
/// operations (comparisons for sorting, flops for elimination, element moves
/// for merging); the counts are deterministic given the input, which makes
/// the whole simulation reproducible. Wall-clock measured work can be folded
/// in through the `seconds` field.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Work {
    /// Floating point operations.
    pub flops: u64,
    /// Key comparisons.
    pub cmps: u64,
    /// Element moves / copies.
    pub moves: u64,
    /// Directly measured seconds (e.g. host wall time of an opaque closure).
    pub seconds: f64,
}

impl Work {
    /// No work at all.
    pub const NONE: Work = Work {
        flops: 0,
        cmps: 0,
        moves: 0,
        seconds: 0.0,
    };

    /// Work consisting of `n` floating-point operations.
    pub fn flops(n: u64) -> Work {
        Work {
            flops: n,
            ..Work::NONE
        }
    }

    /// Work consisting of `n` comparisons.
    pub fn cmps(n: u64) -> Work {
        Work {
            cmps: n,
            ..Work::NONE
        }
    }

    /// Work consisting of `n` element moves.
    pub fn moves(n: u64) -> Work {
        Work {
            moves: n,
            ..Work::NONE
        }
    }

    /// Work measured directly in seconds.
    pub fn seconds(s: f64) -> Work {
        Work {
            seconds: s,
            ..Work::NONE
        }
    }

    /// The time this work takes under `model`.
    pub fn cost(&self, model: &CostModel) -> Time {
        model.t_flop * self.flops
            + model.t_cmp * self.cmps
            + model.t_mem * self.moves
            + Time::from_secs(self.seconds)
    }

    /// Component-wise sum of two work bags.
    pub fn plus(self, other: Work) -> Work {
        Work {
            flops: self.flops + other.flops,
            cmps: self.cmps + other.cmps,
            moves: self.moves + other.moves,
            seconds: self.seconds + other.seconds,
        }
    }

    /// True if the bag is empty.
    pub fn is_none(&self) -> bool {
        *self == Work::NONE
    }
}

impl std::ops::Add for Work {
    type Output = Work;
    fn add(self, rhs: Work) -> Work {
        self.plus(rhs)
    }
}

impl std::ops::AddAssign for Work {
    fn add_assign(&mut self, rhs: Work) {
        *self = self.plus(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(CostModel::ap1000().is_valid());
        assert!(CostModel::modern_cluster().is_valid());
        assert!(CostModel::zero_comm().is_valid());
        assert!(CostModel::unit().is_valid());
    }

    #[test]
    fn ptp_linear_in_bytes_and_hops() {
        let m = CostModel::unit();
        assert_eq!(m.ptp(0, 0).as_secs(), 1.0); // just t_msg
        assert_eq!(m.ptp(3, 0).as_secs(), 4.0);
        assert_eq!(m.ptp(0, 2).as_secs(), 3.0);
        assert_eq!(m.ptp(3, 2).as_secs(), 6.0);
    }

    #[test]
    fn zero_comm_makes_messages_free() {
        let m = CostModel::zero_comm();
        assert_eq!(m.ptp(1 << 20, 10), Time::ZERO);
        // but computation still costs
        assert!(Work::cmps(100).cost(&m) > Time::ZERO);
    }

    #[test]
    fn work_cost_unit_model_counts_ops() {
        let m = CostModel::unit();
        let w = Work {
            flops: 2,
            cmps: 3,
            moves: 4,
            seconds: 5.0,
        };
        assert_eq!(w.cost(&m).as_secs(), 2.0 + 3.0 + 4.0 + 5.0);
    }

    #[test]
    fn work_addition() {
        let a = Work::flops(1) + Work::cmps(2) + Work::moves(3);
        assert_eq!(
            a,
            Work {
                flops: 1,
                cmps: 2,
                moves: 3,
                seconds: 0.0
            }
        );
        let mut b = Work::NONE;
        b += a;
        b += Work::seconds(1.5);
        assert_eq!(b.seconds, 1.5);
        assert!(!b.is_none());
        assert!(Work::NONE.is_none());
    }

    #[test]
    fn contention_scales_phase_bytes() {
        use crate::network::Network;
        use crate::topology::Topology;
        let topo = Topology::FullyConnected { procs: 8 };
        let base = CostModel::unit();
        let congested = CostModel::unit().with_contention(2.0);
        let n1 = Network::new(&base, &topo);
        let n2 = Network::new(&congested, &topo);
        // byte term doubles, latency terms don't
        let c1 = n1.all_to_all(8, 100).as_secs();
        let c2 = n2.all_to_all(8, 100).as_secs();
        assert!(c2 > c1);
        assert!((c2 - c1 - 7.0 * 100.0).abs() < 1e-9, "{c1} vs {c2}");
        // zero-byte phases are unaffected
        assert_eq!(n1.all_to_all(8, 0), n2.all_to_all(8, 0));
    }

    #[test]
    fn contention_below_one_is_invalid() {
        assert!(!CostModel::unit().with_contention(0.5).is_valid());
        assert!(CostModel::unit().with_contention(3.0).is_valid());
    }

    #[test]
    fn fused_decision_degenerate_cases_are_sequential() {
        let m = CostModel::unit();
        // no host parallelism, or a single partition: nothing to fan out
        assert_eq!(m.fused_decision(64, 8, 1024, 1).threads, 1);
        assert_eq!(m.fused_decision(1, 8, 1024, 8).threads, 1);
        assert_eq!(m.fused_decision(0, 8, 1024, 8).threads, 1);
    }

    #[test]
    fn fused_decision_small_segments_stay_sequential() {
        // AP1000: coordination overhead (55 µs) dwarfs a couple of memory
        // ops per partition, so tiny segments run inline.
        let m = CostModel::ap1000();
        let d = m.fused_decision(8, 2, 8, 8);
        assert_eq!(
            d,
            FusedDecision {
                threads: 1,
                grain: 1
            }
        );
    }

    #[test]
    fn fused_decision_large_segments_fan_out() {
        let m = CostModel::ap1000();
        let d = m.fused_decision(32, 4, 64 * 1024, 8);
        assert_eq!(d.threads, 8);
        // 32 parts / (8 threads * 4 quanta) = 1 part per claim
        assert_eq!(d.grain, 1);
        // more parts than scheduling quanta -> coarser grain
        let d = m.fused_decision(1024, 4, 64 * 1024, 8);
        assert_eq!(d.grain, 1024 / (8 * 4));
        // never more threads than parts
        assert_eq!(m.fused_decision(3, 4, 64 * 1024, 8).threads, 3);
    }

    #[test]
    fn comm_decision_gates_on_real_payload() {
        let m = CostModel::ap1000();
        // pointer-sized cell moves (a bucket transpose of Vec headers on a
        // small grid) stay sequential ...
        assert_eq!(m.comm_decision(16, 24, 8).threads, 1);
        // ... while a gather concat of 64 KiB parts fans out
        assert_eq!(m.comm_decision(16, 64 * 1024, 8).threads, 8);
        assert_eq!(m.comm_decision(1, 1 << 20, 8).threads, 1);
    }

    #[test]
    fn ap1000_is_slower_than_modern() {
        let old = CostModel::ap1000();
        let new = CostModel::modern_cluster();
        assert!(Work::cmps(1000).cost(&old) > Work::cmps(1000).cost(&new));
        assert!(old.ptp(1024, 4) > new.ptp(1024, 4));
    }
}
