#![warn(missing_docs)]
//! # scl-machine — a simulated distributed-memory multicomputer
//!
//! This crate is the *hardware substrate* for the `scl-rs` reproduction of
//! Darlington, Guo, To & Yang, *"Parallel Skeletons for Structured
//! Composition"* (PPoPP 1995). The paper evaluates its skeleton language on a
//! Fujitsu AP1000 — a 1991 distributed-memory machine we obviously cannot
//! run — so this crate models one: interconnect topologies, a calibratable
//! linear cost model, per-processor virtual clocks, collective-communication
//! formulas, counters and event traces.
//!
//! The skeleton layer (`scl-core`) performs the *real* data movement on the
//! host and charges this machine for what each step would have cost; the
//! maximum clock (the *makespan*) is the predicted parallel runtime. That is
//! exactly what's needed to regenerate the paper's Table 1 and Figure 3
//! scaling shapes deterministically.
//!
//! ## Quick tour
//!
//! ```
//! use scl_machine::{Machine, CostModel, Topology, Work};
//!
//! // A 16-cell AP1000-like machine (2-D torus + hardware broadcast).
//! let mut m = Machine::ap1000(16);
//!
//! // Each cell quicksorts its local block: charge n/p log n/p comparisons.
//! let works: Vec<Work> = (0..16).map(|_| Work::cmps(6250 * 13)).collect();
//! m.compute_each(&works, "local sort");
//!
//! // One barrier, then gather the blocks to cell 0.
//! m.barrier();
//! let group: Vec<usize> = (0..16).collect();
//! m.gather(&group, 6250 * 8);
//!
//! println!("predicted runtime: {}", m.makespan());
//! assert!(m.makespan().as_secs() > 0.0);
//! ```

pub mod clock;
pub mod cost;
pub mod machine;
pub mod metrics;
pub mod network;
pub mod time;
pub mod topology;
pub mod trace;

pub use clock::ProcClocks;
pub use cost::{CostModel, FusedDecision, Work};
pub use machine::{Machine, MachineReport};
pub use metrics::{Metrics, Throughput};
pub use network::{log_phases, Network};
pub use time::Time;
pub use topology::{ProcId, Topology};
pub use trace::{Event, Trace};
