//! The simulated multicomputer.
//!
//! [`Machine`] is the façade the rest of the workspace talks to: it owns the
//! topology, the cost model, the per-processor clocks, the counters and the
//! (optional) event trace, and exposes one method per primitive the SCL
//! skeletons charge — local compute, point-to-point messages, barriers and
//! group collectives.
//!
//! The execution model is *virtual time*: methods never move real data (the
//! skeleton layer does that), they only account for what the data movement
//! would cost on the modelled machine. Collectives are synchronising, as in
//! the paper's SPMD semantics: participants meet at the max of their clocks
//! and leave together after the collective's cost.

use crate::clock::ProcClocks;
use crate::cost::{CostModel, Work};
use crate::metrics::Metrics;
use crate::network::Network;
use crate::time::Time;
use crate::topology::{ProcId, Topology};
use crate::trace::{Event, Trace};

/// A simulated distributed-memory machine.
#[derive(Debug, Clone)]
pub struct Machine {
    topo: Topology,
    model: CostModel,
    /// Per-processor relative compute speed (1.0 = nominal). Models
    /// heterogeneous clusters / thermally-throttled cells: local work on
    /// processor `p` takes `cost / speed[p]`.
    speed: Vec<f64>,
    /// Per-processor virtual clocks (public for read access; mutate through
    /// the machine's methods so counters and traces stay consistent).
    pub clocks: ProcClocks,
    /// Aggregate operation counters.
    pub metrics: Metrics,
    /// Optional event trace.
    pub trace: Trace,
}

/// End-of-run summary produced by [`Machine::report`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineReport {
    /// Number of processors.
    pub procs: usize,
    /// Predicted elapsed time (max clock).
    pub makespan: Time,
    /// Load imbalance (`makespan / mean clock`).
    pub imbalance: f64,
    /// Operation counters.
    pub metrics: Metrics,
}

impl std::fmt::Display for MachineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "procs={} makespan={} imbalance={:.3} {}",
            self.procs,
            self.makespan,
            self.imbalance,
            self.metrics.summary()
        )
    }
}

impl Machine {
    /// Build a machine from a topology and a cost model.
    pub fn new(topo: Topology, model: CostModel) -> Machine {
        assert!(model.is_valid(), "invalid cost model");
        let n = topo.procs();
        Machine {
            topo,
            model,
            speed: vec![1.0; n],
            clocks: ProcClocks::new(n),
            metrics: Metrics::new(),
            trace: Trace::new(),
        }
    }

    /// Set the relative compute speed of processor `p` (1.0 = nominal,
    /// 0.5 = half speed). Communication is unaffected.
    ///
    /// # Panics
    /// Panics unless `factor` is finite and positive.
    pub fn set_speed(&mut self, p: ProcId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "speed must be positive, got {factor}"
        );
        self.speed[p] = factor;
    }

    /// The relative compute speed of processor `p`.
    pub fn speed(&self, p: ProcId) -> f64 {
        self.speed[p]
    }

    /// An AP1000-like machine with `n` cells: 2-D torus T-net and the
    /// [`CostModel::ap1000`] parameters.
    pub fn ap1000(n: usize) -> Machine {
        Machine::new(Topology::torus_for(n), CostModel::ap1000())
    }

    /// A hypercube machine of `n = 2^d` processors with the given model.
    pub fn hypercube(n: usize, model: CostModel) -> Machine {
        Machine::new(Topology::hypercube_for(n), model)
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.topo.procs()
    }

    /// The interconnect.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The cost parameters.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The network cost calculator for this machine.
    pub fn network(&self) -> Network<'_> {
        Network::new(&self.model, &self.topo)
    }

    // ---- local computation ------------------------------------------------

    /// Charge `work` of local computation to processor `p` (scaled by the
    /// processor's relative speed).
    pub fn compute(&mut self, p: ProcId, work: Work, label: &str) {
        let dt = work.cost(&self.model) / self.speed[p];
        let start = self.clocks.get(p);
        self.clocks.advance(p, dt);
        self.metrics.compute_steps += 1;
        self.metrics.flops += work.flops;
        self.metrics.cmps += work.cmps;
        self.metrics.moves += work.moves;
        if self.trace.is_enabled() {
            self.trace.record(Event::Compute {
                proc: p,
                start,
                end: start + dt,
                label: label.to_string(),
            });
        }
    }

    /// Charge one bag of work per processor (a data-parallel local step —
    /// no synchronisation; clocks drift apart according to load).
    pub fn compute_each(&mut self, works: &[Work], label: &str) {
        assert_eq!(works.len(), self.nprocs(), "one Work per processor");
        for (p, w) in works.iter().enumerate() {
            self.compute(p, *w, label);
        }
    }

    // ---- point-to-point ---------------------------------------------------

    /// Send `bytes` from `src` to `dst`. The sender pays its software
    /// overhead and continues; the receiver's clock is raised to the arrival
    /// time (it may already be later — then the message waited in a buffer).
    pub fn send(&mut self, src: ProcId, dst: ProcId, bytes: usize) {
        let depart = self.clocks.get(src);
        let transit = self.network().ptp(src, dst, bytes);
        self.clocks.advance(src, self.model.t_msg);
        self.clocks.raise_to(dst, depart + transit);
        self.metrics.messages += 1;
        self.metrics.bytes += bytes as u64;
        if self.trace.is_enabled() {
            self.trace.record(Event::Message {
                src,
                dst,
                bytes,
                send: depart,
                recv: depart + transit,
            });
        }
    }

    /// Synchronous pairwise exchange between `a` and `b` (both send
    /// `bytes_max`, full duplex): both clocks meet, then advance by one
    /// transfer time. This is the hyperquicksort partner step.
    pub fn exchange(&mut self, a: ProcId, b: ProcId, bytes_max: usize) {
        let t0 = self.clocks.get(a).max(self.clocks.get(b));
        let dt = self.network().pairwise_exchange(a, b, bytes_max);
        self.clocks.set(a, t0 + dt);
        self.clocks.set(b, t0 + dt);
        self.metrics.messages += 2;
        self.metrics.bytes += 2 * bytes_max as u64;
        if self.trace.is_enabled() {
            self.trace.record(Event::Collective {
                kind: "exchange",
                procs: vec![a, b],
                start: t0,
                end: t0 + dt,
            });
        }
    }

    /// A synchronous *permutation step*: every route `(src, dst, bytes)` is
    /// delivered in one bulk phase, as SCL's data-movement skeletons
    /// (`rotate`, `send`, `fetch`) require. The whole `group` meets at the
    /// max of its clocks and leaves together once the slowest endpoint is
    /// done. Endpoint cost: each processor pays the sum of the messages it
    /// sources plus the sum of the messages it sinks (serialised NIC model);
    /// the phase takes the max over endpoints.
    ///
    /// Self-routes (src == dst) are priced as local memory copies and do not
    /// count as messages.
    pub fn permute(&mut self, group: &[ProcId], routes: &[(ProcId, ProcId, usize)]) -> Time {
        assert!(!group.is_empty(), "permute over empty group");
        let dt = self.routed_phase(group, routes);
        self.collective("permute", group, dt)
    }

    /// Price one synchronous routed phase (the serialised-NIC model shared
    /// by [`Machine::permute`] and [`Machine::all_to_all_v`]): each
    /// endpoint pays the sum of the messages it sources plus the sum it
    /// sinks, the phase takes the max over the group's endpoints, and
    /// every cross-processor route counts as a message. Self-routes are
    /// priced as local memory copies and not counted.
    fn routed_phase(&mut self, group: &[ProcId], routes: &[(ProcId, ProcId, usize)]) -> Time {
        let net = Network::new(&self.model, &self.topo);
        let n = self.clocks.len();
        let mut out_cost = vec![Time::ZERO; n];
        let mut in_cost = vec![Time::ZERO; n];
        for &(src, dst, bytes) in routes {
            let c = net.ptp(src, dst, bytes);
            out_cost[src] += c;
            in_cost[dst] += c;
            if src != dst {
                self.metrics.messages += 1;
                self.metrics.bytes += bytes as u64;
            }
        }
        group
            .iter()
            .map(|&p| out_cost[p].max(in_cost[p]))
            .fold(Time::ZERO, Time::max)
    }

    // ---- synchronisation --------------------------------------------------

    /// Full-machine barrier.
    pub fn barrier(&mut self) -> Time {
        let end = self.clocks.barrier(self.model.t_barrier);
        self.metrics.barriers += 1;
        if self.trace.is_enabled() {
            self.trace.record(Event::Barrier {
                procs: (0..self.nprocs()).collect(),
                end,
            });
        }
        end
    }

    /// Barrier over a processor group (nested parallelism).
    pub fn barrier_group(&mut self, group: &[ProcId]) -> Time {
        let end = self.clocks.barrier_group(group, self.model.t_barrier);
        self.metrics.group_barriers += 1;
        if self.trace.is_enabled() {
            self.trace.record(Event::Barrier {
                procs: group.to_vec(),
                end,
            });
        }
        end
    }

    // ---- collectives ------------------------------------------------------

    fn collective(&mut self, kind: &'static str, group: &[ProcId], dt: Time) -> Time {
        assert!(!group.is_empty(), "collective over empty group");
        let t0 = group
            .iter()
            .map(|&p| self.clocks.get(p))
            .fold(Time::ZERO, Time::max);
        let end = t0 + dt;
        for &p in group {
            self.clocks.set(p, end);
        }
        if self.trace.is_enabled() {
            self.trace.record(Event::Collective {
                kind,
                procs: group.to_vec(),
                start: t0,
                end,
            });
        }
        end
    }

    /// Broadcast `bytes` from a member to the whole `group`.
    pub fn broadcast(&mut self, group: &[ProcId], bytes: usize) -> Time {
        let dt = self.network().broadcast(group.len(), bytes);
        self.metrics.broadcasts += 1;
        self.metrics.bytes += bytes as u64 * (group.len().saturating_sub(1)) as u64;
        self.collective("broadcast", group, dt)
    }

    /// Reduction across `group` carrying `bytes`, with `combine` local work
    /// per phase.
    pub fn reduce(&mut self, group: &[ProcId], bytes: usize, combine: Work) -> Time {
        let dt = self.network().reduce(group.len(), bytes, combine);
        self.metrics.reductions += 1;
        self.collective("reduce", group, dt)
    }

    /// Parallel prefix across `group`.
    pub fn scan(&mut self, group: &[ProcId], bytes: usize, combine: Work) -> Time {
        let dt = self.network().scan(group.len(), bytes, combine);
        self.metrics.scans += 1;
        self.collective("scan", group, dt)
    }

    /// Gather `bytes_per_proc` from each group member to a root.
    pub fn gather(&mut self, group: &[ProcId], bytes_per_proc: usize) -> Time {
        let dt = self.network().gather(group.len(), bytes_per_proc);
        self.metrics.gathers += 1;
        self.metrics.bytes += bytes_per_proc as u64 * (group.len().saturating_sub(1)) as u64;
        self.collective("gather", group, dt)
    }

    /// Scatter `bytes_per_proc` from a root to each group member.
    pub fn scatter(&mut self, group: &[ProcId], bytes_per_proc: usize) -> Time {
        let dt = self.network().scatter(group.len(), bytes_per_proc);
        self.metrics.gathers += 1;
        self.metrics.bytes += bytes_per_proc as u64 * (group.len().saturating_sub(1)) as u64;
        self.collective("scatter", group, dt)
    }

    /// All-gather: every group member ends up with every member's
    /// `bytes_per_proc` contribution (recursive doubling).
    pub fn all_gather(&mut self, group: &[ProcId], bytes_per_proc: usize) -> Time {
        let dt = self.network().all_gather(group.len(), bytes_per_proc);
        self.metrics.gathers += 1;
        let g = group.len() as u64;
        self.metrics.bytes += bytes_per_proc as u64 * g.saturating_sub(1) * g;
        self.collective("all_gather", group, dt)
    }

    /// All-reduce: every group member ends up with the reduction
    /// (butterfly), paying `combine` local work per phase.
    pub fn all_reduce(&mut self, group: &[ProcId], bytes: usize, combine: Work) -> Time {
        let dt = self.network().all_reduce(group.len(), bytes, combine);
        self.metrics.reductions += 1;
        self.collective("all_reduce", group, dt)
    }

    /// All-to-all personalised exchange of `bytes_per_pair` within `group`.
    pub fn all_to_all(&mut self, group: &[ProcId], bytes_per_pair: usize) -> Time {
        let dt = self.network().all_to_all(group.len(), bytes_per_pair);
        self.metrics.exchanges += 1;
        let g = group.len() as u64;
        self.metrics.bytes += bytes_per_pair as u64 * g.saturating_sub(1) * g;
        self.collective("all_to_all", group, dt)
    }

    /// All-to-all personalised exchange with **per-route** payloads (MPI's
    /// `alltoallv`): every `(src, dst, bytes)` route is delivered in one
    /// synchronous phase priced like [`Machine::permute`] — each endpoint
    /// pays the sum of the messages it sources plus the sum it sinks
    /// (serialised NIC model), and the phase takes the max over endpoints.
    /// Unlike the uniform [`Machine::all_to_all`], skewed buckets are
    /// charged what they actually ship instead of `(g−1)·g` copies of the
    /// largest bucket.
    ///
    /// Counted as one exchange; each cross-processor route also counts as a
    /// message. Self-routes (data staying home) are free and uncounted —
    /// the skeleton layer omits them.
    pub fn all_to_all_v(&mut self, group: &[ProcId], routes: &[(ProcId, ProcId, usize)]) -> Time {
        assert!(!group.is_empty(), "all_to_all_v over empty group");
        let dt = self.routed_phase(group, routes);
        self.metrics.exchanges += 1;
        self.collective("all_to_all", group, dt)
    }

    // ---- results ----------------------------------------------------------

    /// Predicted elapsed time so far.
    pub fn makespan(&self) -> Time {
        self.clocks.makespan()
    }

    /// Processor occupancy in `[0, 1]`: mean clock over makespan (the
    /// reciprocal of [`ProcClocks::imbalance`](crate::clock::ProcClocks)).
    /// `1.0` means every processor was busy for the whole predicted run —
    /// perfectly balanced; `1/p` means one processor did all the work. By
    /// convention `1.0` before any work is charged.
    pub fn occupancy(&self) -> f64 {
        let imb = self.clocks.imbalance();
        if imb > 0.0 {
            1.0 / imb
        } else {
            1.0
        }
    }

    /// Zero the clocks, counters and trace for a fresh run on the same
    /// machine.
    pub fn reset(&mut self) {
        self.clocks.reset();
        self.metrics.reset();
        self.trace.clear();
    }

    /// Snapshot summary of the run.
    pub fn report(&self) -> MachineReport {
        MachineReport {
            procs: self.nprocs(),
            makespan: self.makespan(),
            imbalance: self.clocks.imbalance(),
            metrics: self.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_machine(n: usize) -> Machine {
        Machine::new(Topology::FullyConnected { procs: n }, CostModel::unit())
    }

    #[test]
    fn compute_advances_only_owner() {
        let mut m = unit_machine(3);
        m.compute(1, Work::cmps(5), "sort");
        assert_eq!(m.clocks.get(0), Time::ZERO);
        assert_eq!(m.clocks.get(1).as_secs(), 5.0);
        assert_eq!(m.metrics.cmps, 5);
        assert_eq!(m.metrics.compute_steps, 1);
    }

    #[test]
    fn compute_each_requires_full_vector() {
        let mut m = unit_machine(2);
        m.compute_each(&[Work::flops(1), Work::flops(2)], "step");
        assert_eq!(m.makespan().as_secs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "one Work per processor")]
    fn compute_each_wrong_len_panics() {
        let mut m = unit_machine(2);
        m.compute_each(&[Work::NONE], "bad");
    }

    #[test]
    fn send_raises_receiver() {
        let mut m = unit_machine(2);
        m.send(0, 1, 3);
        // transit = t_msg(1) + t_hop(1) + 3*t_byte(3) = 5
        assert_eq!(m.clocks.get(1).as_secs(), 5.0);
        // sender only pays software overhead
        assert_eq!(m.clocks.get(0).as_secs(), 1.0);
        assert_eq!(m.metrics.messages, 1);
        assert_eq!(m.metrics.bytes, 3);
    }

    #[test]
    fn send_does_not_rewind_receiver() {
        let mut m = unit_machine(2);
        m.compute(1, Work::seconds(100.0), "busy");
        m.send(0, 1, 1);
        assert_eq!(m.clocks.get(1).as_secs(), 100.0);
    }

    #[test]
    fn exchange_synchronises_pair() {
        let mut m = unit_machine(4);
        m.compute(2, Work::seconds(10.0), "late");
        m.exchange(1, 2, 4);
        assert_eq!(m.clocks.get(1), m.clocks.get(2));
        assert!(m.clocks.get(1).as_secs() > 10.0);
        assert_eq!(m.clocks.get(3), Time::ZERO);
        assert_eq!(m.metrics.messages, 2);
    }

    #[test]
    fn barrier_counts_and_syncs() {
        let mut m = unit_machine(3);
        m.compute(0, Work::seconds(2.0), "w");
        let t = m.barrier();
        assert_eq!(t.as_secs(), 3.0); // 2.0 + unit barrier cost
        assert_eq!(m.metrics.barriers, 1);
        for p in 0..3 {
            assert_eq!(m.clocks.get(p), t);
        }
    }

    #[test]
    fn group_collective_leaves_outsiders() {
        let mut m = unit_machine(4);
        m.broadcast(&[0, 1], 8);
        assert!(m.clocks.get(0) > Time::ZERO);
        assert_eq!(m.clocks.get(0), m.clocks.get(1));
        assert_eq!(m.clocks.get(2), Time::ZERO);
        assert_eq!(m.metrics.broadcasts, 1);
    }

    #[test]
    fn collective_starts_at_group_max() {
        let mut m = unit_machine(3);
        m.compute(2, Work::seconds(7.0), "late");
        let end = m.reduce(&[0, 1, 2], 0, Work::NONE);
        assert!(end.as_secs() >= 7.0);
    }

    #[test]
    fn ap1000_shape() {
        let m = Machine::ap1000(32);
        assert_eq!(m.nprocs(), 32);
        assert!(matches!(m.topology(), Topology::Torus2D { .. }));
        assert!(m.model().hw_broadcast);
    }

    #[test]
    fn hypercube_constructor() {
        let m = Machine::hypercube(16, CostModel::ap1000());
        assert_eq!(m.nprocs(), 16);
        assert_eq!(m.topology().diameter(), 4);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = unit_machine(2);
        m.trace.enable();
        m.compute(0, Work::flops(1), "w");
        m.barrier();
        m.reset();
        assert_eq!(m.makespan(), Time::ZERO);
        assert_eq!(m.metrics, Metrics::new());
        assert!(m.trace.events().is_empty());
    }

    #[test]
    fn permute_prices_bottleneck_endpoint() {
        let mut m = unit_machine(4);
        let group: Vec<usize> = (0..4).collect();
        // Rotate by one: 4 disjoint messages of 2 bytes each.
        // Each ptp = t_msg(1) + t_hop(1) + 2*t_byte(2) = 4.
        let routes: Vec<(usize, usize, usize)> = (0..4).map(|i| (i, (i + 1) % 4, 2)).collect();
        let end = m.permute(&group, &routes);
        assert_eq!(end.as_secs(), 4.0);
        assert_eq!(m.metrics.messages, 4);
        assert_eq!(m.metrics.bytes, 8);
    }

    #[test]
    fn permute_many_to_one_serialises_at_receiver() {
        let mut m = unit_machine(4);
        let group: Vec<usize> = (0..4).collect();
        // Three senders converge on proc 0: receiver cost = 3 * ptp.
        let routes: Vec<(usize, usize, usize)> = (1..4).map(|i| (i, 0, 2)).collect();
        let end = m.permute(&group, &routes);
        assert_eq!(end.as_secs(), 12.0);
    }

    #[test]
    fn all_to_all_v_prices_actual_routes() {
        let mut m = unit_machine(2);
        // Skewed buckets: 0 -> 1 ships 16 bytes, 1 -> 0 ships 24.
        // ptp = t_msg(1) + t_hop(1) + bytes; endpoints each source one and
        // sink one route, so the phase is max(18, 26) = 26.
        let end = m.all_to_all_v(&[0, 1], &[(0, 1, 16), (1, 0, 24)]);
        assert_eq!(end.as_secs(), 26.0);
        assert_eq!(m.metrics.exchanges, 1);
        assert_eq!(m.metrics.messages, 2);
        assert_eq!(m.metrics.bytes, 40);

        // skewed buckets: one heavy route among four procs. The uniform
        // model charges every one of the g-1 phases the max bucket size;
        // per-route charging pays for the single real transfer.
        let mut v = unit_machine(4);
        let sparse = v.all_to_all_v(&(0..4).collect::<Vec<_>>(), &[(0, 1, 8)]);
        assert_eq!(sparse.as_secs(), 10.0); // t_msg + t_hop + 8 bytes
        let mut u = unit_machine(4);
        let uniform = u.all_to_all(&(0..4).collect::<Vec<_>>(), 8);
        assert!(sparse < uniform, "{sparse} vs {uniform}");
    }

    #[test]
    fn all_to_all_v_serialises_hot_receiver() {
        let mut m = unit_machine(4);
        let group: Vec<usize> = (0..4).collect();
        // three senders converge on proc 0: receiver pays 3 * (1+1+2) = 12
        let routes: Vec<(usize, usize, usize)> = (1..4).map(|i| (i, 0, 2)).collect();
        assert_eq!(m.all_to_all_v(&group, &routes).as_secs(), 12.0);
        assert_eq!(m.metrics.exchanges, 1);
    }

    #[test]
    fn permute_self_route_is_memcpy_not_message() {
        let mut m = unit_machine(2);
        let end = m.permute(&[0, 1], &[(0, 0, 10)]);
        assert_eq!(m.metrics.messages, 0);
        assert_eq!(m.metrics.bytes, 0);
        // unit t_mem * 10 bytes
        assert_eq!(end.as_secs(), 10.0);
    }

    #[test]
    fn report_display() {
        let mut m = unit_machine(2);
        m.compute(0, Work::flops(3), "w");
        let r = m.report();
        assert_eq!(r.procs, 2);
        assert_eq!(r.makespan.as_secs(), 3.0);
        let s = format!("{r}");
        assert!(s.contains("procs=2"));
    }

    #[test]
    fn occupancy_reflects_balance() {
        let mut m = unit_machine(2);
        assert_eq!(m.occupancy(), 1.0); // nothing charged yet
        m.compute(0, Work::flops(10), "w");
        m.compute(1, Work::flops(10), "w");
        assert!((m.occupancy() - 1.0).abs() < 1e-12);
        m.compute(0, Work::flops(20), "w");
        // clocks 30 and 10: mean 20, makespan 30
        assert!((m.occupancy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_speed_scales_compute_only() {
        let mut m = unit_machine(2);
        m.set_speed(1, 0.5); // half-speed cell
        m.compute(0, Work::flops(10), "w");
        m.compute(1, Work::flops(10), "w");
        assert_eq!(m.clocks.get(0).as_secs(), 10.0);
        assert_eq!(m.clocks.get(1).as_secs(), 20.0);
        // communication is NOT scaled
        let before = m.clocks.get(1);
        m.send(1, 0, 0);
        assert_eq!((m.clocks.get(1) - before).as_secs(), 1.0); // t_msg only
        assert_eq!(m.speed(1), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn speed_must_be_positive() {
        let mut m = unit_machine(1);
        m.set_speed(0, 0.0);
    }

    #[test]
    fn slow_processor_dominates_barrier() {
        let mut m = unit_machine(4);
        m.set_speed(3, 0.25);
        for p in 0..4 {
            m.compute(p, Work::flops(8), "w");
        }
        m.barrier();
        // slowest cell took 32s, barrier adds 1
        assert_eq!(m.makespan().as_secs(), 33.0);
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut m = unit_machine(2);
        m.trace.enable();
        m.compute(0, Work::flops(1), "w");
        m.send(0, 1, 8);
        m.barrier();
        m.broadcast(&[0, 1], 4);
        assert_eq!(m.trace.events().len(), 4);
    }
}
