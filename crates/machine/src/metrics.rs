//! Aggregate counters for a simulated run.
//!
//! Counters answer the "how much communication did this program do" question
//! independently of the cost model — the transformation ablations (§4 of the
//! paper) assert on *these* (messages removed, barriers removed) as well as
//! on virtual time.

/// Event counters accumulated by a [`crate::machine::Machine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Total payload bytes moved point-to-point.
    pub bytes: u64,
    /// Full-machine barriers executed.
    pub barriers: u64,
    /// Group (subset) barriers executed.
    pub group_barriers: u64,
    /// Broadcast collectives.
    pub broadcasts: u64,
    /// Reduction collectives.
    pub reductions: u64,
    /// Scan collectives.
    pub scans: u64,
    /// Gather/scatter collectives.
    pub gathers: u64,
    /// All-to-all collectives.
    pub exchanges: u64,
    /// Local compute steps charged.
    pub compute_steps: u64,
    /// Total flops charged.
    pub flops: u64,
    /// Total comparisons charged.
    pub cmps: u64,
    /// Total element moves charged.
    pub moves: u64,
}

impl Metrics {
    /// A fresh, all-zero counter set.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Total collective operations of any kind.
    pub fn collectives(&self) -> u64 {
        self.broadcasts + self.reductions + self.scans + self.gathers + self.exchanges
    }

    /// Total synchronisation points (all barrier flavours).
    pub fn sync_points(&self) -> u64 {
        self.barriers + self.group_barriers
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.barriers += other.barriers;
        self.group_barriers += other.group_barriers;
        self.broadcasts += other.broadcasts;
        self.reductions += other.reductions;
        self.scans += other.scans;
        self.gathers += other.gathers;
        self.exchanges += other.exchanges;
        self.compute_steps += other.compute_steps;
        self.flops += other.flops;
        self.cmps += other.cmps;
        self.moves += other.moves;
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Metrics::default();
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "msgs={} bytes={} barriers={}(+{} group) collectives={} compute_steps={} (flops={} cmps={} moves={})",
            self.messages,
            self.bytes,
            self.barriers,
            self.group_barriers,
            self.collectives(),
            self.compute_steps,
            self.flops,
            self.cmps,
            self.moves,
        )
    }
}

/// Sustained-rate gauge for streaming execution: items completed over
/// elapsed *host* seconds. The streaming runtime (`scl-stream`) keeps one
/// per run and one per stage; benchmark tables report
/// [`Throughput::items_per_sec`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Throughput {
    /// Items completed.
    pub items: u64,
    /// Host seconds elapsed while completing them.
    pub secs: f64,
}

impl Throughput {
    /// A zeroed gauge.
    pub fn new() -> Throughput {
        Throughput::default()
    }

    /// Record `items` more completions over `secs` more elapsed seconds.
    pub fn record(&mut self, items: u64, secs: f64) {
        self.items += items;
        self.secs += secs;
    }

    /// Items per second; `0.0` before any time has been observed.
    pub fn items_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.items as f64 / self.secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed() {
        let m = Metrics::new();
        assert_eq!(m.messages, 0);
        assert_eq!(m.collectives(), 0);
        assert_eq!(m.sync_points(), 0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = Metrics {
            messages: 1,
            bytes: 10,
            barriers: 2,
            ..Metrics::default()
        };
        let b = Metrics {
            messages: 3,
            bytes: 5,
            group_barriers: 1,
            cmps: 7,
            ..Metrics::default()
        };
        a.merge(&b);
        assert_eq!(a.messages, 4);
        assert_eq!(a.bytes, 15);
        assert_eq!(a.sync_points(), 3);
        assert_eq!(a.cmps, 7);
    }

    #[test]
    fn reset_zeroes() {
        let mut a = Metrics {
            messages: 1,
            ..Metrics::default()
        };
        a.reset();
        assert_eq!(a, Metrics::default());
    }

    #[test]
    fn summary_mentions_counts() {
        let m = Metrics {
            messages: 42,
            ..Metrics::default()
        };
        assert!(m.summary().contains("msgs=42"));
    }

    #[test]
    fn throughput_rates() {
        let mut t = Throughput::new();
        assert_eq!(t.items_per_sec(), 0.0);
        t.record(100, 2.0);
        t.record(50, 1.0);
        assert_eq!(t.items, 150);
        assert_eq!(t.items_per_sec(), 50.0);
    }
}
