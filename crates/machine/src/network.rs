//! Collective-communication cost formulas.
//!
//! [`Network`] combines a [`CostModel`] with a [`Topology`] and prices the
//! bulk operations SCL's communication skeletons compile to. The formulas are
//! the standard log-tree / linear-phase models used in parallel-algorithm
//! textbooks (Quinn, *Parallel Computing: Theory and Practice* — the paper's
//! own reference for hyperquicksort):
//!
//! * point-to-point: `t_msg + hops·t_hop + bytes·t_byte`
//! * broadcast: one phase on hardware-broadcast machines (AP1000 B-net),
//!   otherwise `⌈log₂ g⌉` point-to-point phases
//! * reduce / scan: `⌈log₂ g⌉` phases of message + local combine
//! * gather / scatter: `⌈log₂ g⌉` phases with doubling payloads
//! * all-to-all: `g − 1` phases
//!
//! All formulas work on a *group size* `g`, not the whole machine, because
//! SCL supports nested parallelism over processor groups.

use crate::cost::{CostModel, Work};
use crate::time::Time;
use crate::topology::{ProcId, Topology};

/// Cost calculator for a (cost model, topology) pair.
#[derive(Debug, Clone, Copy)]
pub struct Network<'a> {
    /// The machine's cost parameters.
    pub model: &'a CostModel,
    /// The machine's interconnect.
    pub topo: &'a Topology,
}

/// `⌈log₂ g⌉`, with `log_phases(0) == log_phases(1) == 0`.
pub fn log_phases(g: usize) -> u32 {
    if g <= 1 {
        0
    } else {
        usize::BITS - (g - 1).leading_zeros()
    }
}

impl<'a> Network<'a> {
    /// Pair a model with a topology.
    pub fn new(model: &'a CostModel, topo: &'a Topology) -> Network<'a> {
        Network { model, topo }
    }

    /// Cost of a point-to-point message from `src` to `dst`.
    pub fn ptp(&self, src: ProcId, dst: ProcId, bytes: usize) -> Time {
        if src == dst {
            // Local "send to self" is a memory copy.
            return self.model.t_mem * bytes;
        }
        self.model.ptp(bytes, self.topo.hops(src, dst))
    }

    /// Cost of one tree phase between typical group members: a message over
    /// the topology's mean hop distance, with the byte term scaled by the
    /// link-contention factor (many members transfer at once).
    fn phase(&self, bytes: f64) -> Time {
        self.model.t_msg
            + self.model.t_hop * self.topo.mean_hops()
            + self.model.t_byte * (bytes * self.model.contention)
    }

    /// Broadcast `bytes` from one member to a group of `g` processors.
    pub fn broadcast(&self, g: usize, bytes: usize) -> Time {
        if g <= 1 {
            return Time::ZERO;
        }
        if self.model.hw_broadcast {
            // Single phase on the dedicated broadcast network; worst-case
            // distance bounded by the diameter.
            self.model.ptp(bytes, self.topo.diameter())
        } else {
            self.phase(bytes as f64) * log_phases(g) as f64
        }
    }

    /// Reduce `bytes` of payload across `g` processors, paying `combine`
    /// local work per tree phase.
    pub fn reduce(&self, g: usize, bytes: usize, combine: Work) -> Time {
        if g <= 1 {
            return Time::ZERO;
        }
        (self.phase(bytes as f64) + combine.cost(self.model)) * log_phases(g) as f64
    }

    /// Parallel prefix (scan) across `g` processors — same log-depth shape
    /// as reduce.
    pub fn scan(&self, g: usize, bytes: usize, combine: Work) -> Time {
        self.reduce(g, bytes, combine)
    }

    /// Gather `bytes_per_proc` from each of `g` processors to one root,
    /// tree-style with payload doubling each phase.
    pub fn gather(&self, g: usize, bytes_per_proc: usize) -> Time {
        if g <= 1 {
            return Time::ZERO;
        }
        let mut total = Time::ZERO;
        let mut payload = bytes_per_proc as f64;
        for _ in 0..log_phases(g) {
            total += self.phase(payload);
            payload *= 2.0;
        }
        total
    }

    /// Scatter from one root to `g` processors — symmetric to gather.
    pub fn scatter(&self, g: usize, bytes_per_proc: usize) -> Time {
        self.gather(g, bytes_per_proc)
    }

    /// All-gather (recursive doubling): after `⌈log₂ g⌉` phases every
    /// member holds all `g` contributions — same phase structure as a
    /// tree gather, but nobody waits for a root.
    pub fn all_gather(&self, g: usize, bytes_per_proc: usize) -> Time {
        self.gather(g, bytes_per_proc)
    }

    /// All-reduce (butterfly): every member ends with the reduction —
    /// log-depth like [`Network::reduce`], no separate broadcast needed.
    pub fn all_reduce(&self, g: usize, bytes: usize, combine: Work) -> Time {
        self.reduce(g, bytes, combine)
    }

    /// Total exchange (all-to-all personalised) of `bytes_per_pair` between
    /// every ordered pair: `g − 1` phases.
    pub fn all_to_all(&self, g: usize, bytes_per_pair: usize) -> Time {
        if g <= 1 {
            return Time::ZERO;
        }
        self.phase(bytes_per_pair as f64) * (g - 1) as f64
    }

    /// A synchronous pairwise exchange (both directions at once, as in the
    /// hyperquicksort partner step): one message time over the actual route,
    /// assuming full-duplex links.
    pub fn pairwise_exchange(&self, a: ProcId, b: ProcId, bytes_max: usize) -> Time {
        self.ptp(a, b, bytes_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_net(topo: &Topology) -> Network<'_> {
        // Leak a unit model for test brevity; tests only.
        let model = Box::leak(Box::new(CostModel::unit()));
        Network::new(model, topo)
    }

    #[test]
    fn log_phases_values() {
        assert_eq!(log_phases(0), 0);
        assert_eq!(log_phases(1), 0);
        assert_eq!(log_phases(2), 1);
        assert_eq!(log_phases(3), 2);
        assert_eq!(log_phases(4), 2);
        assert_eq!(log_phases(5), 3);
        assert_eq!(log_phases(32), 5);
    }

    #[test]
    fn ptp_self_is_memcpy() {
        let topo = Topology::Hypercube { dim: 3 };
        let n = unit_net(&topo);
        assert_eq!(n.ptp(2, 2, 10).as_secs(), 10.0); // t_mem * bytes
    }

    #[test]
    fn ptp_counts_hops() {
        let topo = Topology::Hypercube { dim: 3 };
        let n = unit_net(&topo);
        // 0 -> 7 is 3 hops; unit model: 1 (msg) + 3 (hops) + bytes
        assert_eq!(n.ptp(0, 7, 4).as_secs(), 8.0);
    }

    #[test]
    fn singleton_groups_are_free() {
        let topo = Topology::Hypercube { dim: 3 };
        let n = unit_net(&topo);
        assert_eq!(n.broadcast(1, 100), Time::ZERO);
        assert_eq!(n.reduce(1, 100, Work::flops(5)), Time::ZERO);
        assert_eq!(n.gather(1, 100), Time::ZERO);
        assert_eq!(n.all_to_all(1, 100), Time::ZERO);
    }

    #[test]
    fn broadcast_tree_is_log_depth() {
        let topo = Topology::FullyConnected { procs: 8 };
        let n = unit_net(&topo);
        // mean_hops = 1; phase(0 bytes) = t_msg + t_hop = 2.0; 3 phases.
        assert_eq!(n.broadcast(8, 0).as_secs(), 6.0);
    }

    #[test]
    fn hw_broadcast_is_single_phase() {
        let topo = Topology::Torus2D { rows: 4, cols: 4 };
        let mut model = CostModel::unit();
        model.hw_broadcast = true;
        let n = Network::new(&model, &topo);
        // single phase regardless of group size
        assert_eq!(n.broadcast(4, 8), n.broadcast(16, 8));
    }

    #[test]
    fn gather_payload_doubles() {
        let topo = Topology::FullyConnected { procs: 4 };
        let n = unit_net(&topo);
        // phases: bytes, 2*bytes; each phase adds t_msg + t_hop = 2
        // total = (2 + 10) + (2 + 20) = 34
        assert_eq!(n.gather(4, 10).as_secs(), 34.0);
    }

    #[test]
    fn all_to_all_linear_in_group() {
        let topo = Topology::FullyConnected { procs: 8 };
        let n = unit_net(&topo);
        let c4 = n.all_to_all(4, 16);
        let c8 = n.all_to_all(8, 16);
        assert!((c8.as_secs() / c4.as_secs() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reduce_charges_combine_per_phase() {
        let topo = Topology::FullyConnected { procs: 4 };
        let n = unit_net(&topo);
        let without = n.reduce(4, 0, Work::NONE);
        let with = n.reduce(4, 0, Work::flops(10));
        // 2 phases, each adding 10 flops * 1s
        assert_eq!((with - without).as_secs(), 20.0);
    }

    #[test]
    fn bigger_groups_cost_more() {
        let topo = Topology::Hypercube { dim: 5 };
        let model = CostModel::ap1000();
        let n = Network::new(&model, &topo);
        for g in [2usize, 4, 8, 16, 32] {
            assert!(n.reduce(g, 64, Work::NONE) >= n.reduce(g / 2, 64, Work::NONE));
            assert!(n.gather(g, 64) >= n.gather(g / 2, 64));
        }
    }

    #[test]
    fn scan_matches_reduce_shape() {
        let topo = Topology::Ring { procs: 8 };
        let n = unit_net(&topo);
        assert_eq!(n.scan(8, 8, Work::NONE), n.reduce(8, 8, Work::NONE));
    }
}
