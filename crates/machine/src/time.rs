//! Virtual time.
//!
//! The simulator measures everything in [`Time`], a thin newtype over `f64`
//! seconds. A newtype (rather than a bare `f64`) keeps durations from being
//! accidentally mixed with counts or byte sizes, while still being `Copy` and
//! cheap to pass around.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span (or absolute point) of virtual time, in seconds.
///
/// `Time` values are produced by [`crate::cost::CostModel`] formulas and
/// accumulated in per-processor clocks ([`crate::clock::ProcClocks`]).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Time(pub f64);

impl Time {
    /// The zero instant / empty duration.
    pub const ZERO: Time = Time(0.0);

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Time {
        Time(s)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Time {
        Time(ms * 1e-3)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Time {
        Time(us * 1e-6)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Time {
        Time(ns * 1e-9)
    }

    /// The value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Pointwise maximum.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Pointwise minimum.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// True if this is a finite, non-negative duration.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs as f64)
    }
}

impl Mul<usize> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: usize) -> Time {
        Time(self.0 * rhs as f64)
    }
}

impl Div<f64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: f64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Div for Time {
    /// Ratio of two durations (e.g. for speedup computations).
    type Output = f64;
    #[inline]
    fn div(self, rhs: Time) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        Time(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for Time {
    /// Engineering-style rendering: picks s / ms / µs / ns by magnitude.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        let a = s.abs();
        if a == 0.0 {
            write!(f, "0s")
        } else if a >= 1.0 {
            write!(f, "{:.3}s", s)
        } else if a >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if a >= 1e-6 {
            write!(f, "{:.3}µs", s * 1e6)
        } else {
            write!(f, "{:.1}ns", s * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Time::from_secs(1.5).as_secs(), 1.5);
        assert!((Time::from_millis(2.0).as_secs() - 0.002).abs() < 1e-12);
        assert!((Time::from_micros(3.0).as_secs() - 3e-6).abs() < 1e-15);
        assert!((Time::from_nanos(4.0).as_secs() - 4e-9).abs() < 1e-18);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_secs(1.0);
        let b = Time::from_secs(0.25);
        assert_eq!((a + b).as_secs(), 1.25);
        assert_eq!((a - b).as_secs(), 0.75);
        assert_eq!((b * 4.0).as_secs(), 1.0);
        assert_eq!((a / 4.0).as_secs(), 0.25);
        assert_eq!(a / b, 4.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_secs(), 1.25);
        c -= b;
        assert_eq!(c.as_secs(), 1.0);
    }

    #[test]
    fn mul_by_counts() {
        assert_eq!((Time::from_secs(0.5) * 4u64).as_secs(), 2.0);
        assert_eq!((Time::from_secs(0.5) * 4usize).as_secs(), 2.0);
    }

    #[test]
    fn min_max() {
        let a = Time::from_secs(1.0);
        let b = Time::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_times() {
        let total: Time = (1..=4).map(|i| Time::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Time::ZERO), "0s");
        assert_eq!(format!("{}", Time::from_secs(2.5)), "2.500s");
        assert_eq!(format!("{}", Time::from_millis(1.5)), "1.500ms");
        assert_eq!(format!("{}", Time::from_micros(12.0)), "12.000µs");
        assert_eq!(format!("{}", Time::from_nanos(7.0)), "7.0ns");
    }

    #[test]
    fn validity() {
        assert!(Time::from_secs(0.0).is_valid());
        assert!(Time::from_secs(1.0).is_valid());
        assert!(!Time::from_secs(-1.0).is_valid());
        assert!(!Time(f64::NAN).is_valid());
        assert!(!Time(f64::INFINITY).is_valid());
    }
}
