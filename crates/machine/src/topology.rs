//! Interconnect topologies.
//!
//! The paper's evaluation machine, the Fujitsu AP1000, connects its cells by
//! a 2-D torus ("T-net") and additionally provides a hardware broadcast
//! network ("B-net") and a hardware barrier/status network ("S-net"). The
//! hyperquicksort example assumes a hypercube communication pattern, which on
//! the real machine is *embedded* into the torus. We model all of these, plus
//! a few standard shapes useful for experiments.
//!
//! A topology answers structural questions only — how many processors, how
//! far apart two of them are (in hops), who neighbours whom. Time costs are
//! the business of [`crate::cost::CostModel`] and [`crate::network`].

/// Identifier of a (virtual) processor, `0 .. procs()`.
pub type ProcId = usize;

/// An interconnect shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every pair of distinct processors is one hop apart.
    FullyConnected {
        /// Number of processors.
        procs: usize,
    },
    /// A bidirectional ring.
    Ring {
        /// Number of processors.
        procs: usize,
    },
    /// A binary hypercube of dimension `dim` (so `2^dim` processors).
    Hypercube {
        /// Cube dimension (log2 of the processor count).
        dim: u32,
    },
    /// A 2-D mesh without wraparound links, row-major numbering.
    Mesh2D {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// A 2-D torus (mesh with wraparound), row-major numbering.
    /// This is the AP1000 T-net shape.
    Torus2D {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
}

impl Topology {
    /// A hypercube big enough to hold `n` processors (`n` must be a power of
    /// two).
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn hypercube_for(n: usize) -> Topology {
        assert!(
            n > 0 && n.is_power_of_two(),
            "hypercube needs a power-of-two size, got {n}"
        );
        Topology::Hypercube {
            dim: n.trailing_zeros(),
        }
    }

    /// A torus as close to square as possible holding exactly `n` processors.
    pub fn torus_for(n: usize) -> Topology {
        assert!(n > 0, "torus needs at least one processor");
        let mut rows = (n as f64).sqrt().floor() as usize;
        while rows > 1 && !n.is_multiple_of(rows) {
            rows -= 1;
        }
        Topology::Torus2D {
            rows,
            cols: n / rows,
        }
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        match *self {
            Topology::FullyConnected { procs } | Topology::Ring { procs } => procs,
            Topology::Hypercube { dim } => 1usize << dim,
            Topology::Mesh2D { rows, cols } | Topology::Torus2D { rows, cols } => rows * cols,
        }
    }

    /// Routing distance (number of links crossed) between two processors,
    /// assuming minimal-path routing.
    ///
    /// # Panics
    /// Panics if either id is out of range.
    pub fn hops(&self, a: ProcId, b: ProcId) -> usize {
        let n = self.procs();
        assert!(
            a < n && b < n,
            "proc id out of range ({a},{b} on {n} procs)"
        );
        if a == b {
            return 0;
        }
        match *self {
            Topology::FullyConnected { .. } => 1,
            Topology::Ring { procs } => {
                let d = a.abs_diff(b);
                d.min(procs - d)
            }
            Topology::Hypercube { .. } => (a ^ b).count_ones() as usize,
            Topology::Mesh2D { cols, .. } => {
                let (ar, ac) = (a / cols, a % cols);
                let (br, bc) = (b / cols, b % cols);
                ar.abs_diff(br) + ac.abs_diff(bc)
            }
            Topology::Torus2D { rows, cols } => {
                let (ar, ac) = (a / cols, a % cols);
                let (br, bc) = (b / cols, b % cols);
                let dr = ar.abs_diff(br);
                let dc = ac.abs_diff(bc);
                dr.min(rows - dr) + dc.min(cols - dc)
            }
        }
    }

    /// Direct neighbours of `p`, in ascending id order.
    pub fn neighbors(&self, p: ProcId) -> Vec<ProcId> {
        let n = self.procs();
        assert!(p < n, "proc id {p} out of range on {n} procs");
        let mut out = match *self {
            Topology::FullyConnected { procs } => (0..procs).filter(|&q| q != p).collect(),
            Topology::Ring { procs } => {
                if procs == 1 {
                    vec![]
                } else if procs == 2 {
                    vec![1 - p]
                } else {
                    vec![(p + procs - 1) % procs, (p + 1) % procs]
                }
            }
            Topology::Hypercube { dim } => (0..dim).map(|d| p ^ (1usize << d)).collect(),
            Topology::Mesh2D { rows, cols } => {
                let (r, c) = (p / cols, p % cols);
                let mut v = Vec::with_capacity(4);
                if r > 0 {
                    v.push(p - cols);
                }
                if r + 1 < rows {
                    v.push(p + cols);
                }
                if c > 0 {
                    v.push(p - 1);
                }
                if c + 1 < cols {
                    v.push(p + 1);
                }
                v
            }
            Topology::Torus2D { rows, cols } => {
                let (r, c) = (p / cols, p % cols);
                let mut v = Vec::with_capacity(4);
                if rows > 1 {
                    v.push(((r + rows - 1) % rows) * cols + c);
                    if rows > 2 {
                        v.push(((r + 1) % rows) * cols + c);
                    }
                }
                if cols > 1 {
                    v.push(r * cols + (c + cols - 1) % cols);
                    if cols > 2 {
                        v.push(r * cols + (c + 1) % cols);
                    }
                }
                v
            }
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The largest hop distance between any pair of processors.
    pub fn diameter(&self) -> usize {
        match *self {
            Topology::FullyConnected { procs } => usize::from(procs > 1),
            Topology::Ring { procs } => procs / 2,
            Topology::Hypercube { dim } => dim as usize,
            Topology::Mesh2D { rows, cols } => (rows - 1) + (cols - 1),
            Topology::Torus2D { rows, cols } => rows / 2 + cols / 2,
        }
    }

    /// Average hop distance from a processor to all *other* processors,
    /// useful as the expected cost of a random point-to-point message.
    pub fn mean_hops(&self) -> f64 {
        let n = self.procs();
        if n <= 1 {
            return 0.0;
        }
        let mut total = 0usize;
        for b in 1..n {
            total += self.hops(0, b);
        }
        // All modelled topologies are vertex-transitive except Mesh2D; for
        // the mesh we average over all sources for correctness.
        if matches!(self, Topology::Mesh2D { .. }) {
            let mut grand = 0usize;
            for a in 0..n {
                for b in 0..n {
                    grand += self.hops(a, b);
                }
            }
            grand as f64 / (n * (n - 1)) as f64
        } else {
            total as f64 / (n - 1) as f64
        }
    }

    /// Hypercube partner of `p` across dimension `d` (the processor whose id
    /// differs exactly in bit `d`). Defined for every topology because SCL
    /// programs (hyperquicksort) use the *logical* hypercube pattern even
    /// when embedded in another network.
    #[inline]
    pub fn hypercube_partner(p: ProcId, d: u32) -> ProcId {
        p ^ (1usize << d)
    }

    /// The binary-reflected Gray code of `i`: consecutive integers map to
    /// hypercube ids one bit apart — the standard ring-in-hypercube
    /// embedding.
    #[inline]
    pub fn gray(i: usize) -> usize {
        i ^ (i >> 1)
    }

    /// Inverse of [`Topology::gray`].
    pub fn gray_inv(mut g: usize) -> usize {
        let mut i = 0usize;
        while g != 0 {
            i ^= g;
            g >>= 1;
        }
        i
    }

    /// True if the topology contains a direct link `a — b`.
    pub fn linked(&self, a: ProcId, b: ProcId) -> bool {
        a != b && self.hops(a, b) == 1
    }

    /// A short human-readable description, e.g. `hypercube(d=5, 32 procs)`.
    pub fn describe(&self) -> String {
        match *self {
            Topology::FullyConnected { procs } => format!("fully-connected({procs} procs)"),
            Topology::Ring { procs } => format!("ring({procs} procs)"),
            Topology::Hypercube { dim } => format!("hypercube(d={dim}, {} procs)", 1usize << dim),
            Topology::Mesh2D { rows, cols } => format!("mesh({rows}x{cols})"),
            Topology::Torus2D { rows, cols } => format!("torus({rows}x{cols})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn procs_counts() {
        assert_eq!(Topology::FullyConnected { procs: 7 }.procs(), 7);
        assert_eq!(Topology::Ring { procs: 5 }.procs(), 5);
        assert_eq!(Topology::Hypercube { dim: 5 }.procs(), 32);
        assert_eq!(Topology::Mesh2D { rows: 3, cols: 4 }.procs(), 12);
        assert_eq!(Topology::Torus2D { rows: 8, cols: 16 }.procs(), 128);
    }

    #[test]
    fn hypercube_for_powers_of_two() {
        assert_eq!(Topology::hypercube_for(1), Topology::Hypercube { dim: 0 });
        assert_eq!(Topology::hypercube_for(32), Topology::Hypercube { dim: 5 });
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hypercube_for_rejects_non_power() {
        let _ = Topology::hypercube_for(12);
    }

    #[test]
    fn torus_for_prefers_square() {
        assert_eq!(
            Topology::torus_for(16),
            Topology::Torus2D { rows: 4, cols: 4 }
        );
        assert_eq!(
            Topology::torus_for(12),
            Topology::Torus2D { rows: 3, cols: 4 }
        );
        assert_eq!(
            Topology::torus_for(7),
            Topology::Torus2D { rows: 1, cols: 7 }
        );
    }

    #[test]
    fn ring_hops_wrap() {
        let t = Topology::Ring { procs: 8 };
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.hops(1, 6), 3);
    }

    #[test]
    fn hypercube_hops_is_popcount() {
        let t = Topology::Hypercube { dim: 4 };
        assert_eq!(t.hops(0b0000, 0b1111), 4);
        assert_eq!(t.hops(0b1010, 0b1000), 1);
        assert_eq!(t.hops(3, 3), 0);
    }

    #[test]
    fn mesh_vs_torus_hops() {
        let m = Topology::Mesh2D { rows: 4, cols: 4 };
        let t = Topology::Torus2D { rows: 4, cols: 4 };
        // corner to corner: mesh walks the full manhattan distance,
        // torus wraps around.
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(t.hops(0, 15), 2);
    }

    #[test]
    fn neighbors_ring_small() {
        assert!(Topology::Ring { procs: 1 }.neighbors(0).is_empty());
        assert_eq!(Topology::Ring { procs: 2 }.neighbors(0), vec![1]);
        assert_eq!(Topology::Ring { procs: 5 }.neighbors(0), vec![1, 4]);
    }

    #[test]
    fn neighbors_hypercube() {
        let t = Topology::Hypercube { dim: 3 };
        assert_eq!(t.neighbors(0), vec![1, 2, 4]);
        assert_eq!(t.neighbors(5), vec![1, 4, 7]);
    }

    #[test]
    fn neighbors_mesh_corner_and_center() {
        let t = Topology::Mesh2D { rows: 3, cols: 3 };
        assert_eq!(t.neighbors(0), vec![1, 3]);
        assert_eq!(t.neighbors(4), vec![1, 3, 5, 7]);
    }

    #[test]
    fn neighbors_torus_always_wrap() {
        let t = Topology::Torus2D { rows: 3, cols: 3 };
        assert_eq!(t.neighbors(0), vec![1, 2, 3, 6]);
        assert_eq!(t.neighbors(0).len(), 4);
    }

    #[test]
    fn neighbors_are_one_hop() {
        for t in [
            Topology::FullyConnected { procs: 6 },
            Topology::Ring { procs: 9 },
            Topology::Hypercube { dim: 4 },
            Topology::Mesh2D { rows: 3, cols: 5 },
            Topology::Torus2D { rows: 4, cols: 4 },
        ] {
            for p in 0..t.procs() {
                for q in t.neighbors(p) {
                    assert_eq!(t.hops(p, q), 1, "{} {p}->{q}", t.describe());
                }
            }
        }
    }

    #[test]
    fn diameter_is_max_hops() {
        for t in [
            Topology::FullyConnected { procs: 6 },
            Topology::Ring { procs: 9 },
            Topology::Hypercube { dim: 4 },
            Topology::Mesh2D { rows: 3, cols: 5 },
            Topology::Torus2D { rows: 4, cols: 6 },
        ] {
            let n = t.procs();
            let max = (0..n)
                .flat_map(|a| (0..n).map(move |b| (a, b)))
                .map(|(a, b)| t.hops(a, b))
                .max()
                .unwrap();
            assert_eq!(t.diameter(), max, "{}", t.describe());
        }
    }

    #[test]
    fn gray_code_adjacent() {
        for i in 0..63usize {
            let a = Topology::gray(i);
            let b = Topology::gray(i + 1);
            assert_eq!((a ^ b).count_ones(), 1, "gray({i}) and gray({})", i + 1);
        }
    }

    #[test]
    fn gray_inverse() {
        for i in 0..256usize {
            assert_eq!(Topology::gray_inv(Topology::gray(i)), i);
        }
    }

    #[test]
    fn partner_is_involution() {
        for p in 0..32usize {
            for d in 0..5u32 {
                let q = Topology::hypercube_partner(p, d);
                assert_ne!(p, q);
                assert_eq!(Topology::hypercube_partner(q, d), p);
            }
        }
    }

    #[test]
    fn mean_hops_fully_connected_is_one() {
        assert_eq!(Topology::FullyConnected { procs: 10 }.mean_hops(), 1.0);
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(
            Topology::Hypercube { dim: 5 }.describe(),
            "hypercube(d=5, 32 procs)"
        );
        assert_eq!(
            Topology::Torus2D { rows: 8, cols: 16 }.describe(),
            "torus(8x16)"
        );
    }
}
