//! Event traces and ASCII Gantt rendering.
//!
//! When tracing is enabled, the machine records every compute span, message
//! and synchronisation with virtual-time stamps. Traces make the simulator
//! debuggable ("why is processor 3 idle?") and power the timeline renderings
//! used in examples and docs.

use crate::time::Time;
use crate::topology::ProcId;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span of local computation on one processor.
    Compute {
        /// Executing processor.
        proc: ProcId,
        /// Span start.
        start: Time,
        /// Span end.
        end: Time,
        /// Operation label.
        label: String,
    },
    /// A point-to-point message.
    Message {
        /// Sender.
        src: ProcId,
        /// Receiver.
        dst: ProcId,
        /// Payload size.
        bytes: usize,
        /// Departure time.
        send: Time,
        /// Arrival time.
        recv: Time,
    },
    /// A barrier over a set of processors ending at `end`.
    Barrier {
        /// Participants.
        procs: Vec<ProcId>,
        /// Synchronisation instant.
        end: Time,
    },
    /// A collective operation over a set of processors.
    Collective {
        /// Collective kind (e.g. "broadcast").
        kind: &'static str,
        /// Participants.
        procs: Vec<ProcId>,
        /// Start (group clock max).
        start: Time,
        /// Completion time.
        end: Time,
    },
}

impl Event {
    /// The virtual time at which the event completes.
    pub fn end_time(&self) -> Time {
        match self {
            Event::Compute { end, .. } => *end,
            Event::Message { recv, .. } => *recv,
            Event::Barrier { end, .. } => *end,
            Event::Collective { end, .. } => *end,
        }
    }
}

/// A capped event log. Recording is off by default; enable with
/// [`Trace::enable`]. The cap prevents long benchmark runs from accumulating
/// unbounded memory.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<Event>,
    enabled: bool,
    cap: usize,
    dropped: usize,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// A disabled trace with the default cap (65536 events).
    pub fn new() -> Trace {
        Trace {
            events: Vec::new(),
            enabled: false,
            cap: 65536,
            dropped: 0,
        }
    }

    /// Turn recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Turn recording off (existing events are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Change the maximum number of retained events.
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap;
    }

    /// Record an event (no-op when disabled; counts drops past the cap).
    pub fn record(&mut self, e: Event) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.events.push(e);
    }

    /// All retained events, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events that were dropped due to the cap.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Discard all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Count events matching a predicate.
    pub fn count(&self, f: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|e| f(e)).count()
    }

    /// Total recorded *compute* time of processor `p`.
    pub fn busy_time(&self, p: ProcId) -> Time {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Compute {
                    proc, start, end, ..
                } if *proc == p => Some(*end - *start),
                _ => None,
            })
            .sum()
    }

    /// Compute utilisation of processor `p` against the trace's makespan
    /// (0.0 when nothing happened).
    pub fn utilization(&self, p: ProcId) -> f64 {
        let makespan = self
            .events
            .iter()
            .map(Event::end_time)
            .fold(Time::ZERO, Time::max);
        if makespan == Time::ZERO {
            0.0
        } else {
            self.busy_time(p) / makespan
        }
    }

    /// Render an ASCII Gantt chart, one row per processor, `width` columns
    /// spanning `[0, makespan]`. Compute spans render as `#`, collective
    /// participation as `=`, barriers as `|`. Idle time is `.`.
    pub fn gantt(&self, nprocs: usize, width: usize) -> String {
        let makespan = self
            .events
            .iter()
            .map(Event::end_time)
            .fold(Time::ZERO, Time::max);
        let mut rows = vec![vec![b'.'; width]; nprocs];
        if makespan > Time::ZERO {
            let col = |t: Time| -> usize {
                (((t / makespan) * (width as f64 - 1.0)).floor() as usize).min(width - 1)
            };
            let fill = |row: &mut Vec<u8>, a: Time, b: Time, ch: u8| {
                // barriers win over collectives win over compute
                let prio = |x: u8| match x {
                    b'|' => 3,
                    b'=' => 2,
                    b'#' => 1,
                    _ => 0,
                };
                for slot in &mut row[col(a)..=col(b)] {
                    if prio(ch) >= prio(*slot) {
                        *slot = ch;
                    }
                }
            };
            for e in &self.events {
                match e {
                    Event::Compute {
                        proc, start, end, ..
                    } => {
                        if *proc < nprocs {
                            fill(&mut rows[*proc], *start, *end, b'#');
                        }
                    }
                    Event::Message { .. } => {}
                    Event::Barrier { procs, end } => {
                        for &p in procs {
                            if p < nprocs {
                                fill(&mut rows[p], *end, *end, b'|');
                            }
                        }
                    }
                    Event::Collective {
                        procs, start, end, ..
                    } => {
                        for &p in procs {
                            if p < nprocs {
                                fill(&mut rows[p], *start, *end, b'=');
                            }
                        }
                    }
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("time 0 .. {makespan}\n"));
        for (p, row) in rows.iter().enumerate() {
            out.push_str(&format!("p{p:<3} [{}]\n", String::from_utf8_lossy(row)));
        }
        if self.dropped > 0 {
            out.push_str(&format!("({} events dropped)\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(proc: ProcId, a: f64, b: f64) -> Event {
        Event::Compute {
            proc,
            start: Time::from_secs(a),
            end: Time::from_secs(b),
            label: "w".into(),
        }
    }

    #[test]
    fn disabled_by_default() {
        let mut t = Trace::new();
        t.record(compute(0, 0.0, 1.0));
        assert!(t.events().is_empty());
    }

    #[test]
    fn records_when_enabled() {
        let mut t = Trace::new();
        t.enable();
        assert!(t.is_enabled());
        t.record(compute(0, 0.0, 1.0));
        assert_eq!(t.events().len(), 1);
        t.disable();
        t.record(compute(0, 1.0, 2.0));
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn cap_drops_and_counts() {
        let mut t = Trace::new();
        t.enable();
        t.set_cap(2);
        for i in 0..5 {
            t.record(compute(0, i as f64, i as f64 + 1.0));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        t.clear();
        assert_eq!(t.events().len(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn count_filters() {
        let mut t = Trace::new();
        t.enable();
        t.record(compute(0, 0.0, 1.0));
        t.record(Event::Barrier {
            procs: vec![0, 1],
            end: Time::from_secs(2.0),
        });
        assert_eq!(t.count(|e| matches!(e, Event::Barrier { .. })), 1);
        assert_eq!(t.count(|e| matches!(e, Event::Compute { .. })), 1);
    }

    #[test]
    fn end_time_of_each_variant() {
        assert_eq!(compute(0, 0.0, 2.5).end_time().as_secs(), 2.5);
        let m = Event::Message {
            src: 0,
            dst: 1,
            bytes: 8,
            send: Time::from_secs(1.0),
            recv: Time::from_secs(3.0),
        };
        assert_eq!(m.end_time().as_secs(), 3.0);
    }

    #[test]
    fn busy_time_and_utilization() {
        let mut t = Trace::new();
        t.enable();
        t.record(compute(0, 0.0, 2.0));
        t.record(compute(0, 3.0, 4.0));
        t.record(compute(1, 0.0, 4.0));
        assert_eq!(t.busy_time(0).as_secs(), 3.0);
        assert_eq!(t.busy_time(1).as_secs(), 4.0);
        assert!((t.utilization(0) - 0.75).abs() < 1e-12);
        assert!((t.utilization(1) - 1.0).abs() < 1e-12);
        assert_eq!(t.utilization(5), 0.0);
        assert_eq!(Trace::new().utilization(0), 0.0);
    }

    #[test]
    fn gantt_renders_rows() {
        let mut t = Trace::new();
        t.enable();
        t.record(compute(0, 0.0, 1.0));
        t.record(compute(1, 1.0, 2.0));
        t.record(Event::Barrier {
            procs: vec![0, 1],
            end: Time::from_secs(2.0),
        });
        let g = t.gantt(2, 20);
        assert!(g.contains("p0"));
        assert!(g.contains("p1"));
        assert!(g.contains('#'));
        assert!(g.contains('|'));
    }

    #[test]
    fn gantt_empty_trace_is_all_idle() {
        let t = Trace::new();
        let g = t.gantt(1, 10);
        assert!(g.contains("[..........]"));
    }
}
