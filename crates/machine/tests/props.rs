//! Property-based tests for the machine substrate. (Randomised via
//! `scl-testkit`, the workspace's zero-dependency proptest replacement.)

use scl_machine::{log_phases, CostModel, Machine, Network, Time, Topology, Work};
use scl_testkit::{cases, Rng};

fn arb_topology(rng: &mut Rng) -> Topology {
    match rng.below(5) {
        0 => Topology::FullyConnected {
            procs: rng.range_usize(1, 65),
        },
        1 => Topology::Ring {
            procs: rng.range_usize(1, 65),
        },
        2 => Topology::Hypercube {
            dim: rng.below(7) as u32,
        },
        3 => Topology::Mesh2D {
            rows: rng.range_usize(1, 9),
            cols: rng.range_usize(1, 9),
        },
        _ => Topology::Torus2D {
            rows: rng.range_usize(1, 9),
            cols: rng.range_usize(1, 9),
        },
    }
}

#[test]
fn hops_is_a_metric() {
    cases(128, 0xA1, |rng| {
        let topo = arb_topology(rng);
        let n = topo.procs();
        let seed = rng.next_u64();
        let a = (seed as usize) % n;
        let b = (seed as usize / 7) % n;
        let c = (seed as usize / 49) % n;
        // identity
        assert_eq!(topo.hops(a, a), 0);
        // symmetry
        assert_eq!(topo.hops(a, b), topo.hops(b, a));
        // triangle inequality
        assert!(topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c));
        // bounded by diameter
        assert!(topo.hops(a, b) <= topo.diameter());
    });
}

#[test]
fn neighbors_symmetric() {
    cases(48, 0xA2, |rng| {
        let topo = arb_topology(rng);
        for p in 0..topo.procs() {
            for q in topo.neighbors(p) {
                assert!(
                    topo.neighbors(q).contains(&p),
                    "{}: {q} not a neighbor of {p}",
                    topo.describe()
                );
            }
        }
    });
}

#[test]
fn gray_code_bijective_on_range() {
    cases(48, 0xA3, |rng| {
        let n = rng.range_usize(1, 1024);
        let mut seen = vec![false; n.next_power_of_two()];
        for i in 0..n.next_power_of_two() {
            let g = Topology::gray(i);
            assert!(!seen[g]);
            seen[g] = true;
            assert_eq!(Topology::gray_inv(g), i);
        }
    });
}

#[test]
fn log_phases_covers_group() {
    cases(200, 0xA4, |rng| {
        let g = rng.range_usize(1, 100_000);
        // 2^log_phases(g) >= g > 2^(log_phases(g)-1)
        let k = log_phases(g);
        assert!(1usize << k >= g);
        if k > 0 {
            assert!(1usize << (k - 1) < g);
        }
    });
}

#[test]
fn collective_costs_monotone_in_bytes() {
    cases(96, 0xA5, |rng| {
        let topo = arb_topology(rng);
        let b1 = rng.range_usize(0, 10_000);
        let b2 = rng.range_usize(0, 10_000);
        let model = CostModel::ap1000();
        let net = Network::new(&model, &topo);
        let g = topo.procs();
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        assert!(net.broadcast(g, lo) <= net.broadcast(g, hi));
        assert!(net.gather(g, lo) <= net.gather(g, hi));
        assert!(net.all_to_all(g, lo) <= net.all_to_all(g, hi));
    });
}

#[test]
fn makespan_never_decreases() {
    cases(64, 0xA6, |rng| {
        let n_ops = rng.range_usize(1, 50);
        let mut m = Machine::new(Topology::Hypercube { dim: 3 }, CostModel::ap1000());
        let mut last = Time::ZERO;
        for _ in 0..n_ops {
            let p = rng.range_usize(0, 8);
            let w = rng.below(1000);
            m.compute(p, Work::cmps(w), "w");
            let now = m.makespan();
            assert!(now >= last);
            last = now;
        }
    });
}

#[test]
fn barrier_equalises_all_clocks() {
    cases(64, 0xA7, |rng| {
        let n_ops = rng.range_usize(0, 20);
        let mut m = Machine::new(Topology::Hypercube { dim: 3 }, CostModel::ap1000());
        for _ in 0..n_ops {
            let p = rng.range_usize(0, 8);
            let w = rng.below(1000);
            m.compute(p, Work::flops(w), "w");
        }
        m.barrier();
        let t0 = m.clocks.get(0);
        for p in 1..8 {
            assert_eq!(m.clocks.get(p), t0);
        }
        assert!((m.clocks.imbalance() - 1.0).abs() < 1e-12);
    });
}

#[test]
fn work_cost_additive() {
    cases(200, 0xA8, |rng| {
        let a = rng.below(1_000_000);
        let b = rng.below(1_000_000);
        let model = CostModel::ap1000();
        let lhs = (Work::cmps(a) + Work::cmps(b)).cost(&model);
        let rhs = Work::cmps(a).cost(&model) + Work::cmps(b).cost(&model);
        assert!((lhs.as_secs() - rhs.as_secs()).abs() <= 1e-9 * lhs.as_secs().max(1.0));
    });
}
