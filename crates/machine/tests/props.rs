//! Property-based tests for the machine substrate.

use proptest::prelude::*;
use scl_machine::{log_phases, CostModel, Machine, Network, Time, Topology, Work};

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (1usize..=64).prop_map(|procs| Topology::FullyConnected { procs }),
        (1usize..=64).prop_map(|procs| Topology::Ring { procs }),
        (0u32..=6).prop_map(|dim| Topology::Hypercube { dim }),
        ((1usize..=8), (1usize..=8)).prop_map(|(rows, cols)| Topology::Mesh2D { rows, cols }),
        ((1usize..=8), (1usize..=8)).prop_map(|(rows, cols)| Topology::Torus2D { rows, cols }),
    ]
}

proptest! {
    #[test]
    fn hops_is_a_metric(topo in arb_topology(), seed in any::<u64>()) {
        let n = topo.procs();
        let a = (seed as usize) % n;
        let b = (seed as usize / 7) % n;
        let c = (seed as usize / 49) % n;
        // identity
        prop_assert_eq!(topo.hops(a, a), 0);
        // symmetry
        prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
        // triangle inequality
        prop_assert!(topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c));
        // bounded by diameter
        prop_assert!(topo.hops(a, b) <= topo.diameter());
    }

    #[test]
    fn neighbors_symmetric(topo in arb_topology()) {
        for p in 0..topo.procs() {
            for q in topo.neighbors(p) {
                prop_assert!(topo.neighbors(q).contains(&p),
                    "{}: {q} not a neighbor of {p}", topo.describe());
            }
        }
    }

    #[test]
    fn gray_code_bijective_on_range(n in 1usize..1024) {
        let mut seen = vec![false; n.next_power_of_two()];
        for i in 0..n.next_power_of_two() {
            let g = Topology::gray(i);
            prop_assert!(!seen[g]);
            seen[g] = true;
            prop_assert_eq!(Topology::gray_inv(g), i);
        }
    }

    #[test]
    fn log_phases_covers_group(g in 1usize..100_000) {
        // 2^log_phases(g) >= g > 2^(log_phases(g)-1)
        let k = log_phases(g);
        prop_assert!(1usize << k >= g);
        if k > 0 {
            prop_assert!(1usize << (k - 1) < g);
        }
    }

    #[test]
    fn collective_costs_monotone_in_bytes(
        topo in arb_topology(),
        b1 in 0usize..10_000,
        b2 in 0usize..10_000,
    ) {
        let model = CostModel::ap1000();
        let net = Network::new(&model, &topo);
        let g = topo.procs();
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(net.broadcast(g, lo) <= net.broadcast(g, hi));
        prop_assert!(net.gather(g, lo) <= net.gather(g, hi));
        prop_assert!(net.all_to_all(g, lo) <= net.all_to_all(g, hi));
    }

    #[test]
    fn makespan_never_decreases(ops in prop::collection::vec((0usize..8, 0u64..1000), 1..50)) {
        let mut m = Machine::new(Topology::Hypercube { dim: 3 }, CostModel::ap1000());
        let mut last = Time::ZERO;
        for (p, w) in ops {
            m.compute(p, Work::cmps(w), "w");
            let now = m.makespan();
            prop_assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn barrier_equalises_all_clocks(ops in prop::collection::vec((0usize..8, 0u64..1000), 0..20)) {
        let mut m = Machine::new(Topology::Hypercube { dim: 3 }, CostModel::ap1000());
        for (p, w) in ops {
            m.compute(p, Work::flops(w), "w");
        }
        m.barrier();
        let t0 = m.clocks.get(0);
        for p in 1..8 {
            prop_assert_eq!(m.clocks.get(p), t0);
        }
        prop_assert!((m.clocks.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn work_cost_additive(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let model = CostModel::ap1000();
        let lhs = (Work::cmps(a) + Work::cmps(b)).cost(&model);
        let rhs = Work::cmps(a).cost(&model) + Work::cmps(b).cost(&model);
        prop_assert!((lhs.as_secs() - rhs.as_secs()).abs() <= 1e-9 * lhs.as_secs().max(1.0));
    }
}
