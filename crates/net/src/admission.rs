//! Bounded admission with load shedding, plus per-tenant token buckets.
//!
//! Connection reader threads push decoded submissions here; the single
//! service thread pops them in batches. The queue is deliberately the
//! *only* place requests wait unboundedly long under overload, and it is
//! bounded — beyond the cap the configured [`ShedPolicy`] decides who
//! pays: the newest request (reject-new: predictable, favours work
//! already queued) or the oldest (shed-oldest: favours fresh work, keeps
//! queueing delay bounded; the victim still receives a typed `Shed`
//! error, never a hang).

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::frame::Mode;

/// Who is refused when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Evict the oldest queued request (it gets a typed `Shed` error) and
    /// admit the newcomer. Bounds queueing delay under sustained
    /// overload.
    ShedOldest,
    /// Refuse the newcomer with `QueueFull`; queued work is never
    /// disturbed.
    RejectNew,
}

/// The work carried by an admitted submission.
#[derive(Debug, Clone)]
pub enum JobBody {
    /// Plan source to parse and compile server-side.
    Source {
        /// Plain or optimize-then-execute.
        mode: Mode,
        /// Plan text in the `scl-transform` grammar.
        source: String,
        /// Caller cache key.
        key: String,
        /// One `i64` per partition.
        payload: Vec<i64>,
    },
    /// A handle naming a previously registered (mode, key, source).
    Handle {
        /// The handle from an earlier result.
        handle: u64,
        /// One `i64` per partition.
        payload: Vec<i64>,
    },
}

/// One admitted request: who sent it, what to run, where the encoded
/// reply frame goes, and when it entered the queue (the latency clock).
#[derive(Debug)]
pub struct Job {
    /// Index into the server's tenant table.
    pub tenant: u32,
    /// What to run.
    pub body: JobBody,
    /// Channel back to the owning connection's reader thread, which is
    /// blocked waiting for exactly one encoded reply frame.
    pub reply: mpsc::Sender<Vec<u8>>,
    /// When the request was admitted — end-to-end service latency is
    /// measured from here.
    pub enqueued: Instant,
    /// Absolute deadline (from the wire `deadline_ms`); expired jobs are
    /// shed from a full queue before any live work pays.
    pub deadline: Option<Instant>,
}

/// A request evicted by [`Admission::push`] to make room. `expired`
/// distinguishes dead-on-arrival work (answer `DeadlineExceeded`) from
/// live work shed under overload (answer `Shed`).
#[derive(Debug)]
pub struct Victim {
    /// The evicted request; its reader thread still waits on `reply`.
    pub job: Job,
    /// Whether the victim was past its deadline (shed preferentially).
    pub expired: bool,
}

/// Why a push was refused outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Queue at capacity under [`ShedPolicy::RejectNew`].
    QueueFull,
    /// The server is draining; no new work is admitted.
    Draining,
}

struct Q {
    jobs: VecDeque<Job>,
    draining: bool,
}

/// The bounded, sheddable admission queue shared by all connection
/// threads (producers) and the service thread (consumer).
pub struct Admission {
    inner: Mutex<Q>,
    ready: Condvar,
    capacity: usize,
    policy: ShedPolicy,
}

impl Admission {
    /// A queue holding at most `capacity` requests (clamped to ≥ 1),
    /// shedding per `policy` beyond that.
    pub fn new(capacity: usize, policy: ShedPolicy) -> Admission {
        Admission {
            inner: Mutex::new(Q {
                jobs: VecDeque::new(),
                draining: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            policy,
        }
    }

    /// Admit `job`. `Ok(None)` means queued within bounds; `Ok(Some(v))`
    /// means the queue was full and `v` was evicted to make room — the
    /// caller must answer it (its connection thread is blocked on that
    /// reply). A full queue sheds already-dead work first: a queued
    /// request past its deadline can never produce a useful reply, so it
    /// pays before any live request does, under **either** policy.
    pub fn push(&self, job: Job) -> Result<Option<Victim>, AdmitError> {
        let mut q = self.inner.lock().unwrap();
        if q.draining {
            return Err(AdmitError::Draining);
        }
        let victim = if q.jobs.len() >= self.capacity {
            let now = Instant::now();
            if let Some(i) = q
                .jobs
                .iter()
                .position(|j| j.deadline.is_some_and(|d| now >= d))
            {
                q.jobs.remove(i).map(|job| Victim { job, expired: true })
            } else {
                match self.policy {
                    ShedPolicy::RejectNew => return Err(AdmitError::QueueFull),
                    ShedPolicy::ShedOldest => q.jobs.pop_front().map(|job| Victim {
                        job,
                        expired: false,
                    }),
                }
            }
        } else {
            None
        };
        q.jobs.push_back(job);
        drop(q);
        self.ready.notify_one();
        Ok(victim)
    }

    /// Pop up to `max` jobs, waiting up to `wait` for the first one.
    /// Returns an empty batch on timeout (the service thread uses the
    /// idle beat for its manager tick).
    pub fn pop_batch(&self, max: usize, wait: Duration) -> Vec<Job> {
        let mut q = self.inner.lock().unwrap();
        if q.jobs.is_empty() {
            let (guard, _timeout) = self.ready.wait_timeout(q, wait).unwrap();
            q = guard;
        }
        let take = q.jobs.len().min(max.max(1));
        q.jobs.drain(..take).collect()
    }

    /// Stop admitting: every later [`Admission::push`] fails with
    /// [`AdmitError::Draining`]. Already-queued jobs stay queued.
    pub fn drain(&self) {
        self.inner.lock().unwrap().draining = true;
        self.ready.notify_all();
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.inner.lock().unwrap().draining
    }

    /// Requests currently waiting.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }
}

/// A classic token bucket: `rate` tokens/second refill up to `burst`;
/// each admitted request takes one token. `rate == 0` disables limiting.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/second, holding at most
    /// `burst` (clamped to ≥ 1 when limiting is on). Starts full.
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        let burst = if rate > 0.0 { burst.max(1.0) } else { burst };
        TokenBucket {
            rate: rate.max(0.0),
            burst,
            tokens: burst,
            last: Instant::now(),
        }
    }

    /// Take one token at `now`; `false` means rate-limited.
    pub fn try_take(&mut self, now: Instant) -> bool {
        if self.rate == 0.0 {
            return true;
        }
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// After a failed [`TokenBucket::try_take`]: how long until the
    /// bucket refills enough to admit one request. [`Duration::ZERO`]
    /// when unlimited or a token is already available.
    pub fn retry_after(&self) -> Duration {
        if self.rate == 0.0 || self.tokens >= 1.0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64((1.0 - self.tokens) / self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(tenant: u32) -> (Job, mpsc::Receiver<Vec<u8>>) {
        job_deadline(tenant, None)
    }

    fn job_deadline(tenant: u32, deadline: Option<Instant>) -> (Job, mpsc::Receiver<Vec<u8>>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                tenant,
                body: JobBody::Handle {
                    handle: 0,
                    payload: vec![1],
                },
                reply: tx,
                enqueued: Instant::now(),
                deadline,
            },
            rx,
        )
    }

    #[test]
    fn reject_new_refuses_at_capacity() {
        let q = Admission::new(2, ShedPolicy::RejectNew);
        let (a, _ra) = job(0);
        let (b, _rb) = job(1);
        let (c, _rc) = job(2);
        assert!(matches!(q.push(a), Ok(None)));
        assert!(matches!(q.push(b), Ok(None)));
        assert_eq!(q.push(c).unwrap_err(), AdmitError::QueueFull);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn shed_oldest_evicts_the_head_and_admits_the_newcomer() {
        let q = Admission::new(2, ShedPolicy::ShedOldest);
        let (a, _ra) = job(0);
        let (b, _rb) = job(1);
        let (c, _rc) = job(2);
        q.push(a).unwrap();
        q.push(b).unwrap();
        let victim = q.push(c).unwrap().expect("oldest is shed");
        assert_eq!(victim.job.tenant, 0, "FIFO head pays");
        assert!(!victim.expired, "live work shed under overload");
        let batch = q.pop_batch(10, Duration::from_millis(1));
        let tenants: Vec<u32> = batch.iter().map(|j| j.tenant).collect();
        assert_eq!(tenants, vec![1, 2]);
    }

    #[test]
    fn draining_refuses_new_work_but_keeps_the_backlog() {
        let q = Admission::new(4, ShedPolicy::RejectNew);
        let (a, _ra) = job(0);
        q.push(a).unwrap();
        q.drain();
        let (b, _rb) = job(1);
        assert_eq!(q.push(b).unwrap_err(), AdmitError::Draining);
        assert_eq!(q.depth(), 1, "queued work survives the drain cut");
    }

    #[test]
    fn full_queue_sheds_expired_work_before_live_work() {
        let past = Some(Instant::now() - Duration::from_millis(1));
        // reject-new: normally refuses the newcomer, but dead work pays
        // first when any queued request is past its deadline
        let q = Admission::new(2, ShedPolicy::RejectNew);
        let (a, _ra) = job(0);
        let (b, _rb) = job_deadline(1, past);
        let (c, _rc) = job(2);
        q.push(a).unwrap();
        q.push(b).unwrap();
        let v = q.push(c).unwrap().expect("expired job shed, newcomer in");
        assert_eq!(v.job.tenant, 1);
        assert!(v.expired);
        let tenants: Vec<u32> = q
            .pop_batch(10, Duration::from_millis(1))
            .iter()
            .map(|j| j.tenant)
            .collect();
        assert_eq!(tenants, vec![0, 2], "live work undisturbed");

        // shed-oldest: the expired job pays even when it isn't the head
        let q = Admission::new(2, ShedPolicy::ShedOldest);
        let (a, _ra) = job(0);
        let (b, _rb) = job_deadline(1, past);
        let (c, _rc) = job(2);
        q.push(a).unwrap();
        q.push(b).unwrap();
        let v = q.push(c).unwrap().unwrap();
        assert_eq!(v.job.tenant, 1, "dead mid-queue job before the live head");
        assert!(v.expired);
    }

    #[test]
    fn retry_after_reflects_the_refill_rate() {
        let mut tb = TokenBucket::new(10.0, 1.0);
        let t0 = Instant::now();
        assert!(tb.try_take(t0));
        assert_eq!(
            tb.retry_after(),
            Duration::from_millis(100),
            "1 token at 10/s"
        );
        assert!(!tb.try_take(t0));
        assert!(tb.retry_after() > Duration::ZERO);
        // unlimited buckets never ask the client to wait
        let open = TokenBucket::new(0.0, 0.0);
        assert_eq!(open.retry_after(), Duration::ZERO);
    }

    #[test]
    fn token_bucket_limits_then_refills() {
        let mut tb = TokenBucket::new(10.0, 2.0);
        let t0 = Instant::now();
        assert!(tb.try_take(t0));
        assert!(tb.try_take(t0));
        assert!(!tb.try_take(t0), "burst spent");
        // 100ms at 10/s refills one token
        assert!(tb.try_take(t0 + Duration::from_millis(150)));
        assert!(!tb.try_take(t0 + Duration::from_millis(151)));
        // rate 0 disables limiting entirely
        let mut open = TokenBucket::new(0.0, 0.0);
        for _ in 0..100 {
            assert!(open.try_take(Instant::now()));
        }
    }
}
