//! A blocking client for the scl-net protocol: one in-flight request
//! per connection (open more connections to pipeline).

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use scl_core::wire::{self, WireError};
use scl_core::FrameHeader;
use scl_machine::MachineReport;

use crate::frame::{ErrorCode, Mode, Reply, Request};

/// What a submission can fail with, client-side.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or unexpected close).
    Io(std::io::Error),
    /// The reply frame didn't decode.
    Wire(WireError),
    /// The server answered with a typed error.
    Server {
        /// The typed code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server sent a reply kind this call didn't expect.
    UnexpectedReply,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Wire(e) => write!(f, "bad reply frame: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::UnexpectedReply => write!(f, "unexpected reply kind"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

/// A successful submission.
#[derive(Debug, Clone, PartialEq)]
pub struct NetResult {
    /// Stable plan handle — resubmit with
    /// [`NetClient::submit_handle`] to skip shipping the source.
    pub handle: u64,
    /// Output, one `i64` per partition.
    pub output: Vec<i64>,
    /// This request's private machine accounting, bit-exact with an
    /// in-process run.
    pub report: MachineReport,
}

/// A blocking protocol client over one TCP connection.
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient { stream })
    }

    /// Send one request frame and read one reply frame.
    pub fn call(&mut self, req: &Request) -> Result<Reply, ClientError> {
        self.stream.write_all(&req.encode())?;
        self.stream.flush()?;
        let mut header = [0u8; wire::HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let h = FrameHeader::decode(&header)?;
        let mut body = vec![0u8; h.len];
        self.stream.read_exact(&mut body)?;
        Ok(Reply::decode(h.kind, &body)?)
    }

    fn expect_result(reply: Reply) -> Result<NetResult, ClientError> {
        match reply {
            Reply::Result {
                handle,
                payload,
                report,
            } => Ok(NetResult {
                handle,
                output: payload,
                report,
            }),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Submit plan source for server-side compilation and execution.
    pub fn submit_source(
        &mut self,
        tenant: u32,
        mode: Mode,
        source: &str,
        key: &str,
        payload: &[i64],
    ) -> Result<NetResult, ClientError> {
        let reply = self.call(&Request::SubmitSource {
            tenant,
            mode,
            source: source.to_string(),
            key: key.to_string(),
            payload: payload.to_vec(),
        })?;
        Self::expect_result(reply)
    }

    /// Submit by plan handle (from an earlier result's `handle`).
    pub fn submit_handle(
        &mut self,
        tenant: u32,
        handle: u64,
        payload: &[i64],
    ) -> Result<NetResult, ClientError> {
        let reply = self.call(&Request::SubmitHandle {
            tenant,
            handle,
            payload: payload.to_vec(),
        })?;
        Self::expect_result(reply)
    }

    /// Fetch the metrics snapshot (JSON).
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Reply::Stats(json) => Ok(json),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Ask the server to begin a graceful drain.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Drain)? {
            Reply::Draining => Ok(()),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedReply),
        }
    }
}
