//! A blocking client for the scl-net protocol: one in-flight request
//! per connection (open more connections to pipeline).
//!
//! Fault containment reaches the client too: [`NetClient::connect_timeout`]
//! bounds the TCP handshake, [`NetClient::set_io_timeout`] bounds every
//! read and write (a stalled or wedged server surfaces as
//! [`ClientError::TimedOut`] instead of hanging the caller forever), and
//! [`NetClient::set_deadline_ms`] stamps every submission with a relative
//! deadline the server enforces end to end.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use scl_core::wire::{self, WireError};
use scl_core::FrameHeader;
use scl_machine::MachineReport;

use crate::frame::{ErrorCode, Mode, Reply, Request};

/// What a submission can fail with, client-side.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or unexpected close).
    Io(std::io::Error),
    /// A connect, read, or write exceeded the configured timeout. The
    /// connection is no longer usable for this protocol (a late reply
    /// would desynchronize the frame stream) — reconnect to retry.
    TimedOut,
    /// The reply frame didn't decode.
    Wire(WireError),
    /// The server answered with a typed error.
    Server {
        /// The typed code.
        code: ErrorCode,
        /// For [`ErrorCode::RateLimited`]: milliseconds until the token
        /// bucket admits one request (`0` = no hint).
        retry_after_ms: u32,
        /// The server's message.
        message: String,
    },
    /// The server sent a reply kind this call didn't expect.
    UnexpectedReply,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::TimedOut => write!(f, "timed out waiting for the server"),
            ClientError::Wire(e) => write!(f, "bad reply frame: {e}"),
            ClientError::Server {
                code,
                retry_after_ms,
                message,
            } => {
                write!(f, "server error {code:?}: {message}")?;
                if *retry_after_ms > 0 {
                    write!(f, " (retry after {retry_after_ms}ms)")?;
                }
                Ok(())
            }
            ClientError::UnexpectedReply => write!(f, "unexpected reply kind"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ClientError::TimedOut,
            _ => ClientError::Io(e),
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

/// A successful submission.
#[derive(Debug, Clone, PartialEq)]
pub struct NetResult {
    /// Stable plan handle — resubmit with
    /// [`NetClient::submit_handle`] to skip shipping the source.
    pub handle: u64,
    /// Output, one `i64` per partition.
    pub output: Vec<i64>,
    /// This request's private machine accounting, bit-exact with an
    /// in-process run.
    pub report: MachineReport,
}

/// A blocking protocol client over one TCP connection.
pub struct NetClient {
    stream: TcpStream,
    deadline_ms: u32,
}

impl NetClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            deadline_ms: 0,
        })
    }

    /// Connect with a bound on the TCP handshake. When `addr` resolves
    /// to several addresses each is tried in turn with the full timeout.
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<NetClient, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut last: Option<std::io::Error> = None;
        for a in addrs {
            match TcpStream::connect_timeout(&a, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(NetClient {
                        stream,
                        deadline_ms: 0,
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last
            .unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses resolved")
            })
            .into())
    }

    /// Bound every subsequent read **and** write on this connection.
    /// `None` restores blocking forever. A call that trips the timeout
    /// returns [`ClientError::TimedOut`]; reconnect before reusing the
    /// protocol (the unread reply would desynchronize framing).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Stamp every subsequent submission with a relative deadline,
    /// milliseconds from server receipt (`0` = none, the default). The
    /// server sheds the request once expired and answers
    /// [`ErrorCode::DeadlineExceeded`].
    pub fn set_deadline_ms(&mut self, deadline_ms: u32) {
        self.deadline_ms = deadline_ms;
    }

    /// Send one request frame and read one reply frame.
    pub fn call(&mut self, req: &Request) -> Result<Reply, ClientError> {
        self.stream.write_all(&req.encode())?;
        self.stream.flush()?;
        let mut header = [0u8; wire::HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let h = FrameHeader::decode(&header)?;
        let mut body = vec![0u8; h.len];
        self.stream.read_exact(&mut body)?;
        Ok(Reply::decode(h.kind, &body)?)
    }

    fn expect_result(reply: Reply) -> Result<NetResult, ClientError> {
        match reply {
            Reply::Result {
                handle,
                payload,
                report,
            } => Ok(NetResult {
                handle,
                output: payload,
                report,
            }),
            Reply::Error {
                code,
                retry_after_ms,
                message,
            } => Err(ClientError::Server {
                code,
                retry_after_ms,
                message,
            }),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Submit plan source for server-side compilation and execution.
    pub fn submit_source(
        &mut self,
        tenant: u32,
        mode: Mode,
        source: &str,
        key: &str,
        payload: &[i64],
    ) -> Result<NetResult, ClientError> {
        let reply = self.call(&Request::SubmitSource {
            tenant,
            mode,
            deadline_ms: self.deadline_ms,
            source: source.to_string(),
            key: key.to_string(),
            payload: payload.to_vec(),
        })?;
        Self::expect_result(reply)
    }

    /// Submit by plan handle (from an earlier result's `handle`).
    pub fn submit_handle(
        &mut self,
        tenant: u32,
        handle: u64,
        payload: &[i64],
    ) -> Result<NetResult, ClientError> {
        let reply = self.call(&Request::SubmitHandle {
            tenant,
            handle,
            deadline_ms: self.deadline_ms,
            payload: payload.to_vec(),
        })?;
        Self::expect_result(reply)
    }

    /// Fetch the metrics snapshot (JSON).
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Reply::Stats(json) => Ok(json),
            Reply::Error {
                code,
                retry_after_ms,
                message,
            } => Err(ClientError::Server {
                code,
                retry_after_ms,
                message,
            }),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            Reply::Error {
                code,
                retry_after_ms,
                message,
            } => Err(ClientError::Server {
                code,
                retry_after_ms,
                message,
            }),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Ask the server to begin a graceful drain.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Drain)? {
            Reply::Draining => Ok(()),
            Reply::Error {
                code,
                retry_after_ms,
                message,
            } => Err(ClientError::Server {
                code,
                retry_after_ms,
                message,
            }),
            _ => Err(ClientError::UnexpectedReply),
        }
    }
}
