//! Protocol v1 messages over the [`scl_core::wire`] frame codec.
//!
//! Every message on the wire is one frame: the 8-byte
//! [`FrameHeader`] (`magic "SC" | version | kind |
//! body length, u32 LE`) followed by `len` body bytes. Request kinds sit
//! below `0x80`, reply kinds at or above it, so a stream of frames is
//! self-describing in either direction.
//!
//! | kind | direction | body |
//! |---|---|---|
//! | `0x01 SUBMIT_SOURCE` | → | tenant u32, mode u8, deadline_ms u32, source str, key str, payload i64s |
//! | `0x02 SUBMIT_HANDLE` | → | tenant u32, handle u64, deadline_ms u32, payload i64s |
//! | `0x03 STATS` | → | empty |
//! | `0x04 PING` | → | empty |
//! | `0x05 DRAIN` | → | empty |
//! | `0x81 RESULT` | ← | handle u64, payload i64s, machine report (16 × u64) |
//! | `0x82 ERROR` | ← | code u16, retry_after_ms u32, message str |
//! | `0x83 STATS_OK` | ← | JSON str |
//! | `0x84 PONG` | ← | empty |
//! | `0x85 DRAINING` | ← | empty |
//!
//! `str` is a u32-length-prefixed UTF-8 string, `i64s` a
//! u32-count-prefixed run of little-endian `i64`s — the
//! [`WireWriter`]/[`WireReader`] primitives. The machine report is encoded
//! **bit-exactly** (`f64::to_bits` for makespan and imbalance), which is
//! what lets the `net_vs_inproc` differential suite demand bit-for-bit
//! equality between a reply and an in-process [`scl_serve::Serve::submit`].

use scl_core::wire::{self, VERSION};
use scl_core::{FrameHeader, WireError, WireReader, WireWriter};
use scl_machine::{MachineReport, Metrics, Time};

/// Request frame kinds (client → server).
pub mod kind {
    /// Submit plan **source text** for server-side compilation.
    pub const SUBMIT_SOURCE: u8 = 0x01;
    /// Submit by a plan **handle** returned in an earlier [`RESULT`].
    pub const SUBMIT_HANDLE: u8 = 0x02;
    /// Ask for the service's metrics snapshot (JSON).
    pub const STATS: u8 = 0x03;
    /// Liveness probe.
    pub const PING: u8 = 0x04;
    /// Begin a graceful drain: queued work finishes, new work is refused.
    pub const DRAIN: u8 = 0x05;
    /// Successful submission reply: handle, output, machine report.
    pub const RESULT: u8 = 0x81;
    /// Typed error reply: [`ErrorCode`](super::ErrorCode) + message.
    pub const ERROR: u8 = 0x82;
    /// Stats reply carrying a JSON document.
    pub const STATS_OK: u8 = 0x83;
    /// Ping reply.
    pub const PONG: u8 = 0x84;
    /// Drain acknowledged.
    pub const DRAINING: u8 = 0x85;
}

/// Longest accepted plan source text, bytes.
pub const MAX_SOURCE_LEN: usize = 64 * 1024;
/// Longest accepted cache key, bytes.
pub const MAX_KEY_LEN: usize = 1024;
/// Largest accepted payload, `i64` elements per request.
pub const MAX_PAYLOAD_ELEMS: usize = 1 << 20;

/// Submission mode: plain compile-and-cache, or the optimize-then-execute
/// pipeline (`Serve::submit_optimized`, the cached twin of
/// `Scl::run_optimized`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Compile the parsed plan as written.
    Plain,
    /// Lower → §4 rewrite laws → raise → compile.
    Optimized,
}

impl Mode {
    fn to_u8(self) -> u8 {
        match self {
            Mode::Plain => 0,
            Mode::Optimized => 1,
        }
    }

    fn from_u8(b: u8) -> Result<Mode, WireError> {
        match b {
            0 => Ok(Mode::Plain),
            1 => Ok(Mode::Optimized),
            other => Err(WireError::Invalid(format!("unknown mode byte {other}"))),
        }
    }
}

/// Typed error codes carried in `ERROR` replies (`u16` on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame body didn't decode (truncation, trailing bytes, bad
    /// strings). The connection stays usable: the frame was length-framed.
    BadFrame = 1,
    /// Frame header carried a protocol version this server doesn't speak.
    UnsupportedVersion = 2,
    /// Request kind byte the server doesn't recognise.
    UnknownKind = 3,
    /// Tenant id outside the configured tenant table.
    UnknownTenant = 4,
    /// `SUBMIT_HANDLE` named a handle this server never issued (or has
    /// forgotten across a restart) — resubmit by source.
    UnknownPlan = 5,
    /// The plan source failed to parse (`scl_transform::parse`).
    ParseError = 6,
    /// The tenant's token bucket is empty — retry later.
    RateLimited = 7,
    /// Admission queue full under the reject-new shedding policy.
    QueueFull = 8,
    /// This request was admitted but then shed (oldest-first) to make
    /// room under overload.
    Shed = 9,
    /// The server is draining and accepts no new work.
    Draining = 10,
    /// Payload spans more parts than the service machine has processors.
    MachineTooSmall = 11,
    /// The parsed program is outside the servable plan fragment, or the
    /// payload was empty.
    PlanRejected = 12,
    /// A declared length exceeded a protocol bound.
    Oversize = 13,
    /// The plan crashed while executing this request. The request failed;
    /// the service and every other tenant are unaffected. Repeated
    /// crashes quarantine the plan server-side.
    PlanPanicked = 14,
    /// The request's deadline passed before it finished; it was shed
    /// without (or while) occupying replicas.
    DeadlineExceeded = 15,
}

impl ErrorCode {
    /// Decode the `u16` wire value.
    pub fn from_u16(v: u16) -> Result<ErrorCode, WireError> {
        Ok(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::UnknownKind,
            4 => ErrorCode::UnknownTenant,
            5 => ErrorCode::UnknownPlan,
            6 => ErrorCode::ParseError,
            7 => ErrorCode::RateLimited,
            8 => ErrorCode::QueueFull,
            9 => ErrorCode::Shed,
            10 => ErrorCode::Draining,
            11 => ErrorCode::MachineTooSmall,
            12 => ErrorCode::PlanRejected,
            13 => ErrorCode::Oversize,
            14 => ErrorCode::PlanPanicked,
            15 => ErrorCode::DeadlineExceeded,
            other => return Err(WireError::Invalid(format!("unknown error code {other}"))),
        })
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit plan source for compilation and execution.
    SubmitSource {
        /// Tenant index into the server's configured tenant table.
        tenant: u32,
        /// Plain or optimize-then-execute.
        mode: Mode,
        /// Relative deadline in milliseconds from server receipt; `0`
        /// means no deadline. Expired requests fail typed
        /// ([`ErrorCode::DeadlineExceeded`]) instead of occupying
        /// replicas.
        deadline_ms: u32,
        /// Plan source in the `scl-transform` grammar.
        source: String,
        /// Caller cache key separating structural twins.
        key: String,
        /// One `i64` per partition.
        payload: Vec<i64>,
    },
    /// Submit by handle (skips shipping and re-registering the source).
    SubmitHandle {
        /// Tenant index.
        tenant: u32,
        /// Handle from an earlier [`Reply::Result`].
        handle: u64,
        /// Relative deadline in milliseconds from server receipt; `0`
        /// means no deadline.
        deadline_ms: u32,
        /// One `i64` per partition.
        payload: Vec<i64>,
    },
    /// Metrics snapshot request.
    Stats,
    /// Liveness probe.
    Ping,
    /// Begin a graceful drain.
    Drain,
}

/// A decoded reply frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Successful submission.
    Result {
        /// Stable handle for the compiled plan — resubmit with
        /// [`Request::SubmitHandle`] to skip the source bytes.
        handle: u64,
        /// Output array, one `i64` per partition.
        payload: Vec<i64>,
        /// This request's private machine accounting, bit-exact.
        report: MachineReport,
    },
    /// Typed failure.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// For [`ErrorCode::RateLimited`]: how long until the token
        /// bucket refills enough to admit one request, in milliseconds
        /// (rounded up). `0` means no hint.
        retry_after_ms: u32,
        /// Human-readable detail.
        message: String,
    },
    /// Metrics snapshot (JSON document).
    Stats(String),
    /// Ping reply.
    Pong,
    /// Drain acknowledged.
    Draining,
}

fn frame(kind: u8, body: Vec<u8>) -> Vec<u8> {
    let header = FrameHeader {
        version: VERSION,
        kind,
        len: body.len(),
    }
    .encode();
    let mut out = Vec::with_capacity(header.len() + body.len());
    out.extend_from_slice(&header);
    out.extend_from_slice(&body);
    out
}

impl Request {
    /// Encode into a complete frame (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        let kind = match self {
            Request::SubmitSource {
                tenant,
                mode,
                deadline_ms,
                source,
                key,
                payload,
            } => {
                w.put_u32(*tenant);
                w.put_u8(mode.to_u8());
                w.put_u32(*deadline_ms);
                w.put_str(source);
                w.put_str(key);
                w.put_i64s(payload);
                kind::SUBMIT_SOURCE
            }
            Request::SubmitHandle {
                tenant,
                handle,
                deadline_ms,
                payload,
            } => {
                w.put_u32(*tenant);
                w.put_u64(*handle);
                w.put_u32(*deadline_ms);
                w.put_i64s(payload);
                kind::SUBMIT_HANDLE
            }
            Request::Stats => kind::STATS,
            Request::Ping => kind::PING,
            Request::Drain => kind::DRAIN,
        };
        frame(kind, w.into_bytes())
    }

    /// Decode a request body for a validated header. Rejects unknown
    /// kinds, truncated bodies, oversize declared lengths, and trailing
    /// bytes.
    pub fn decode(kind_byte: u8, body: &[u8]) -> Result<Request, WireError> {
        let mut r = WireReader::new(body);
        let req = match kind_byte {
            kind::SUBMIT_SOURCE => {
                let tenant = r.get_u32()?;
                let mode = Mode::from_u8(r.get_u8()?)?;
                let deadline_ms = r.get_u32()?;
                let source = r.get_str(MAX_SOURCE_LEN)?;
                let key = r.get_str(MAX_KEY_LEN)?;
                let payload = r.get_i64s(MAX_PAYLOAD_ELEMS)?;
                Request::SubmitSource {
                    tenant,
                    mode,
                    deadline_ms,
                    source,
                    key,
                    payload,
                }
            }
            kind::SUBMIT_HANDLE => {
                let tenant = r.get_u32()?;
                let handle = r.get_u64()?;
                let deadline_ms = r.get_u32()?;
                let payload = r.get_i64s(MAX_PAYLOAD_ELEMS)?;
                Request::SubmitHandle {
                    tenant,
                    handle,
                    deadline_ms,
                    payload,
                }
            }
            kind::STATS => Request::Stats,
            kind::PING => Request::Ping,
            kind::DRAIN => Request::Drain,
            other => {
                return Err(WireError::Invalid(format!(
                    "unknown request kind {other:#04x}"
                )))
            }
        };
        r.finish()?;
        Ok(req)
    }
}

impl Reply {
    /// Encode into a complete frame (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        let kind = match self {
            Reply::Result {
                handle,
                payload,
                report,
            } => {
                w.put_u64(*handle);
                w.put_i64s(payload);
                put_report(&mut w, report);
                kind::RESULT
            }
            Reply::Error {
                code,
                retry_after_ms,
                message,
            } => {
                w.put_u16(*code as u16);
                w.put_u32(*retry_after_ms);
                w.put_str(message);
                kind::ERROR
            }
            Reply::Stats(json) => {
                w.put_str(json);
                kind::STATS_OK
            }
            Reply::Pong => kind::PONG,
            Reply::Draining => kind::DRAINING,
        };
        frame(kind, w.into_bytes())
    }

    /// Decode a reply body for a validated header.
    pub fn decode(kind_byte: u8, body: &[u8]) -> Result<Reply, WireError> {
        let mut r = WireReader::new(body);
        let reply = match kind_byte {
            kind::RESULT => {
                let handle = r.get_u64()?;
                let payload = r.get_i64s(MAX_PAYLOAD_ELEMS)?;
                let report = get_report(&mut r)?;
                Reply::Result {
                    handle,
                    payload,
                    report,
                }
            }
            kind::ERROR => {
                let code = ErrorCode::from_u16(r.get_u16()?)?;
                let retry_after_ms = r.get_u32()?;
                let message = r.get_str(MAX_SOURCE_LEN)?;
                Reply::Error {
                    code,
                    retry_after_ms,
                    message,
                }
            }
            kind::STATS_OK => Reply::Stats(r.get_str(wire::MAX_FRAME_LEN)?),
            kind::PONG => Reply::Pong,
            kind::DRAINING => Reply::Draining,
            other => {
                return Err(WireError::Invalid(format!(
                    "unknown reply kind {other:#04x}"
                )))
            }
        };
        r.finish()?;
        Ok(reply)
    }
}

/// Encode a [`MachineReport`] bit-exactly: procs, makespan bits,
/// imbalance bits, then the 13 operation counters in declaration order.
fn put_report(w: &mut WireWriter, rep: &MachineReport) {
    w.put_u64(rep.procs as u64);
    w.put_f64(rep.makespan.0);
    w.put_f64(rep.imbalance);
    let m = &rep.metrics;
    for v in [
        m.messages,
        m.bytes,
        m.barriers,
        m.group_barriers,
        m.broadcasts,
        m.reductions,
        m.scans,
        m.gathers,
        m.exchanges,
        m.compute_steps,
        m.flops,
        m.cmps,
        m.moves,
    ] {
        w.put_u64(v);
    }
}

/// Decode the [`put_report`] encoding.
fn get_report(r: &mut WireReader) -> Result<MachineReport, WireError> {
    let procs = r.get_u64()? as usize;
    let makespan = Time(r.get_f64()?);
    let imbalance = r.get_f64()?;
    let mut m = Metrics::new();
    for field in [
        &mut m.messages,
        &mut m.bytes,
        &mut m.barriers,
        &mut m.group_barriers,
        &mut m.broadcasts,
        &mut m.reductions,
        &mut m.scans,
        &mut m.gathers,
        &mut m.exchanges,
        &mut m.compute_steps,
        &mut m.flops,
        &mut m.cmps,
        &mut m.moves,
    ] {
        *field = r.get_u64()?;
    }
    Ok(MachineReport {
        procs,
        makespan,
        imbalance,
        metrics: m,
    })
}

/// The stable handle for a compiled plan: FNV-1a over the submission mode,
/// cache key, and source text. Deterministic across servers, so a client
/// may precompute it; the server still refuses handles it hasn't seen
/// ([`ErrorCode::UnknownPlan`]) because only a registered handle proves
/// the server holds the source to rebuild from.
pub fn plan_handle(mode: Mode, key: &str, source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    step(mode.to_u8());
    step(0xfe);
    for b in key.bytes() {
        step(b);
    }
    step(0xff);
    for b in source.bytes() {
        step(b);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = req.encode();
        let mut header = [0u8; wire::HEADER_LEN];
        header.copy_from_slice(&bytes[..wire::HEADER_LEN]);
        let h = FrameHeader::decode(&header).unwrap();
        assert_eq!(h.len, bytes.len() - wire::HEADER_LEN);
        let got = Request::decode(h.kind, &bytes[wire::HEADER_LEN..]).unwrap();
        assert_eq!(got, req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::SubmitSource {
            tenant: 3,
            mode: Mode::Optimized,
            deadline_ms: 1500,
            source: "map(inc) . rotate(1)".into(),
            key: "k".into(),
            payload: vec![i64::MIN, -1, 0, 7, i64::MAX],
        });
        roundtrip_request(Request::SubmitHandle {
            tenant: 0,
            handle: u64::MAX,
            deadline_ms: 0,
            payload: vec![42],
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Drain);
    }

    #[test]
    fn replies_roundtrip_reports_bit_exactly() {
        let mut m = Metrics::new();
        m.messages = 7;
        m.bytes = 1024;
        m.flops = u64::MAX;
        let rep = Reply::Result {
            handle: 9,
            payload: vec![1, 2, 3],
            report: MachineReport {
                procs: 8,
                makespan: Time(f64::from_bits(0x4009_21fb_5444_2d18)),
                imbalance: 1.25,
                metrics: m,
            },
        };
        let bytes = rep.encode();
        let got = Reply::decode(bytes[3], &bytes[wire::HEADER_LEN..]).unwrap();
        assert_eq!(got, rep);

        let err = Reply::Error {
            code: ErrorCode::Shed,
            retry_after_ms: 0,
            message: "overload".into(),
        };
        let bytes = err.encode();
        let got = Reply::decode(bytes[3], &bytes[wire::HEADER_LEN..]).unwrap();
        assert_eq!(got, err);

        let limited = Reply::Error {
            code: ErrorCode::RateLimited,
            retry_after_ms: 125,
            message: "token bucket empty; retry later".into(),
        };
        let bytes = limited.encode();
        let got = Reply::decode(bytes[3], &bytes[wire::HEADER_LEN..]).unwrap();
        assert_eq!(got, limited);
    }

    #[test]
    fn fault_error_codes_roundtrip() {
        for code in [ErrorCode::PlanPanicked, ErrorCode::DeadlineExceeded] {
            assert_eq!(ErrorCode::from_u16(code as u16).unwrap(), code);
        }
        assert!(ErrorCode::from_u16(16).is_err());
    }

    #[test]
    fn trailing_bytes_and_unknown_kinds_are_rejected() {
        let mut body = Vec::new();
        body.extend_from_slice(&Request::Ping.encode()[wire::HEADER_LEN..]);
        body.push(0);
        assert!(Request::decode(kind::PING, &body).is_err(), "trailing byte");
        assert!(Request::decode(0x7f, &[]).is_err(), "unknown kind");
        assert!(Reply::decode(0xff, &[]).is_err(), "unknown reply kind");
    }

    #[test]
    fn handles_are_stable_and_mode_salted() {
        let a = plan_handle(Mode::Plain, "k", "map(inc)");
        assert_eq!(a, plan_handle(Mode::Plain, "k", "map(inc)"));
        assert_ne!(a, plan_handle(Mode::Optimized, "k", "map(inc)"));
        assert_ne!(a, plan_handle(Mode::Plain, "k2", "map(inc)"));
        // key/source boundary is framed, not concatenated
        assert_ne!(
            plan_handle(Mode::Plain, "ab", "c"),
            plan_handle(Mode::Plain, "a", "bc")
        );
    }
}
