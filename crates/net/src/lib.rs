#![deny(missing_docs)]
//! # scl-net — a TCP front door for the scl-serve plan service
//!
//! This crate turns the in-process multi-tenant plan service
//! ([`scl_serve::Serve`]) into a network service, the way the paper's
//! structured-coordination story scales past one address space: the
//! *skeleton program* stays a first-class value (shipped as
//! `scl-transform` source text, compiled and cached server-side), and
//! everything operational — admission, fairness, shedding, autonomic
//! control — lives in explicit, inspectable layers around it.
//!
//! * [`frame`] — protocol v1: length-prefixed binary frames over the
//!   [`scl_core::wire`] codec, typed error replies, bit-exact machine
//!   reports (the wire answer is byte-identical to an in-process
//!   [`Serve::submit`](scl_serve::Serve::submit), pinned by the
//!   `net_vs_inproc` differential suite).
//! * [`admission`] — a bounded queue with configurable load shedding
//!   ([`ShedPolicy`]) and per-tenant token buckets; a shed request gets
//!   a typed `Shed` error, never a hang.
//! * [`metrics`] — per-tenant p50/p99 latency, shed/reject counts and
//!   throughput, served over the wire `STATS` request as JSON.
//! * [`manager`] — a MAPE-style autonomic manager treating each
//!   tenant's SLO ([`SloContract`]: `p99<25ms tput>100`) and the plan
//!   cache's memory cap as contracts, actuating the serve layer's
//!   scheduling knobs (batch window, fair-share weights, farm-width
//!   cap, idle-graph eviction). Every action is logged and surfaced.
//! * [`server`] / [`client`] — the TCP server (single service thread
//!   owning the non-`Send` `Serve`; reader threads per connection) and
//!   a blocking client.
//!
//! ```no_run
//! use scl_net::{Mode, NetClient, NetConfig, NetServer};
//!
//! let server = NetServer::start(NetConfig::default()).unwrap();
//! let mut client = NetClient::connect(server.local_addr()).unwrap();
//! let r = client
//!     .submit_source(0, Mode::Plain, "map(inc) . rotate(1)", "", &[1, 2, 3, 4])
//!     .unwrap();
//! assert_eq!(r.output, vec![3, 4, 5, 2]);
//! // resubmit by handle: no source bytes, same cached graph
//! let again = client.submit_handle(0, r.handle, &[1, 2, 3, 4]).unwrap();
//! assert_eq!(again.output, r.output);
//! server.shutdown();
//! ```

pub mod admission;
pub mod client;
pub mod frame;
pub mod manager;
pub mod metrics;
pub mod server;

pub use admission::{Admission, ShedPolicy, TokenBucket};
pub use client::{ClientError, NetClient, NetResult};
pub use frame::{ErrorCode, Mode, Reply, Request};
pub use manager::{Manager, ManagerConfig, SloContract};
pub use metrics::NetMetrics;
pub use server::{NetConfig, NetServer, TenantSpec};
