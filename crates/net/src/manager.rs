//! The MAPE-style autonomic manager.
//!
//! Each tenant's service-level objectives and the service's memory cap
//! are explicit **contracts** ([`SloContract`], [`ManagerConfig`]); every
//! tick the manager runs one Monitor → Analyze → Plan → Execute pass:
//!
//! * **Monitor** — read each tenant's p99 latency and windowed
//!   throughput from [`NetMetrics`], the admission queue depth, and the
//!   serve cache occupancy.
//! * **Analyze** — classify each contract as met or violated, and the
//!   plan cache as within or over its memory cap.
//! * **Plan** — pick actuations: latency misses shrink the batch window
//!   (smaller rounds finish sooner) and cap farm width (frees budget so
//!   tenants overlap instead of queueing behind one wide batch), plus a
//!   weight boost for the violated tenant; throughput misses boost
//!   weight only; an all-clear tick relaxes every actuator one step back
//!   toward its configured resting point; memory pressure evicts idle
//!   cached graphs.
//! * **Execute** — apply through the `Serve` actuators
//!   (`set_batch_window`, `set_tenant_weight`, `set_width_cap`,
//!   `evict_idle`) and log every action taken (surfaced in the `STATS`
//!   reply, so operators — and the `sla` bench — can audit the loop).
//!
//! All actuators change *scheduling*, never *answers*: the serve-layer
//! test `actuator_changes_never_change_answers` and the wire-level
//! differential suite pin that invariant, which is what makes the loop
//! safe to run autonomously.

use std::time::Instant;

use scl_core::ParArray;
use scl_serve::{Serve, TenantId};

use crate::metrics::NetMetrics;

/// A tenant's service-level objectives, parsed from the contract syntax
/// `p99<25ms tput>100` (clauses separated by spaces or commas, either or
/// both present).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloContract {
    /// Admitted-request p99 latency ceiling, milliseconds.
    pub p99_ms: Option<f64>,
    /// Windowed throughput floor, requests/second.
    pub min_tput: Option<f64>,
}

impl SloContract {
    /// Parse the contract syntax: `p99<NUMBERms` caps 99th-percentile
    /// latency, `tput>NUMBER` floors throughput (requests/second).
    /// Clauses separate on whitespace or commas; an empty string is the
    /// empty contract.
    ///
    /// ```
    /// use scl_net::SloContract;
    /// let c = SloContract::parse("p99<25ms, tput>100").unwrap();
    /// assert_eq!(c.p99_ms, Some(25.0));
    /// assert_eq!(c.min_tput, Some(100.0));
    /// ```
    pub fn parse(s: &str) -> Result<SloContract, String> {
        let mut c = SloContract::default();
        for clause in s.split([' ', ',']).filter(|c| !c.is_empty()) {
            if let Some(rest) = clause.strip_prefix("p99<") {
                let ms = rest
                    .strip_suffix("ms")
                    .ok_or_else(|| format!("`{clause}`: p99 bound must end in `ms`"))?;
                let v: f64 = ms
                    .parse()
                    .map_err(|_| format!("`{clause}`: bad number `{ms}`"))?;
                if v.is_nan() || v <= 0.0 {
                    return Err(format!("`{clause}`: p99 bound must be positive"));
                }
                c.p99_ms = Some(v);
            } else if let Some(rest) = clause.strip_prefix("tput>") {
                let rest = rest.strip_suffix("rps").unwrap_or(rest);
                let v: f64 = rest
                    .parse()
                    .map_err(|_| format!("`{clause}`: bad number `{rest}`"))?;
                if v.is_nan() || v <= 0.0 {
                    return Err(format!("`{clause}`: throughput floor must be positive"));
                }
                c.min_tput = Some(v);
            } else {
                return Err(format!(
                    "unknown contract clause `{clause}` (expected `p99<Nms` or `tput>N`)"
                ));
            }
        }
        Ok(c)
    }

    fn is_empty(&self) -> bool {
        self.p99_ms.is_none() && self.min_tput.is_none()
    }
}

/// Service-wide knobs the manager works within.
#[derive(Debug, Clone, Copy)]
pub struct ManagerConfig {
    /// Resident compiled-graph ceiling — the memory contract. Over it,
    /// the manager evicts idle graphs.
    pub memory_cap_plans: usize,
    /// The batch window the service rests at when every contract is met.
    pub rest_batch_window: usize,
    /// Cap on the weight multiplier a latency/throughput boost may reach
    /// (× the tenant's configured base weight).
    pub max_boost: u32,
}

impl Default for ManagerConfig {
    fn default() -> ManagerConfig {
        ManagerConfig {
            memory_cap_plans: 32,
            rest_batch_window: 16,
            max_boost: 16,
        }
    }
}

/// The autonomic manager: contracts plus the state it needs to relax
/// actuations back when pressure clears.
#[derive(Debug)]
pub struct Manager {
    cfg: ManagerConfig,
    /// Per-tenant contract, indexed like the server's tenant table.
    contracts: Vec<SloContract>,
    /// Configured base weights, the resting point boosts decay toward.
    base_weights: Vec<u32>,
}

impl Manager {
    /// A manager over one contract and base weight per tenant.
    pub fn new(cfg: ManagerConfig, contracts: Vec<SloContract>, base_weights: Vec<u32>) -> Manager {
        assert_eq!(contracts.len(), base_weights.len());
        Manager {
            cfg,
            contracts,
            base_weights,
        }
    }

    /// One Monitor→Analyze→Plan→Execute pass over the service. `ids`
    /// maps wire tenant index → serve [`TenantId`]. Every action taken
    /// is appended to the metrics action log and returned.
    pub fn tick(
        &mut self,
        srv: &mut Serve<ParArray<i64>, ParArray<i64>>,
        ids: &[TenantId],
        metrics: &mut NetMetrics,
        now: Instant,
    ) -> Vec<String> {
        let mut actions = Vec::new();
        let budget_total = srv.thread_budget().total();

        // Monitor + Analyze: which contracts are violated right now?
        let mut latency_violations: Vec<usize> = Vec::new();
        let mut tput_violations: Vec<usize> = Vec::new();
        for (i, contract) in self.contracts.iter().enumerate() {
            if contract.is_empty() {
                continue;
            }
            let t = &metrics.tenants()[i];
            if let (Some(slo), Some(p99)) = (contract.p99_ms, t.p99_ms()) {
                if p99 > slo {
                    latency_violations.push(i);
                }
            }
            if let Some(floor) = contract.min_tput {
                let tput = t.window_throughput(now);
                // only meaningful once the tenant has offered load
                if t.completed > 0 && tput < floor {
                    tput_violations.push(i);
                }
            }
        }

        // Plan + Execute: latency pressure shrinks the round and frees
        // width; a clear sky relaxes one step toward the resting point.
        if !latency_violations.is_empty() {
            let window = srv.batch_window();
            if window > 1 {
                let next = (window / 2).max(1);
                srv.set_batch_window(next);
                actions.push(format!(
                    "shrink batch window {window} -> {next} (p99 over SLO)"
                ));
            }
            let cap = srv.width_cap().min(budget_total);
            let floor = (budget_total / 2).max(1);
            if cap > floor {
                let next = (cap / 2).max(floor);
                srv.set_width_cap(next);
                actions.push(format!("cap farm width {cap} -> {next} (p99 over SLO)"));
            }
        } else {
            let window = srv.batch_window();
            if window < self.cfg.rest_batch_window {
                srv.set_batch_window(window + 1);
                actions.push(format!(
                    "relax batch window {window} -> {} (SLOs met)",
                    window + 1
                ));
            }
            let cap = srv.width_cap();
            if cap < budget_total {
                let next = (cap * 2).min(budget_total);
                srv.set_width_cap(next);
                actions.push(format!("relax width cap {cap} -> {next} (SLOs met)"));
            }
        }

        // Weight arbitration: crashy tenants are de-weighted first — a
        // plan crashing in the current window halves the tenant's share
        // (floor 1) so a crash-looping tenant can't keep claiming rounds;
        // contract violations boost; a clean window restores toward base.
        for (i, (&id, &base)) in ids.iter().zip(&self.base_weights).enumerate() {
            let cur = srv.tenant_weight(id);
            let violated = latency_violations.contains(&i) || tput_violations.contains(&i);
            let crashy = metrics.tenants()[i].window_panicked() > 0;
            if crashy {
                let next = (cur / 2).max(1);
                if next < cur {
                    srv.set_tenant_weight(id, next);
                    actions.push(format!(
                        "de-weight tenant {} weight {cur} -> {next} (plan crashes in window)",
                        metrics.tenants()[i].name
                    ));
                }
            } else if violated {
                let ceiling = base.saturating_mul(self.cfg.max_boost);
                let next = cur.saturating_mul(2).min(ceiling);
                if next > cur {
                    srv.set_tenant_weight(id, next);
                    actions.push(format!(
                        "boost tenant {} weight {cur} -> {next} (contract violated)",
                        metrics.tenants()[i].name
                    ));
                }
            } else if cur > base {
                let next = (cur / 2).max(base);
                srv.set_tenant_weight(id, next);
                actions.push(format!(
                    "decay tenant {} weight {cur} -> {next} (contract met)",
                    metrics.tenants()[i].name
                ));
            } else if cur < base {
                let next = cur.saturating_mul(2).min(base);
                srv.set_tenant_weight(id, next);
                actions.push(format!(
                    "restore tenant {} weight {cur} -> {next} (clean window)",
                    metrics.tenants()[i].name
                ));
            }
        }

        // Memory contract: evict idle graphs over the cap.
        let resident = srv.cached_plans();
        if resident > self.cfg.memory_cap_plans {
            let excess = resident - self.cfg.memory_cap_plans;
            let evicted = srv.evict_idle(excess);
            actions.push(format!(
                "evict {evicted}/{excess} idle plan graphs (resident {resident} > cap {})",
                self.cfg.memory_cap_plans
            ));
        }

        for a in &actions {
            metrics.log_action(a.clone());
        }
        metrics.reset_windows(now);
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scl_machine::{CostModel, Machine, Topology};
    use scl_serve::ServePolicy;
    use std::time::Duration;

    fn serve(threads: usize) -> Serve<ParArray<i64>, ParArray<i64>> {
        Serve::new(
            ServePolicy::new(Machine::new(
                Topology::FullyConnected { procs: 4 },
                CostModel::unit(),
            ))
            .with_threads(threads),
        )
    }

    #[test]
    fn contract_syntax_parses_and_rejects() {
        assert_eq!(
            SloContract::parse("p99<25ms").unwrap(),
            SloContract {
                p99_ms: Some(25.0),
                min_tput: None
            }
        );
        assert_eq!(
            SloContract::parse("tput>100rps p99<5ms").unwrap(),
            SloContract {
                p99_ms: Some(5.0),
                min_tput: Some(100.0)
            }
        );
        assert_eq!(SloContract::parse("").unwrap(), SloContract::default());
        assert!(SloContract::parse("p99<25").is_err(), "missing ms unit");
        assert!(SloContract::parse("p99<-1ms").is_err());
        assert!(SloContract::parse("latency<25ms").is_err());
    }

    #[test]
    fn latency_violation_shrinks_the_round_and_boosts_the_tenant() {
        let mut srv = serve(4);
        let gold = srv.add_tenant_weighted("gold", 2);
        let mut m = NetMetrics::new(&["gold".to_string()]);
        // monitor sees a 50ms p99 against a 10ms contract
        for _ in 0..100 {
            m.record_completion(0, Duration::from_millis(50));
        }
        let mut mgr = Manager::new(
            ManagerConfig::default(),
            vec![SloContract::parse("p99<10ms").unwrap()],
            vec![2],
        );
        let before_window = srv.batch_window();
        let actions = mgr.tick(&mut srv, &[gold], &mut m, Instant::now());
        assert!(srv.batch_window() < before_window, "window shrank");
        assert_eq!(srv.tenant_weight(gold), 4, "weight doubled");
        assert!(!actions.is_empty());
        assert!(m.actions().count() > 0, "actions surfaced in the log");
        // repeated violation saturates at base * max_boost
        for _ in 0..10 {
            for _ in 0..10 {
                m.record_completion(0, Duration::from_millis(50));
            }
            mgr.tick(&mut srv, &[gold], &mut m, Instant::now());
        }
        assert_eq!(srv.batch_window(), 1);
        assert_eq!(srv.tenant_weight(gold), 32, "2 * max_boost(16)");
    }

    #[test]
    fn all_clear_relaxes_back_toward_rest() {
        let mut srv = serve(4);
        let t = srv.add_tenant("t");
        let mut m = NetMetrics::new(&["t".to_string()]);
        let mut mgr = Manager::new(
            ManagerConfig::default(),
            vec![SloContract::parse("p99<1000ms").unwrap()],
            vec![1],
        );
        srv.set_batch_window(1);
        srv.set_width_cap(1);
        srv.set_tenant_weight(t, 8);
        for _ in 0..40 {
            m.record_completion(0, Duration::from_micros(50));
            mgr.tick(&mut srv, &[t], &mut m, Instant::now());
        }
        assert_eq!(
            srv.batch_window(),
            ManagerConfig::default().rest_batch_window
        );
        assert_eq!(srv.width_cap(), srv.thread_budget().total());
        assert_eq!(srv.tenant_weight(t), 1, "boost decayed to base");
    }

    #[test]
    fn crashy_tenant_is_deweighted_then_restored_when_clean() {
        let mut srv = serve(4);
        let t = srv.add_tenant_weighted("chaos", 4);
        let mut m = NetMetrics::new(&["chaos".to_string()]);
        let mut mgr = Manager::new(
            ManagerConfig::default(),
            vec![SloContract::default()],
            vec![4],
        );
        m.record_panic(0);
        let actions = mgr.tick(&mut srv, &[t], &mut m, Instant::now());
        assert_eq!(srv.tenant_weight(t), 2, "crash window halves the share");
        assert!(actions.iter().any(|a| a.contains("de-weight")));

        // keeps halving to the floor while the crashes continue
        for _ in 0..4 {
            m.record_panic(0);
            mgr.tick(&mut srv, &[t], &mut m, Instant::now());
        }
        assert_eq!(srv.tenant_weight(t), 1, "floor holds");

        // clean windows double back toward the configured base
        mgr.tick(&mut srv, &[t], &mut m, Instant::now());
        assert_eq!(srv.tenant_weight(t), 2);
        mgr.tick(&mut srv, &[t], &mut m, Instant::now());
        assert_eq!(srv.tenant_weight(t), 4, "restored to base, not beyond");
        mgr.tick(&mut srv, &[t], &mut m, Instant::now());
        assert_eq!(srv.tenant_weight(t), 4);
    }

    #[test]
    fn crash_deweight_overrides_an_slo_boost() {
        let mut srv = serve(4);
        let t = srv.add_tenant_weighted("chaos", 2);
        let mut m = NetMetrics::new(&["chaos".to_string()]);
        // a violated latency contract would normally *boost* — the crash
        // sensor must win the arbitration
        let mut mgr = Manager::new(
            ManagerConfig::default(),
            vec![SloContract::parse("p99<1ms").unwrap()],
            vec![2],
        );
        for _ in 0..10 {
            m.record_completion(0, Duration::from_millis(50));
        }
        m.record_panic(0);
        mgr.tick(&mut srv, &[t], &mut m, Instant::now());
        assert_eq!(srv.tenant_weight(t), 1, "halved despite the violation");
    }

    #[test]
    fn memory_pressure_evicts_idle_graphs() {
        use scl_core::Skel;
        let mut srv = serve(2);
        let t = srv.add_tenant("t");
        for k in 0..6 {
            let key = format!("p{k}");
            let _ = srv
                .submit_keyed(
                    t,
                    &key,
                    Skel::map(|x: &i64| x + 1),
                    ParArray::from_parts(vec![1, 2]),
                )
                .unwrap();
        }
        srv.run_until_idle();
        assert_eq!(srv.cached_plans(), 6);
        let mut m = NetMetrics::new(&["t".to_string()]);
        let mut mgr = Manager::new(
            ManagerConfig {
                memory_cap_plans: 2,
                ..ManagerConfig::default()
            },
            vec![SloContract::default()],
            vec![1],
        );
        let actions = mgr.tick(&mut srv, &[t], &mut m, Instant::now());
        assert_eq!(srv.cached_plans(), 2, "idle graphs over the cap evicted");
        assert!(actions.iter().any(|a| a.contains("evict")));
    }
}
