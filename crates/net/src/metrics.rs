//! Per-tenant service metrics: latency quantiles over a sliding sample
//! window, shed/reject/error counters, throughput, plus a mirror of the
//! serve-side cache counters — everything the MAPE manager's *monitor*
//! phase and the wire `STATS` request read.
//!
//! The struct is shared behind a mutex: connection threads record
//! admission-edge events (sheds, rejections), the service thread records
//! completions and mirrors `ServeStats` after each batch.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Latency samples kept per tenant (a ring: oldest overwritten first).
pub const LATENCY_WINDOW: usize = 4096;
/// Manager action-log lines retained.
pub const ACTION_LOG_CAP: usize = 64;

/// One tenant's counters and latency window.
#[derive(Debug)]
pub struct TenantMetrics {
    /// Tenant display name (from the server config).
    pub name: String,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests shed from the queue (shed-oldest victims).
    pub shed: u64,
    /// Requests refused at admission (queue full, draining).
    pub rejected: u64,
    /// Requests refused by the tenant's token bucket.
    pub rate_limited: u64,
    /// Requests that failed because the tenant's plan crashed
    /// (`PlanPanicked` replies).
    pub panicked: u64,
    /// Requests that expired before finishing (`DeadlineExceeded`
    /// replies, queue sheds of dead work included).
    pub deadline_expired: u64,
    /// Requests answered with any other typed error.
    pub errors: u64,
    ring: Vec<u64>,
    next: usize,
    /// Completions since the last manager tick (throughput sensor).
    window_completed: u64,
    /// Plan crashes since the last manager tick (the de-weight sensor).
    window_panicked: u64,
    window_start: Instant,
}

impl TenantMetrics {
    fn new(name: &str) -> TenantMetrics {
        TenantMetrics {
            name: name.to_string(),
            completed: 0,
            shed: 0,
            rejected: 0,
            rate_limited: 0,
            panicked: 0,
            deadline_expired: 0,
            errors: 0,
            ring: Vec::with_capacity(LATENCY_WINDOW),
            next: 0,
            window_completed: 0,
            window_panicked: 0,
            window_start: Instant::now(),
        }
    }

    fn record_latency(&mut self, us: u64) {
        if self.ring.len() < LATENCY_WINDOW {
            self.ring.push(us);
        } else {
            self.ring[self.next] = us;
        }
        self.next = (self.next + 1) % LATENCY_WINDOW;
    }

    /// The `q`-quantile (0.0–1.0) of the latency window, microseconds.
    /// `None` until a sample exists.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.ring.is_empty() {
            return None;
        }
        let mut sorted = self.ring.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[rank])
    }

    /// Median latency, milliseconds.
    pub fn p50_ms(&self) -> Option<f64> {
        self.quantile_us(0.50).map(|us| us as f64 / 1000.0)
    }

    /// 99th-percentile latency, milliseconds.
    pub fn p99_ms(&self) -> Option<f64> {
        self.quantile_us(0.99).map(|us| us as f64 / 1000.0)
    }

    /// Plan crashes since the tenant's window was last reset — the
    /// manager's de-weight sensor: a tenant crashing in the current
    /// window has its fair share halved instead of boosted.
    pub fn window_panicked(&self) -> u64 {
        self.window_panicked
    }

    /// Completions per second since the tenant's window was last reset
    /// (the manager resets it each tick).
    pub fn window_throughput(&self, now: Instant) -> f64 {
        let dt = now
            .saturating_duration_since(self.window_start)
            .as_secs_f64();
        if dt <= 0.0 {
            0.0
        } else {
            self.window_completed as f64 / dt
        }
    }
}

/// A mirror of the serve-side counters the net layer exposes over the
/// wire (the service thread owns the real `Serve`; it copies these out
/// after each batch so connection threads can answer `STATS` without
/// touching it).
#[derive(Debug, Default, Clone, Copy)]
pub struct ServeMirror {
    /// Submissions that reused a cached compiled graph.
    pub cache_hits: u64,
    /// Submissions that compiled a new graph.
    pub cache_misses: u64,
    /// Compiled graphs evicted (LRU cap or manager memory pressure).
    pub evictions: u64,
    /// Compiled graphs currently resident.
    pub cached_plans: usize,
    /// Service-round batches pushed.
    pub batches: u64,
    /// The service's current batch window (a manager actuator).
    pub batch_window: usize,
    /// The service's current farm-width cap (a manager actuator).
    pub width_cap: usize,
    /// Requests failed by their own plan crashing.
    pub panics: u64,
    /// Requests that missed their deadline.
    pub deadline_expired: u64,
    /// Crashed graphs rebuilt from their cached plan on resubmission.
    pub rebuilds: u64,
    /// Plans quarantined after repeated consecutive crashes.
    pub quarantines: u64,
    /// Plans currently quarantined (entries refusing submissions).
    pub quarantined_plans: usize,
}

/// The shared metrics registry.
#[derive(Debug)]
pub struct NetMetrics {
    tenants: Vec<TenantMetrics>,
    /// Queue depth at the last service-thread update.
    pub queue_depth: usize,
    /// Serve-side counter mirror.
    pub serve: ServeMirror,
    actions: VecDeque<String>,
    started: Instant,
}

impl NetMetrics {
    /// A registry with one slot per configured tenant.
    pub fn new(tenant_names: &[String]) -> NetMetrics {
        NetMetrics {
            tenants: tenant_names.iter().map(|n| TenantMetrics::new(n)).collect(),
            queue_depth: 0,
            serve: ServeMirror::default(),
            actions: VecDeque::new(),
            started: Instant::now(),
        }
    }

    /// The per-tenant slots, indexed by wire tenant id.
    pub fn tenants(&self) -> &[TenantMetrics] {
        &self.tenants
    }

    /// Mutable access to one tenant's slot.
    pub fn tenant_mut(&mut self, t: u32) -> &mut TenantMetrics {
        &mut self.tenants[t as usize]
    }

    /// Record a completed request and its end-to-end latency.
    pub fn record_completion(&mut self, t: u32, latency: Duration) {
        let slot = &mut self.tenants[t as usize];
        slot.completed += 1;
        slot.window_completed += 1;
        slot.record_latency(latency.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Record a request failed by its own plan crashing (feeds both the
    /// lifetime counter and the manager's de-weight window).
    pub fn record_panic(&mut self, t: u32) {
        let slot = &mut self.tenants[t as usize];
        slot.panicked += 1;
        slot.window_panicked += 1;
    }

    /// Reset every tenant's throughput window (each manager tick).
    pub fn reset_windows(&mut self, now: Instant) {
        for t in &mut self.tenants {
            t.window_completed = 0;
            t.window_panicked = 0;
            t.window_start = now;
        }
    }

    /// Append a manager action line (bounded log, oldest dropped).
    pub fn log_action(&mut self, line: String) {
        if self.actions.len() >= ACTION_LOG_CAP {
            self.actions.pop_front();
        }
        self.actions.push_back(line);
    }

    /// The retained manager action lines, oldest first.
    pub fn actions(&self) -> impl Iterator<Item = &str> {
        self.actions.iter().map(String::as_str)
    }

    /// Render the stats snapshot as a JSON document — the `STATS_OK`
    /// reply body and the shape the `sla` bench archives.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"uptime_secs\": {:.3},\n  \"queue_depth\": {},\n",
            self.started.elapsed().as_secs_f64(),
            self.queue_depth
        ));
        s.push_str(&format!(
            "  \"serve\": {{\"cache_hits\": {}, \"cache_misses\": {}, \"evictions\": {}, \"cached_plans\": {}, \"batches\": {}, \"batch_window\": {}, \"width_cap\": {}, \"panics\": {}, \"deadline_expired\": {}, \"rebuilds\": {}, \"quarantines\": {}, \"quarantined_plans\": {}}},\n",
            self.serve.cache_hits,
            self.serve.cache_misses,
            self.serve.evictions,
            self.serve.cached_plans,
            self.serve.batches,
            self.serve.batch_window,
            self.serve.width_cap,
            self.serve.panics,
            self.serve.deadline_expired,
            self.serve.rebuilds,
            self.serve.quarantines,
            self.serve.quarantined_plans,
        ));
        s.push_str("  \"tenants\": [\n");
        for (i, t) in self.tenants.iter().enumerate() {
            let p50 = t.p50_ms().map_or("null".to_string(), |v| format!("{v:.3}"));
            let p99 = t.p99_ms().map_or("null".to_string(), |v| format!("{v:.3}"));
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"completed\": {}, \"shed\": {}, \"rejected\": {}, \"rate_limited\": {}, \"panicked\": {}, \"deadline_expired\": {}, \"errors\": {}, \"p50_ms\": {}, \"p99_ms\": {}}}{}\n",
                t.name,
                t.completed,
                t.shed,
                t.rejected,
                t.rate_limited,
                t.panicked,
                t.deadline_expired,
                t.errors,
                p50,
                p99,
                if i + 1 < self.tenants.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n  \"manager_actions\": [\n");
        let n = self.actions.len();
        for (i, a) in self.actions.iter().enumerate() {
            let escaped = a.replace('\\', "\\\\").replace('"', "\\\"");
            s.push_str(&format!(
                "    \"{}\"{}\n",
                escaped,
                if i + 1 < n { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_the_window() {
        let mut m = NetMetrics::new(&["t".to_string()]);
        for i in 1..=100u64 {
            m.record_completion(0, Duration::from_micros(i * 1000));
        }
        let t = &m.tenants()[0];
        assert_eq!(t.completed, 100);
        let p50 = t.p50_ms().unwrap();
        let p99 = t.p99_ms().unwrap();
        assert!((49.0..=52.0).contains(&p50), "p50 {p50}");
        assert!((98.0..=100.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn ring_overwrites_oldest_beyond_the_window() {
        let mut m = NetMetrics::new(&["t".to_string()]);
        for _ in 0..LATENCY_WINDOW {
            m.record_completion(0, Duration::from_micros(1));
        }
        for _ in 0..LATENCY_WINDOW {
            m.record_completion(0, Duration::from_micros(1_000_000));
        }
        let p50 = m.tenants()[0].p50_ms().unwrap();
        assert!(p50 > 999.0, "old 1µs samples fully aged out, p50 {p50}");
    }

    #[test]
    fn json_snapshot_mentions_every_tenant_and_action() {
        let mut m = NetMetrics::new(&["gold".to_string(), "bronze".to_string()]);
        m.record_completion(1, Duration::from_millis(5));
        m.tenant_mut(0).shed += 1;
        m.log_action("shrink batch window 16 -> 8".to_string());
        let json = m.to_json();
        assert!(json.contains("\"gold\""));
        assert!(json.contains("\"bronze\""));
        assert!(json.contains("shrink batch window"));
        assert!(json.contains("\"p99_ms\": null"), "no samples yet for gold");
    }

    #[test]
    fn action_log_is_bounded() {
        let mut m = NetMetrics::new(&[]);
        for i in 0..(ACTION_LOG_CAP + 10) {
            m.log_action(format!("a{i}"));
        }
        assert_eq!(m.actions().count(), ACTION_LOG_CAP);
        assert_eq!(m.actions().next(), Some("a10"));
    }
}
