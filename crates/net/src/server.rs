//! The TCP front door: accept loop, per-connection reader threads, and
//! the single service thread that owns the `Serve` instance.
//!
//! ## Threading model
//!
//! `Serve` (and the `Skel` plans inside it) are deliberately
//! single-threaded values — plan closures aren't `Send` — so the server
//! never moves them. [`NetServer::start`] spawns a **service thread**
//! that builds the registry and the `Serve` *inside itself* from the
//! (`Send`) [`NetConfig`], then pumps: pop a batch from the admission
//! queue, submit every request, `run_until_idle`, deliver each encoded
//! reply through its request's channel, tick the autonomic manager.
//!
//! Connection **reader threads** only ever touch `Send` data: they
//! decode frames into plain jobs, run the admission edge (tenant check,
//! token bucket, bounded queue with shedding), then block on their
//! request's reply channel and write the frame back. One request is in
//! flight per connection — clients open more connections for
//! pipelining — which keeps replies trivially ordered.
//!
//! ## Request lifecycle
//!
//! ```text
//! socket → frame decode → admission (tenant, rate, queue/shed)
//!        → service thread (parse → compile/cache → batch → stream graph)
//!        → reply frame (result + bit-exact machine report | typed error)
//! ```
//!
//! ## Graceful drain
//!
//! A `DRAIN` frame (or [`NetServer::shutdown`]) flips the admission
//! queue into draining: new submissions get a typed `Draining` error,
//! queued work still runs to completion and delivers. `shutdown` then
//! stops the threads, closes every connection, and joins.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use scl_core::wire::{self, WireError};
use scl_core::{FrameHeader, ParArray, RequestError, SclError, Skel};
use scl_exec::ExecPolicy;
use scl_machine::{CostModel, Machine, Topology};
use scl_serve::{Serve, ServePolicy, TenantId, Ticket};
use scl_transform::Registry;

use crate::admission::{Admission, AdmitError, Job, JobBody, ShedPolicy, TokenBucket, Victim};
use crate::frame::{plan_handle, ErrorCode, Mode, Reply, Request};
use crate::manager::{Manager, ManagerConfig, SloContract};
use crate::metrics::NetMetrics;

/// One tenant's admission and scheduling configuration.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (shows up in stats and manager actions).
    pub name: String,
    /// Base fair-share weight.
    pub weight: u32,
    /// Token-bucket refill, requests/second. `0.0` disables limiting.
    pub rate_per_sec: f64,
    /// Token-bucket burst capacity.
    pub burst: f64,
    /// The tenant's SLO contract (see [`SloContract::parse`]).
    pub slo: SloContract,
}

impl TenantSpec {
    /// An unlimited, weight-1 tenant with no SLO.
    pub fn new(name: &str) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            weight: 1,
            rate_per_sec: 0.0,
            burst: 0.0,
            slo: SloContract::default(),
        }
    }

    /// Set the fair-share weight.
    pub fn with_weight(mut self, weight: u32) -> TenantSpec {
        self.weight = weight.max(1);
        self
    }

    /// Set the token-bucket rate limit.
    pub fn with_rate(mut self, per_sec: f64, burst: f64) -> TenantSpec {
        self.rate_per_sec = per_sec;
        self.burst = burst;
        self
    }

    /// Attach an SLO contract.
    pub fn with_slo(mut self, slo: SloContract) -> TenantSpec {
        self.slo = slo;
        self
    }
}

/// Everything needed to start a server. `Send`, so the service thread
/// can build the (non-`Send`) `Serve` from it internally.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address; `127.0.0.1:0` picks a free loopback port.
    pub addr: String,
    /// Simulated machine size (fully connected, unit cost model).
    pub procs: usize,
    /// Execution policy for served plans.
    pub exec: ExecPolicy,
    /// Host thread budget for the service (`0` = the policy's default).
    pub threads: usize,
    /// Initial batch window (a manager actuator thereafter).
    pub batch_window: usize,
    /// Serve-layer LRU plan-cache capacity.
    pub plan_cache_cap: usize,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Who pays when the queue is full.
    pub shed: ShedPolicy,
    /// The tenant table; wire tenant ids index into it.
    pub tenants: Vec<TenantSpec>,
    /// Autonomic manager cadence. [`Duration::ZERO`] disables the loop.
    pub manager_tick: Duration,
    /// Manager-wide contracts (memory cap, resting points).
    pub manager: ManagerConfig,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            procs: 8,
            exec: ExecPolicy::auto(),
            threads: 0,
            batch_window: 16,
            plan_cache_cap: 32,
            queue_capacity: 64,
            shed: ShedPolicy::RejectNew,
            tenants: vec![TenantSpec::new("default")],
            manager_tick: Duration::from_millis(100),
            manager: ManagerConfig::default(),
        }
    }
}

/// A running server. Dropping it without [`NetServer::shutdown`] leaves
/// the threads running for the process lifetime; call `shutdown` for a
/// graceful drain + join.
pub struct NetServer {
    addr: SocketAddr,
    admission: Arc<Admission>,
    metrics: Arc<Mutex<NetMetrics>>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    threads: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind, spawn the accept and service threads, and return.
    pub fn start(cfg: NetConfig) -> std::io::Result<NetServer> {
        assert!(
            !cfg.tenants.is_empty(),
            "a server needs at least one tenant"
        );
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let admission = Arc::new(Admission::new(cfg.queue_capacity, cfg.shed));
        let names: Vec<String> = cfg.tenants.iter().map(|t| t.name.clone()).collect();
        let metrics = Arc::new(Mutex::new(NetMetrics::new(&names)));
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let buckets: Arc<Vec<Mutex<TokenBucket>>> = Arc::new(
            cfg.tenants
                .iter()
                .map(|t| Mutex::new(TokenBucket::new(t.rate_per_sec, t.burst)))
                .collect(),
        );

        let mut threads = Vec::new();
        {
            let admission = Arc::clone(&admission);
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            let cfg = cfg.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("scl-net-service".to_string())
                    .spawn(move || service_loop(cfg, admission, metrics, stop))?,
            );
        }
        {
            let admission = Arc::clone(&admission);
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let readers = Arc::clone(&readers);
            threads.push(
                std::thread::Builder::new()
                    .name("scl-net-accept".to_string())
                    .spawn(move || {
                        accept_loop(listener, admission, metrics, buckets, stop, conns, readers)
                    })?,
            );
        }

        Ok(NetServer {
            addr,
            admission,
            metrics,
            stop,
            conns,
            threads,
            readers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain: refuse new work, keep serving the queue.
    pub fn drain(&self) {
        self.admission.drain();
    }

    /// Requests currently waiting for service.
    pub fn queue_depth(&self) -> usize {
        self.admission.depth()
    }

    /// The current metrics snapshot as JSON (same document as the wire
    /// `STATS` request).
    pub fn stats_json(&self) -> String {
        self.metrics.lock().unwrap().to_json()
    }

    /// Graceful shutdown: drain, let queued work finish, stop and join
    /// every thread, close every connection.
    pub fn shutdown(mut self) {
        self.admission.drain();
        // let the service thread clear the backlog
        while self.admission.depth() > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.stop.store(true, Ordering::SeqCst);
        // unblock reader threads parked in read()
        for c in self.conns.lock().unwrap().iter() {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let readers = std::mem::take(&mut *self.readers.lock().unwrap());
        for r in readers {
            let _ = r.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    admission: Arc<Admission>,
    metrics: Arc<Mutex<NetMetrics>>,
    buckets: Arc<Vec<Mutex<TokenBucket>>>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    conns.lock().unwrap().push(clone);
                }
                let admission = Arc::clone(&admission);
                let metrics = Arc::clone(&metrics);
                let buckets = Arc::clone(&buckets);
                let handle = std::thread::Builder::new()
                    .name("scl-net-conn".to_string())
                    .spawn(move || connection_loop(stream, admission, metrics, buckets));
                if let Ok(h) = handle {
                    readers.lock().unwrap().push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Read frames off one connection until EOF or an unrecoverable framing
/// error. Never panics on malformed input: every failure is either a
/// typed `ERROR` reply or a clean close.
fn connection_loop(
    mut stream: TcpStream,
    admission: Arc<Admission>,
    metrics: Arc<Mutex<NetMetrics>>,
    buckets: Arc<Vec<Mutex<TokenBucket>>>,
) {
    connection_frames(&mut stream, &admission, &metrics, &buckets);
    // the shutdown registry holds a duplicate of this socket, which
    // would keep the peer waiting for FIN — shut down explicitly so a
    // close is a *clean* close the moment this loop exits
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn connection_frames(
    stream: &mut TcpStream,
    admission: &Admission,
    metrics: &Mutex<NetMetrics>,
    buckets: &[Mutex<TokenBucket>],
) {
    loop {
        // ---- header ----
        let mut header = [0u8; wire::HEADER_LEN];
        if read_exact_or_eof(stream, &mut header).is_err() {
            return; // disconnect (clean at a boundary or mid-frame)
        }
        let parsed = match FrameHeader::decode(&header) {
            Ok(h) => h,
            Err(e) => {
                // the stream is desynchronized — answer typed, then close
                let code = match e {
                    WireError::BadVersion { .. } => ErrorCode::UnsupportedVersion,
                    WireError::Oversize { .. } => ErrorCode::Oversize,
                    _ => ErrorCode::BadFrame,
                };
                let _ = write_reply(
                    stream,
                    &Reply::Error {
                        code,
                        retry_after_ms: 0,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        // ---- body ----
        let mut body = vec![0u8; parsed.len];
        if stream.read_exact(&mut body).is_err() {
            return; // mid-frame disconnect
        }
        let request = match Request::decode(parsed.kind, &body) {
            Ok(r) => r,
            Err(e) => {
                // the frame was length-delimited, so we are still in sync:
                // reply typed and keep the connection
                let code = if !known_kind(parsed.kind) {
                    ErrorCode::UnknownKind
                } else {
                    match e {
                        WireError::Oversize { .. } => ErrorCode::Oversize,
                        _ => ErrorCode::BadFrame,
                    }
                };
                if write_reply(
                    stream,
                    &Reply::Error {
                        code,
                        retry_after_ms: 0,
                        message: e.to_string(),
                    },
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };
        // ---- dispatch ----
        let reply_bytes = match request {
            Request::Ping => Reply::Pong.encode(),
            Request::Drain => {
                admission.drain();
                Reply::Draining.encode()
            }
            Request::Stats => {
                let json = metrics.lock().unwrap().to_json();
                Reply::Stats(json).encode()
            }
            Request::SubmitSource {
                tenant,
                mode,
                deadline_ms,
                source,
                key,
                payload,
            } => submit_edge(
                admission,
                metrics,
                buckets,
                tenant,
                deadline_ms,
                JobBody::Source {
                    mode,
                    source,
                    key,
                    payload,
                },
            ),
            Request::SubmitHandle {
                tenant,
                handle,
                deadline_ms,
                payload,
            } => submit_edge(
                admission,
                metrics,
                buckets,
                tenant,
                deadline_ms,
                JobBody::Handle { handle, payload },
            ),
        };
        if stream
            .write_all(&reply_bytes)
            .and_then(|()| stream.flush())
            .is_err()
        {
            return;
        }
    }
}

fn known_kind(k: u8) -> bool {
    use crate::frame::kind;
    matches!(
        k,
        kind::SUBMIT_SOURCE | kind::SUBMIT_HANDLE | kind::STATS | kind::PING | kind::DRAIN
    )
}

/// The admission edge for one submission: tenant check, token bucket,
/// bounded queue (with shedding), then block for this request's reply.
/// Always returns an encoded reply frame.
fn submit_edge(
    admission: &Admission,
    metrics: &Mutex<NetMetrics>,
    buckets: &[Mutex<TokenBucket>],
    tenant: u32,
    deadline_ms: u32,
    body: JobBody,
) -> Vec<u8> {
    if tenant as usize >= buckets.len() {
        return Reply::Error {
            code: ErrorCode::UnknownTenant,
            retry_after_ms: 0,
            message: format!("tenant {tenant} not configured ({} tenants)", buckets.len()),
        }
        .encode();
    }
    {
        let mut bucket = buckets[tenant as usize].lock().unwrap();
        if !bucket.try_take(Instant::now()) {
            // tell the client exactly when the bucket refills one token,
            // rounded up so an obedient retry never hits empty again
            let retry_after_ms = (bucket.retry_after().as_secs_f64() * 1000.0).ceil() as u32;
            drop(bucket);
            metrics.lock().unwrap().tenant_mut(tenant).rate_limited += 1;
            return Reply::Error {
                code: ErrorCode::RateLimited,
                retry_after_ms,
                message: "token bucket empty; retry later".to_string(),
            }
            .encode();
        }
    }
    let now = Instant::now();
    let deadline = (deadline_ms > 0).then(|| now + Duration::from_millis(u64::from(deadline_ms)));
    let (tx, rx) = mpsc::channel();
    let job = Job {
        tenant,
        body,
        reply: tx,
        enqueued: now,
        deadline,
    };
    match admission.push(job) {
        Err(AdmitError::Draining) => {
            metrics.lock().unwrap().tenant_mut(tenant).rejected += 1;
            return Reply::Error {
                code: ErrorCode::Draining,
                retry_after_ms: 0,
                message: "server is draining".to_string(),
            }
            .encode();
        }
        Err(AdmitError::QueueFull) => {
            metrics.lock().unwrap().tenant_mut(tenant).rejected += 1;
            return Reply::Error {
                code: ErrorCode::QueueFull,
                retry_after_ms: 0,
                message: "admission queue full".to_string(),
            }
            .encode();
        }
        Ok(Some(Victim {
            job: victim,
            expired,
        })) => {
            // the victim's connection gets a typed error — its reader is
            // blocked on this very channel, never hung
            let (code, message) = if expired {
                metrics
                    .lock()
                    .unwrap()
                    .tenant_mut(victim.tenant)
                    .deadline_expired += 1;
                (
                    ErrorCode::DeadlineExceeded,
                    "deadline exceeded while queued".to_string(),
                )
            } else {
                metrics.lock().unwrap().tenant_mut(victim.tenant).shed += 1;
                (
                    ErrorCode::Shed,
                    "shed under overload (oldest-first)".to_string(),
                )
            };
            let _ = victim.reply.send(
                Reply::Error {
                    code,
                    retry_after_ms: 0,
                    message,
                }
                .encode(),
            );
        }
        Ok(None) => {}
    }
    match rx.recv() {
        Ok(bytes) => bytes,
        Err(_) => Reply::Error {
            code: ErrorCode::Draining,
            retry_after_ms: 0,
            message: "service stopped before reply".to_string(),
        }
        .encode(),
    }
}

/// `Ok` when `buf` was filled; `Err` on EOF or I/O error.
fn read_exact_or_eof(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), ()> {
    stream.read_exact(buf).map_err(|_| ())
}

fn write_reply(stream: &mut TcpStream, reply: &Reply) -> std::io::Result<()> {
    stream.write_all(&reply.encode())?;
    stream.flush()
}

// ---------------------------------------------------------------------
// The service thread
// ---------------------------------------------------------------------

/// How long one pop waits before the loop runs its idle beat (manager
/// tick, shutdown check).
const POP_WAIT: Duration = Duration::from_millis(10);

fn service_loop(
    cfg: NetConfig,
    admission: Arc<Admission>,
    metrics: Arc<Mutex<NetMetrics>>,
    stop: Arc<AtomicBool>,
) {
    // `Registry` and `Serve` are built *inside* the service thread:
    // neither is `Send`, and neither ever leaves.
    let reg: &'static Registry = Box::leak(Box::new(Registry::standard()));
    let machine = Machine::new(
        Topology::FullyConnected {
            procs: cfg.procs.max(1),
        },
        CostModel::unit(),
    );
    let mut policy = ServePolicy::new(machine)
        .with_exec(cfg.exec)
        .with_batch_window(cfg.batch_window)
        .with_plan_cache_cap(cfg.plan_cache_cap);
    if cfg.threads > 0 {
        policy = policy.with_threads(cfg.threads);
    }
    let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(policy);
    let ids: Vec<TenantId> = cfg
        .tenants
        .iter()
        .map(|t| srv.add_tenant_weighted(&t.name, t.weight))
        .collect();
    let mut mgr = Manager::new(
        cfg.manager,
        cfg.tenants.iter().map(|t| t.slo).collect(),
        cfg.tenants.iter().map(|t| t.weight.max(1)).collect(),
    );
    // handle → (mode, key, source): what a `SUBMIT_HANDLE` resolves to
    let mut sources: HashMap<u64, (Mode, String, String)> = HashMap::new();
    let mut last_tick = Instant::now();

    loop {
        let window = srv.batch_window();
        let batch = admission.pop_batch(window, POP_WAIT);
        if batch.is_empty() && stop.load(Ordering::SeqCst) && admission.depth() == 0 {
            break;
        }

        // Phase 1: submit the whole batch (this is what batching buys:
        // same-plan requests coalesce into one service round).
        type Submitted = Result<(Ticket, u64), (ErrorCode, String)>;
        let mut pending: Vec<(Job, Submitted)> = Vec::with_capacity(batch.len());
        for job in batch {
            let outcome = submit_job(&mut srv, reg, &mut sources, &ids, &job);
            pending.push((job, outcome));
        }
        // Phase 2: run the service rounds to completion.
        srv.run_until_idle();
        // Phase 3: deliver.
        let mut m = metrics.lock().unwrap();
        for (job, outcome) in pending {
            let bytes = match outcome {
                Ok((ticket, handle)) => match srv.outcome(ticket) {
                    Some(Ok((out, report))) => {
                        m.record_completion(job.tenant, job.enqueued.elapsed());
                        Reply::Result {
                            handle,
                            payload: out.parts().to_vec(),
                            report,
                        }
                        .encode()
                    }
                    Some(Err(e)) => {
                        // request-level failure: this ticket's plan
                        // crashed, expired, or is quarantined — the
                        // service thread itself never unwinds
                        let code = match e {
                            RequestError::DeadlineExceeded => {
                                m.tenant_mut(job.tenant).deadline_expired += 1;
                                ErrorCode::DeadlineExceeded
                            }
                            _ => {
                                m.record_panic(job.tenant);
                                ErrorCode::PlanPanicked
                            }
                        };
                        Reply::Error {
                            code,
                            retry_after_ms: 0,
                            message: e.to_string(),
                        }
                        .encode()
                    }
                    None => {
                        m.tenant_mut(job.tenant).errors += 1;
                        Reply::Error {
                            code: ErrorCode::PlanRejected,
                            retry_after_ms: 0,
                            message: "plan execution failed".to_string(),
                        }
                        .encode()
                    }
                },
                Err((code, message)) => {
                    m.tenant_mut(job.tenant).errors += 1;
                    Reply::Error {
                        code,
                        retry_after_ms: 0,
                        message,
                    }
                    .encode()
                }
            };
            let _ = job.reply.send(bytes);
        }
        // Mirror observable serve state for the stats endpoint.
        let stats = srv.stats();
        m.serve.cache_hits = stats.cache_hits;
        m.serve.cache_misses = stats.cache_misses;
        m.serve.evictions = stats.evictions;
        m.serve.batches = stats.batches;
        m.serve.panics = stats.panics;
        m.serve.deadline_expired = stats.deadline_expired;
        m.serve.rebuilds = stats.rebuilds;
        m.serve.quarantines = stats.quarantines;
        m.serve.cached_plans = srv.cached_plans();
        m.serve.quarantined_plans = srv.quarantined_plans();
        m.serve.batch_window = srv.batch_window();
        m.serve.width_cap = srv.width_cap().min(srv.thread_budget().total());
        m.queue_depth = admission.depth();
        drop(m);

        // Idle beat: the autonomic manager.
        if cfg.manager_tick > Duration::ZERO && last_tick.elapsed() >= cfg.manager_tick {
            let mut m = metrics.lock().unwrap();
            let now = Instant::now();
            mgr.tick(&mut srv, &ids, &mut m, now);
            last_tick = now;
        }
    }
}

/// Resolve and submit one job. Returns the ticket and the plan handle,
/// or the typed error to send back.
fn submit_job(
    srv: &mut Serve<ParArray<i64>, ParArray<i64>>,
    reg: &'static Registry,
    sources: &mut HashMap<u64, (Mode, String, String)>,
    ids: &[TenantId],
    job: &Job,
) -> Result<(Ticket, u64), (ErrorCode, String)> {
    let (mode, key, source, payload) = match &job.body {
        JobBody::Source {
            mode,
            source,
            key,
            payload,
        } => (*mode, key.clone(), source.clone(), payload),
        JobBody::Handle { handle, payload } => {
            let (mode, key, source) = sources.get(handle).cloned().ok_or_else(|| {
                (
                    ErrorCode::UnknownPlan,
                    format!("unknown plan handle {handle:#018x}; resubmit by source"),
                )
            })?;
            (mode, key, source, payload)
        }
    };
    if payload.is_empty() {
        return Err((
            ErrorCode::PlanRejected,
            "empty payload: a request needs at least one partition".to_string(),
        ));
    }
    let expr = scl_transform::parse(&source).map_err(|e| (ErrorCode::ParseError, e.to_string()))?;
    let plan = Skel::from_expr(&expr, reg).map_err(|e| (ErrorCode::PlanRejected, e))?;
    let input = ParArray::from_parts(payload.clone());
    let tenant_id = ids[job.tenant as usize];
    let submitted = match mode {
        Mode::Plain => srv.submit_keyed_deadline(tenant_id, &key, plan, input, job.deadline),
        Mode::Optimized => {
            srv.submit_optimized_deadline(tenant_id, &key, &plan, reg, input, job.deadline)
        }
    };
    let ticket = submitted.map_err(|e| match e {
        SclError::MachineTooSmall { .. } => (ErrorCode::MachineTooSmall, e.to_string()),
        other => (ErrorCode::PlanRejected, other.to_string()),
    })?;
    let handle = plan_handle(mode, &key, &source);
    sources.entry(handle).or_insert((mode, key, source));
    Ok((ticket, handle))
}
