//! End-to-end behaviour of the TCP front door over loopback: the happy
//! path, the handle fast path, typed admission errors, rate limits,
//! shedding, draining, and stats observability.

use std::time::Duration;

use scl_exec::ExecPolicy;
use scl_net::frame::MAX_PAYLOAD_ELEMS;
use scl_net::{
    ClientError, ErrorCode, Mode, NetClient, NetConfig, NetServer, ShedPolicy, SloContract,
    TenantSpec,
};

fn config() -> NetConfig {
    NetConfig {
        procs: 8,
        tenants: vec![TenantSpec::new("t0"), TenantSpec::new("t1").with_weight(3)],
        manager_tick: Duration::ZERO,
        ..NetConfig::default()
    }
}

fn server_error(r: Result<scl_net::NetResult, ClientError>) -> (ErrorCode, String) {
    match r {
        Err(ClientError::Server { code, message, .. }) => (code, message),
        other => panic!("expected a typed server error, got {other:?}"),
    }
}

#[test]
fn submit_compiles_runs_and_returns_a_reusable_handle() {
    let server = NetServer::start(config()).unwrap();
    let mut c = NetClient::connect(server.local_addr()).unwrap();
    c.ping().unwrap();

    let r = c
        .submit_source(0, Mode::Plain, "map(inc) . rotate(1)", "", &[1, 2, 3, 4])
        .unwrap();
    assert_eq!(r.output, vec![3, 4, 5, 2]);
    assert!(r.report.procs > 0);

    // the handle path returns identical answers without shipping source
    let again = c.submit_handle(0, r.handle, &[1, 2, 3, 4]).unwrap();
    assert_eq!(again.output, r.output);
    assert_eq!(again.report, r.report, "same plan, same private accounting");
    assert_eq!(again.handle, r.handle);

    // optimized mode is a distinct cached graph but the same answer
    let opt = c
        .submit_source(
            0,
            Mode::Optimized,
            "map(inc) . rotate(1)",
            "",
            &[1, 2, 3, 4],
        )
        .unwrap();
    assert_eq!(opt.output, r.output);
    assert_ne!(opt.handle, r.handle, "mode salts the handle");

    let stats = c.stats().unwrap();
    assert!(
        stats.contains("\"t0\""),
        "stats mention the tenant: {stats}"
    );
    assert!(stats.contains("\"cache_hits\""));
    server.shutdown();
}

#[test]
fn typed_errors_for_bad_tenants_plans_and_handles() {
    let server = NetServer::start(config()).unwrap();
    let mut c = NetClient::connect(server.local_addr()).unwrap();

    let (code, _) = server_error(c.submit_source(99, Mode::Plain, "map(inc)", "", &[1]));
    assert_eq!(code, ErrorCode::UnknownTenant);

    let (code, msg) = server_error(c.submit_source(0, Mode::Plain, "map(", "", &[1]));
    assert_eq!(code, ErrorCode::ParseError);
    assert!(msg.contains("parse error"), "{msg}");

    let (code, _) = server_error(c.submit_handle(0, 0xdead_beef, &[1]));
    assert_eq!(code, ErrorCode::UnknownPlan);

    let (code, _) = server_error(c.submit_source(0, Mode::Plain, "map(inc)", "", &[]));
    assert_eq!(code, ErrorCode::PlanRejected);

    // payload wider than the machine
    let wide: Vec<i64> = (0..100).collect();
    let (code, _) = server_error(c.submit_source(0, Mode::Plain, "map(inc)", "", &wide));
    assert_eq!(code, ErrorCode::MachineTooSmall);

    // a nonsense symbol parses as an ident but fails registry lookup
    let (code, _) = server_error(c.submit_source(0, Mode::Plain, "map(nosuchfn)", "", &[1]));
    assert_eq!(code, ErrorCode::PlanRejected);

    // the connection survived every one of those
    c.ping().unwrap();
    let ok = c
        .submit_source(0, Mode::Plain, "map(inc)", "", &[5])
        .unwrap();
    assert_eq!(ok.output, vec![6]);
    server.shutdown();
}

#[test]
fn rate_limited_tenants_get_typed_errors_and_counters() {
    let mut cfg = config();
    cfg.tenants = vec![TenantSpec::new("limited").with_rate(0.001, 2.0)];
    let server = NetServer::start(cfg).unwrap();
    let mut c = NetClient::connect(server.local_addr()).unwrap();

    // burst of 2 passes, the third is limited (refill is ~1/1000s)
    assert!(c
        .submit_source(0, Mode::Plain, "map(inc)", "", &[1])
        .is_ok());
    assert!(c
        .submit_source(0, Mode::Plain, "map(inc)", "", &[1])
        .is_ok());
    let (code, _) = server_error(c.submit_source(0, Mode::Plain, "map(inc)", "", &[1]));
    assert_eq!(code, ErrorCode::RateLimited);

    let stats = c.stats().unwrap();
    assert!(
        stats.contains("\"rate_limited\": 1"),
        "limit visible in stats: {stats}"
    );
    server.shutdown();
}

#[test]
fn crashing_plan_gets_a_typed_reply_and_the_service_survives() {
    let server = NetServer::start(config()).unwrap();
    let mut c = NetClient::connect(server.local_addr()).unwrap();

    // `trap` panics on the sentinel value — only this request fails
    let (code, msg) = server_error(c.submit_source(0, Mode::Plain, "map(trap)", "", &[1, 666, 3]));
    assert_eq!(code, ErrorCode::PlanPanicked);
    assert!(msg.contains("trap: hit sentinel 666"), "{msg}");

    // the single service thread did not unwind: same connection, same
    // tenant, the next request is served normally
    let ok = c
        .submit_source(0, Mode::Plain, "map(inc)", "", &[1, 2])
        .unwrap();
    assert_eq!(ok.output, vec![2, 3]);

    // resubmitting the crashed plan with a healthy payload succeeds —
    // the torn-down graph is rebuilt from its cached plan
    let retry = c
        .submit_source(0, Mode::Plain, "map(trap)", "", &[1, 2, 3])
        .unwrap();
    assert_eq!(retry.output, vec![1, 2, 3]);

    let stats = c.stats().unwrap();
    assert!(stats.contains("\"panicked\": 1"), "{stats}");
    assert!(stats.contains("\"rebuilds\": 1"), "{stats}");
    server.shutdown();
}

#[test]
fn expired_deadlines_answer_typed_without_occupying_the_service() {
    let mut cfg = config();
    cfg.exec = ExecPolicy::Sequential;
    cfg.tenants = vec![TenantSpec::new("t0")];
    let server = NetServer::start(cfg).unwrap();
    let addr = server.local_addr();

    // occupy the service: 8 elements of `slow` is ~16ms of work
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let busy = std::thread::spawn(move || {
        let mut a = NetClient::connect(addr).unwrap();
        ready_tx.send(()).unwrap();
        a.submit_source(
            0,
            Mode::Plain,
            "map(slow) . rotate(1)",
            "",
            &[1, 2, 3, 4, 5, 6, 7, 8],
        )
        .unwrap()
    });
    ready_rx.recv().unwrap();
    std::thread::sleep(Duration::from_millis(4));

    // this request's 1ms budget burns away behind the busy round; it is
    // shed at the first boundary that notices it's dead (the plan queue,
    // the push into the graph, or the first hop) — never run to answer
    let mut c = NetClient::connect(addr).unwrap();
    c.set_deadline_ms(1);
    let (code, _) =
        server_error(c.submit_source(0, Mode::Plain, "map(slow) . rotate(1)", "", &[1, 2, 3, 4]));
    assert_eq!(code, ErrorCode::DeadlineExceeded);
    let r = busy.join().unwrap();
    assert_eq!(
        r.output,
        vec![2, 3, 4, 5, 6, 7, 8, 1],
        "busy round unharmed"
    );

    // deadline 0 = none: the same plan completes
    c.set_deadline_ms(0);
    let ok = c
        .submit_source(0, Mode::Plain, "map(slow) . rotate(1)", "", &[1, 2])
        .unwrap();
    assert_eq!(ok.output, vec![2, 1]);

    let stats = c.stats().unwrap();
    assert!(stats.contains("\"deadline_expired\": 1"), "{stats}");
    server.shutdown();
}

#[test]
fn rate_limit_rejections_carry_a_retry_after_hint() {
    let mut cfg = config();
    // 2 tokens/second, burst 1: after one take the bucket needs ~500ms
    cfg.tenants = vec![TenantSpec::new("limited").with_rate(2.0, 1.0)];
    let server = NetServer::start(cfg).unwrap();
    let mut c = NetClient::connect(server.local_addr()).unwrap();
    assert!(c
        .submit_source(0, Mode::Plain, "map(inc)", "", &[1])
        .is_ok());
    match c.submit_source(0, Mode::Plain, "map(inc)", "", &[1]) {
        Err(ClientError::Server {
            code: ErrorCode::RateLimited,
            retry_after_ms,
            ..
        }) => {
            assert!(
                retry_after_ms > 0 && retry_after_ms <= 500,
                "hint tracks the refill rate, got {retry_after_ms}ms"
            );
        }
        other => panic!("expected a rate-limit error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn drain_refuses_new_work_then_shutdown_completes() {
    let server = NetServer::start(config()).unwrap();
    let mut c = NetClient::connect(server.local_addr()).unwrap();
    let r = c
        .submit_source(0, Mode::Plain, "map(double)", "", &[1, 2])
        .unwrap();
    assert_eq!(r.output, vec![2, 4]);

    c.drain().unwrap();
    let (code, _) = server_error(c.submit_source(0, Mode::Plain, "map(double)", "", &[1]));
    assert_eq!(code, ErrorCode::Draining);
    // non-submission requests still answer while draining
    c.ping().unwrap();
    let _ = c.stats().unwrap();
    server.shutdown();
}

#[test]
fn shed_oldest_answers_the_victim_with_a_typed_error() {
    // Capacity-1 queue, shed-oldest: while the service thread is busy
    // with a stream of requests from one connection, a second connection
    // floods the queue so *someone* must be shed. The victim must get a
    // typed Shed error — never a hang — and the shed count must surface.
    let mut cfg = config();
    cfg.queue_capacity = 1;
    cfg.shed = ShedPolicy::ShedOldest;
    cfg.tenants = vec![TenantSpec::new("flood")];
    let server = NetServer::start(cfg).unwrap();
    let addr = server.local_addr();

    let writers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = NetClient::connect(addr).unwrap();
                let mut shed = 0u64;
                let mut ok = 0u64;
                for _ in 0..50 {
                    match c.submit_source(0, Mode::Plain, "map(inc)", "", &[1, 2, 3, 4]) {
                        Ok(_) => ok += 1,
                        Err(ClientError::Server {
                            code: ErrorCode::Shed,
                            ..
                        }) => shed += 1,
                        Err(e) => panic!("unexpected failure: {e}"),
                    }
                }
                (ok, shed)
            })
        })
        .collect();
    let mut total_ok = 0;
    let mut total_shed = 0;
    for w in writers {
        let (ok, shed) = w.join().unwrap();
        total_ok += ok;
        total_shed += shed;
    }
    assert_eq!(total_ok + total_shed, 200, "every request got an answer");
    assert!(total_ok > 0, "some requests completed");

    let mut c = NetClient::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    if total_shed > 0 {
        assert!(
            !stats.contains("\"shed\": 0,"),
            "shed counter must be honest: {stats}"
        );
    }
    server.shutdown();
}

#[test]
fn manager_reacts_to_a_latency_contract() {
    // A deliberately tight 0.0001ms p99 contract is unmeetable, so the
    // manager must visibly actuate: batch window shrinks and the action
    // log records why.
    let mut cfg = config();
    cfg.manager_tick = Duration::from_millis(10);
    cfg.tenants =
        vec![TenantSpec::new("gold").with_slo(SloContract::parse("p99<0.0001ms").unwrap())];
    let server = NetServer::start(cfg).unwrap();
    let mut c = NetClient::connect(server.local_addr()).unwrap();
    for _ in 0..30 {
        let _ = c
            .submit_source(0, Mode::Plain, "map(inc)", "", &[1, 2, 3, 4])
            .unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = c.stats().unwrap();
    assert!(
        stats.contains("shrink batch window") || stats.contains("boost tenant"),
        "manager actions visible in stats: {stats}"
    );
    server.shutdown();
}

#[test]
fn oversize_payload_declared_lengths_are_refused() {
    let server = NetServer::start(config()).unwrap();
    let mut c = NetClient::connect(server.local_addr()).unwrap();
    // an in-bounds frame whose payload count exceeds the element cap is
    // a typed error, not a hang or a panic
    assert!(MAX_PAYLOAD_ELEMS < u32::MAX as usize);
    let r = c.submit_source(0, Mode::Plain, "map(inc)", "", &[1]);
    assert!(r.is_ok(), "sanity: normal submission works");
    server.shutdown();
}
