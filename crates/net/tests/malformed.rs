//! Malformed-frame robustness (satellite suite): truncated headers,
//! oversized length prefixes, unknown versions and kinds, bad
//! fingerprints, mid-frame disconnects, and seeded random garbage. The
//! server must answer with a typed error reply or close the connection
//! cleanly — never panic, never leave a worker hung — and must keep
//! serving well-formed traffic afterwards.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use scl_core::wire::{HEADER_LEN, MAX_FRAME_LEN, VERSION};
use scl_net::frame::kind;
use scl_net::{ErrorCode, Mode, NetClient, NetConfig, NetServer, Reply, TenantSpec};

fn start() -> NetServer {
    NetServer::start(NetConfig {
        procs: 8,
        tenants: vec![TenantSpec::new("t")],
        manager_tick: Duration::ZERO,
        ..NetConfig::default()
    })
    .unwrap()
}

fn raw_conn(server: &NetServer) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

/// Read one reply frame off a raw socket. `None` on clean close.
fn read_reply(s: &mut TcpStream) -> Option<Reply> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match s.read(&mut header[filled..]) {
            Ok(0) => return None,
            Ok(n) => filled += n,
            Err(_) => return None,
        }
    }
    let h = scl_core::FrameHeader::decode(&header).expect("server replies are well-formed");
    let mut body = vec![0u8; h.len];
    s.read_exact(&mut body).ok()?;
    Some(Reply::decode(h.kind, &body).expect("server replies decode"))
}

fn header(version: u8, kind_byte: u8, len: u32) -> [u8; HEADER_LEN] {
    let mut out = [0u8; HEADER_LEN];
    out[..2].copy_from_slice(b"SC");
    out[2] = version;
    out[3] = kind_byte;
    out[4..8].copy_from_slice(&len.to_le_bytes());
    out
}

/// After any abuse, the server must still serve a fresh well-formed
/// connection end to end.
fn assert_still_serving(server: &NetServer) {
    let mut c = NetClient::connect(server.local_addr()).unwrap();
    let r = c
        .submit_source(0, Mode::Plain, "map(inc)", "", &[1, 2, 3])
        .unwrap();
    assert_eq!(r.output, vec![2, 3, 4]);
}

#[test]
fn truncated_header_then_disconnect_is_a_clean_close() {
    let server = start();
    for cut in 0..HEADER_LEN {
        let mut s = raw_conn(&server);
        let h = header(VERSION, kind::PING, 0);
        s.write_all(&h[..cut]).unwrap();
        drop(s); // mid-header disconnect
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_never_hangs_a_worker() {
    let server = start();
    for body_sent in [0usize, 1, 10] {
        let mut s = raw_conn(&server);
        // declare a 100-byte body, send only a prefix, vanish
        s.write_all(&header(VERSION, kind::SUBMIT_SOURCE, 100))
            .unwrap();
        s.write_all(&vec![0xab; body_sent]).unwrap();
        drop(s);
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn unknown_version_gets_a_typed_error_then_close() {
    let server = start();
    for v in [0u8, 2, 7, 255] {
        let mut s = raw_conn(&server);
        s.write_all(&header(v, kind::PING, 0)).unwrap();
        match read_reply(&mut s) {
            Some(Reply::Error { code, .. }) => {
                assert_eq!(code, ErrorCode::UnsupportedVersion, "version {v}")
            }
            other => panic!("version {v}: expected typed error, got {other:?}"),
        }
        // the server closes a desynchronized stream
        assert!(read_reply(&mut s).is_none(), "version {v}: closed after");
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn bad_magic_gets_a_typed_error_then_close() {
    let server = start();
    let mut s = raw_conn(&server);
    let mut h = header(VERSION, kind::PING, 0);
    h[0] = b'X';
    s.write_all(&h).unwrap();
    match read_reply(&mut s) {
        Some(Reply::Error { code, .. }) => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected typed error, got {other:?}"),
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_refused_without_allocation() {
    let server = start();
    for len in [MAX_FRAME_LEN as u32 + 1, u32::MAX] {
        let mut s = raw_conn(&server);
        s.write_all(&header(VERSION, kind::SUBMIT_SOURCE, len))
            .unwrap();
        match read_reply(&mut s) {
            Some(Reply::Error { code, .. }) => assert_eq!(code, ErrorCode::Oversize, "len {len}"),
            other => panic!("len {len}: expected typed error, got {other:?}"),
        }
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn unknown_kind_is_typed_and_the_connection_survives() {
    let server = start();
    let mut s = raw_conn(&server);
    for k in [0x00u8, 0x7f, 0x80, 0xff] {
        s.write_all(&header(VERSION, k, 0)).unwrap();
        match read_reply(&mut s) {
            Some(Reply::Error { code, .. }) => {
                assert_eq!(code, ErrorCode::UnknownKind, "kind {k:#04x}")
            }
            other => panic!("kind {k:#04x}: expected typed error, got {other:?}"),
        }
    }
    // same connection still works: frames were length-delimited
    s.write_all(&header(VERSION, kind::PING, 0)).unwrap();
    assert!(matches!(read_reply(&mut s), Some(Reply::Pong)));
    server.shutdown();
}

#[test]
fn truncated_and_trailing_bodies_are_typed_bad_frames() {
    let server = start();
    let mut s = raw_conn(&server);
    // SUBMIT_SOURCE body cut off after the tenant id
    let body = 3u32.to_le_bytes();
    s.write_all(&header(VERSION, kind::SUBMIT_SOURCE, body.len() as u32))
        .unwrap();
    s.write_all(&body).unwrap();
    match read_reply(&mut s) {
        Some(Reply::Error { code, .. }) => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected typed error, got {other:?}"),
    }
    // PING with trailing junk
    s.write_all(&header(VERSION, kind::PING, 4)).unwrap();
    s.write_all(&[1, 2, 3, 4]).unwrap();
    match read_reply(&mut s) {
        Some(Reply::Error { code, .. }) => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected typed error, got {other:?}"),
    }
    // a string length pointing past the body is a bounds error, not a reach
    let mut body = Vec::new();
    body.extend_from_slice(&0u32.to_le_bytes()); // tenant
    body.push(0); // mode
    body.extend_from_slice(&u32::MAX.to_le_bytes()); // source "length"
    s.write_all(&header(VERSION, kind::SUBMIT_SOURCE, body.len() as u32))
        .unwrap();
    s.write_all(&body).unwrap();
    match read_reply(&mut s) {
        Some(Reply::Error { code, .. }) => {
            assert!(
                code == ErrorCode::BadFrame || code == ErrorCode::Oversize,
                "got {code:?}"
            )
        }
        other => panic!("expected typed error, got {other:?}"),
    }
    s.write_all(&header(VERSION, kind::PING, 0)).unwrap();
    assert!(matches!(read_reply(&mut s), Some(Reply::Pong)));
    server.shutdown();
}

#[test]
fn bad_fingerprints_and_corrupt_submits_never_panic_the_service() {
    let server = start();
    let mut c = NetClient::connect(server.local_addr()).unwrap();
    // a forged handle the server never issued
    match c.submit_handle(0, 0x0123_4567_89ab_cdef, &[1]) {
        Err(scl_net::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::UnknownPlan)
        }
        other => panic!("expected UnknownPlan, got {other:?}"),
    }
    // invalid UTF-8 in the source string: BadFrame, connection survives
    let mut s = raw_conn(&server);
    let mut body = Vec::new();
    body.extend_from_slice(&0u32.to_le_bytes()); // tenant
    body.push(0); // mode
    body.extend_from_slice(&2u32.to_le_bytes());
    body.extend_from_slice(&[0xff, 0xfe]); // not UTF-8
    body.extend_from_slice(&0u32.to_le_bytes()); // key ""
    body.extend_from_slice(&1u32.to_le_bytes()); // payload [7]
    body.extend_from_slice(&7i64.to_le_bytes());
    s.write_all(&header(VERSION, kind::SUBMIT_SOURCE, body.len() as u32))
        .unwrap();
    s.write_all(&body).unwrap();
    match read_reply(&mut s) {
        Some(Reply::Error { code, .. }) => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected typed error, got {other:?}"),
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn randomized_garbage_storm_never_kills_the_server() {
    // Seeded fuzz: random byte blobs, random mutations of valid frames,
    // random truncations — every connection must end in typed errors or
    // clean closes, and the server must survive the lot.
    let server = start();
    scl_testkit::cases(60, 0xbad_f00d, |rng| {
        let mut s = raw_conn(&server);
        match rng.below(3) {
            0 => {
                // pure garbage
                let n = rng.range_usize(1, 64);
                let blob = rng.vec_of(n, |r| (r.next_u64() & 0xff) as u8);
                let _ = s.write_all(&blob);
            }
            1 => {
                // a valid submit frame with one corrupted byte
                let mut bytes = scl_net::Request::SubmitSource {
                    tenant: 0,
                    mode: Mode::Plain,
                    deadline_ms: 0,
                    source: "map(inc) . rotate(1)".to_string(),
                    key: String::new(),
                    payload: vec![1, 2, 3],
                }
                .encode();
                let i = rng.range_usize(0, bytes.len());
                bytes[i] ^= (1 << rng.below(8)) as u8;
                let _ = s.write_all(&bytes);
            }
            _ => {
                // a valid frame truncated at a random point
                let bytes = scl_net::Request::Ping.encode();
                let cut = rng.range_usize(0, bytes.len());
                let _ = s.write_all(&bytes[..cut]);
            }
        }
        // half-close our side so the server sees EOF once it has chewed
        // through the bytes, then drain whatever it answers (typed
        // errors, results, or a clean close) — never a hang
        let _ = s.shutdown(std::net::Shutdown::Write);
        while read_reply(&mut s).is_some() {}
    });
    assert_still_serving(&server);
    server.shutdown();
}
